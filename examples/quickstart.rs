//! Quickstart: write a small function, translate it out of SSA with the
//! pinning-based coalescer, and watch the copies disappear.
//!
//! ```bash
//! cargo run --example quickstart
//! ```

use tossa::core::{coalesce, collect, reconstruct};
use tossa::ir::{interp, machine::Machine, parse::parse_function};
use tossa::ssa::to_ssa;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Euclid's subtraction GCD, written as ordinary imperative code:
    // `a` and `b` are reassigned in the loop (not SSA yet).
    let text = "
func @gcd {
entry:
  %a, %b = input
  jump head
head:
  %ne = cmpne %a, %b
  br %ne, body, exit
body:
  %agtb = cmplt %b, %a
  br %agtb, suba, subb
suba:
  %a = sub %a, %b
  jump head
subb:
  %b = sub %b, %a
  jump head
exit:
  ret %a
}";
    let mut f = parse_function(text, &Machine::dsp32())?;
    println!("== source (pre-SSA) ==\n{f}");
    let reference = interp::run(&f, &[35, 21], 100_000)?;
    println!("gcd(35, 21) = {:?}\n", reference.outputs);

    // 1. Pruned SSA construction (Cytron et al.).
    to_ssa(&mut f);
    println!("== SSA form ==\n{f}");

    // 2. Collect renaming constraints: the dedicated-register web and the
    //    ABI rules (inputs in R0/R1, result in R0, two-operand ops).
    collect::pinning_sp(&mut f);
    collect::pinning_abi(&mut f);

    // 3. The paper's contribution: pin φ-related variables to common
    //    resources wherever that does not create new interference.
    let stats = coalesce::program_pinning(&mut f, &Default::default());
    println!(
        "coalescer: {} affinity edges, {} pruned, {} merges, {} defs pinned",
        stats.initial_edges,
        stats.pruned_initial + stats.pruned_bipartite,
        stats.merges,
        stats.pinned_vars,
    );
    println!("\n== pinned SSA ==\n{f}");

    // 4. Leung–George mark/reconstruct: out of SSA we go.
    let recon = reconstruct::out_of_pinned_ssa(&mut f);
    println!(
        "reconstruction: {} φ copies, {} ABI copies, {} repairs, {} temps",
        recon.phi_copies, recon.abi_copies, recon.repair_copies, recon.temp_copies,
    );
    println!("\n== final machine code ==\n{f}");
    println!("remaining move instructions: {}", f.count_moves());

    // The translation is an observable no-op.
    let after = interp::run(&f, &[35, 21], 100_000)?;
    assert_eq!(after.outputs, reference.outputs);
    println!("\nsemantics preserved: gcd(35, 21) = {:?}", after.outputs);
    Ok(())
}
