//! A DSP kernel with real renaming constraints: an FIR filter using
//! pointer auto-modification (`autoadd`, a two-operand instruction) and
//! an ABI-constrained helper call — the situation of the paper's Fig. 1.
//!
//! The example contrasts three ways out of SSA:
//!  * naive φ replacement plus local ABI moves,
//!  * naive replacement followed by aggressive Chaitin coalescing,
//!  * the paper's pinning-based coalescing.
//!
//! ```bash
//! cargo run --example dsp_kernel
//! ```

use tossa::baselines::{aggressive_coalesce, dead_code_elim, naive_out_of_ssa};
use tossa::core::{coalesce, collect, reconstruct};
use tossa::ir::{interp, machine::Machine, parse::parse_function, Function};
use tossa::ssa::to_ssa;

const KERNEL: &str = "
func @fir_scaled {
entry:
  %x, %h, %n = input
  %acc = make 0
  %i = make 0
  jump head
head:
  %c = cmplt %i, %n
  br %c, body, exit
body:
  %xv = load %x
  %hv = load %h
  %x = autoadd %x, 1
  %h = autoadd %h, 1
  %p = mul %xv, %hv
  %acc = add %acc, %p
  %i = addi %i, 1
  jump head
exit:
  %scaled = call scale(%acc, %n)
  ret %scaled
}";

fn checked(f: &Function, reference: &[i64], label: &str) {
    let got = interp::run(f, &[1000, 2000, 6], 100_000).expect(label);
    assert_eq!(got.outputs, reference, "{label} changed behaviour");
    println!(
        "{label:30} -> {:3} moves (outputs {:?})",
        f.count_moves(),
        got.outputs
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let src = parse_function(KERNEL, &Machine::dsp32())?;
    let reference = interp::run(&src, &[1000, 2000, 6], 100_000)?.outputs;
    println!("FIR kernel, n = 6 taps; reference outputs {reference:?}\n");

    // Variant A: naive φ replacement + NaiveABI moves.
    let mut naive = src.clone();
    to_ssa(&mut naive);
    naive_out_of_ssa(&mut naive);
    collect::naive_abi(&mut naive);
    dead_code_elim(&mut naive);
    checked(&naive, &reference, "naive + NaiveABI");

    // Variant B: the same, cleaned by aggressive Chaitin coalescing.
    let mut chaitin = naive.clone();
    aggressive_coalesce(&mut chaitin);
    dead_code_elim(&mut chaitin);
    checked(&chaitin, &reference, "naive + NaiveABI + Chaitin");

    // Variant C: the paper — constraints collected as pinnings, φ webs
    // coalesced under the interference classes, one reconstruction.
    let mut ours = src.clone();
    to_ssa(&mut ours);
    collect::pinning_sp(&mut ours);
    collect::pinning_abi(&mut ours);
    coalesce::program_pinning(&mut ours, &Default::default());
    let stats = reconstruct::out_of_pinned_ssa(&mut ours);
    dead_code_elim(&mut ours);
    checked(&ours, &reference, "pinning-based (the paper)");
    println!(
        "\npinning pipeline detail: φ copies {}, ABI copies {}, repairs {}",
        stats.phi_copies, stats.abi_copies, stats.repair_copies
    );
    println!("\n== final code (pinning-based) ==\n{ours}");
    Ok(())
}
