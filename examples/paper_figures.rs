//! Walks through the paper's worked figures, showing that this
//! implementation reproduces each behaviour: Fig. 1 (constraints),
//! Fig. 3 (repair + redundant-move avoidance), Fig. 5 (partial φ
//! pinning), Fig. 9 (joint optimization of a block's φs), and Fig. 11
//! (ABI-aware coalescing around `autoadd`).
//!
//! ```bash
//! cargo run --example paper_figures
//! ```

use tossa::core::{coalesce, collect, reconstruct};
use tossa::ir::{machine::Machine, parse::parse_function, Function};
use tossa::ssa::to_ssa;

fn pipeline(mut f: Function, coalesce_phis: bool) -> (Function, reconstruct::ReconstructStats) {
    to_ssa(&mut f);
    collect::pinning_sp(&mut f);
    collect::pinning_abi(&mut f);
    if coalesce_phis {
        coalesce::program_pinning(&mut f, &Default::default());
    }
    let stats = reconstruct::out_of_pinned_ssa(&mut f);
    (f, stats)
}

fn show(title: &str, text: &str) {
    let machine = Machine::dsp32();
    let src = parse_function(text, &machine).expect("figure parses");
    let (without, s0) = pipeline(src.clone(), false);
    let (with, s1) = pipeline(src, true);
    println!("== {title} ==");
    println!(
        "  without pinningPhi: {:2} moves ({} φ, {} ABI, {} repair)",
        without.count_moves(),
        s0.phi_copies,
        s0.abi_copies,
        s0.repair_copies
    );
    println!(
        "  with    pinningPhi: {:2} moves ({} φ, {} ABI, {} repair)",
        with.count_moves(),
        s1.phi_copies,
        s1.abi_copies,
        s1.repair_copies
    );
    println!("--- final code with pinningPhi ---\n{with}");
}

fn main() {
    show(
        "Fig. 1 — renaming constraints (input/call/ret, make+more, autoadd)",
        "
func @fig1 {
entry:
  %cin, %p = input
  %a = load %p
  %p = autoadd %p, 1
  %b = load %p
  %d = call f(%a, %b)
  %e = add %cin, %d
  %l = make 0x00A1
  %k = more %l, 0x2BFA
  %fo = sub %e, %k
  ret %fo
}",
    );

    show(
        "Fig. 3 — a value killed in R0 by a call needs one repair copy",
        "
func @fig3 {
entry:
  %x, %y = input
  %k = make 40
  jump head
head:
  %cond = cmplt %x, %k
  br %cond, body, exit
body:
  %x = addi %x, 1
  %y = add %y, %k
  %x = call g(%x, %y)
  jump head
exit:
  ret %x
}",
    );

    show(
        "Fig. 5 — only the non-interfering φ argument is pinned",
        "
func @fig5 {
entry:
  %c = input
  %x1 = make 10
  br %c, l, r
l:
  jump m
r:
  %x2 = addi %x1, 5
  %x1 = addi %x2, 0
  jump m
m:
  %s = add %x1, %x1
  ret %s
}",
    );

    show(
        "Fig. 9 — both φs of a block are optimized together",
        "
func @fig9 {
entry:
  %c = input
  br %c, p1, p2
p1:
  %x = call f1()
  %y = call f2()
  jump m
p2:
  %x = call f3()
  %y = mov %x
  jump m
m:
  %s = add %x, %y
  ret %s
}",
    );

    show(
        "Fig. 11 — the ABI-constrained autoadd web stays in one resource",
        "
func @fig11 {
entry:
  %c, %init = input
  %b0 = call f1()
  %mask = make 7
  %b = and %b0, %mask
  %a = make 0
  jump head
head:
  %b = autoadd %b, 1
  %a = add %a, %b
  %cc = cmplt %b, %c
  br %cc, head, exit
exit:
  %r = add %a, %b
  ret %r
}",
    );
}
