//! Runs every Table-1 experiment over the benchmark suites and prints a
//! per-suite move-count comparison (a condensed form of the paper's
//! Tables 2–4), verifying each translated function against the
//! interpreter.
//!
//! ```bash
//! cargo run --release --example compare_algorithms
//! ```

use tossa::bench::runner::run_suite;
use tossa::bench::suites::all_suites;
use tossa::core::Experiment;

fn main() {
    let suites = all_suites(10);
    let experiments = Experiment::all();

    print!("{:<12}", "suite");
    for e in experiments {
        print!(" {:>12}", format!("{e}"));
    }
    println!();
    for suite in &suites {
        print!("{:<12}", suite.name);
        for &e in experiments {
            let r = run_suite(suite, e, &Default::default(), true);
            print!(" {:>12}", r.moves);
        }
        println!();
    }
    println!(
        "\ncolumns: {} — all outputs verified against the interpreter",
        experiments
            .iter()
            .map(|e| e.label())
            .collect::<Vec<_>>()
            .join(", ")
    );
}
