//! Decomposes the register-allocation stage wall clock into its phases
//! over the full benchmark matrix — the companion to the "Profiling a
//! hot stage" walkthrough in EXPERIMENTS.md.
//!
//! Run with `cargo run --release --example profile_alloc`. Each function
//! of every suite is taken through the canonical pipeline
//! (`Experiment::LphiAbiC`), then the allocator's phases are timed
//! separately on the reconstructed output: interval building, the
//! assignment engine (linear scan + spill rounds via `prepare`), the
//! independent verifier, and the physical rewrite (`finish`).

use std::time::Instant;
use tossa::bench::runner::run_experiment;
use tossa::bench::suites::all_suites;
use tossa::core::coalesce::CoalesceOptions;
use tossa::core::Experiment;
use tossa::regalloc::{intervals, prepare, verify_allocation, AllocOptions};

fn main() {
    let opts = CoalesceOptions::default();
    let aopts = AllocOptions::default();
    let (mut t_iv, mut t_prep, mut t_verify, mut t_finish) = (0u128, 0u128, 0u128, 0u128);
    let mut funcs = 0usize;
    for suite in all_suites(5) {
        for bf in &suite.functions {
            let r = run_experiment(&bf.func, Experiment::LphiAbiC, &opts);
            funcs += 1;

            // Interval building alone (the analysis half of a round).
            let mut probe = r.func.clone();
            let begin = Instant::now();
            let _ = intervals::build(&probe);
            t_iv += begin.elapsed().as_nanos();

            // Assignment + spill rounds.
            let begin = Instant::now();
            let prep = match prepare(&mut probe, &aopts) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("{}/{}: {e}", suite.name, bf.func.name);
                    continue;
                }
            };
            t_prep += begin.elapsed().as_nanos();

            // Independent recheck.
            let begin = Instant::now();
            if let Err(e) = verify_allocation(&probe, &prep.assignment) {
                eprintln!("{}/{}: verify: {e}", suite.name, bf.func.name);
            }
            t_verify += begin.elapsed().as_nanos();

            // Physical rewrite.
            let begin = Instant::now();
            let _ = tossa::regalloc::finish(&mut probe, prep);
            t_finish += begin.elapsed().as_nanos();
        }
    }
    let ms = |ns: u128| ns as f64 / 1e6;
    println!("alloc phase profile over {funcs} functions (one LphiAbiC cell each):");
    println!("  intervals (one standalone build) {:8.2} ms", ms(t_iv));
    println!("  prepare (scan + spill rounds)    {:8.2} ms", ms(t_prep));
    println!("  verify (independent recheck)     {:8.2} ms", ms(t_verify));
    println!("  finish (physical rewrite)        {:8.2} ms", ms(t_finish));
}
