//! Independent allocation verifier.
//!
//! Rechecks an [`Assignment`](crate::Assignment) against the function it
//! was computed for, using nothing from the assignment engines except
//! the liveness analysis:
//!
//! - every operand variable has a register ([`AllocError::Unassigned`]);
//! - precolored variables keep their register
//!   ([`AllocError::PinClobbered`]);
//! - no two simultaneously-live variables share a register, including
//!   dead defs clobbering live-through values
//!   ([`AllocError::RegisterOverlap`]) — checked by a per-block backward
//!   scan from `live_exit` that tracks which variable currently owns
//!   each register. The scan is per-program-point precise, which makes
//!   it *hole-aware* by construction: a def releases its register, so
//!   two webs may legally share one as long as each lives inside the
//!   other's lifetime holes — exactly the sharing the per-range
//!   allocator (PR9) produces, and exactly what a hull-based recheck
//!   would wrongly reject;
//! - every `spillld` reads a slot that a `spillst` must have written on
//!   all paths ([`AllocError::UnpairedSlot`]) — a forward must-written
//!   dataflow over slots;
//! - every used variable has a definition
//!   ([`AllocError::UndefinedUse`]), catching dropped reloads.
//!
//! This is the checked-mode contract: chaos-injected allocation faults
//! must surface here as structured errors, never as miscompiles.

use std::collections::HashSet;
use tossa_analysis::Liveness;
use tossa_ir::cfg::Cfg;
use tossa_ir::ids::Var;
use tossa_ir::machine::RegClass;
use tossa_ir::{Function, Opcode};

use crate::{AllocError, Assignment};

/// Verifies `asg` against `f` (still in virtual-register form, possibly
/// with spill code).
///
/// # Errors
/// The first violated invariant, as an [`AllocError`].
pub fn verify_allocation(f: &Function, asg: &Assignment) -> Result<(), AllocError> {
    let mut defined = vec![false; f.num_vars()];
    let mut used = vec![false; f.num_vars()];
    for (_, i) in f.all_insts() {
        let inst = f.inst(i);
        for o in inst.defs {
            defined[o.var.index()] = true;
        }
        for o in inst.uses {
            used[o.var.index()] = true;
        }
    }

    // Assignment completeness, pin preservation, definedness.
    for (_, i) in f.all_insts() {
        for o in f.inst(i).operands() {
            let v = o.var;
            let r = asg.get(v).ok_or(AllocError::Unassigned { var: v })?;
            if let Some(pinned) = f.var(v).reg {
                if pinned != r {
                    return Err(AllocError::PinClobbered {
                        var: v,
                        pinned,
                        got: r,
                    });
                }
            }
        }
    }
    for idx in 0..f.num_vars() {
        if used[idx] && !defined[idx] {
            let v = Var::new(idx);
            let special = f
                .var(v)
                .reg
                .map(|r| f.machine.reg_class(r) == RegClass::Special)
                .unwrap_or(false);
            if !special {
                return Err(AllocError::UndefinedUse { var: v });
            }
        }
    }

    let cfg = Cfg::compute(f);
    let live = Liveness::compute(f, &cfg);

    // Register-overlap check: backward per-block scan tracking the
    // variable owning each register. One dense 256-entry ownership table
    // is reused across blocks (reg ids are `u8`), cleared per block.
    let mut owner: Vec<Option<Var>> = vec![None; 256];
    for b in f.blocks() {
        owner.fill(None);
        let claim = |owner: &mut [Option<Var>], v: Var| -> Result<(), AllocError> {
            let r = asg.get(v).ok_or(AllocError::Unassigned { var: v })?;
            match owner[r.0 as usize] {
                Some(w) if w != v => Err(AllocError::RegisterOverlap { reg: r, a: v, b: w }),
                _ => {
                    owner[r.0 as usize] = Some(v);
                    Ok(())
                }
            }
        };
        for v in live.live_exit(f, b).iter() {
            claim(&mut owner, v)?;
        }
        let insts: Vec<_> = f.block_insts(b).collect();
        for &i in insts.iter().rev() {
            let inst = f.inst(i);
            // A def clobbers whatever holds its register, so the holder
            // must be the defined variable itself (or nothing). Dead
            // defs clobber too. Defs per instruction are few, so the
            // duplicate-register check is a linear pass over the prefix.
            for (k, o) in inst.defs.iter().enumerate() {
                let v = o.var;
                let r = asg.get(v).ok_or(AllocError::Unassigned { var: v })?;
                for prev in &inst.defs[..k] {
                    let w = prev.var;
                    if asg.get(w) == Some(r) {
                        return Err(AllocError::RegisterOverlap { reg: r, a: v, b: w });
                    }
                }
                if let Some(w) = owner[r.0 as usize] {
                    if w != v {
                        return Err(AllocError::RegisterOverlap { reg: r, a: v, b: w });
                    }
                }
            }
            for o in inst.defs {
                let r = asg.get(o.var).unwrap();
                if owner[r.0 as usize] == Some(o.var) {
                    owner[r.0 as usize] = None;
                }
            }
            for o in inst.uses {
                claim(&mut owner, o.var)?;
            }
        }
    }

    verify_slots(f, &cfg)
}

/// Must-written forward dataflow over spill slots: a `spillld` of a slot
/// not written on every path to it is an [`AllocError::UnpairedSlot`].
fn verify_slots(f: &Function, cfg: &Cfg) -> Result<(), AllocError> {
    let mut slots: HashSet<i64> = HashSet::new();
    for (_, i) in f.all_insts() {
        let inst = f.inst(i);
        if matches!(inst.opcode, Opcode::SpillStore | Opcode::SpillLoad) {
            slots.insert(inst.imm);
        }
    }
    if slots.is_empty() {
        return Ok(());
    }
    let all: HashSet<i64> = slots;
    // in[entry] = ∅, in[b] = ∩ preds out; out[b] = in[b] ∪ stores(b).
    let mut written_in: Vec<HashSet<i64>> = vec![all.clone(); f.num_blocks()];
    written_in[f.entry.index()] = HashSet::new();
    let mut changed = true;
    while changed {
        changed = false;
        for &b in cfg.rpo() {
            let inb = if b == f.entry || cfg.preds(b).is_empty() {
                HashSet::new()
            } else {
                let preds = cfg.preds(b);
                let mut acc = out_of(f, &written_in, preds[0]);
                for &p in &preds[1..] {
                    let po = out_of(f, &written_in, p);
                    acc.retain(|s| po.contains(s));
                }
                acc
            };
            if inb != written_in[b.index()] {
                written_in[b.index()] = inb;
                changed = true;
            }
        }
    }
    for b in f.blocks() {
        let mut cur = written_in[b.index()].clone();
        for i in f.block_insts(b) {
            let inst = f.inst(i);
            match inst.opcode {
                Opcode::SpillLoad if !cur.contains(&inst.imm) => {
                    return Err(AllocError::UnpairedSlot { slot: inst.imm });
                }
                Opcode::SpillStore => {
                    cur.insert(inst.imm);
                }
                _ => {}
            }
        }
    }
    Ok(())
}

fn out_of(f: &Function, written_in: &[HashSet<i64>], b: tossa_ir::ids::Block) -> HashSet<i64> {
    let mut out = written_in[b.index()].clone();
    for i in f.block_insts(b) {
        let inst = f.inst(i);
        if inst.opcode == Opcode::SpillStore {
            out.insert(inst.imm);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{intervals, scan, AllocOptions, Strategy};
    use tossa_ir::machine::Machine;
    use tossa_ir::parse::parse_function;

    fn prepared(text: &str) -> (Function, Assignment) {
        let mut f = parse_function(text, &Machine::dsp32()).unwrap();
        let prep = crate::prepare(&mut f, &AllocOptions::default()).unwrap();
        (f, prep.assignment)
    }

    #[test]
    fn clean_allocation_verifies() {
        let (f, asg) =
            prepared("func @v {\nentry:\n  %a, %b = input\n  %c = add %a, %b\n  ret %c\n}");
        verify_allocation(&f, &asg).unwrap();
    }

    #[test]
    fn forced_overlap_is_reported() {
        let (f, mut asg) =
            prepared("func @o {\nentry:\n  %a, %b = input\n  %c = add %a, %b\n  ret %c\n}");
        // Force %a and %b onto one register: both live at the add.
        let a = f.vars().find(|&v| f.var(v).name == "a").unwrap();
        let b = f.vars().find(|&v| f.var(v).name == "b").unwrap();
        asg.set(a, asg.get(b).unwrap());
        let e = verify_allocation(&f, &asg).unwrap_err();
        assert!(matches!(e, AllocError::RegisterOverlap { .. }), "{e}");
    }

    #[test]
    fn dead_def_clobber_is_reported() {
        let (f, mut asg) = prepared(
            "func @d {\nentry:\n  %a = input\n  %dead = make 7\n  %s = addi %a, 1\n  ret %s\n}",
        );
        // %dead's def clobbers %a, which is live across it.
        let a = f.vars().find(|&v| f.var(v).name == "a").unwrap();
        let dead = f.vars().find(|&v| f.var(v).name == "dead").unwrap();
        asg.set(dead, asg.get(a).unwrap());
        let e = verify_allocation(&f, &asg).unwrap_err();
        assert!(matches!(e, AllocError::RegisterOverlap { .. }), "{e}");
    }

    /// Hole-aware acceptance: two webs whose hulls overlap but whose
    /// ranges do not (one lives entirely inside the other's lifetime
    /// hole) may share a register. The per-point owner scan releases
    /// the register at the hole boundary, so no overlap is reported.
    #[test]
    fn hole_sharing_assignment_verifies() {
        let (f, mut asg) = prepared(
            "func @hs {
entry:
  %a = input
  %b = add %a, %a
  %c = add %b, %b
  %a = make 1
  %r = add %a, %c
  ret %r
}",
        );
        let a = f.vars().find(|&v| f.var(v).name == "a").unwrap();
        let b = f.vars().find(|&v| f.var(v).name == "b").unwrap();
        // %b lives in %a's hole (between %a's last use and its
        // redefinition): sharing %a's register is legal.
        asg.set(b, asg.get(a).unwrap());
        verify_allocation(&f, &asg).unwrap();
        // But %c overlaps %a's second life at the final add: sharing
        // with it must still be rejected.
        let c = f.vars().find(|&v| f.var(v).name == "c").unwrap();
        asg.set(c, asg.get(a).unwrap());
        let e = verify_allocation(&f, &asg).unwrap_err();
        assert!(matches!(e, AllocError::RegisterOverlap { .. }), "{e}");
    }

    #[test]
    fn clobbered_pin_is_reported() {
        let (f, mut asg) =
            prepared("func @p {\nentry:\n  R0, %b = input\n  %c = add R0, %b\n  ret %c\n}");
        let pinned = f.vars().find(|&v| f.var(v).reg.is_some()).unwrap();
        let other = Machine::dsp32().reg_by_name("R9").unwrap();
        asg.set(pinned, other);
        let e = verify_allocation(&f, &asg).unwrap_err();
        assert!(matches!(e, AllocError::PinClobbered { .. }), "{e}");
    }

    #[test]
    fn load_before_store_is_an_unpaired_slot() {
        let f = parse_function(
            "func @u {\nentry:\n  %x = spillld 0\n  spillst %x, 0\n  ret %x\n}",
            &Machine::dsp32(),
        )
        .unwrap();
        let ivs = intervals::build(&f);
        let asg = match scan::scan(&f, &ivs, &std::collections::HashSet::new(), None) {
            Ok(a) => a,
            Err(e) => panic!("{e:?}"),
        };
        let e = verify_allocation(&f, &asg).unwrap_err();
        assert!(matches!(e, AllocError::UnpairedSlot { slot: 0 }), "{e}");
    }

    #[test]
    fn undefined_use_is_reported() {
        let f = parse_function(
            "func @uu {\nentry:\n  %g = input\n  %h = add %g, %never\n  ret %h\n}",
            &Machine::dsp32(),
        )
        .unwrap();
        let ivs = intervals::build(&f);
        let asg = scan::scan(&f, &ivs, &std::collections::HashSet::new(), None).unwrap();
        let e = verify_allocation(&f, &asg).unwrap_err();
        assert!(matches!(e, AllocError::UndefinedUse { .. }), "{e}");
    }

    #[test]
    fn graph_and_scan_both_verify_on_branchy_code() {
        let text = "
func @g {
entry:
  %a, %b = input
  %c = cmplt %a, %b
  br %c, t, e
t:
  %r = sub %b, %a
  jump done
e:
  %r = sub %a, %b
  jump done
done:
  ret %r
}";
        for strategy in [Strategy::LinearScan, Strategy::Graph] {
            let mut f = parse_function(text, &Machine::dsp32()).unwrap();
            let prep = crate::prepare(
                &mut f,
                &AllocOptions {
                    strategy,
                    ..Default::default()
                },
            )
            .unwrap();
            verify_allocation(&f, &prep.assignment).unwrap();
        }
    }
}
