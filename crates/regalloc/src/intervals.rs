//! Hull live intervals over a linearized block order.
//!
//! Blocks are laid out in reverse postorder (unreachable blocks
//! appended); instruction `k` of a block with base position `p` reads
//! its uses at `p + 2k` and writes its defs at `p + 2k + 1`. A def
//! therefore never overlaps a use that dies at the same instruction —
//! which is exactly what lets `mov` destinations and two-operand tied
//! defs share the register of their dying source. Each variable gets a
//! single *hull* interval `[min, max]` over all the positions where it
//! is live: coarser than per-range liveness, but safe, and cheap to
//! sweep.

use tossa_analysis::{AnalysisCache, Liveness};
use tossa_ir::cfg::Cfg;
use tossa_ir::ids::{Block, Var};
use tossa_ir::machine::{PhysReg, RegClass};
use tossa_ir::{Function, Opcode};

/// One variable's hull interval plus its allocation preferences.
#[derive(Clone, Copy, Debug)]
pub struct Interval {
    /// The variable.
    pub var: Var,
    /// First position (inclusive) where the variable is live.
    pub start: u32,
    /// Last position (inclusive) where the variable is live.
    pub end: u32,
    /// Pre-existing register identity (out-of-SSA pinning); kept
    /// verbatim and never spilled.
    pub pre: Option<PhysReg>,
    /// Prefer the pointer register pool (the variable is used as an
    /// address).
    pub ptr_pref: bool,
    /// Prefer the register of this variable (`mov` source or tied use),
    /// so the copy becomes a self-move.
    pub hint: Option<Var>,
}

impl Interval {
    /// Inclusive-interval overlap.
    pub fn overlaps(&self, other: &Interval) -> bool {
        self.start <= other.end && other.start <= self.end
    }
}

/// All intervals of a function, sorted by start position.
#[derive(Clone, Debug, Default)]
pub struct Intervals {
    /// Intervals sorted by `(start, var)`.
    pub items: Vec<Interval>,
    /// Per-block position span `(base, live_exit)` in the linearized
    /// order, indexed by `Block::index()`. Used by the spill layer to
    /// reason about loop-region boundaries in position space.
    pub block_span: Vec<(u32, u32)>,
}

impl Intervals {
    /// Does the position `p` fall inside the span of any block in
    /// `blocks`?
    pub fn position_in_blocks(&self, p: u32, blocks: &[tossa_ir::ids::Block]) -> bool {
        blocks.iter().any(|b| {
            self.block_span
                .get(b.index())
                .map(|&(s, e)| s <= p && p <= e)
                .unwrap_or(false)
        })
    }
}

/// Reverse postorder with unreachable blocks appended, so every
/// instruction gets a position.
pub(crate) fn linear_order(f: &Function, cfg: &Cfg) -> Vec<Block> {
    let mut order: Vec<Block> = cfg.rpo().to_vec();
    let mut seen = vec![false; f.num_blocks()];
    for &b in &order {
        seen[b.index()] = true;
    }
    for b in f.blocks() {
        if !seen[b.index()] {
            order.push(b);
        }
    }
    order
}

/// Builds hull intervals from the worklist liveness.
pub fn build(f: &Function) -> Intervals {
    let cfg = Cfg::compute(f);
    let live = Liveness::compute(f, &cfg);
    build_inner(f, &cfg, &live)
}

/// [`build`] with analyses drawn from `cache` — the spill loop's fast
/// path. Spill rewriting inserts and removes instructions but never
/// touches block structure, so rounds after the first reuse the cached
/// CFG and only recompute liveness (instructions-only invalidation).
pub fn build_cached(f: &Function, cache: &mut AnalysisCache) -> Intervals {
    let cfg = cache.cfg(f);
    let live = cache.liveness(f);
    build_inner(f, &cfg, &live)
}

fn build_inner(f: &Function, cfg: &Cfg, live: &Liveness) -> Intervals {
    let order = linear_order(f, cfg);

    // Dense per-variable tables; `touch` runs once per operand and per
    // live-in/live-out member, so it must not hash.
    const UNSEEN: (u32, u32) = (u32::MAX, 0);
    let mut ranges: Vec<(u32, u32)> = vec![UNSEEN; f.num_vars()];
    let mut touch = |v: Var, p: u32| {
        let e = &mut ranges[v.index()];
        e.0 = e.0.min(p);
        e.1 = e.1.max(p);
    };
    let mut ptr_pref: Vec<bool> = vec![false; f.num_vars()];
    let mut hint: Vec<Option<Var>> = vec![None; f.num_vars()];

    let mut block_span: Vec<(u32, u32)> = vec![(0, 0); f.num_blocks()];
    let mut base: u32 = 0;
    for &b in &order {
        for v in live.live_in(b).iter() {
            touch(v, base);
        }
        let mut k: u32 = 0;
        for i in f.block_insts(b) {
            let inst = f.inst(i);
            for (pos, o) in inst.uses.iter().enumerate() {
                touch(o.var, base + 2 * k);
                if matches!(inst.opcode, Opcode::Load | Opcode::Store | Opcode::AutoAdd) && pos == 0
                {
                    ptr_pref[o.var.index()] = true;
                }
            }
            for o in inst.defs {
                touch(o.var, base + 2 * k + 1);
                if inst.opcode == Opcode::AutoAdd {
                    ptr_pref[o.var.index()] = true;
                }
            }
            if !inst.defs.is_empty() {
                let tied = match inst.opcode {
                    Opcode::Mov => Some(0),
                    op => op.tied_use(),
                };
                if let Some(u) = tied {
                    if let Some(src) = inst.uses.get(u) {
                        hint[inst.defs[0].var.index()] = Some(src.var);
                    }
                }
            }
            k += 1;
        }
        let end_pos = base + 2 * k;
        for v in live.live_exit(f, b).iter() {
            touch(v, end_pos);
        }
        block_span[b.index()] = (base, end_pos);
        base = end_pos + 2;
    }

    let mut items: Vec<Interval> = ranges
        .into_iter()
        .enumerate()
        .filter(|&(_, r)| r != UNSEEN)
        .map(|(idx, (start, end))| {
            let var = Var::new(idx);
            Interval {
                var,
                start,
                end,
                pre: f.var(var).reg,
                ptr_pref: ptr_pref[idx]
                    || f.var(var)
                        .reg
                        .map(|r| f.machine.reg_class(r) == RegClass::Ptr)
                        .unwrap_or(false),
                hint: hint[idx],
            }
        })
        .collect();
    items.sort_by_key(|iv| (iv.start, iv.var.index()));
    Intervals { items, block_span }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tossa_ir::machine::Machine;
    use tossa_ir::parse::parse_function;

    #[test]
    fn def_position_clears_dying_use() {
        let f = parse_function(
            "func @t {\nentry:\n  %a = input\n  %b = mov %a\n  ret %b\n}",
            &Machine::dsp32(),
        )
        .unwrap();
        let ivs = build(&f);
        let by_name = |n: &str| {
            ivs.items
                .iter()
                .find(|iv| f.var(iv.var).name == n)
                .copied()
                .unwrap()
        };
        let a = by_name("a");
        let b = by_name("b");
        // %a dies at the mov's use point; %b starts one past it.
        assert!(a.end < b.start, "a={a:?} b={b:?}");
        assert_eq!(b.hint.map(|v| f.var(v).name.clone()), Some("a".to_string()));
    }

    #[test]
    fn loop_carried_var_spans_the_loop() {
        let f = parse_function(
            "
func @l {
entry:
  %n = input
  %z = make 0
  jump head
head:
  %c = cmplt %z, %n
  br %c, body, exit
body:
  %z = addi %z, 1
  jump head
exit:
  ret %z
}",
            &Machine::dsp32(),
        )
        .unwrap();
        let ivs = build(&f);
        let z = ivs
            .items
            .iter()
            .find(|iv| f.var(iv.var).name == "z")
            .unwrap();
        let n = ivs
            .items
            .iter()
            .find(|iv| f.var(iv.var).name == "n")
            .unwrap();
        assert!(z.overlaps(n), "loop-carried z must interfere with n");
    }
}
