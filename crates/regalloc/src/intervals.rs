//! Per-range live intervals over a linearized block order.
//!
//! Blocks are laid out in reverse postorder (unreachable blocks
//! appended); instruction `k` of a block with base position `p` reads
//! its uses at `p + 2k` and writes its defs at `p + 2k + 1`. A def
//! therefore never overlaps a use that dies at the same instruction —
//! which is exactly what lets `mov` destinations and two-operand tied
//! defs share the register of their dying source.
//!
//! Each variable carries two views of its lifetime:
//!
//! * the *hull* `[min, max]` (inclusive) over all live positions — a
//!   cheap prefilter, and the whole story under
//!   [`IntervalPrecision::Hull`];
//! * a sorted list of disjoint half-open `[start, end)` *ranges* with
//!   lifetime holes between them, built by a backward per-block walk
//!   over the same worklist liveness. Two webs interfere only where
//!   their ranges overlap, so a register stays assignable inside
//!   another web's holes.
//!
//! Ranges separated only by the unused padding position between two
//! consecutive blocks in the linear order are merged: no instruction
//! ever occupies a padding position, so the "hole" there could never
//! hold another web, and merging keeps each web's range list in
//! one-piece-per-real-hole form (and its envelope equal to its hull).

use tossa_analysis::{AnalysisCache, Liveness};
use tossa_ir::cfg::Cfg;
use tossa_ir::ids::{Block, Var};
use tossa_ir::machine::{PhysReg, RegClass};
use tossa_ir::{Function, Opcode};

/// How precisely intervals model liveness.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum IntervalPrecision {
    /// One `[min, max]` hull per web (the pre-PR9 model): every position
    /// between the first and last live position counts as occupied.
    /// Each interval gets a single range equal to its envelope, so the
    /// downstream engines need no mode switches.
    Hull,
    /// Sorted disjoint `[start, end)` ranges with lifetime holes between
    /// them; interference consults the ranges and the hull is only a
    /// prefilter.
    #[default]
    Ranges,
}

/// One variable's live interval plus its allocation preferences.
#[derive(Clone, Copy, Debug)]
pub struct Interval {
    /// The variable.
    pub var: Var,
    /// First position (inclusive) where the variable is live — the hull
    /// start, equal to the first range's start.
    pub start: u32,
    /// Last position (inclusive) where the variable is live — the hull
    /// end, equal to the last range's end minus one.
    pub end: u32,
    /// Pre-existing register identity (out-of-SSA pinning); kept
    /// verbatim and never spilled.
    pub pre: Option<PhysReg>,
    /// Prefer the pointer register pool (the variable is used as an
    /// address).
    pub ptr_pref: bool,
    /// Prefer the register of this variable (`mov` source or tied use),
    /// so the copy becomes a self-move.
    pub hint: Option<Var>,
    /// Index of this interval's first range in the owning
    /// [`Intervals`] pool.
    range_start: u32,
    /// Number of ranges.
    range_len: u32,
}

impl Interval {
    /// Inclusive *hull* overlap — the cheap prefilter. For liveness-
    /// accurate interference use [`Intervals::overlap`], which descends
    /// into the ranges.
    pub fn overlaps(&self, other: &Interval) -> bool {
        self.start <= other.end && other.start <= self.end
    }
}

/// All intervals of a function, sorted by start position, plus the
/// shared range pool they index into.
#[derive(Clone, Debug, Default)]
pub struct Intervals {
    /// Intervals sorted by `(start, var)`.
    pub items: Vec<Interval>,
    /// Per-block position span `(base, live_exit)` in the linearized
    /// order, indexed by `Block::index()`. Used by the spill layer to
    /// reason about region boundaries in position space.
    pub block_span: Vec<(u32, u32)>,
    /// The precision these intervals were built at.
    pub precision: IntervalPrecision,
    /// Half-open `[start, end)` ranges, grouped per interval (see
    /// [`Intervals::ranges_of`]); within a group sorted, disjoint and
    /// nonempty.
    ranges: Vec<(u32, u32)>,
}

impl Intervals {
    /// The sorted disjoint half-open ranges of `iv`.
    pub fn ranges_of(&self, iv: &Interval) -> &[(u32, u32)] {
        let s = iv.range_start as usize;
        &self.ranges[s..s + iv.range_len as usize]
    }

    /// Liveness-accurate interference: do `a` and `b` have a position
    /// where both are live? Hull-disjoint pairs short-circuit; hull-
    /// overlapping pairs walk their range lists in merge order.
    pub fn overlap(&self, a: &Interval, b: &Interval) -> bool {
        if !a.overlaps(b) {
            return false;
        }
        let (ra, rb) = (self.ranges_of(a), self.ranges_of(b));
        if a.range_len == 1 && b.range_len == 1 {
            return true; // the hulls already overlapped
        }
        let (mut i, mut j) = (0, 0);
        while i < ra.len() && j < rb.len() {
            let (s1, e1) = ra[i];
            let (s2, e2) = rb[j];
            if s1 < e2 && s2 < e1 {
                return true;
            }
            if e1 <= e2 {
                i += 1;
            } else {
                j += 1;
            }
        }
        false
    }

    /// Is `iv` live at position `p`?
    pub fn covers(&self, iv: &Interval, p: u32) -> bool {
        self.ranges_of(iv).iter().any(|&(s, e)| s <= p && p < e)
    }

    /// Positions actually covered by `iv`'s ranges — the spill-cost
    /// normalization denominator (a web full of holes relieves pressure
    /// only where it is live, not across its whole hull).
    pub fn covered_len(&self, iv: &Interval) -> u64 {
        self.ranges_of(iv)
            .iter()
            .map(|&(s, e)| u64::from(e - s))
            .sum()
    }

    /// The interval of `v`, if it has one.
    pub fn find(&self, v: Var) -> Option<&Interval> {
        self.items.iter().find(|iv| iv.var == v)
    }

    /// Does the position `p` fall inside the span of any block in
    /// `blocks`?
    pub fn position_in_blocks(&self, p: u32, blocks: &[tossa_ir::ids::Block]) -> bool {
        blocks.iter().any(|b| {
            self.block_span
                .get(b.index())
                .map(|&(s, e)| s <= p && p <= e)
                .unwrap_or(false)
        })
    }
}

/// Reverse postorder with unreachable blocks appended, so every
/// instruction gets a position.
pub(crate) fn linear_order(f: &Function, cfg: &Cfg) -> Vec<Block> {
    let mut order: Vec<Block> = cfg.rpo().to_vec();
    let mut seen = vec![false; f.num_blocks()];
    for &b in &order {
        seen[b.index()] = true;
    }
    for b in f.blocks() {
        if !seen[b.index()] {
            order.push(b);
        }
    }
    order
}

/// Builds per-range intervals from the worklist liveness.
pub fn build(f: &Function) -> Intervals {
    build_with(f, IntervalPrecision::Ranges)
}

/// [`build`] at an explicit precision.
pub fn build_with(f: &Function, precision: IntervalPrecision) -> Intervals {
    let cfg = Cfg::compute(f);
    let live = Liveness::compute(f, &cfg);
    build_inner(f, &cfg, &live, precision)
}

/// [`build`] with analyses drawn from `cache` — the spill loop's fast
/// path. Spill rewriting inserts and removes instructions but never
/// touches block structure, so rounds after the first reuse the cached
/// CFG and only recompute liveness (instructions-only invalidation).
pub fn build_cached(f: &Function, cache: &mut AnalysisCache) -> Intervals {
    build_cached_with(f, cache, IntervalPrecision::Ranges)
}

/// [`build_cached`] at an explicit precision.
pub fn build_cached_with(
    f: &Function,
    cache: &mut AnalysisCache,
    precision: IntervalPrecision,
) -> Intervals {
    let cfg = cache.cfg(f);
    let live = cache.liveness(f);
    build_inner(f, &cfg, &live, precision)
}

fn build_inner(
    f: &Function,
    cfg: &Cfg,
    live: &Liveness,
    precision: IntervalPrecision,
) -> Intervals {
    let order = linear_order(f, cfg);

    // Dense per-variable tables; the backward walk runs once per
    // operand and per live-exit member, so none of it may hash.
    let mut ptr_pref: Vec<bool> = vec![false; f.num_vars()];
    let mut hint: Vec<Option<Var>> = vec![None; f.num_vars()];
    // Open segment ends (exclusive) during the backward walk; 0 means
    // "not live below this point" (every real end is >= 1).
    let mut pending: Vec<u32> = vec![0; f.num_vars()];
    let mut opened: Vec<Var> = Vec::new();
    // Raw (var, start, end) segments, per-block in decreasing start
    // order; sorted and merged into the pool afterwards.
    let mut raw: Vec<(u32, u32, u32)> = Vec::new();

    let mut block_span: Vec<(u32, u32)> = vec![(0, 0); f.num_blocks()];
    let mut base: u32 = 0;
    for &b in &order {
        let insts = &f.block(b).insts;
        let k_count = insts.len() as u32;
        let end_pos = base + 2 * k_count;
        block_span[b.index()] = (base, end_pos);

        // Seed the walk from the block's live-exit set: everything live
        // out is live at `end_pos` until a def inside the block closes
        // its segment.
        opened.clear();
        for v in live.live_exit(f, b).iter() {
            pending[v.index()] = end_pos + 1;
            opened.push(v);
        }
        for (k, &i) in insts.iter().enumerate().rev() {
            let k = k as u32;
            let inst = f.inst(i);
            let def_pos = base + 2 * k + 1;
            for o in inst.defs {
                let p = &mut pending[o.var.index()];
                if *p != 0 {
                    raw.push((o.var.index() as u32, def_pos, *p));
                    *p = 0;
                } else {
                    // Dead def: the web still occupies a register for
                    // the defining position itself.
                    raw.push((o.var.index() as u32, def_pos, def_pos + 1));
                }
                if inst.opcode == Opcode::AutoAdd {
                    ptr_pref[o.var.index()] = true;
                }
            }
            let use_pos = base + 2 * k;
            for (pos, o) in inst.uses.iter().enumerate() {
                let p = &mut pending[o.var.index()];
                if *p == 0 {
                    *p = use_pos + 1;
                    opened.push(o.var);
                }
                if matches!(inst.opcode, Opcode::Load | Opcode::Store | Opcode::AutoAdd) && pos == 0
                {
                    ptr_pref[o.var.index()] = true;
                }
            }
            if !inst.defs.is_empty() {
                let tied = match inst.opcode {
                    Opcode::Mov => Some(0),
                    op => op.tied_use(),
                };
                if let Some(u) = tied {
                    if let Some(src) = inst.uses.get(u) {
                        hint[inst.defs[0].var.index()] = Some(src.var);
                    }
                }
            }
        }
        // Segments still open at the block start belong to live-in
        // variables.
        for &v in &opened {
            let p = &mut pending[v.index()];
            if *p != 0 {
                raw.push((v.index() as u32, base, *p));
                *p = 0;
            }
        }
        base = end_pos + 2;
    }

    // Padding positions: the one unused slot between consecutive blocks
    // in the linear order. A same-web gap that is exactly a padding
    // position is a layout artifact, not a lifetime hole.
    let mut pads: Vec<u32> = block_span.iter().map(|&(_, e)| e + 1).collect();
    pads.sort_unstable();
    let is_pad = |p: u32| pads.binary_search(&p).is_ok();

    raw.sort_unstable();
    let mut items: Vec<Interval> = Vec::new();
    let mut ranges: Vec<(u32, u32)> = Vec::new();
    let mut i = 0;
    while i < raw.len() {
        let var_idx = raw[i].0;
        let range_start = ranges.len() as u32;
        let (mut cur_s, mut cur_e) = (raw[i].1, raw[i].2);
        i += 1;
        while i < raw.len() && raw[i].0 == var_idx {
            let (s, e) = (raw[i].1, raw[i].2);
            if s <= cur_e || (s == cur_e + 1 && is_pad(cur_e)) {
                cur_e = cur_e.max(e);
            } else {
                ranges.push((cur_s, cur_e));
                (cur_s, cur_e) = (s, e);
            }
            i += 1;
        }
        ranges.push((cur_s, cur_e));
        let (start, end) = (ranges[range_start as usize].0, cur_e - 1);
        if precision == IntervalPrecision::Hull {
            // Collapse to the envelope: one range, no holes.
            ranges.truncate(range_start as usize);
            ranges.push((start, end + 1));
        }
        let var = Var::new(var_idx as usize);
        items.push(Interval {
            var,
            start,
            end,
            pre: f.var(var).reg,
            ptr_pref: ptr_pref[var.index()]
                || f.var(var)
                    .reg
                    .map(|r| f.machine.reg_class(r) == RegClass::Ptr)
                    .unwrap_or(false),
            hint: hint[var.index()],
            range_start,
            range_len: ranges.len() as u32 - range_start,
        });
    }
    items.sort_by_key(|iv| (iv.start, iv.var.index()));
    Intervals {
        items,
        block_span,
        precision,
        ranges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tossa_ir::machine::Machine;
    use tossa_ir::parse::parse_function;

    #[test]
    fn def_position_clears_dying_use() {
        let f = parse_function(
            "func @t {\nentry:\n  %a = input\n  %b = mov %a\n  ret %b\n}",
            &Machine::dsp32(),
        )
        .unwrap();
        let ivs = build(&f);
        let by_name = |n: &str| {
            ivs.items
                .iter()
                .find(|iv| f.var(iv.var).name == n)
                .copied()
                .unwrap()
        };
        let a = by_name("a");
        let b = by_name("b");
        // %a dies at the mov's use point; %b starts one past it.
        assert!(a.end < b.start, "a={a:?} b={b:?}");
        assert_eq!(b.hint.map(|v| f.var(v).name.clone()), Some("a".to_string()));
    }

    #[test]
    fn loop_carried_var_spans_the_loop() {
        let f = parse_function(
            "
func @l {
entry:
  %n = input
  %z = make 0
  jump head
head:
  %c = cmplt %z, %n
  br %c, body, exit
body:
  %z = addi %z, 1
  jump head
exit:
  ret %z
}",
            &Machine::dsp32(),
        )
        .unwrap();
        let ivs = build(&f);
        let z = ivs
            .items
            .iter()
            .find(|iv| f.var(iv.var).name == "z")
            .unwrap();
        let n = ivs
            .items
            .iter()
            .find(|iv| f.var(iv.var).name == "n")
            .unwrap();
        assert!(z.overlaps(n), "loop-carried z must interfere with n");
        assert!(ivs.overlap(z, n), "per-range view must agree here");
    }

    /// A web that dies and is later redefined has a lifetime hole; its
    /// hull still spans both pieces, and another web fully inside the
    /// hole does not interfere.
    #[test]
    fn redefined_web_has_a_hole_and_hole_dweller_does_not_interfere() {
        let f = parse_function(
            "func @h {
entry:
  %a = input
  %b = add %a, %a
  %c = add %b, %b
  %a = make 1
  %r = add %a, %c
  ret %r
}",
            &Machine::dsp32(),
        )
        .unwrap();
        let ivs = build(&f);
        let by_name = |n: &str| ivs.items.iter().find(|iv| f.var(iv.var).name == n).unwrap();
        let a = by_name("a");
        let b = by_name("b");
        assert_eq!(
            ivs.ranges_of(a).len(),
            2,
            "two lives of %a: {:?}",
            ivs.ranges_of(a)
        );
        // Envelope equals the hull on both sides of the hole.
        let ra = ivs.ranges_of(a);
        assert_eq!(ra[0].0, a.start);
        assert_eq!(ra[ra.len() - 1].1, a.end + 1);
        // %b lives strictly inside %a's hole: hulls overlap, ranges
        // do not.
        assert!(a.overlaps(b), "hull prefilter must still fire");
        assert!(!ivs.overlap(a, b), "ranges must expose the hole");
        assert!(!ivs.covers(a, b.start), "%a is dead where %b starts");
        assert!(ivs.covered_len(a) < u64::from(a.end - a.start) + 1);
    }

    /// Hull precision collapses every interval to a single envelope
    /// range, reproducing the pre-PR9 interference exactly.
    #[test]
    fn hull_precision_collapses_ranges_to_the_envelope() {
        let f = parse_function(
            "func @h {
entry:
  %a = input
  %b = add %a, %a
  %a = make 1
  %r = add %a, %b
  ret %r
}",
            &Machine::dsp32(),
        )
        .unwrap();
        let ranged = build_with(&f, IntervalPrecision::Ranges);
        let hulled = build_with(&f, IntervalPrecision::Hull);
        for (rv, hv) in ranged.items.iter().zip(&hulled.items) {
            assert_eq!(rv.var, hv.var);
            assert_eq!((rv.start, rv.end), (hv.start, hv.end), "hulls agree");
            assert_eq!(hulled.ranges_of(hv), &[(hv.start, hv.end + 1)]);
            assert_eq!(hulled.covered_len(hv), u64::from(hv.end - hv.start) + 1);
        }
    }

    /// A web live across a block boundary keeps one merged range over
    /// the inter-block padding position instead of a spurious hole.
    #[test]
    fn block_boundary_padding_is_bridged() {
        let f = parse_function(
            "func @p {
entry:
  %a = input
  jump next
next:
  ret %a
}",
            &Machine::dsp32(),
        )
        .unwrap();
        let ivs = build(&f);
        let a = ivs
            .items
            .iter()
            .find(|iv| f.var(iv.var).name == "a")
            .unwrap();
        assert_eq!(
            ivs.ranges_of(a).len(),
            1,
            "padding gap must merge: {:?}",
            ivs.ranges_of(a)
        );
        assert_eq!(ivs.ranges_of(a)[0], (a.start, a.end + 1));
    }
}
