//! Interference-graph greedy-coloring fallback.
//!
//! Builds an interference graph by a sorted sweep over the hull
//! intervals (two variables interfere when their intervals overlap),
//! fixes precolored nodes first, and greedily colors the rest in
//! decreasing-degree order. Uncolorable spillable nodes are returned as
//! an eviction set, so the driver's spill loop works identically for
//! both engines.

use std::collections::HashSet;
use tossa_ir::ids::Var;
use tossa_ir::machine::{PhysReg, RegClass};
use tossa_ir::Function;

use crate::intervals::Intervals;
use crate::scan::{Blocked, ScanFail};
use crate::{pools, AllocError, Assignment};

/// One greedy-coloring round.
///
/// # Errors
/// [`ScanFail::Spill`] with the uncolorable spillable set, or
/// [`ScanFail::Hard`] on pin conflicts / unspillable pressure.
pub fn color(f: &Function, ivs: &Intervals, temps: &HashSet<Var>) -> Result<Assignment, ScanFail> {
    // Pin-conflict detection shared with the scan engine.
    let _ = Blocked::collect(ivs).map_err(ScanFail::Hard)?;

    let n = ivs.items.len();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    // Sorted sweep: items are ordered by start, so each item only needs
    // to look back at still-active predecessors.
    let mut active: Vec<usize> = Vec::new();
    for (idx, iv) in ivs.items.iter().enumerate() {
        active.retain(|&a| ivs.items[a].end >= iv.start);
        for &a in &active {
            adj[idx].push(a);
            adj[a].push(idx);
        }
        active.push(idx);
    }

    let mut asg = Assignment::new(f.num_vars());
    let mut color_of: Vec<Option<PhysReg>> = vec![None; n];
    for (idx, iv) in ivs.items.iter().enumerate() {
        if let Some(r) = iv.pre {
            color_of[idx] = Some(r);
            asg.set(iv.var, r);
        }
    }
    let mut order: Vec<usize> = (0..n).filter(|&i| ivs.items[i].pre.is_none()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(adj[i].len()));

    let mut spills: Vec<Var> = Vec::new();
    for idx in order {
        let iv = &ivs.items[idx];
        let neighbor_regs: HashSet<u8> = adj[idx]
            .iter()
            .filter_map(|&a| color_of[a].map(|r| r.0))
            .collect();
        let mut candidates: Vec<PhysReg> = Vec::new();
        if let Some(h) = iv.hint {
            if let Some(r) = asg.get(h) {
                if f.machine.reg_class(r) != RegClass::Special {
                    candidates.push(r);
                }
            }
        }
        candidates.extend(pools(f, iv.ptr_pref));
        match candidates
            .iter()
            .copied()
            .find(|r| !neighbor_regs.contains(&r.0))
        {
            Some(r) => {
                color_of[idx] = Some(r);
                asg.set(iv.var, r);
            }
            None if !temps.contains(&iv.var) => spills.push(iv.var),
            None => return Err(ScanFail::Hard(AllocError::OutOfRegisters { var: iv.var })),
        }
    }
    if spills.is_empty() {
        Ok(asg)
    } else {
        spills.sort_unstable_by_key(|v| v.index());
        spills.dedup();
        Err(ScanFail::Spill(spills))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intervals;
    use tossa_ir::machine::Machine;
    use tossa_ir::parse::parse_function;

    #[test]
    fn coloring_gives_interfering_vars_distinct_registers() {
        let f = parse_function(
            "func @c {\nentry:\n  %a, %b = input\n  %c = add %a, %b\n  %d = mul %c, %a\n  ret %d\n}",
            &Machine::dsp32(),
        )
        .unwrap();
        let ivs = intervals::build(&f);
        let asg = color(&f, &ivs, &HashSet::new()).unwrap();
        for (i, x) in ivs.items.iter().enumerate() {
            for y in &ivs.items[i + 1..] {
                if x.overlaps(y) {
                    assert_ne!(
                        asg.get(x.var),
                        asg.get(y.var),
                        "{:?} and {:?} share a register",
                        f.var(x.var).name,
                        f.var(y.var).name
                    );
                }
            }
        }
    }
}
