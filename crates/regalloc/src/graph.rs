//! Interference-graph greedy-coloring fallback.
//!
//! Builds an interference graph by a sorted sweep over the intervals
//! (two variables interfere when their *ranges* overlap — the hull is
//! only the sweep's prefilter, so webs in each other's lifetime holes
//! get no edge), fixes precolored nodes first, and greedily colors the
//! rest in decreasing-degree order. Uncolorable spillable nodes are
//! returned as an eviction set plus the partial coloring, so the
//! driver's spill loop works identically for both engines.
//!
//! Under the cost-driven policy (`costs: Some(..)`) an uncolorable node
//! may instead evict a strictly cheaper already-colored neighbor whose
//! color is uniquely held, mirroring the scan engine's cheapest-victim
//! rule.

use std::collections::HashSet;
use tossa_ir::ids::Var;
use tossa_ir::machine::{PhysReg, RegClass};
use tossa_ir::print::var_str;
use tossa_ir::Function;
use tossa_trace::provenance;

use crate::cost::SpillCosts;
use crate::intervals::Intervals;
use crate::scan::{Blocked, ScanFail, SpillReq};
use crate::{pools, AllocError, Assignment};

/// One greedy-coloring round.
///
/// # Errors
/// [`ScanFail::Spill`] with the uncolorable spillable set, or
/// [`ScanFail::Hard`] on pin conflicts / unspillable pressure.
pub fn color(
    f: &Function,
    ivs: &Intervals,
    temps: &HashSet<Var>,
    costs: Option<&SpillCosts>,
) -> Result<Assignment, ScanFail> {
    // Pin-conflict detection shared with the scan engine.
    let _ = Blocked::collect(ivs).map_err(ScanFail::Hard)?;

    let n = ivs.items.len();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    // Sorted sweep: items are ordered by start, so each item only needs
    // to look back at still-active predecessors.
    let mut active: Vec<usize> = Vec::new();
    for (idx, iv) in ivs.items.iter().enumerate() {
        active.retain(|&a| ivs.items[a].end >= iv.start);
        for &a in &active {
            if ivs.overlap(&ivs.items[a], iv) {
                adj[idx].push(a);
                adj[a].push(idx);
            }
        }
        active.push(idx);
    }

    let mut asg = Assignment::new(f.num_vars());
    let mut color_of: Vec<Option<PhysReg>> = vec![None; n];
    for (idx, iv) in ivs.items.iter().enumerate() {
        if let Some(r) = iv.pre {
            color_of[idx] = Some(r);
            asg.set(iv.var, r);
        }
    }
    let mut order: Vec<usize> = (0..n).filter(|&i| ivs.items[i].pre.is_none()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(adj[i].len()));

    let mut spills: Vec<SpillReq> = Vec::new();
    let mut spilled_nodes: HashSet<usize> = HashSet::new();
    for idx in order {
        let iv = &ivs.items[idx];
        let mut candidates: Vec<PhysReg> = Vec::new();
        if let Some(h) = iv.hint {
            if let Some(r) = asg.get(h) {
                if f.machine.reg_class(r) != RegClass::Special {
                    candidates.push(r);
                }
            }
        }
        candidates.extend(pools(f, iv.ptr_pref));
        loop {
            let neighbor_regs: HashSet<u8> = adj[idx]
                .iter()
                .filter_map(|&a| color_of[a].map(|r| r.0))
                .collect();
            if let Some(r) = candidates
                .iter()
                .copied()
                .find(|r| !neighbor_regs.contains(&r.0))
            {
                color_of[idx] = Some(r);
                asg.set(iv.var, r);
                break;
            }
            // Cost-driven: a colored spillable neighbor whose color no
            // other colored neighbor shares frees a register for us when
            // evicted. Take the cheapest such neighbor if it is strictly
            // cheaper than spilling ourselves.
            // Normalized like the scan engine: spill weight per covered
            // position of relief, so long cold neighbors are preferred
            // victims (holes relieve nothing and do not count).
            let norm = |a: usize| {
                let aiv = &ivs.items[a];
                (
                    u128::from(costs.map(|c| c.cost(aiv.var).weight).unwrap_or(0)),
                    u128::from(ivs.covered_len(aiv).max(1)),
                )
            };
            let cheaper_neighbor = costs.and_then(|_| {
                let (sw, sl) = norm(idx);
                adj[idx]
                    .iter()
                    .copied()
                    .filter(|&a| {
                        let aiv = &ivs.items[a];
                        color_of[a].is_some()
                            && aiv.pre.is_none()
                            && !temps.contains(&aiv.var)
                            && !spilled_nodes.contains(&a)
                            && adj[idx]
                                .iter()
                                .filter(|&&b| color_of[b] == color_of[a])
                                .count()
                                == 1
                    })
                    .min_by(|&a, &b| {
                        let (wa, la) = norm(a);
                        let (wb, lb) = norm(b);
                        (wa * lb)
                            .cmp(&(wb * la))
                            .then(ivs.items[b].end.cmp(&ivs.items[a].end))
                            .then(a.cmp(&b))
                    })
                    .filter(|&a| {
                        let (vw, vl) = norm(a);
                        vw * sl < sw * vl
                    })
            });
            match cheaper_neighbor {
                Some(a) => {
                    let av = ivs.items[a].var;
                    color_of[a] = None;
                    asg.clear(av);
                    spilled_nodes.insert(a);
                    spills.push(SpillReq {
                        var: av,
                        at: iv.start.max(ivs.items[a].start),
                    });
                    provenance::record(|| provenance::Kind::Spill {
                        var: var_str(f, av),
                        start: ivs.items[a].start,
                        end: ivs.items[a].end,
                        cause: costs.expect("cost mode").rationale(av),
                    });
                    // Retry coloring with the freed register.
                }
                None if !temps.contains(&iv.var) => {
                    spills.push(SpillReq {
                        var: iv.var,
                        at: iv.start,
                    });
                    spilled_nodes.insert(idx);
                    if let Some(c) = costs {
                        provenance::record(|| provenance::Kind::Spill {
                            var: var_str(f, iv.var),
                            start: iv.start,
                            end: iv.end,
                            cause: c.rationale(iv.var),
                        });
                    }
                    break;
                }
                None => return Err(ScanFail::Hard(AllocError::OutOfRegisters { var: iv.var })),
            }
        }
    }
    if spills.is_empty() {
        Ok(asg)
    } else {
        spills.sort_by_key(|s| s.var.index());
        spills.dedup_by_key(|s| s.var);
        Err(ScanFail::Spill {
            reqs: spills,
            partial: asg,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intervals;
    use tossa_ir::machine::Machine;
    use tossa_ir::parse::parse_function;

    #[test]
    fn coloring_gives_interfering_vars_distinct_registers() {
        let f = parse_function(
            "func @c {\nentry:\n  %a, %b = input\n  %c = add %a, %b\n  %d = mul %c, %a\n  ret %d\n}",
            &Machine::dsp32(),
        )
        .unwrap();
        let ivs = intervals::build(&f);
        let asg = color(&f, &ivs, &HashSet::new(), None).unwrap();
        for (i, x) in ivs.items.iter().enumerate() {
            for y in &ivs.items[i + 1..] {
                if ivs.overlap(x, y) {
                    assert_ne!(
                        asg.get(x.var),
                        asg.get(y.var),
                        "{:?} and {:?} share a register",
                        f.var(x.var).name,
                        f.var(y.var).name
                    );
                }
            }
        }
    }
}
