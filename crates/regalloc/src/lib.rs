//! # tossa-regalloc — register allocation on the DSP32 model
//!
//! The paper's whole argument for pinning-based coalescing is that fewer
//! φ-repair moves and constraint-aware pinning produce better code
//! *after* register allocation. This crate closes that loop: it maps
//! every variable of an out-of-SSA function onto a physical DSP32
//! resource (`R0`–`R15`, `P0`–`P3`, `SP`/`LR` only by precoloring),
//! spilling through the stack-slot opcodes
//! ([`tossa_ir::Opcode::SpillStore`] / [`tossa_ir::Opcode::SpillLoad`])
//! when the register file is exhausted.
//!
//! Pipeline:
//!
//! 1. [`prepare`] — hull live intervals from the worklist liveness, then
//!    liveness-driven linear scan ([`Strategy::LinearScan`]) with
//!    iterative spill-everywhere rewriting; when scan cannot converge,
//!    an interference-graph greedy-coloring fallback
//!    ([`Strategy::Graph`]) takes over. Pre-existing register identities
//!    (`VarData::reg`, the out-of-SSA pinning results: ABI argument and
//!    return registers, `SP`, predicate/pointer webs) are preserved
//!    verbatim as precolored intervals.
//! 2. [`verify_allocation`] — independent recheck: no two
//!    simultaneously-live variables share a register, precolored
//!    variables kept their register, spill slots are written before they
//!    are read, every used variable has a definition. Violations are
//!    structured [`AllocError`]s (the checked-mode contract).
//! 3. [`finish`] — rewrites every variable to the canonical
//!    register-identity variable of its assigned register, producing a
//!    function the interpreter executes directly (wrong assignments
//!    surface as differential divergences, because distinct values
//!    merged onto one register clobber each other).
//!
//! [`allocate`] runs all three. Per-function [`AllocStats`] report
//! registers used, spills, reloads, and the moves surviving allocation —
//! the end-to-end quantity the paper's §5 move counts proxy for.

#![warn(missing_docs)]

pub mod cost;
pub mod graph;
pub mod intervals;
pub mod scan;
pub mod spill;
pub mod split;
pub mod verify;

use std::collections::{HashMap, HashSet};
use std::fmt;
use tossa_ir::ids::{Block, Var};
use tossa_ir::machine::{PhysReg, RegClass};
use tossa_ir::Function;
use tossa_trace::Counter;

pub use intervals::IntervalPrecision;
pub use verify::verify_allocation;

/// Which assignment engine produced (or should produce) the allocation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Strategy {
    /// Linear scan first; fall back to graph coloring when scan fails to
    /// converge within [`AllocOptions::max_rounds`].
    #[default]
    Auto,
    /// Linear scan only; error when it cannot converge.
    LinearScan,
    /// Interference-graph greedy coloring only.
    Graph,
}

/// How eviction victims are chosen and rewritten.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SpillPolicy {
    /// The PR4 policy: evict the furthest-ending spillable interval and
    /// rewrite it through a slot at every occurrence. Cost-blind.
    Everywhere,
    /// Cost-driven: evict the candidate with the lowest loop-weighted
    /// spill cost ([`cost::SpillCosts`]); rematerialize single-`make`
    /// webs instead of reloading them; split live ranges at loop-region
    /// boundaries when the pressure point lies outside a hot loop.
    #[default]
    CostDriven,
}

/// Allocator configuration.
#[derive(Clone, Debug)]
pub struct AllocOptions {
    /// Assignment engine selection.
    pub strategy: Strategy,
    /// Spill-and-retry rounds each engine may take before giving up.
    pub max_rounds: usize,
    /// Run [`verify_allocation`] before rewriting to physical form.
    pub verify: bool,
    /// Victim selection and spill-rewrite policy.
    pub spill_policy: SpillPolicy,
    /// Liveness model for interference: per-range intervals with
    /// lifetime holes (default) or the pre-PR9 `[min, max]` hulls.
    pub precision: IntervalPrecision,
}

impl Default for AllocOptions {
    fn default() -> Self {
        AllocOptions {
            strategy: Strategy::Auto,
            max_rounds: 8,
            verify: true,
            spill_policy: SpillPolicy::default(),
            precision: IntervalPrecision::default(),
        }
    }
}

/// Per-function allocation statistics (the end-to-end table columns).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Distinct physical registers used by the final assignment.
    pub regs_used: usize,
    /// Variables evicted to the spill frame (== stack slots allocated).
    pub spilled_vars: usize,
    /// `spillld` instructions inserted.
    pub reloads: usize,
    /// `spillst` instructions inserted.
    pub stores: usize,
    /// `mov`s surviving allocation (self-moves under the assignment
    /// vanish and are not counted).
    pub moves_after: usize,
    /// Whether the interference-graph fallback produced the assignment.
    pub fallback: bool,
    /// Spill-and-retry rounds taken.
    pub rounds: usize,
    /// `make` defs re-issued by rematerialization (no slot, no memory
    /// traffic; not counted in `spilled_vars`).
    pub remats: usize,
    /// Webs split at a loop-region boundary instead of spilled
    /// everywhere (each consumes one slot and counts in `spilled_vars`).
    pub splits: usize,
    /// Split sub-webs rescued by the second-chance pass: evicted during
    /// a scan round but re-assigned a register left free across their
    /// ranges once the round's full assignment was known (no spill code
    /// at all).
    pub second_chances: usize,
}

impl AllocStats {
    /// Spills plus reloads plus surviving moves: the scalar the
    /// end-to-end comparison tables rank experiments by.
    pub fn spill_move_total(&self) -> usize {
        self.stores + self.reloads + self.moves_after
    }

    /// Accumulates `other` (suite-level folding).
    pub fn add_assign(&mut self, other: &AllocStats) {
        self.regs_used = self.regs_used.max(other.regs_used);
        self.spilled_vars += other.spilled_vars;
        self.reloads += other.reloads;
        self.stores += other.stores;
        self.moves_after += other.moves_after;
        self.fallback |= other.fallback;
        self.rounds = self.rounds.max(other.rounds);
        self.remats += other.remats;
        self.splits += other.splits;
        self.second_chances += other.second_chances;
    }
}

/// A structured allocation failure (checked-mode contract: misallocations
/// become errors, never silent miscompiles).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AllocError {
    /// The input still holds a φ; allocation runs after out-of-SSA only.
    ResidualPhi {
        /// The block holding the φ.
        block: Block,
    },
    /// Two precolored variables with overlapping intervals carry the
    /// same register — an upstream pinning bug the allocator cannot fix.
    PinConflict {
        /// The register both variables are precolored to.
        reg: PhysReg,
        /// First variable.
        a: Var,
        /// Second variable.
        b: Var,
    },
    /// Neither engine could assign `var` within the round budget.
    OutOfRegisters {
        /// The unassignable variable.
        var: Var,
    },
    /// A variable appears in the code but received no register.
    Unassigned {
        /// The unassigned variable.
        var: Var,
    },
    /// A precolored variable was moved off its pinned register.
    PinClobbered {
        /// The variable.
        var: Var,
        /// The register it is pinned to.
        pinned: PhysReg,
        /// The register the assignment gave it.
        got: PhysReg,
    },
    /// Two simultaneously-live variables share one register.
    RegisterOverlap {
        /// The shared register.
        reg: PhysReg,
        /// First variable.
        a: Var,
        /// Second variable.
        b: Var,
    },
    /// A `spillld` can read a slot before any `spillst` wrote it.
    UnpairedSlot {
        /// The stack-slot index.
        slot: i64,
    },
    /// A variable is used but never defined (e.g. a dropped reload).
    UndefinedUse {
        /// The variable.
        var: Var,
    },
}

impl AllocError {
    /// Stable classification key for this error, independent of the
    /// variables/registers/blocks baked into the instance. Replay
    /// tooling (the compile service's failure reports, the reducer's
    /// "same structured error" predicate) compares keys, not Display
    /// strings, so shrinking a function is allowed to change *which*
    /// variable trips the invariant as long as the invariant class is
    /// preserved.
    pub fn class_key(&self) -> &'static str {
        match self {
            AllocError::ResidualPhi { .. } => "alloc.residual_phi",
            AllocError::PinConflict { .. } => "alloc.pin_conflict",
            AllocError::OutOfRegisters { .. } => "alloc.out_of_registers",
            AllocError::Unassigned { .. } => "alloc.unassigned",
            AllocError::PinClobbered { .. } => "alloc.pin_clobbered",
            AllocError::RegisterOverlap { .. } => "alloc.register_overlap",
            AllocError::UnpairedSlot { .. } => "alloc.unpaired_slot",
            AllocError::UndefinedUse { .. } => "alloc.undefined_use",
        }
    }
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::ResidualPhi { block } => {
                write!(
                    f,
                    "block {block} still holds a φ; allocate after out-of-SSA"
                )
            }
            AllocError::PinConflict { reg, a, b } => {
                write!(
                    f,
                    "{a} and {b} are both precolored to register {reg:?} and overlap"
                )
            }
            AllocError::OutOfRegisters { var } => {
                write!(f, "no register assignable to {var} within the round budget")
            }
            AllocError::Unassigned { var } => write!(f, "{var} received no register"),
            AllocError::PinClobbered { var, pinned, got } => {
                write!(f, "{var} is pinned to {pinned:?} but was assigned {got:?}")
            }
            AllocError::RegisterOverlap { reg, a, b } => {
                write!(f, "{a} and {b} are simultaneously live in register {reg:?}")
            }
            AllocError::UnpairedSlot { slot } => {
                write!(f, "spill slot {slot} can be reloaded before any store")
            }
            AllocError::UndefinedUse { var } => {
                write!(f, "{var} is used but never defined")
            }
        }
    }
}

impl std::error::Error for AllocError {}

/// The register map produced by an assignment engine, indexed by [`Var`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Assignment {
    regs: Vec<Option<PhysReg>>,
}

impl Assignment {
    /// An empty assignment sized for `num_vars` variables.
    pub fn new(num_vars: usize) -> Assignment {
        Assignment {
            regs: vec![None; num_vars],
        }
    }

    /// The register assigned to `v`, if any.
    pub fn get(&self, v: Var) -> Option<PhysReg> {
        self.regs.get(v.index()).copied().flatten()
    }

    /// Sets (or, for fault injection, overrides) the register of `v`.
    pub fn set(&mut self, v: Var, r: PhysReg) {
        if self.regs.len() <= v.index() {
            self.regs.resize(v.index() + 1, None);
        }
        self.regs[v.index()] = Some(r);
    }

    /// Removes the register of `v` (eviction: the partial assignment a
    /// failed round reports must not claim registers for its victims).
    pub fn clear(&mut self, v: Var) {
        if let Some(slot) = self.regs.get_mut(v.index()) {
            *slot = None;
        }
    }

    /// Distinct registers in use.
    pub fn regs_used(&self) -> usize {
        let mut seen: Vec<PhysReg> = self.regs.iter().copied().flatten().collect();
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    }
}

/// The state between assignment and the physical rewrite: the
/// fault-injection point of checked mode.
#[derive(Clone, Debug)]
pub struct Prepared {
    /// The register map (complete over every variable that appears).
    pub assignment: Assignment,
    /// Statistics so far (spills, rounds, engine used).
    pub stats: AllocStats,
}

/// Runs assignment and spill insertion, mutating `f` with spill code but
/// leaving it in virtual-register form.
///
/// # Errors
/// [`AllocError::ResidualPhi`] on φ-bearing input, [`AllocError::PinConflict`]
/// on contradictory precoloring, [`AllocError::OutOfRegisters`] when the
/// round budget is exhausted.
pub fn prepare(f: &mut Function, opts: &AllocOptions) -> Result<Prepared, AllocError> {
    for (b, i) in f.all_insts() {
        if f.inst(i).is_phi() {
            return Err(AllocError::ResidualPhi { block: b });
        }
    }
    let mut stats = AllocStats::default();
    let mut next_slot: i64 = 0;
    let mut temps: HashSet<Var> = HashSet::new();
    let engines: &[(Strategy, bool)] = match opts.strategy {
        Strategy::Auto => &[(Strategy::LinearScan, false), (Strategy::Graph, true)],
        Strategy::LinearScan => &[(Strategy::LinearScan, false)],
        Strategy::Graph => &[(Strategy::Graph, false)],
    };
    let mut last_err = None;
    // Webs that already went through rematerialization or splitting:
    // if they come back as victims the fallback is spill-everywhere,
    // which guarantees the loop keeps shrinking long intervals.
    let mut no_split: HashSet<Var> = HashSet::new();
    let mut remat_done: HashSet<Var> = HashSet::new();
    // Hot sub-webs created by region splitting: when one comes back as
    // a victim, the second-chance pass probes the round's partial
    // assignment for a register before the terminal spill-everywhere
    // fallback.
    let mut split_webs: HashSet<Var> = HashSet::new();
    // One analysis manager for every round of every engine: spill
    // rewriting invalidates instructions only, keeping the CFG hot.
    let mut cache = tossa_analysis::AnalysisCache::new();
    for &(engine, is_fallback) in engines {
        for _ in 0..opts.max_rounds.max(1) {
            stats.rounds += 1;
            let ivs = intervals::build_cached_with(f, &mut cache, opts.precision);
            // Round-scoped analyses for the cost-driven policy, pulled
            // from the cache *before* any rewrite mutates `f`.
            let round = match opts.spill_policy {
                SpillPolicy::Everywhere => None,
                SpillPolicy::CostDriven => {
                    let cfg = cache.cfg(f);
                    let live = cache.liveness(f);
                    let loops = cache.loops(f);
                    let costs = cost::SpillCosts::compute(f, &loops);
                    Some((cfg, live, loops, costs))
                }
            };
            let costs = round.as_ref().map(|(_, _, _, c)| c);
            let outcome = match engine {
                Strategy::Graph => graph::color(f, &ivs, &temps, costs),
                _ => scan::scan(f, &ivs, &temps, costs),
            };
            match outcome {
                Ok(assignment) => {
                    stats.fallback = is_fallback;
                    if is_fallback {
                        tossa_trace::count(Counter::AllocFallbacks, 1);
                    }
                    return Ok(Prepared { assignment, stats });
                }
                Err(scan::ScanFail::Spill { reqs, partial }) => {
                    // Second chance: the engines batch a whole round's
                    // evictions, so by the end of the round the pressure
                    // that evicted a web is often over-relieved. A split
                    // sub-web back on the victim list would fall
                    // terminally to spill-everywhere — probe the round's
                    // finished partial assignment for a register free
                    // across its ranges first. The rescue stands only
                    // when *every* victim of the round is rescued (the
                    // assignment is then complete); otherwise the other
                    // victims force a rewrite-and-rescan anyway and the
                    // rescued webs simply skip this round's spill code.
                    let mut rescue_asg = partial;
                    let mut rescues: Vec<(Var, PhysReg)> = Vec::new();
                    if reqs.iter().any(|r| split_webs.contains(&r.var)) {
                        if let Ok(blocked) = scan::Blocked::collect(&ivs) {
                            for req in reqs.iter().filter(|r| split_webs.contains(&r.var)) {
                                let Some(iv) = ivs.find(req.var) else {
                                    continue;
                                };
                                let free = pools(f, iv.ptr_pref).into_iter().find(|&r| {
                                    !blocked.conflicts(&ivs, r, iv)
                                        && !ivs.items.iter().any(|other| {
                                            other.var != iv.var
                                                && rescue_asg.get(other.var) == Some(r)
                                                && ivs.overlap(other, iv)
                                        })
                                });
                                if let Some(r) = free {
                                    rescue_asg.set(iv.var, r);
                                    rescues.push((iv.var, r));
                                }
                            }
                        }
                    }
                    if !rescues.is_empty() && rescues.len() == reqs.len() {
                        for &(v, r) in &rescues {
                            let cause = format!("second-chance:{}", f.machine.reg_name(r));
                            record_spill_cause(f, &ivs, v, &cause);
                        }
                        stats.second_chances += rescues.len();
                        stats.fallback = is_fallback;
                        if is_fallback {
                            tossa_trace::count(Counter::AllocFallbacks, 1);
                        }
                        return Ok(Prepared {
                            assignment: rescue_asg,
                            stats,
                        });
                    }
                    let rescued: HashSet<Var> = rescues.into_iter().map(|(v, _)| v).collect();
                    // Disposition per victim: rematerialize, split, or
                    // spill everywhere. Remat and split run first so the
                    // batched everywhere-rewrite sees the final shape.
                    let mut everywhere: Vec<(Var, i64)> = Vec::new();
                    for req in &reqs {
                        let v = req.var;
                        if rescued.contains(&v) {
                            continue;
                        }
                        if let Some((cfg, live, loops, costs)) = &round {
                            if let Some(imm) = costs.remat_imm(v) {
                                if !remat_done.contains(&v) {
                                    remat_done.insert(v);
                                    record_spill_cause(f, &ivs, v, "remat:make");
                                    let n = spill::rematerialize(f, v, imm, &mut temps);
                                    stats.remats += n;
                                    continue;
                                }
                            }
                            if let Some(out) = split::try_split(
                                f,
                                v,
                                req.at,
                                &ivs,
                                loops,
                                live,
                                cfg,
                                costs,
                                next_slot,
                                &mut temps,
                                &mut no_split,
                            ) {
                                split_webs.insert(out.hot_var);
                                next_slot += 1;
                                stats.splits += 1;
                                stats.spilled_vars += 1;
                                stats.stores += out.stores;
                                stats.reloads += out.reloads;
                                tossa_trace::count(Counter::AllocSpilledVars, 1);
                                tossa_trace::count(Counter::AllocStores, out.stores as u64);
                                tossa_trace::count(Counter::AllocReloads, out.reloads as u64);
                                continue;
                            }
                        }
                        everywhere.push((v, next_slot));
                        next_slot += 1;
                    }
                    if !everywhere.is_empty() {
                        let (st, rl) = spill::rewrite_spills_with_slots(f, &everywhere, &mut temps);
                        stats.spilled_vars += everywhere.len();
                        stats.stores += st;
                        stats.reloads += rl;
                        tossa_trace::count(Counter::AllocSpilledVars, everywhere.len() as u64);
                        tossa_trace::count(Counter::AllocStores, st as u64);
                        tossa_trace::count(Counter::AllocReloads, rl as u64);
                    }
                    cache.invalidate_instructions();
                }
                Err(scan::ScanFail::Hard(e)) => {
                    if matches!(e, AllocError::PinConflict { .. }) {
                        return Err(e);
                    }
                    last_err = Some(e);
                    break;
                }
            }
        }
    }
    Err(last_err.unwrap_or(AllocError::OutOfRegisters { var: Var::new(0) }))
}

/// Records a `Spill` provenance entry for `v` with the given cause,
/// using its hull interval for the range.
fn record_spill_cause(f: &Function, ivs: &intervals::Intervals, v: Var, cause: &str) {
    tossa_trace::provenance::record(|| {
        let (start, end) = ivs
            .items
            .iter()
            .find(|iv| iv.var == v)
            .map(|iv| (iv.start, iv.end))
            .unwrap_or((0, 0));
        tossa_trace::provenance::Kind::Spill {
            var: tossa_ir::print::var_str(f, v),
            start,
            end,
            cause: cause.to_string(),
        }
    });
}

/// Rewrites `f` into physical form: every variable becomes the canonical
/// register-identity variable of its assigned register. Returns the
/// completed statistics.
pub fn finish(f: &mut Function, prep: Prepared) -> AllocStats {
    let mut stats = prep.stats;
    let asg = &prep.assignment;
    // Canonical variable per register: prefer an existing reg-identity
    // variable assigned to its own register, so SP/LR keep their
    // interpreter-visible identity.
    let mut canon: HashMap<u8, Var> = HashMap::new();
    for v in f.vars() {
        if let (Some(r), Some(have)) = (asg.get(v), f.var(v).reg) {
            if r == have {
                canon.entry(r.0).or_insert(v);
            }
        }
    }
    let mut used: Vec<PhysReg> = Vec::new();
    for (_, i) in f.all_insts().collect::<Vec<_>>() {
        let vars: Vec<Var> = f.inst(i).operands().map(|o| o.var).collect();
        for v in vars {
            if let Some(r) = asg.get(v) {
                used.push(r);
            }
        }
    }
    used.sort_unstable();
    used.dedup();
    stats.regs_used = used.len();
    for r in used {
        if let std::collections::hash_map::Entry::Vacant(e) = canon.entry(r.0) {
            let name = f.machine.reg_name(r).to_string();
            let v = f.new_var(name);
            f.var_mut(v).reg = Some(r);
            e.insert(v);
        }
    }
    f.rewrite_vars(|v| match asg.get(v) {
        Some(r) => canon[&r.0],
        None => v,
    });
    stats.moves_after = f.count_moves();
    tossa_trace::count(Counter::AllocMovesAfter, stats.moves_after as u64);
    stats
}

/// Full allocation: [`prepare`], optional [`verify_allocation`],
/// [`finish`].
///
/// # Errors
/// Propagates every [`AllocError`] of the two phases.
pub fn allocate(f: &mut Function, opts: &AllocOptions) -> Result<AllocStats, AllocError> {
    tossa_trace::span("alloc", || {
        let prep = prepare(f, opts)?;
        if opts.verify {
            verify_allocation(f, &prep.assignment)?;
        }
        Ok(finish(f, prep))
    })
}

/// Registers an unpinned variable may be assigned to, in preference
/// order: `Special`-class registers are reserved for precoloring.
pub(crate) fn pools(f: &Function, ptr_first: bool) -> Vec<PhysReg> {
    let mut gpr = Vec::new();
    let mut ptr = Vec::new();
    for r in f.machine.regs() {
        match f.machine.reg_class(r) {
            RegClass::Gpr => gpr.push(r),
            RegClass::Ptr => ptr.push(r),
            RegClass::Special => {}
        }
    }
    if ptr_first {
        ptr.extend(gpr);
        ptr
    } else {
        gpr.extend(ptr);
        gpr
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tossa_ir::interp;
    use tossa_ir::machine::Machine;
    use tossa_ir::parse::parse_function;

    fn alloc_text(text: &str, opts: &AllocOptions) -> (Function, AllocStats) {
        let mut f = parse_function(text, &Machine::dsp32()).unwrap();
        f.validate().unwrap();
        let stats = allocate(&mut f, opts).unwrap();
        f.validate().unwrap();
        (f, stats)
    }

    #[test]
    fn straightline_allocates_without_spills() {
        let (f, stats) = alloc_text(
            "func @s {\nentry:\n  %a, %b = input\n  %c = add %a, %b\n  ret %c\n}",
            &AllocOptions::default(),
        );
        assert_eq!(stats.spilled_vars, 0);
        assert!(stats.regs_used >= 2, "{stats:?}\n{f}");
        assert_eq!(interp::run(&f, &[3, 4], 100).unwrap().outputs, vec![7]);
    }

    #[test]
    fn precolored_identities_survive() {
        let text = "func @p {\nentry:\n  R0, %b = input\n  %c = add R0, %b\n  ret %c\n}";
        let (f, _) = alloc_text(text, &AllocOptions::default());
        // The R0 variable still prints as R0.
        assert!(f.to_string().contains("R0"), "{f}");
        assert_eq!(interp::run(&f, &[5, 6], 100).unwrap().outputs, vec![11]);
    }

    #[test]
    fn mov_hints_erase_copies() {
        let (f, stats) = alloc_text(
            "func @m {\nentry:\n  %a = input\n  %b = mov %a\n  ret %b\n}",
            &AllocOptions::default(),
        );
        assert_eq!(stats.moves_after, 0, "{f}");
        assert_eq!(interp::run(&f, &[9], 100).unwrap().outputs, vec![9]);
    }

    #[test]
    fn graph_strategy_matches_scan_semantics() {
        let text = "
func @g {
entry:
  %n = input
  %z = make 0
  jump head
head:
  %c = cmplt %z, %n
  br %c, body, exit
body:
  %z = addi %z, 1
  jump head
exit:
  ret %z
}";
        for strategy in [Strategy::LinearScan, Strategy::Graph] {
            let opts = AllocOptions {
                strategy,
                ..Default::default()
            };
            let (f, _) = alloc_text(text, &opts);
            assert_eq!(
                interp::run(&f, &[4], 1000).unwrap().outputs,
                vec![4],
                "{strategy:?}\n{f}"
            );
        }
    }

    #[test]
    fn residual_phi_is_an_error() {
        let text = "
func @r {
entry:
  %a = make 1
  jump m
m:
  %x = phi [entry: %a]
  ret %x
}";
        let mut f = parse_function(text, &Machine::dsp32()).unwrap();
        let e = allocate(&mut f, &AllocOptions::default()).unwrap_err();
        assert!(matches!(e, AllocError::ResidualPhi { .. }), "{e}");
    }

    #[test]
    fn high_pressure_spills_and_stays_correct() {
        // 24 simultaneously-live values exceed the 20 allocatable
        // registers, forcing spills; the sum must still be exact.
        let mut text = String::from("func @hp {\nentry:\n  %i = input\n");
        for k in 0..24 {
            text.push_str(&format!("  %v{k} = addi %i, {k}\n"));
        }
        text.push_str("  %s = make 0\n");
        for k in 0..24 {
            text.push_str(&format!("  %s = add %s, %v{k}\n"));
        }
        text.push_str("  ret %s\n}\n");
        let (f, stats) = alloc_text(&text, &AllocOptions::default());
        assert!(stats.spilled_vars > 0, "{stats:?}");
        assert!(stats.stores > 0 && stats.reloads > 0);
        let expected: i64 = (0..24).map(|k| 10 + k).sum();
        assert_eq!(
            interp::run(&f, &[10], 10_000).unwrap().outputs,
            vec![expected],
            "{f}"
        );
    }

    #[test]
    fn allocated_form_roundtrips_through_text() {
        let (f, _) = alloc_text(
            "func @rt {\nentry:\n  %a, %b = input\n  %c = add %a, %b\n  %d = mul %c, %a\n  ret %d\n}",
            &AllocOptions::default(),
        );
        let printed = f.to_string();
        let f2 = parse_function(&printed, &Machine::dsp32()).unwrap();
        assert_eq!(
            interp::run(&f, &[2, 5], 100).unwrap().outputs,
            interp::run(&f2, &[2, 5], 100).unwrap().outputs,
        );
    }
}
