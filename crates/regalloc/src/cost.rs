//! Loop-depth-weighted spill costs and rematerialization candidates.
//!
//! The cost of spilling a web is what the spill code would execute: one
//! memory operation per occurrence, weighted by the Table 5 execution
//! frequency of the block holding it (`5^depth` from
//! [`tossa_analysis::LoopInfo`]). The cost-driven policy evicts the
//! *cheapest* candidate at each pressure point, so hot loop-carried webs
//! keep their registers while cold webs take the slots — the opposite of
//! the PR4 furthest-end heuristic, which is cost-blind.
//!
//! A web whose single definition is a pure constant builder
//! ([`tossa_ir::Opcode::Make`]: immediate in, no uses, no side effects)
//! is *rematerializable*: re-issuing the `make` at each use is never
//! worse than a `spillld` and needs no stack slot at all.

use std::collections::HashMap;
use tossa_analysis::LoopInfo;
use tossa_ir::ids::{Block, Var};
use tossa_ir::{Function, Opcode};

/// One web's spill cost.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VarCost {
    /// Σ over operand occurrences of `5^depth(block)`, saturating.
    pub weight: u64,
    /// Maximum loop depth over the web's occurrences.
    pub depth: u32,
    /// Occurrence count (uses + defs).
    pub occurrences: u32,
}

/// Per-variable spill costs plus rematerialization candidates for one
/// spill round.
#[derive(Clone, Debug, Default)]
pub struct SpillCosts {
    costs: Vec<VarCost>,
    /// `Some(imm)` when the variable's single def is `make imm` and the
    /// variable is unpinned — re-issue the def instead of reloading.
    remat_imm: Vec<Option<i64>>,
    /// Blocks holding at least one occurrence of each variable.
    occ_blocks: HashMap<Var, Vec<Block>>,
}

impl SpillCosts {
    /// Computes costs over the current (pre-rewrite) function body.
    pub fn compute(f: &Function, loops: &LoopInfo) -> SpillCosts {
        let n = f.num_vars();
        let mut costs = vec![VarCost::default(); n];
        let mut def_count = vec![0u32; n];
        let mut remat_imm: Vec<Option<i64>> = vec![None; n];
        let mut occ_blocks: HashMap<Var, Vec<Block>> = HashMap::new();
        for (b, i) in f.all_insts() {
            let w = loops.weight(b);
            let d = loops.depth(b);
            let inst = f.inst(i);
            for o in inst.operands() {
                let c = &mut costs[o.var.index()];
                c.weight = c.weight.saturating_add(w);
                c.depth = c.depth.max(d);
                c.occurrences += 1;
                let blocks = occ_blocks.entry(o.var).or_default();
                if !blocks.contains(&b) {
                    blocks.push(b);
                }
            }
            for o in inst.defs {
                let v = o.var;
                def_count[v.index()] += 1;
                remat_imm[v.index()] = match def_count[v.index()] {
                    1 if inst.opcode == Opcode::Make && f.var(v).reg.is_none() => Some(inst.imm),
                    _ => None,
                };
            }
        }
        SpillCosts {
            costs,
            remat_imm,
            occ_blocks,
        }
    }

    /// The cost of spilling `v`.
    pub fn cost(&self, v: Var) -> VarCost {
        self.costs.get(v.index()).copied().unwrap_or_default()
    }

    /// The `make` immediate to re-issue for `v`, when `v` is
    /// rematerializable.
    pub fn remat_imm(&self, v: Var) -> Option<i64> {
        self.remat_imm.get(v.index()).copied().flatten()
    }

    /// Blocks holding an occurrence of `v` (insertion order).
    pub fn occurrence_blocks(&self, v: Var) -> &[Block] {
        self.occ_blocks.get(&v).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The `cost:` provenance rationale for spilling `v` (the grammar of
    /// [`tossa_trace::provenance::Kind::Spill`] under the cost-driven
    /// policy).
    pub fn rationale(&self, v: Var) -> String {
        let c = self.cost(v);
        format!("cost:weight={},depth={}", c.weight, c.depth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tossa_analysis::DomTree;
    use tossa_ir::cfg::Cfg;
    use tossa_ir::machine::Machine;
    use tossa_ir::parse::parse_function;

    fn costs_of(text: &str) -> (Function, SpillCosts) {
        let f = parse_function(text, &Machine::dsp32()).unwrap();
        let cfg = Cfg::compute(&f);
        let dt = DomTree::compute(&f, &cfg);
        let loops = LoopInfo::compute(&f, &cfg, &dt);
        let costs = SpillCosts::compute(&f, &loops);
        (f, costs)
    }

    fn var(f: &Function, name: &str) -> Var {
        f.vars().find(|&v| f.var(v).name == name).unwrap()
    }

    #[test]
    fn loop_occurrences_weigh_five_to_the_depth() {
        let (f, costs) = costs_of(
            "func @w {
entry:
  %n = input
  %z = make 0
  jump head
head:
  %c = cmplt %z, %n
  br %c, body, exit
body:
  %z = addi %z, 1
  jump head
exit:
  ret %z
}",
        );
        let z = costs.cost(var(&f, "z"));
        let n = costs.cost(var(&f, "n"));
        // %z: def in entry (1) + use in head (5) + def+use in body (10)
        // + use in exit (1).
        assert_eq!(z.weight, 17, "{z:?}");
        assert_eq!(z.depth, 1);
        // %n: def in entry (1) + use in head (5).
        assert_eq!(n.weight, 6, "{n:?}");
        assert!(z.weight > n.weight, "loop-carried web must cost more");
    }

    #[test]
    fn single_make_def_is_rematerializable() {
        let (f, costs) = costs_of(
            "func @r {\nentry:\n  %k = make 42\n  %a = input\n  %s = add %a, %k\n  ret %s\n}",
        );
        assert_eq!(costs.remat_imm(var(&f, "k")), Some(42));
        assert_eq!(costs.remat_imm(var(&f, "a")), None);
        assert_eq!(costs.remat_imm(var(&f, "s")), None);
    }

    #[test]
    fn redefined_make_is_not_rematerializable() {
        let (f, costs) = costs_of("func @m {\nentry:\n  %k = make 1\n  %k = make 2\n  ret %k\n}");
        assert_eq!(costs.remat_imm(var(&f, "k")), None);
    }
}
