//! Spill rewriting through the stack-slot model.
//!
//! Three rewrites live here, all driven by the spill loop in
//! [`crate::prepare`]:
//!
//! - **Spill-everywhere** ([`rewrite_spills`] / [`rewrite_spills_with_slots`]):
//!   each evicted variable gets one stack slot for the whole function.
//!   Every instruction that reads it gets a fresh reload temporary
//!   (`tmp = spillld slot`) inserted just before it; every instruction
//!   that writes it gets a fresh store temporary followed by
//!   `spillst tmp, slot`. Temporaries live for exactly one instruction,
//!   are recorded as unspillable, and shrink register pressure at every
//!   original program point — which is what makes the spill-and-rescan
//!   loop terminate.
//! - **Region-filtered spill** ([`rewrite_spills_outside`]): the same
//!   rewrite restricted to blocks outside a loop region; the
//!   live-range-splitting layer ([`crate::split`]) uses it for the cold
//!   side of a split web.
//! - **Rematerialization** ([`rematerialize`]): a web whose single def is
//!   a pure `make` is re-issued before each use instead of reloaded, and
//!   its original def deleted — no slot, no memory traffic.

use std::collections::{HashMap, HashSet};
use tossa_ir::ids::{Block, Var};
use tossa_ir::instr::{InstData, Operand};
use tossa_ir::{Function, Opcode};

/// Rewrites `vars` through freshly assigned spill slots. Returns
/// `(stores, reloads)` inserted. `next_slot` persists across rounds so
/// slots never collide; the fresh temporaries are added to `temps`.
pub fn rewrite_spills(
    f: &mut Function,
    vars: &[Var],
    next_slot: &mut i64,
    temps: &mut HashSet<Var>,
) -> (usize, usize) {
    let pairs: Vec<(Var, i64)> = vars
        .iter()
        .map(|&v| {
            let s = *next_slot;
            *next_slot += 1;
            (v, s)
        })
        .collect();
    rewrite_spills_with_slots(f, &pairs, temps)
}

/// [`rewrite_spills`] with caller-assigned slots (the cost-driven driver
/// assigns slots up front so splitting and everywhere-spilling share one
/// slot namespace).
pub fn rewrite_spills_with_slots(
    f: &mut Function,
    pairs: &[(Var, i64)],
    temps: &mut HashSet<Var>,
) -> (usize, usize) {
    rewrite_filtered(f, pairs, temps, &|_| false)
}

/// Spill-everywhere restricted to blocks *outside* `region`: the cold
/// side of a live-range split. Occurrences inside `region` are left
/// untouched (the split renamed them to the hot sub-web already).
pub fn rewrite_spills_outside(
    f: &mut Function,
    pairs: &[(Var, i64)],
    temps: &mut HashSet<Var>,
    region: &[Block],
) -> (usize, usize) {
    rewrite_filtered(f, pairs, temps, &|b| region.contains(&b))
}

fn rewrite_filtered(
    f: &mut Function,
    pairs: &[(Var, i64)],
    temps: &mut HashSet<Var>,
    skip: &dyn Fn(Block) -> bool,
) -> (usize, usize) {
    let slot_of: HashMap<Var, i64> = pairs.iter().copied().collect();
    let mut stores = 0usize;
    let mut reloads = 0usize;

    let blocks: Vec<_> = f.blocks().collect();
    for b in blocks {
        if skip(b) {
            continue;
        }
        let old: Vec<_> = f.block_insts(b).collect();
        let mut new_list = Vec::with_capacity(old.len());
        for i in old {
            // One reload temp per distinct spilled variable used here.
            let used: Vec<Var> = {
                let mut seen = Vec::new();
                for o in f.inst(i).uses {
                    if slot_of.contains_key(&o.var) && !seen.contains(&o.var) {
                        seen.push(o.var);
                    }
                }
                seen
            };
            let mut reload_tmp: HashMap<Var, Var> = HashMap::new();
            for v in used {
                let slot = slot_of[&v];
                let name = format!("{}.r", f.var(v).name);
                let tmp = f.new_var(name);
                temps.insert(tmp);
                let ld = InstData::new(Opcode::SpillLoad)
                    .with_defs(vec![Operand::new(tmp)])
                    .with_imm(slot);
                new_list.push(f.alloc_inst(ld));
                reload_tmp.insert(v, tmp);
                reloads += 1;
            }
            let mut store_after: Vec<(Var, i64)> = Vec::new();
            {
                let inst = f.inst_mut(i);
                for o in inst.uses.iter_mut() {
                    if let Some(&tmp) = reload_tmp.get(&o.var) {
                        o.var = tmp;
                    }
                }
                for o in inst.defs.iter_mut() {
                    if let Some(&slot) = slot_of.get(&o.var) {
                        store_after.push((o.var, slot));
                    }
                }
            }
            // Fresh store temp per spilled def (defs are distinct vars
            // within one instruction after validation).
            let mut def_tmp: HashMap<Var, Var> = HashMap::new();
            for &(v, _) in &store_after {
                let name = format!("{}.w", f.var(v).name);
                let tmp = f.new_var(name);
                temps.insert(tmp);
                def_tmp.insert(v, tmp);
            }
            {
                let inst = f.inst_mut(i);
                for o in inst.defs.iter_mut() {
                    if let Some(&tmp) = def_tmp.get(&o.var) {
                        o.var = tmp;
                    }
                }
            }
            new_list.push(i);
            for (v, slot) in store_after {
                let st = InstData::new(Opcode::SpillStore)
                    .with_uses(vec![Operand::new(def_tmp[&v])])
                    .with_imm(slot);
                new_list.push(f.alloc_inst(st));
                stores += 1;
            }
        }
        f.block_mut(b).insts = new_list;
    }
    (stores, reloads)
}

/// Rematerializes `v` (single def `make imm`): re-issues the `make` into
/// a fresh one-instruction temporary before every use and deletes the
/// original def, eliminating `v` without a stack slot. Returns the
/// number of re-issued defs. The temporaries join `temps` (unspillable,
/// like reload temps).
pub fn rematerialize(f: &mut Function, v: Var, imm: i64, temps: &mut HashSet<Var>) -> usize {
    let mut remats = 0usize;
    let blocks: Vec<_> = f.blocks().collect();
    for b in blocks {
        let old: Vec<_> = f.block_insts(b).collect();
        let mut new_list = Vec::with_capacity(old.len());
        for i in old {
            // Drop the original def: after the rewrite the web has no
            // uses left, and `make` is pure.
            let inst_ref = f.inst(i);
            if inst_ref.opcode == Opcode::Make && inst_ref.defs.iter().any(|o| o.var == v) {
                continue;
            }
            if inst_ref.uses.iter().any(|o| o.var == v) {
                let name = format!("{}.m", f.var(v).name);
                let tmp = f.new_var(name);
                temps.insert(tmp);
                let mk = InstData::new(Opcode::Make)
                    .with_defs(vec![Operand::new(tmp)])
                    .with_imm(imm);
                new_list.push(f.alloc_inst(mk));
                let inst = f.inst_mut(i);
                for o in inst.uses.iter_mut() {
                    if o.var == v {
                        o.var = tmp;
                    }
                }
                remats += 1;
            }
            new_list.push(i);
        }
        f.block_mut(b).insts = new_list;
    }
    remats
}

#[cfg(test)]
mod tests {
    use super::*;
    use tossa_ir::interp;
    use tossa_ir::machine::Machine;
    use tossa_ir::parse::parse_function;

    #[test]
    fn spilling_a_loop_var_preserves_semantics() {
        let text = "
func @s {
entry:
  %n = input
  %z = make 0
  jump head
head:
  %c = cmplt %z, %n
  br %c, body, exit
body:
  %z = addi %z, 1
  jump head
exit:
  ret %z
}";
        let mut f = parse_function(text, &Machine::dsp32()).unwrap();
        let before = interp::run(&f, &[6], 10_000).unwrap().outputs;
        let z = f.vars().find(|&v| f.var(v).name == "z").unwrap();
        let mut next_slot = 0;
        let mut temps = HashSet::new();
        let (st, rl) = rewrite_spills(&mut f, &[z], &mut next_slot, &mut temps);
        f.validate().unwrap();
        assert!(st >= 2 && rl >= 2, "stores={st} reloads={rl}\n{f}");
        assert_eq!(next_slot, 1);
        assert!(!temps.is_empty());
        assert_eq!(
            interp::run(&f, &[6], 10_000).unwrap().outputs,
            before,
            "{f}"
        );
        // The spilled variable no longer appears as an operand.
        for (_, i) in f.all_insts() {
            for o in f.inst(i).operands() {
                assert_ne!(o.var, z, "{f}");
            }
        }
    }

    #[test]
    fn remat_reissues_the_make_and_drops_the_def() {
        let text = "
func @rm {
entry:
  %k = make 9
  %a = input
  %x = add %a, %k
  %y = mul %x, %k
  ret %y
}";
        let mut f = parse_function(text, &Machine::dsp32()).unwrap();
        let before = interp::run(&f, &[3], 100).unwrap().outputs;
        let k = f.vars().find(|&v| f.var(v).name == "k").unwrap();
        let mut temps = HashSet::new();
        let n = rematerialize(&mut f, k, 9, &mut temps);
        f.validate().unwrap();
        assert_eq!(n, 2, "{f}");
        assert_eq!(temps.len(), 2);
        // The web is gone entirely — no operand, no def, and no spill
        // opcode was introduced.
        for (_, i) in f.all_insts() {
            let inst = f.inst(i);
            assert!(
                !matches!(inst.opcode, Opcode::SpillLoad | Opcode::SpillStore),
                "{f}"
            );
            for o in inst.operands() {
                assert_ne!(o.var, k, "{f}");
            }
        }
        assert_eq!(interp::run(&f, &[3], 100).unwrap().outputs, before, "{f}");
    }
}
