//! Spill-everywhere rewriting through the stack-slot model.
//!
//! Each evicted variable gets one stack slot for the whole function.
//! Every instruction that reads it gets a fresh reload temporary
//! (`tmp = spillld slot`) inserted just before it; every instruction
//! that writes it gets a fresh store temporary followed by
//! `spillst tmp, slot`. Temporaries live for exactly one instruction,
//! are recorded as unspillable, and shrink register pressure at every
//! original program point — which is what makes the driver's
//! spill-and-rescan loop terminate.

use std::collections::{HashMap, HashSet};
use tossa_ir::ids::Var;
use tossa_ir::instr::{InstData, Operand};
use tossa_ir::{Function, Opcode};

/// Rewrites `vars` through spill slots. Returns `(stores, reloads)`
/// inserted. `next_slot` persists across rounds so slots never collide;
/// the fresh temporaries are added to `temps`.
pub fn rewrite_spills(
    f: &mut Function,
    vars: &[Var],
    next_slot: &mut i64,
    temps: &mut HashSet<Var>,
) -> (usize, usize) {
    let mut slot_of: HashMap<Var, i64> = HashMap::new();
    for &v in vars {
        slot_of.insert(v, *next_slot);
        *next_slot += 1;
    }
    let mut stores = 0usize;
    let mut reloads = 0usize;

    let blocks: Vec<_> = f.blocks().collect();
    for b in blocks {
        let old: Vec<_> = f.block_insts(b).collect();
        let mut new_list = Vec::with_capacity(old.len());
        for i in old {
            // One reload temp per distinct spilled variable used here.
            let used: Vec<Var> = {
                let mut seen = Vec::new();
                for o in f.inst(i).uses {
                    if slot_of.contains_key(&o.var) && !seen.contains(&o.var) {
                        seen.push(o.var);
                    }
                }
                seen
            };
            let mut reload_tmp: HashMap<Var, Var> = HashMap::new();
            for v in used {
                let slot = slot_of[&v];
                let name = format!("{}.r", f.var(v).name);
                let tmp = f.new_var(name);
                temps.insert(tmp);
                let ld = InstData::new(Opcode::SpillLoad)
                    .with_defs(vec![Operand::new(tmp)])
                    .with_imm(slot);
                new_list.push(f.alloc_inst(ld));
                reload_tmp.insert(v, tmp);
                reloads += 1;
            }
            let mut store_after: Vec<(Var, i64)> = Vec::new();
            {
                let inst = f.inst_mut(i);
                for o in inst.uses.iter_mut() {
                    if let Some(&tmp) = reload_tmp.get(&o.var) {
                        o.var = tmp;
                    }
                }
                for o in inst.defs.iter_mut() {
                    if let Some(&slot) = slot_of.get(&o.var) {
                        store_after.push((o.var, slot));
                    }
                }
            }
            // Fresh store temp per spilled def (defs are distinct vars
            // within one instruction after validation).
            let mut def_tmp: HashMap<Var, Var> = HashMap::new();
            for &(v, _) in &store_after {
                let name = format!("{}.w", f.var(v).name);
                let tmp = f.new_var(name);
                temps.insert(tmp);
                def_tmp.insert(v, tmp);
            }
            {
                let inst = f.inst_mut(i);
                for o in inst.defs.iter_mut() {
                    if let Some(&tmp) = def_tmp.get(&o.var) {
                        o.var = tmp;
                    }
                }
            }
            new_list.push(i);
            for (v, slot) in store_after {
                let st = InstData::new(Opcode::SpillStore)
                    .with_uses(vec![Operand::new(def_tmp[&v])])
                    .with_imm(slot);
                new_list.push(f.alloc_inst(st));
                stores += 1;
            }
        }
        f.block_mut(b).insts = new_list;
    }
    (stores, reloads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tossa_ir::interp;
    use tossa_ir::machine::Machine;
    use tossa_ir::parse::parse_function;

    #[test]
    fn spilling_a_loop_var_preserves_semantics() {
        let text = "
func @s {
entry:
  %n = input
  %z = make 0
  jump head
head:
  %c = cmplt %z, %n
  br %c, body, exit
body:
  %z = addi %z, 1
  jump head
exit:
  ret %z
}";
        let mut f = parse_function(text, &Machine::dsp32()).unwrap();
        let before = interp::run(&f, &[6], 10_000).unwrap().outputs;
        let z = f.vars().find(|&v| f.var(v).name == "z").unwrap();
        let mut next_slot = 0;
        let mut temps = HashSet::new();
        let (st, rl) = rewrite_spills(&mut f, &[z], &mut next_slot, &mut temps);
        f.validate().unwrap();
        assert!(st >= 2 && rl >= 2, "stores={st} reloads={rl}\n{f}");
        assert_eq!(next_slot, 1);
        assert!(!temps.is_empty());
        assert_eq!(
            interp::run(&f, &[6], 10_000).unwrap().outputs,
            before,
            "{f}"
        );
        // The spilled variable no longer appears as an operand.
        for (_, i) in f.all_insts() {
            for o in f.inst(i).operands() {
                assert_ne!(o.var, z, "{f}");
            }
        }
    }
}
