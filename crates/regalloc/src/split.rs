//! Live-range splitting at region boundaries.
//!
//! A victim web whose pressure point lies *outside* a region it occurs
//! in does not have to give up its register inside that region. Regions
//! are loop bodies first (the Table 5 frequency argument: occurrences
//! inside a loop are worth `5^depth` memory operations each) and, since
//! PR9, single non-loop blocks — any block holding an occurrence away
//! from the pressure point qualifies, with the hottest eligible region
//! winning and loop regions preferred on ties. The split renames the
//! web's occurrences inside the region to a fresh hot sub-web
//! (register-resident), spills the cold remainder everywhere, and
//! stitches the two together with boundary copies through the web's
//! stack slot:
//!
//! - one `vh = spillld slot` at the end of each entry predecessor of the
//!   loop header (only when the web is live into the header);
//! - one `spillst vh, slot` at the end of each exit block whose outside
//!   successor still needs the web (only when the web is redefined
//!   inside the loop).
//!
//! Every boundary copy lands on a region boundary by construction: entry
//! copies sit in blocks outside the loop branching to its header, exit
//! copies in loop blocks with a successor outside the body.
//!
//! The split is committed only when a *must-written* pre-check proves
//! that every planned `spillld` (boundary and cold-side reloads alike)
//! sees a store on all paths — the same forward dataflow the
//! post-allocation verifier runs over slots — so a split can never
//! introduce an [`crate::AllocError::UnpairedSlot`] that spill-everywhere
//! would have avoided. When the pre-check (or the region's shape) rules
//! a split out, the caller falls back to spill-everywhere for that web.

use std::collections::HashSet;
use tossa_analysis::{Liveness, LoopInfo};
use tossa_ir::cfg::Cfg;
use tossa_ir::ids::{Block, Var};
use tossa_ir::instr::{InstData, Operand};
use tossa_ir::print::var_str;
use tossa_ir::{Function, Opcode};
use tossa_trace::provenance;

use crate::cost::SpillCosts;
use crate::intervals::Intervals;

/// What a committed split inserted.
#[derive(Clone, Debug)]
pub struct SplitOutcome {
    /// `spillst` instructions inserted (boundary + cold-side).
    pub stores: usize,
    /// `spillld` instructions inserted (boundary + cold-side).
    pub reloads: usize,
    /// The blocks holding boundary copies.
    pub boundaries: Vec<Block>,
    /// The hot sub-web now living in a register inside the loop.
    pub hot_var: Var,
}

/// The region a split would preserve, chosen before mutating: a loop
/// body entered through its header, or a single non-loop block.
struct Region {
    header: Block,
    body: Vec<Block>,
}

/// Picks the hottest eligible region for splitting `v`, or `None` when
/// no region qualifies (the conflict sits inside every candidate, a
/// candidate has side entries or no entry predecessor, or the web never
/// leaves it). Loop regions are tried first and win heat ties over
/// single-block regions, which exist so a web can keep its register in
/// a straight-line block even when no loop shape applies.
fn pick_region(
    v: Var,
    conflict_at: u32,
    ivs: &Intervals,
    loops: &LoopInfo,
    cfg: &Cfg,
    costs: &SpillCosts,
) -> Option<Region> {
    let occ = costs.occurrence_blocks(v);
    let mut best: Option<(u64, Region)> = None;
    for &h in loops.headers() {
        let body = loops.body(h)?;
        if !occ.iter().any(|b| body.contains(b)) {
            continue;
        }
        // The pressure point must lie outside the region, otherwise the
        // split cannot relieve it and the spill loop would not progress.
        if ivs.position_in_blocks(conflict_at, body) {
            continue;
        }
        // The web must exist outside the region — otherwise there is no
        // cold part to spill.
        if !occ.iter().any(|b| !body.contains(b)) {
            continue;
        }
        // Reducible region shape: every edge from outside enters through
        // the header.
        let side_entry = body
            .iter()
            .any(|&b| b != h && cfg.preds(b).iter().any(|p| !body.contains(p)));
        if side_entry {
            continue;
        }
        // At least one entry predecessor (a detached loop cannot be
        // stitched).
        if !cfg.preds(h).iter().any(|p| !body.contains(p)) {
            continue;
        }
        let heat: u64 = occ
            .iter()
            .filter(|b| body.contains(b))
            .map(|&b| loops.weight(b))
            .sum();
        let region = Region {
            header: h,
            body: body.to_vec(),
        };
        if best.as_ref().map(|(w, _)| heat > *w).unwrap_or(true) {
            best = Some((heat, region));
        }
    }
    // Non-loop fallback: a single occurrence-holding block away from
    // the pressure point. Header == body, so the side-entry condition
    // is vacuous; the remaining checks mirror the loop case.
    for &b in occ {
        if ivs.position_in_blocks(conflict_at, &[b]) {
            continue;
        }
        if !occ.iter().any(|&o| o != b) {
            continue;
        }
        if !cfg.preds(b).iter().any(|&p| p != b) {
            continue;
        }
        let heat = loops.weight(b);
        let region = Region {
            header: b,
            body: vec![b],
        };
        if best.as_ref().map(|(w, _)| heat > *w).unwrap_or(true) {
            best = Some((heat, region));
        }
    }
    best.map(|(_, r)| r)
}

/// Must-written pre-check over the *planned* spill code: `true` when
/// every planned reload of `slot` (cold-side reloads before outside uses
/// of `v`, plus the boundary reload at each entry predecessor) is
/// preceded by a store on all paths.
fn planned_slot_is_must_written(
    f: &Function,
    cfg: &Cfg,
    v: Var,
    region: &Region,
    entry_preds: &[Block],
    exit_stores: &[Block],
    needs_entry_reload: bool,
) -> bool {
    let in_body = |b: Block| region.body.contains(&b);
    // gen[b]: block b will contain a spillst to the web's slot — a
    // cold-side def (store follows immediately) or a planned exit store.
    let gen = |b: Block| {
        (!in_body(b)
            && f.block_insts(b)
                .any(|i| f.inst(i).defs.iter().any(|o| o.var == v)))
            || exit_stores.contains(&b)
    };
    // Forward all-paths dataflow: in[entry] = false, in[b] = AND over
    // preds of (in[p] | gen[p]). Unreachable blocks stay at top (the
    // post-verifier is equally lenient there).
    let mut inb = vec![true; f.num_blocks()];
    inb[f.entry.index()] = false;
    let mut changed = true;
    while changed {
        changed = false;
        for &b in cfg.rpo() {
            if b == f.entry {
                continue;
            }
            let preds = cfg.preds(b);
            let v_in = !preds.is_empty() && preds.iter().all(|&p| inb[p.index()] || gen(p));
            if v_in != inb[b.index()] {
                inb[b.index()] = v_in;
                changed = true;
            }
        }
    }
    // Cold-side reload points: before every outside use of v.
    for b in f.blocks() {
        if in_body(b) {
            continue;
        }
        let mut written = inb[b.index()];
        for i in f.block_insts(b) {
            let inst = f.inst(i);
            if inst.uses.iter().any(|o| o.var == v) && !written {
                return false;
            }
            if inst.defs.iter().any(|o| o.var == v) {
                written = true;
            }
        }
    }
    // Boundary reloads at the end of each entry predecessor.
    if needs_entry_reload {
        for &p in entry_preds {
            if !(inb[p.index()] || gen(p)) {
                return false;
            }
        }
    }
    true
}

/// Attempts a region split for victim `v` at conflict position
/// `conflict_at`, assigning it `slot`. On success the function has been
/// rewritten (hot sub-web inside the region, spill-everywhere outside,
/// boundary copies at the region edges) and each boundary copy is
/// recorded as a `split-at:<block>` provenance rationale. Returns `None`
/// — with `f` untouched — when no region qualifies.
#[allow(clippy::too_many_arguments)]
pub fn try_split(
    f: &mut Function,
    v: Var,
    conflict_at: u32,
    ivs: &Intervals,
    loops: &LoopInfo,
    live: &Liveness,
    cfg: &Cfg,
    costs: &SpillCosts,
    slot: i64,
    temps: &mut HashSet<Var>,
    no_split: &mut HashSet<Var>,
) -> Option<SplitOutcome> {
    if no_split.contains(&v) || temps.contains(&v) || f.var(v).reg.is_some() {
        return None;
    }
    let region = pick_region(v, conflict_at, ivs, loops, cfg, costs)?;
    let in_body = |b: Block| region.body.contains(&b);

    let entry_preds: Vec<Block> = cfg
        .preds(region.header)
        .iter()
        .copied()
        .filter(|&p| !in_body(p))
        .collect();
    let needs_entry_reload = live.live_in(region.header).contains(v);
    let defs_in_region = region.body.iter().any(|&b| {
        f.block_insts(b)
            .any(|i| f.inst(i).defs.iter().any(|o| o.var == v))
    });
    let exit_stores: Vec<Block> = if defs_in_region {
        region
            .body
            .iter()
            .copied()
            .filter(|&b| {
                f.succs(b)
                    .iter()
                    .any(|&s| !in_body(s) && live.live_in(s).contains(v))
            })
            .collect()
    } else {
        Vec::new()
    };
    if !planned_slot_is_must_written(
        f,
        cfg,
        v,
        &region,
        &entry_preds,
        &exit_stores,
        needs_entry_reload,
    ) {
        return None;
    }

    // Commit. Hot sub-web: register-resident inside the region; never
    // split again (a second split of the same loop cannot make
    // progress), but still spillable everywhere if pressure persists.
    let hot = f.new_var(format!("{}.s", f.var(v).name));
    no_split.insert(hot);
    for &b in &region.body {
        let insts: Vec<_> = f.block_insts(b).collect();
        for i in insts {
            let inst = f.inst_mut(i);
            for o in inst.uses.iter_mut().chain(inst.defs.iter_mut()) {
                if o.var == v {
                    o.var = hot;
                }
            }
        }
    }
    let mut out = SplitOutcome {
        stores: 0,
        reloads: 0,
        boundaries: Vec::new(),
        hot_var: hot,
    };
    let before_terminator = |f: &Function, b: Block| {
        let len = f.block(b).insts.len();
        if f.terminator(b).is_some() {
            len - 1
        } else {
            len
        }
    };
    if needs_entry_reload {
        for &p in &entry_preds {
            let at = before_terminator(f, p);
            let ld = InstData::new(Opcode::SpillLoad)
                .with_defs(vec![Operand::new(hot)])
                .with_imm(slot);
            f.insert_inst(p, at, ld);
            out.reloads += 1;
            out.boundaries.push(p);
        }
    }
    for &b in &exit_stores {
        let at = before_terminator(f, b);
        let st = InstData::new(Opcode::SpillStore)
            .with_uses(vec![Operand::new(hot)])
            .with_imm(slot);
        f.insert_inst(b, at, st);
        out.stores += 1;
        out.boundaries.push(b);
    }
    for &b in &out.boundaries {
        provenance::record(|| provenance::Kind::Spill {
            var: var_str(f, v),
            start: conflict_at,
            end: conflict_at,
            cause: format!("split-at:{}", f.block(b).name),
        });
    }

    // Cold side: spill-everywhere outside the region.
    let (st, rl) = crate::spill::rewrite_spills_outside(f, &[(v, slot)], temps, &region.body);
    out.stores += st;
    out.reloads += rl;
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intervals;
    use tossa_analysis::{DomTree, LoopInfo};
    use tossa_ir::interp;
    use tossa_ir::machine::Machine;
    use tossa_ir::parse::parse_function;

    /// A web (%k) defined before a loop, read inside it, and read again
    /// after it: the canonical split shape.
    const HOT_THROUGH_LOOP: &str = "
func @h {
entry:
  %n = input
  %k = make 7
  %z = make 0
  jump head
head:
  %c = cmplt %z, %n
  br %c, body, exit
body:
  %z = add %z, %k
  jump head
exit:
  %r = add %z, %k
  ret %r
}";

    fn analyses(f: &Function) -> (Cfg, LoopInfo, Liveness) {
        let cfg = Cfg::compute(f);
        let dt = DomTree::compute(f, &cfg);
        let loops = LoopInfo::compute(f, &cfg, &dt);
        let live = Liveness::compute(f, &cfg);
        (cfg, loops, live)
    }

    #[test]
    fn split_keeps_semantics_and_lands_on_boundaries() {
        let mut f = parse_function(HOT_THROUGH_LOOP, &Machine::dsp32()).unwrap();
        let before = interp::run(&f, &[5], 10_000).unwrap().outputs;
        let k = f.vars().find(|&v| f.var(v).name == "k").unwrap();
        let (cfg, loops, live) = analyses(&f);
        let ivs = intervals::build(&f);
        let costs = SpillCosts::compute(&f, &loops);
        // Conflict in `exit`, outside the loop.
        let exit = f.blocks().find(|&b| f.block(b).name == "exit").unwrap();
        let conflict_at = ivs.block_span[exit.index()].0;
        let mut temps = HashSet::new();
        let mut no_split = HashSet::new();
        let out = try_split(
            &mut f,
            k,
            conflict_at,
            &ivs,
            &loops,
            &live,
            &cfg,
            &costs,
            0,
            &mut temps,
            &mut no_split,
        )
        .expect("split must apply");
        f.validate().unwrap();
        assert!(out.reloads >= 1, "{f}");
        assert!(!out.boundaries.is_empty());
        // Boundary blocks are entry preds of the header or exit blocks.
        let header = f.blocks().find(|&b| f.block(b).name == "head").unwrap();
        let body = loops.body(header).unwrap();
        for &b in &out.boundaries {
            let is_entry = !body.contains(&b) && f.succs(b).contains(&header);
            let is_exit = body.contains(&b) && f.succs(b).iter().any(|s| !body.contains(s));
            assert!(is_entry || is_exit, "boundary {b:?} off-region\n{f}");
        }
        // Inside the loop, the web is register-resident (no reloads of
        // the hot sub-web's slot in the body).
        for &b in body {
            for i in f.block_insts(b) {
                assert_ne!(
                    f.inst(i).opcode,
                    Opcode::SpillLoad,
                    "reload in hot region\n{f}"
                );
            }
        }
        assert_eq!(
            interp::run(&f, &[5], 10_000).unwrap().outputs,
            before,
            "{f}"
        );
    }

    /// With the pressure point inside the loop, the loop region is
    /// ineligible — but since PR9 a single non-loop block holding an
    /// occurrence (here `exit`) still qualifies, so the split falls
    /// back to it instead of giving up.
    #[test]
    fn conflict_inside_the_loop_falls_back_to_a_non_loop_region() {
        let mut f = parse_function(HOT_THROUGH_LOOP, &Machine::dsp32()).unwrap();
        let before = interp::run(&f, &[5], 10_000).unwrap().outputs;
        let k = f.vars().find(|&v| f.var(v).name == "k").unwrap();
        let (cfg, loops, live) = analyses(&f);
        let ivs = intervals::build(&f);
        let costs = SpillCosts::compute(&f, &loops);
        let body_b = f.blocks().find(|&b| f.block(b).name == "body").unwrap();
        let conflict_at = ivs.block_span[body_b.index()].0;
        let mut temps = HashSet::new();
        let mut no_split = HashSet::new();
        let out = try_split(
            &mut f,
            k,
            conflict_at,
            &ivs,
            &loops,
            &live,
            &cfg,
            &costs,
            0,
            &mut temps,
            &mut no_split,
        )
        .expect("single-block fallback region must apply");
        f.validate().unwrap();
        // The hot sub-web is confined to a region away from the
        // conflict block: no occurrence of it in `body`.
        for i in f.block_insts(body_b) {
            assert!(
                f.inst(i).operands().all(|o| o.var != out.hot_var),
                "hot sub-web leaked into the conflict block\n{f}"
            );
        }
        assert_eq!(
            interp::run(&f, &[5], 10_000).unwrap().outputs,
            before,
            "{f}"
        );
    }

    /// A web confined to one block can never be split: there is no cold
    /// part to spill, whatever the conflict position.
    #[test]
    fn single_block_web_has_no_region() {
        let mut f = parse_function(HOT_THROUGH_LOOP, &Machine::dsp32()).unwrap();
        let r = f.vars().find(|&v| f.var(v).name == "r").unwrap();
        let (cfg, loops, live) = analyses(&f);
        let ivs = intervals::build(&f);
        let costs = SpillCosts::compute(&f, &loops);
        let entry = f.blocks().find(|&b| f.block(b).name == "entry").unwrap();
        let conflict_at = ivs.block_span[entry.index()].0;
        let mut temps = HashSet::new();
        let mut no_split = HashSet::new();
        assert!(try_split(
            &mut f,
            r,
            conflict_at,
            &ivs,
            &loops,
            &live,
            &cfg,
            &costs,
            0,
            &mut temps,
            &mut no_split,
        )
        .is_none());
    }

    /// A loop-free program: the split carves a straight-line block out
    /// of the web, reloading at the block's entry predecessor.
    #[test]
    fn non_loop_region_splits_a_straightline_web() {
        let mut f = parse_function(
            "
func @sl {
entry:
  %k = make 7
  %a = input
  %b = add %a, %k
  jump mid
mid:
  %c = add %b, %b
  jump last
last:
  %r = add %c, %k
  ret %r
}",
            &Machine::dsp32(),
        )
        .unwrap();
        let before = interp::run(&f, &[5], 10_000).unwrap().outputs;
        let k = f.vars().find(|&v| f.var(v).name == "k").unwrap();
        let (cfg, loops, live) = analyses(&f);
        let ivs = intervals::build(&f);
        let costs = SpillCosts::compute(&f, &loops);
        let mid = f.blocks().find(|&b| f.block(b).name == "mid").unwrap();
        let conflict_at = ivs.block_span[mid.index()].0;
        let mut temps = HashSet::new();
        let mut no_split = HashSet::new();
        let out = try_split(
            &mut f,
            k,
            conflict_at,
            &ivs,
            &loops,
            &live,
            &cfg,
            &costs,
            0,
            &mut temps,
            &mut no_split,
        )
        .expect("non-loop split must apply");
        f.validate().unwrap();
        assert!(out.reloads >= 1, "{f}");
        // Boundary copies land outside the conflict-free region's
        // interior: every boundary block is a predecessor of the region
        // or an exit of it.
        let last = f.blocks().find(|&b| f.block(b).name == "last").unwrap();
        for &b in &out.boundaries {
            assert!(
                f.succs(b).contains(&last) || b == last,
                "boundary {b:?} detached from the region\n{f}"
            );
        }
        assert_eq!(
            interp::run(&f, &[5], 10_000).unwrap().outputs,
            before,
            "{f}"
        );
    }

    #[test]
    fn web_defined_in_loop_gets_exit_stores() {
        // %z is loop-carried and read after the loop: the split must
        // store it back at the exit boundary.
        let mut f = parse_function(HOT_THROUGH_LOOP, &Machine::dsp32()).unwrap();
        let before = interp::run(&f, &[5], 10_000).unwrap().outputs;
        let z = f.vars().find(|&v| f.var(v).name == "z").unwrap();
        let (cfg, loops, live) = analyses(&f);
        let ivs = intervals::build(&f);
        let costs = SpillCosts::compute(&f, &loops);
        let exit = f.blocks().find(|&b| f.block(b).name == "exit").unwrap();
        let conflict_at = ivs.block_span[exit.index()].0;
        let mut temps = HashSet::new();
        let mut no_split = HashSet::new();
        let out = try_split(
            &mut f,
            z,
            conflict_at,
            &ivs,
            &loops,
            &live,
            &cfg,
            &costs,
            0,
            &mut temps,
            &mut no_split,
        )
        .expect("split must apply");
        assert!(out.stores >= 1, "loop-defined web needs an exit store\n{f}");
        f.validate().unwrap();
        assert_eq!(
            interp::run(&f, &[5], 10_000).unwrap().outputs,
            before,
            "{f}"
        );
    }
}
