//! Liveness-driven linear scan over per-range live intervals.
//!
//! Precolored intervals (out-of-SSA pinnings) are fixed: their register
//! is reserved wherever their ranges are live, and an unpinned candidate
//! may only take a register whose precolored reservations it does not
//! overlap. Interference is range-accurate ([`Intervals::overlap`]):
//! several webs may hold one register simultaneously as long as each
//! lives inside the others' lifetime holes. When no register is free an
//! eviction is forced; the caller rewrites the evicted variables through
//! spill slots and re-runs the scan. Spill-reload temporaries are
//! unspillable, which bounds the iteration: each round strictly shrinks
//! the set of long intervals.
//!
//! Victim choice is policy-dependent. The PR4 policy (`costs: None`)
//! evicts the furthest-ending spillable interval (possibly the current
//! one). The cost-driven policy (`costs: Some(..)`) evicts the candidate
//! with the *lowest* loop-weighted spill cost ([`crate::cost`]),
//! normalized by the positions its ranges actually cover, ties broken
//! toward the furthest end, so hot loop-carried webs stay in registers
//! while cold webs take the slots.
//!
//! A failed round returns the eviction set *and* the partial assignment
//! of everything that did fit — the driver's second-chance pass re-tests
//! split sub-webs against that assignment before falling back to
//! spill-everywhere.

use std::collections::{HashMap, HashSet};
use tossa_ir::ids::Var;
use tossa_ir::machine::{PhysReg, RegClass};
use tossa_ir::print::var_str;
use tossa_ir::Function;
use tossa_trace::provenance;

use crate::cost::SpillCosts;
use crate::intervals::{Interval, Intervals};
use crate::{pools, AllocError, Assignment};

/// One eviction decision: which web to spill and the linear position of
/// the pressure point that forced it (the spill layer uses the position
/// to decide whether live-range splitting can move the conflict out of
/// a loop).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpillReq {
    /// The web to rewrite through a slot (or remat / split / rescue).
    pub var: Var,
    /// Linear position of the conflict that evicted it.
    pub at: u32,
}

/// Why a scan round did not produce an assignment.
#[derive(Clone, Debug)]
pub enum ScanFail {
    /// These variables must be rewritten through spill slots, then the
    /// scan re-run.
    Spill {
        /// The eviction set, one request per web.
        reqs: Vec<SpillReq>,
        /// The registers everything *else* received this round (evicted
        /// and spilled webs are unassigned). The driver's second-chance
        /// pass probes this for registers left free across a victim's
        /// ranges.
        partial: Assignment,
    },
    /// Unrecoverable failure (pin conflict, out of registers).
    Hard(AllocError),
}

/// Per-register reservations made by precolored intervals.
pub(crate) struct Blocked {
    /// Item indices of precolored intervals, by register id.
    by_reg: HashMap<u8, Vec<usize>>,
}

impl Blocked {
    /// Collects precolored reservations; errors when two precolored
    /// intervals on one register have overlapping ranges (sharing a
    /// register across disjoint ranges is legal).
    pub(crate) fn collect(ivs: &Intervals) -> Result<Blocked, AllocError> {
        let mut by_reg: HashMap<u8, Vec<usize>> = HashMap::new();
        for (idx, iv) in ivs.items.iter().enumerate() {
            if let Some(r) = iv.pre {
                by_reg.entry(r.0).or_default().push(idx);
            }
        }
        for (&reg, idxs) in &by_reg {
            for (i, &a) in idxs.iter().enumerate() {
                for &b in &idxs[i + 1..] {
                    if ivs.overlap(&ivs.items[a], &ivs.items[b]) {
                        return Err(AllocError::PinConflict {
                            reg: PhysReg(reg),
                            a: ivs.items[a].var,
                            b: ivs.items[b].var,
                        });
                    }
                }
            }
        }
        Ok(Blocked { by_reg })
    }

    /// Does register `r` carry a precolored reservation whose ranges
    /// overlap `iv`'s?
    pub(crate) fn conflicts(&self, ivs: &Intervals, r: PhysReg, iv: &Interval) -> bool {
        self.by_reg
            .get(&r.0)
            .map(|v| v.iter().any(|&i| ivs.overlap(&ivs.items[i], iv)))
            .unwrap_or(false)
    }
}

/// One linear-scan round.
///
/// # Errors
/// [`ScanFail::Spill`] with the eviction set and partial assignment, or
/// [`ScanFail::Hard`] on pin conflicts / unspillable pressure.
pub fn scan(
    f: &Function,
    ivs: &Intervals,
    temps: &HashSet<Var>,
    costs: Option<&SpillCosts>,
) -> Result<Assignment, ScanFail> {
    let blocked = Blocked::collect(ivs).map_err(ScanFail::Hard)?;
    // Covered lengths for weight normalization: the cost-driven victim
    // rule compares spill cost *per position of relief*, so a long cold
    // web beats many short cheap webs (which would each relieve only
    // one pressure point). Holes do not relieve anything, so they do
    // not count.
    let mut len_of: Vec<u64> = vec![1; f.num_vars()];
    for iv in &ivs.items {
        len_of[iv.var.index()] = ivs.covered_len(iv).max(1);
    }
    let norm = |w: u64, v: Var| -> (u128, u128) { (u128::from(w), u128::from(len_of[v.index()])) };
    let mut asg = Assignment::new(f.num_vars());
    // (hull end, reg, item index, spillable)
    let mut active: Vec<(u32, PhysReg, usize, bool)> = Vec::new();
    let mut spills: Vec<SpillReq> = Vec::new();
    // Candidate pools are interval-independent apart from the pointer
    // preference; computed once per scan, not once per interval.
    let pool_gpr_first = pools(f, false);
    let pool_ptr_first = pools(f, true);
    // Per-register pressure against the current interval's ranges:
    // how many active holders overlap it, and (when exactly one does)
    // which active entry that is. Reset via `touched` between items.
    let mut over_count = [0u32; 256];
    let mut sole = [usize::MAX; 256];
    let mut touched: Vec<u8> = Vec::new();

    for (idx, iv) in ivs.items.iter().enumerate() {
        active.retain(|&(end, _, _, _)| end >= iv.start);
        if let Some(r) = iv.pre {
            asg.set(iv.var, r);
            active.push((iv.end, r, idx, false));
            continue;
        }
        let spillable = !temps.contains(&iv.var);
        let hinted = iv.hint.and_then(|h| {
            asg.get(h)
                .filter(|&r| f.machine.reg_class(r) != RegClass::Special)
        });
        let pool = if iv.ptr_pref {
            &pool_ptr_first
        } else {
            &pool_gpr_first
        };
        let usable = |r: PhysReg| !blocked.conflicts(ivs, r, iv);
        for &t in &touched {
            over_count[t as usize] = 0;
        }
        touched.clear();
        for (ai, &(_, r, aidx, _)) in active.iter().enumerate() {
            if ivs.overlap(&ivs.items[aidx], iv) {
                if over_count[r.0 as usize] == 0 {
                    touched.push(r.0);
                }
                over_count[r.0 as usize] += 1;
                sole[r.0 as usize] = ai;
            }
        }
        let chosen = hinted
            .into_iter()
            .chain(pool.iter().copied())
            .find(|&r| usable(r) && over_count[r.0 as usize] == 0);
        if let Some(r) = chosen {
            asg.set(iv.var, r);
            active.push((iv.end, r, idx, spillable));
            continue;
        }
        // No free register: evict a spillable *sole* overlapping holder
        // of a register this interval could use — or the interval
        // itself. (A register whose pressure comes from two hole-sharing
        // holders cannot be freed by one eviction.) The PR4 policy picks
        // the furthest-ending holder; the cost-driven policy picks the
        // cheapest by loop weight per covered position, ties toward the
        // furthest end.
        let candidates = active
            .iter()
            .enumerate()
            .filter(|&(ai, &(_, r, _, sp))| {
                sp && usable(r) && over_count[r.0 as usize] == 1 && sole[r.0 as usize] == ai
            })
            .map(|(ai, &(end, r, aidx, _))| (ai, end, r, ivs.items[aidx].var));
        let victim = match costs {
            None => candidates.max_by_key(|&(_, end, _, _)| end),
            Some(c) => candidates.min_by(|&(_, enda, _, va), &(_, endb, _, vb)| {
                let (wa, la) = norm(c.cost(va).weight, va);
                let (wb, lb) = norm(c.cost(vb).weight, vb);
                // wa/la vs wb/lb, cross-multiplied; ties prefer the
                // furthest end (most relief), then the lowest index.
                (wa * lb)
                    .cmp(&(wb * la))
                    .then(endb.cmp(&enda))
                    .then(va.index().cmp(&vb.index()))
            }),
        };
        let evict = match (costs, victim) {
            // Legacy: evict only a holder reaching further than we do.
            (None, Some((_, end, _, _))) => !spillable || end > iv.end,
            // Cost-driven: evict a holder whose normalized cost (spill
            // weight per position of relief) is below our own; on a tie
            // keep the legacy bias toward the furthest end (progress at
            // the pressure point).
            (Some(c), Some((_, end, _, v))) => {
                !spillable || {
                    let (vw, vl) = norm(c.cost(v).weight, v);
                    let (sw, sl) = norm(c.cost(iv.var).weight, iv.var);
                    vw * sl < sw * vl || (vw * sl == sw * vl && end > iv.end)
                }
            }
            (_, None) => false,
        };
        match victim {
            Some((ai, end, r, v)) if evict => {
                active.remove(ai);
                asg.clear(v);
                spills.push(SpillReq {
                    var: v,
                    at: iv.start,
                });
                provenance::record(|| {
                    let (vs, ve) = ivs.find(v).map(|x| (x.start, x.end)).unwrap_or((0, end));
                    provenance::Kind::Spill {
                        var: var_str(f, v),
                        start: vs,
                        end: ve,
                        cause: match costs {
                            Some(c) => c.rationale(v),
                            None => format!(
                                "evicted-by:{}@{}",
                                var_str(f, iv.var),
                                f.machine.reg_name(r)
                            ),
                        },
                    }
                });
                asg.set(iv.var, r);
                active.push((iv.end, r, idx, spillable));
            }
            _ if spillable => {
                spills.push(SpillReq {
                    var: iv.var,
                    at: iv.start,
                });
                provenance::record(|| {
                    let hint = iv.hint.and_then(|h| asg.get(h));
                    provenance::Kind::Spill {
                        var: var_str(f, iv.var),
                        start: iv.start,
                        end: iv.end,
                        cause: match costs {
                            Some(c) => c.rationale(iv.var),
                            None => match hint {
                                Some(r) => {
                                    format!("no-register:hint-failed={}", f.machine.reg_name(r))
                                }
                                None => "no-register".to_string(),
                            },
                        },
                    }
                });
            }
            _ => return Err(ScanFail::Hard(AllocError::OutOfRegisters { var: iv.var })),
        }
    }
    if spills.is_empty() {
        Ok(asg)
    } else {
        // One request per web: keep the first pressure point.
        spills.sort_by_key(|s| s.var.index());
        spills.dedup_by_key(|s| s.var);
        Err(ScanFail::Spill {
            reqs: spills,
            partial: asg,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intervals;
    use tossa_ir::machine::Machine;
    use tossa_ir::parse::parse_function;

    #[test]
    fn overlapping_precolored_pair_is_a_pin_conflict() {
        // Two variables precolored to R5 with overlapping lifetimes.
        let mut f = parse_function(
            "func @pc {\nentry:\n  %a = input\n  %b = mov %a\n  %c = add %a, %b\n  ret %c\n}",
            &Machine::dsp32(),
        )
        .unwrap();
        let r5 = Machine::dsp32().reg_by_name("R5").unwrap();
        let (va, vb) = {
            let mut it = f.vars().filter(|&v| {
                let n = &f.var(v).name;
                n == "a" || n == "b"
            });
            (it.next().unwrap(), it.next().unwrap())
        };
        f.var_mut(va).reg = Some(r5);
        f.var_mut(vb).reg = Some(r5);
        let ivs = intervals::build(&f);
        let err = scan(&f, &ivs, &HashSet::new(), None).unwrap_err();
        assert!(
            matches!(err, ScanFail::Hard(AllocError::PinConflict { .. })),
            "{err:?}"
        );
    }

    #[test]
    fn disjoint_precolored_pair_on_one_register_is_fine() {
        // %a dies at the mov; %b reuses R5 afterwards.
        let mut f = parse_function(
            "func @dp {\nentry:\n  %a = input\n  %b = mov %a\n  ret %b\n}",
            &Machine::dsp32(),
        )
        .unwrap();
        let r5 = Machine::dsp32().reg_by_name("R5").unwrap();
        let vars: Vec<_> = f.vars().collect();
        for v in vars {
            if f.var(v).name == "a" || f.var(v).name == "b" {
                f.var_mut(v).reg = Some(r5);
            }
        }
        let ivs = intervals::build(&f);
        let asg = scan(&f, &ivs, &HashSet::new(), None).unwrap();
        for iv in &ivs.items {
            if iv.pre.is_some() {
                assert_eq!(asg.get(iv.var), Some(r5));
            }
        }
    }

    /// Two precolored lives of one register whose *hulls* overlap but
    /// whose ranges do not (one sits in the other's hole) must be
    /// accepted — and under hull precision they must still conflict.
    #[test]
    fn precolored_hole_sharing_is_allowed_only_under_range_precision() {
        let text = "func @ph {
entry:
  %a = input
  %b = add %a, %a
  %c = add %b, %b
  %a = make 1
  %r = add %a, %c
  ret %r
}";
        let mut f = parse_function(text, &Machine::dsp32()).unwrap();
        let r5 = Machine::dsp32().reg_by_name("R5").unwrap();
        let vars: Vec<_> = f.vars().collect();
        for v in vars {
            if f.var(v).name == "a" || f.var(v).name == "b" {
                f.var_mut(v).reg = Some(r5);
            }
        }
        let ivs = intervals::build(&f);
        assert!(
            Blocked::collect(&ivs).is_ok(),
            "%b lives in %a's hole — no pin conflict"
        );
        let hull = intervals::build_with(&f, intervals::IntervalPrecision::Hull);
        assert!(
            matches!(Blocked::collect(&hull), Err(AllocError::PinConflict { .. })),
            "hull precision must reject the same pinning"
        );
    }
}
