//! Liveness-driven linear scan over hull intervals.
//!
//! Precolored intervals (out-of-SSA pinnings) are fixed: their register
//! is reserved for their whole interval, and an unpinned candidate may
//! only take a register whose precolored reservations it does not
//! overlap. When no register is free an eviction is forced; the caller
//! rewrites the evicted variables through spill slots and re-runs the
//! scan. Spill-reload temporaries are unspillable, which bounds the
//! iteration: each round strictly shrinks the set of long intervals.
//!
//! Victim choice is policy-dependent. The PR4 policy (`costs: None`)
//! evicts the furthest-ending spillable interval (possibly the current
//! one). The cost-driven policy (`costs: Some(..)`) evicts the candidate
//! with the *lowest* loop-weighted spill cost ([`crate::cost`]), ties
//! broken toward the furthest end, so hot loop-carried webs stay in
//! registers while cold webs take the slots.

use std::collections::{HashMap, HashSet};
use tossa_ir::ids::Var;
use tossa_ir::machine::{PhysReg, RegClass};
use tossa_ir::print::var_str;
use tossa_ir::Function;
use tossa_trace::provenance;

use crate::cost::SpillCosts;
use crate::intervals::Intervals;
use crate::{pools, AllocError, Assignment};

/// One eviction decision: which web to spill and the linear position of
/// the pressure point that forced it (the spill layer uses the position
/// to decide whether live-range splitting can move the conflict out of
/// a loop).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpillReq {
    /// The web to rewrite through a slot (or remat / split).
    pub var: Var,
    /// Linear position of the conflict that evicted it.
    pub at: u32,
}

/// Why a scan round did not produce an assignment.
#[derive(Clone, Debug)]
pub enum ScanFail {
    /// These variables must be rewritten through spill slots, then the
    /// scan re-run.
    Spill(Vec<SpillReq>),
    /// Unrecoverable failure (pin conflict, out of registers).
    Hard(AllocError),
}

/// Per-register reservations made by precolored intervals.
pub(crate) struct Blocked {
    ranges: HashMap<u8, Vec<(u32, u32)>>,
}

impl Blocked {
    /// Collects precolored reservations; errors when two precolored
    /// intervals on one register overlap.
    pub(crate) fn collect(ivs: &Intervals) -> Result<Blocked, AllocError> {
        let mut ranges: HashMap<u8, Vec<(u32, u32, Var)>> = HashMap::new();
        for iv in &ivs.items {
            if let Some(r) = iv.pre {
                ranges
                    .entry(r.0)
                    .or_default()
                    .push((iv.start, iv.end, iv.var));
            }
        }
        let mut out: HashMap<u8, Vec<(u32, u32)>> = HashMap::new();
        for (reg, mut v) in ranges {
            v.sort_unstable();
            for w in v.windows(2) {
                if w[1].0 <= w[0].1 {
                    return Err(AllocError::PinConflict {
                        reg: PhysReg(reg),
                        a: w[0].2,
                        b: w[1].2,
                    });
                }
            }
            out.insert(reg, v.into_iter().map(|(s, e, _)| (s, e)).collect());
        }
        Ok(Blocked { ranges: out })
    }

    /// Does register `r` carry a precolored reservation overlapping
    /// `[start, end]`?
    pub(crate) fn conflicts(&self, r: PhysReg, start: u32, end: u32) -> bool {
        self.ranges
            .get(&r.0)
            .map(|v| v.iter().any(|&(s, e)| s <= end && start <= e))
            .unwrap_or(false)
    }
}

/// One linear-scan round.
///
/// # Errors
/// [`ScanFail::Spill`] with the eviction set, or [`ScanFail::Hard`] on
/// pin conflicts / unspillable pressure.
pub fn scan(
    f: &Function,
    ivs: &Intervals,
    temps: &HashSet<Var>,
    costs: Option<&SpillCosts>,
) -> Result<Assignment, ScanFail> {
    let blocked = Blocked::collect(ivs).map_err(ScanFail::Hard)?;
    // Hull lengths for weight normalization: the cost-driven victim
    // rule compares spill cost *per position of relief*, so a long cold
    // web beats many short cheap webs (which would each relieve only
    // one pressure point).
    let mut len_of: Vec<u64> = vec![1; f.num_vars()];
    for iv in &ivs.items {
        len_of[iv.var.index()] = u64::from(iv.end - iv.start) + 1;
    }
    let norm = |w: u64, v: Var| -> (u128, u128) { (u128::from(w), u128::from(len_of[v.index()])) };
    let mut asg = Assignment::new(f.num_vars());
    // (end, reg, var, spillable)
    let mut active: Vec<(u32, PhysReg, Var, bool)> = Vec::new();
    let mut spills: Vec<SpillReq> = Vec::new();
    // Candidate pools are interval-independent apart from the pointer
    // preference; computed once per scan, not once per interval.
    let pool_gpr_first = pools(f, false);
    let pool_ptr_first = pools(f, true);

    for iv in &ivs.items {
        active.retain(|&(end, _, _, _)| end >= iv.start);
        if let Some(r) = iv.pre {
            asg.set(iv.var, r);
            active.push((iv.end, r, iv.var, false));
            continue;
        }
        let spillable = !temps.contains(&iv.var);
        let hinted = iv.hint.and_then(|h| {
            asg.get(h)
                .filter(|&r| f.machine.reg_class(r) != RegClass::Special)
        });
        let pool = if iv.ptr_pref {
            &pool_ptr_first
        } else {
            &pool_gpr_first
        };
        let usable = |r: PhysReg| !blocked.conflicts(r, iv.start, iv.end);
        // Registers held by active intervals, as a bitmask over reg ids.
        let mut taken = [0u64; 4];
        for &(_, r, _, _) in &active {
            taken[(r.0 >> 6) as usize] |= 1u64 << (r.0 & 63);
        }
        let is_taken = |r: PhysReg| taken[(r.0 >> 6) as usize] & (1u64 << (r.0 & 63)) != 0;
        let chosen = hinted
            .into_iter()
            .chain(pool.iter().copied())
            .find(|&r| usable(r) && !is_taken(r));
        if let Some(r) = chosen {
            asg.set(iv.var, r);
            active.push((iv.end, r, iv.var, spillable));
            continue;
        }
        // No free register: evict a spillable holder of a register this
        // interval could use — or the interval itself. The PR4 policy
        // picks the furthest-ending holder; the cost-driven policy picks
        // the cheapest by loop weight, ties toward the furthest end.
        let candidates = active
            .iter()
            .enumerate()
            .filter(|(_, &(_, r, _, sp))| sp && usable(r))
            .map(|(idx, &(end, r, v, _))| (idx, end, r, v));
        let victim = match costs {
            None => candidates.max_by_key(|&(_, end, _, _)| end),
            Some(c) => candidates.min_by(|&(_, enda, _, va), &(_, endb, _, vb)| {
                let (wa, la) = norm(c.cost(va).weight, va);
                let (wb, lb) = norm(c.cost(vb).weight, vb);
                // wa/la vs wb/lb, cross-multiplied; ties prefer the
                // furthest end (most relief), then the lowest index.
                (wa * lb)
                    .cmp(&(wb * la))
                    .then(endb.cmp(&enda))
                    .then(va.index().cmp(&vb.index()))
            }),
        };
        let evict = match (costs, victim) {
            // Legacy: evict only a holder reaching further than we do.
            (None, Some((_, end, _, _))) => !spillable || end > iv.end,
            // Cost-driven: evict a holder whose normalized cost (spill
            // weight per position of relief) is below our own; on a tie
            // keep the legacy bias toward the furthest end (progress at
            // the pressure point).
            (Some(c), Some((_, end, _, v))) => {
                !spillable || {
                    let (vw, vl) = norm(c.cost(v).weight, v);
                    let (sw, sl) = norm(c.cost(iv.var).weight, iv.var);
                    vw * sl < sw * vl || (vw * sl == sw * vl && end > iv.end)
                }
            }
            (_, None) => false,
        };
        match victim {
            Some((idx, end, r, v)) if evict => {
                active.remove(idx);
                spills.push(SpillReq {
                    var: v,
                    at: iv.start,
                });
                provenance::record(|| {
                    let (vs, ve) = ivs
                        .items
                        .iter()
                        .find(|x| x.var == v)
                        .map(|x| (x.start, x.end))
                        .unwrap_or((0, end));
                    provenance::Kind::Spill {
                        var: var_str(f, v),
                        start: vs,
                        end: ve,
                        cause: match costs {
                            Some(c) => c.rationale(v),
                            None => format!(
                                "evicted-by:{}@{}",
                                var_str(f, iv.var),
                                f.machine.reg_name(r)
                            ),
                        },
                    }
                });
                asg.set(iv.var, r);
                active.push((iv.end, r, iv.var, spillable));
            }
            _ if spillable => {
                spills.push(SpillReq {
                    var: iv.var,
                    at: iv.start,
                });
                provenance::record(|| {
                    let hint = iv.hint.and_then(|h| asg.get(h));
                    provenance::Kind::Spill {
                        var: var_str(f, iv.var),
                        start: iv.start,
                        end: iv.end,
                        cause: match costs {
                            Some(c) => c.rationale(iv.var),
                            None => match hint {
                                Some(r) => {
                                    format!("no-register:hint-failed={}", f.machine.reg_name(r))
                                }
                                None => "no-register".to_string(),
                            },
                        },
                    }
                });
            }
            _ => return Err(ScanFail::Hard(AllocError::OutOfRegisters { var: iv.var })),
        }
    }
    if spills.is_empty() {
        Ok(asg)
    } else {
        // One request per web: keep the first pressure point.
        spills.sort_by_key(|s| s.var.index());
        spills.dedup_by_key(|s| s.var);
        Err(ScanFail::Spill(spills))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intervals;
    use tossa_ir::machine::Machine;
    use tossa_ir::parse::parse_function;

    #[test]
    fn overlapping_precolored_pair_is_a_pin_conflict() {
        // Two variables precolored to R5 with overlapping lifetimes.
        let mut f = parse_function(
            "func @pc {\nentry:\n  %a = input\n  %b = mov %a\n  %c = add %a, %b\n  ret %c\n}",
            &Machine::dsp32(),
        )
        .unwrap();
        let r5 = Machine::dsp32().reg_by_name("R5").unwrap();
        let (va, vb) = {
            let mut it = f.vars().filter(|&v| {
                let n = &f.var(v).name;
                n == "a" || n == "b"
            });
            (it.next().unwrap(), it.next().unwrap())
        };
        f.var_mut(va).reg = Some(r5);
        f.var_mut(vb).reg = Some(r5);
        let ivs = intervals::build(&f);
        let err = scan(&f, &ivs, &HashSet::new(), None).unwrap_err();
        assert!(
            matches!(err, ScanFail::Hard(AllocError::PinConflict { .. })),
            "{err:?}"
        );
    }

    #[test]
    fn disjoint_precolored_pair_on_one_register_is_fine() {
        // %a dies at the mov; %b reuses R5 afterwards.
        let mut f = parse_function(
            "func @dp {\nentry:\n  %a = input\n  %b = mov %a\n  ret %b\n}",
            &Machine::dsp32(),
        )
        .unwrap();
        let r5 = Machine::dsp32().reg_by_name("R5").unwrap();
        let vars: Vec<_> = f.vars().collect();
        for v in vars {
            if f.var(v).name == "a" || f.var(v).name == "b" {
                f.var_mut(v).reg = Some(r5);
            }
        }
        let ivs = intervals::build(&f);
        let asg = scan(&f, &ivs, &HashSet::new(), None).unwrap();
        for iv in &ivs.items {
            if iv.pre.is_some() {
                assert_eq!(asg.get(iv.var), Some(r5));
            }
        }
    }
}
