//! Per-pass invariant verification: the [`PassGuard`].
//!
//! Checked pipeline mode snapshots the function before each pass and,
//! after the pass, re-establishes every machine-checkable invariant the
//! paper's correctness argument relies on:
//!
//! * CFG well-formedness ([`tossa_ir::Function::validate`]);
//! * SSA invariants while the function is still in SSA form
//!   ([`tossa_ssa::verify_ssa`]);
//! * pin consistency — no Fig. 4 violation, in particular no two
//!   strongly-interfering webs pinned to one resource
//!   ([`crate::pinning::check_pinning`]);
//! * absence of residual φs once the function claims to be out of SSA;
//! * *semantic equivalence* with the pre-pass function, by differential
//!   execution of both versions on seeded input vectors with the
//!   fuel-bounded reference interpreter.
//!
//! The guard returns structured [`VerifyError`]s instead of panicking, so
//! a suite runner can degrade gracefully (fall back to the naive
//! translation) and keep a per-function diagnostic report.

use crate::error::VerifyError;
use crate::interfere::{EnvHandles, InterferenceMode};
use crate::pinning::check_pinning;
use tossa_analysis::AnalysisCache;
use tossa_ir::interp::{self, Trap};
use tossa_ir::Function;
use tossa_ssa::verify_ssa;

/// Which invariants the function is expected to satisfy at a given
/// pipeline point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IrForm {
    /// Strict SSA (possibly with pins): single definitions, dominance.
    Ssa,
    /// SSA plus a pinning that must pass the Fig. 4 checker.
    PinnedSsa,
    /// Ordinary code after out-of-SSA: no φ may remain.
    NonSsa,
}

/// Checks the structural invariants of `form` on `f`, without running the
/// interpreter.
///
/// # Errors
/// Returns the first violated invariant.
pub fn check_form(f: &Function, form: IrForm) -> Result<(), VerifyError> {
    f.validate()?;
    match form {
        IrForm::Ssa => verify_ssa(f)?,
        IrForm::PinnedSsa => {
            verify_ssa(f)?;
            let mut cache = AnalysisCache::new();
            let handles = EnvHandles::from_cache(f, &mut cache);
            let env = handles.env(f, InterferenceMode::Exact);
            check_pinning(f, &env)?;
        }
        IrForm::NonSsa => {
            for b in f.blocks() {
                if f.phis(b).next().is_some() {
                    return Err(VerifyError::ResidualPhi { block: b });
                }
            }
        }
    }
    Ok(())
}

fn run_outputs(f: &Function, inputs: &[i64], fuel: u64) -> Result<Vec<i64>, Trap> {
    interp::run(f, inputs, fuel).map(|r| r.outputs)
}

/// Snapshot of a function's observable behaviour before a pass, used to
/// verify the pass's output against it.
///
/// ```
/// use tossa_core::checked::{IrForm, PassGuard};
/// use tossa_ir::{machine::Machine, parse::parse_function};
///
/// let f = parse_function(
///     "func @id {\nentry:\n  %a = input\n  ret %a\n}",
///     &Machine::dsp32(),
/// )?;
/// let guard = PassGuard::before(&f, &[vec![3], vec![-1]], 10_000);
/// // ... run a pass on a copy of f ...
/// guard.check(&f, IrForm::Ssa)?; // the identity "pass" trivially passes
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct PassGuard {
    inputs: Vec<Vec<i64>>,
    expected: Vec<Result<Vec<i64>, Trap>>,
    fuel: u64,
}

impl PassGuard {
    /// Captures the pre-pass behaviour of `f` on every vector of
    /// `inputs` (reference outputs, or the trap raised).
    pub fn before(f: &Function, inputs: &[Vec<i64>], fuel: u64) -> PassGuard {
        PassGuard {
            inputs: inputs.to_vec(),
            expected: inputs.iter().map(|ins| run_outputs(f, ins, fuel)).collect(),
            fuel,
        }
    }

    /// Verifies the post-pass function: structural invariants of `form`,
    /// then differential execution against the pre-pass snapshot.
    ///
    /// Input vectors on which *both* versions trap are considered
    /// equivalent (e.g. both run out of fuel); a trap only on the
    /// post-pass side is an error, as is any output mismatch.
    ///
    /// # Errors
    /// Returns the first violated invariant or diverging input.
    pub fn check(&self, f: &Function, form: IrForm) -> Result<(), VerifyError> {
        tossa_trace::span("verify_structural", || check_form(f, form))?;
        tossa_trace::span("verify_differential", || self.check_differential(f))
    }

    fn check_differential(&self, f: &Function) -> Result<(), VerifyError> {
        for (ins, want) in self.inputs.iter().zip(&self.expected) {
            let got = run_outputs(f, ins, self.fuel);
            match (want, got) {
                (Ok(want), Ok(got)) => {
                    if *want != got {
                        return Err(VerifyError::Divergence {
                            inputs: ins.clone(),
                            expected: want.clone(),
                            got,
                        });
                    }
                }
                (Ok(_), Err(trap)) => {
                    return Err(VerifyError::Trap {
                        inputs: ins.clone(),
                        trap,
                    });
                }
                (Err(_), _) => {} // pre-pass already trapped: no reference
            }
        }
        Ok(())
    }

    /// The input vectors this guard replays.
    pub fn inputs(&self) -> &[Vec<i64>] {
        &self.inputs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tossa_ir::machine::Machine;
    use tossa_ir::parse::parse_function;
    use tossa_ir::Opcode;

    fn parse(text: &str) -> Function {
        parse_function(text, &Machine::dsp32()).unwrap()
    }

    #[test]
    fn identity_pass_passes() {
        let f = parse("func @id {\nentry:\n  %a, %b = input\n  %s = add %a, %b\n  ret %s\n}");
        let guard = PassGuard::before(&f, &[vec![1, 2], vec![-5, 5]], 10_000);
        guard.check(&f, IrForm::Ssa).unwrap();
    }

    #[test]
    fn divergence_is_reported_with_inputs() {
        let f = parse("func @g {\nentry:\n  %a = input\n  %s = addi %a, 1\n  ret %s\n}");
        let guard = PassGuard::before(&f, &[vec![10]], 10_000);
        // A "pass" that changes the constant.
        let mut g = f.clone();
        let (_, i) = g
            .all_insts()
            .find(|&(_, i)| g.inst(i).opcode == Opcode::AddImm)
            .unwrap();
        *g.inst_mut(i).imm = 2;
        let e = guard.check(&g, IrForm::Ssa).unwrap_err();
        match e {
            VerifyError::Divergence {
                inputs,
                expected,
                got,
            } => {
                assert_eq!(inputs, vec![10]);
                assert_eq!(expected, vec![11]);
                assert_eq!(got, vec![12]);
            }
            other => panic!("expected divergence, got {other}"),
        }
    }

    #[test]
    fn residual_phi_is_reported_in_nonssa_form() {
        let f = parse(
            "func @p {\nentry:\n  %a = make 1\n  jump m\nm:\n  %x = phi [entry: %a]\n  ret %x\n}",
        );
        let e = check_form(&f, IrForm::NonSsa).unwrap_err();
        assert!(matches!(e, VerifyError::ResidualPhi { .. }), "{e}");
        check_form(&f, IrForm::Ssa).unwrap();
    }

    #[test]
    fn both_sides_trapping_is_equivalent() {
        // An infinite loop runs out of fuel before and after the no-op
        // "pass": the guard must not flag it.
        let f = parse("func @lp {\nentry:\n  jump entry\n}");
        let guard = PassGuard::before(&f, &[vec![]], 1_000);
        guard.check(&f, IrForm::Ssa).unwrap();
    }

    #[test]
    fn new_trap_is_reported() {
        let f = parse("func @t {\nentry:\n  %a = input\n  ret %a\n}");
        let guard = PassGuard::before(&f, &[vec![4]], 10_000);
        // A "pass" that makes the ret read an undefined variable.
        let mut g = f.clone();
        let ghost = g.new_var("ghost");
        let (_, ret) = g
            .all_insts()
            .find(|&(_, i)| g.inst(i).opcode == Opcode::Ret)
            .unwrap();
        g.inst_mut(ret).uses[0].var = ghost;
        let e = guard.check(&g, IrForm::NonSsa).unwrap_err();
        assert!(matches!(e, VerifyError::Trap { .. }), "{e}");
    }

    #[test]
    fn pin_inconsistency_is_reported_in_pinned_form() {
        let mut f =
            parse("func @pin {\nentry:\n  %a, %b = input\n  %s = add %a, %b\n  ret %s, %a\n}");
        // a and b are defined together: strongly interfering; pinning
        // both to one resource is Fig. 4 case 1/6.
        let r = f.resources.new_virt("bad");
        for name in ["a", "b"] {
            let v = f.vars().find(|&v| f.var(v).name == name).unwrap();
            f.var_mut(v).pin = Some(r);
        }
        let e = check_form(&f, IrForm::PinnedSsa).unwrap_err();
        assert!(matches!(e, VerifyError::Pin(_)), "{e}");
        // The same function is fine when pins are ignored.
        check_form(&f, IrForm::Ssa).unwrap();
    }

    #[test]
    fn structural_breakage_is_reported_first() {
        let mut f = parse("func @s {\nentry:\n  %a = input\n  ret %a\n}");
        // Drop the terminator: the block no longer ends in one.
        let b = f.blocks().next().unwrap();
        f.block_mut(b).insts.pop();
        let e = check_form(&f, IrForm::Ssa).unwrap_err();
        assert!(matches!(e, VerifyError::Structural(_)), "{e}");
    }
}
