//! # tossa-core — pinning-based coalescing for out-of-SSA translation
//!
//! The primary contribution of *Optimizing Translation Out of SSA Using
//! Renaming Constraints* (Rastello, de Ferrière, Guillon — CGO 2004):
//!
//! * [`interfere`] — the interference model (`Variable_kills` Classes
//!   1–2, `stronglyInterfere` Classes 3–4, `Resource_interfere`), with
//!   the optimistic/pessimistic variants of Algorithm 4;
//! * [`pinning`] — pinning bookkeeping and the Fig. 4 correctness
//!   checker;
//! * [`collect`] — the collect phase split as in §5 (`pinningSP`,
//!   `pinningABI`, `pinningCSSA`) plus the `NaiveABI` fallback;
//! * [`affinity`] — the per-block affinity graph and its initial +
//!   weighted bipartite pruning (Algorithm 2);
//! * [`coalesce`] — `Program_pinning` (Algorithm 1), inner-to-outer loop
//!   traversal, component merging, and the Algorithm 3 depth variant;
//! * [`reconstruct`] — Leung & George's mark/reconstruct phases
//!   (out-of-pinned-SSA) with repair copies, redundant-move avoidance and
//!   per-edge parallel copies;
//! * [`pipeline`] — the paper's Table 1 experiment matrix;
//! * [`error`] / [`checked`] / [`chaos`] — the checked-mode safety net:
//!   the structured error taxonomy, per-pass invariant + differential
//!   verification ([`PassGuard`]), and the fault-injection classes that
//!   validate the verifiers;
//! * [`exhaustive`] — a brute-force optimal-pinning oracle for small
//!   functions (the problem is NP-complete, \[LIM3\]), used to bound the
//!   heuristic's suboptimality in tests.
//!
//! ## Example
//!
//! ```
//! use tossa_ir::{machine::Machine, parse::parse_function, interp};
//! use tossa_core::{coalesce, reconstruct};
//!
//! let text = "
//! func @max {
//! entry:
//!   %a, %b = input
//!   %c = cmplt %a, %b
//!   br %c, l, r
//! l:
//!   jump m
//! r:
//!   jump m
//! m:
//!   %m = phi [l: %b], [r: %a]
//!   ret %m
//! }";
//! let mut f = parse_function(text, &Machine::dsp32())?;
//! coalesce::program_pinning(&mut f, &Default::default());
//! let stats = reconstruct::out_of_pinned_ssa(&mut f);
//! // a and b are defined by one instruction, so they strongly interfere:
//! // one argument coalesces with the φ, the other needs a single copy
//! // (a naive replacement would emit two).
//! assert_eq!(stats.phi_copies, 1);
//! assert_eq!(f.count_moves(), 1);
//! assert_eq!(interp::run(&f, &[3, 7], 100)?.outputs, vec![7]);
//! assert_eq!(interp::run(&f, &[7, 3], 100)?.outputs, vec![7]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod affinity;
pub mod chaos;
pub mod checked;
pub mod coalesce;
pub mod collect;
pub mod error;
pub mod exhaustive;
pub mod interfere;
pub mod pinning;
pub mod pipeline;
pub mod reconstruct;

pub use checked::{check_form, IrForm, PassGuard};
pub use coalesce::{program_pinning, program_pinning_cached, CoalesceOptions, CoalesceStats};
pub use error::{CoalesceError, ReconstructError, TossaError, VerifyError};
pub use interfere::InterferenceMode;
pub use pipeline::Experiment;
pub use reconstruct::{out_of_pinned_ssa, out_of_pinned_ssa_checked, ReconstructStats};
