//! Fault injection: deliberate IR/pinning corruptions for verifier
//! validation.
//!
//! Each [`Corruption`] class models a realistic compiler bug — a pass
//! dropping a φ argument, a coalescer merging interfering webs, a copy
//! sequentializer emitting moves in the wrong order — and each class is
//! paired (see [`Corruption::caught_by`]) with the verifier that must
//! catch it. Tests inject every class and assert the corresponding
//! structured [`VerifyError`](crate::error::VerifyError) is produced,
//! proving the checked pipeline's safety net actually trips.

use crate::interfere::{EnvHandles, InterferenceMode};
use tossa_analysis::AnalysisCache;
use tossa_ir::ids::Var;
use tossa_ir::instr::InstData;
use tossa_ir::rng::SplitMix64;
use tossa_ir::{Function, Opcode};

/// A class of deliberate corruption.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Corruption {
    /// Remove one argument (and its predecessor entry) from a φ with at
    /// least two arguments — a broken SSA-repair or edge-split pass.
    DropPhiArg,
    /// Add a second definition of an already-defined variable — a pass
    /// that forgot to rename.
    DoubleDef,
    /// Replace one instruction use with a fresh, never-defined variable —
    /// a dangling reference after aggressive rewriting.
    UndefinedUse,
    /// Pin two strongly-interfering variables to one fresh resource — a
    /// coalescer merging webs it must keep apart (Fig. 2 / Fig. 4 case 6).
    MergeInterferingWebs,
    /// Swap two adjacent moves where the first reads the variable the
    /// second overwrites — a sequentializer ignoring the lost-copy
    /// read-before-overwrite ordering.
    ReorderParallelCopy,
}

/// Which verifier must catch a corruption class.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Catcher {
    /// [`tossa_ir::Function::validate`].
    Structural,
    /// [`tossa_ssa::verify_ssa`].
    Ssa,
    /// [`crate::pinning::check_pinning`].
    Pin,
    /// Differential execution against the pre-corruption function.
    Differential,
}

impl Corruption {
    /// All corruption classes.
    pub fn all() -> &'static [Corruption] {
        use Corruption::*;
        &[
            DropPhiArg,
            DoubleDef,
            UndefinedUse,
            MergeInterferingWebs,
            ReorderParallelCopy,
        ]
    }

    /// The verifier responsible for catching this class.
    pub fn caught_by(self) -> Catcher {
        match self {
            Corruption::DropPhiArg => Catcher::Structural,
            Corruption::DoubleDef | Corruption::UndefinedUse => Catcher::Ssa,
            Corruption::MergeInterferingWebs => Catcher::Pin,
            Corruption::ReorderParallelCopy => Catcher::Differential,
        }
    }
}

/// Injects corruption `c` into `f`, choosing among eligible sites with
/// `rng`. Returns `false` when the function offers no site for this
/// class (e.g. no multi-argument φ), leaving `f` untouched.
pub fn inject(f: &mut Function, c: Corruption, rng: &mut SplitMix64) -> bool {
    match c {
        Corruption::DropPhiArg => drop_phi_arg(f, rng),
        Corruption::DoubleDef => double_def(f, rng),
        Corruption::UndefinedUse => undefined_use(f, rng),
        Corruption::MergeInterferingWebs => merge_interfering_webs(f, rng),
        Corruption::ReorderParallelCopy => reorder_parallel_copy(f, rng),
    }
}

fn pick<T: Copy>(rng: &mut SplitMix64, items: &[T]) -> Option<T> {
    if items.is_empty() {
        None
    } else {
        Some(items[rng.random_range(0..items.len())])
    }
}

fn drop_phi_arg(f: &mut Function, rng: &mut SplitMix64) -> bool {
    let sites: Vec<_> = f
        .all_insts()
        .filter(|&(_, i)| f.inst(i).is_phi() && f.inst(i).uses.len() >= 2)
        .map(|(_, i)| i)
        .collect();
    let Some(i) = pick(rng, &sites) else {
        return false;
    };
    let k = rng.random_range(0..f.inst(i).uses.len());
    f.phi_remove_arg(i, k);
    true
}

fn double_def(f: &mut Function, rng: &mut SplitMix64) -> bool {
    let defined: Vec<Var> = f
        .all_insts()
        .flat_map(|(_, i)| f.inst(i).defs.to_vec())
        .map(|d| d.var)
        .collect();
    let Some(v) = pick(rng, &defined) else {
        return false;
    };
    let blocks: Vec<_> = f.blocks().collect();
    let Some(b) = pick(rng, &blocks) else {
        return false;
    };
    // Before the terminator, after any φs.
    let at = f
        .block(b)
        .insts
        .len()
        .saturating_sub(1)
        .max(f.first_non_phi(b));
    f.insert_inst(
        b,
        at,
        InstData::new(Opcode::Make)
            .with_defs(vec![v.into()])
            .with_imm(0),
    );
    true
}

fn undefined_use(f: &mut Function, rng: &mut SplitMix64) -> bool {
    let sites: Vec<_> = f
        .all_insts()
        .filter(|&(_, i)| !f.inst(i).is_phi() && !f.inst(i).uses.is_empty())
        .map(|(_, i)| i)
        .collect();
    let Some(i) = pick(rng, &sites) else {
        return false;
    };
    let ghost = f.new_var("chaos_ghost");
    let k = rng.random_range(0..f.inst(i).uses.len());
    f.inst_mut(i).uses[k].var = ghost;
    true
}

fn merge_interfering_webs(f: &mut Function, rng: &mut SplitMix64) -> bool {
    let pairs: Vec<(Var, Var)> = {
        let mut cache = AnalysisCache::new();
        let handles = EnvHandles::from_cache(f, &mut cache);
        let env = handles.env(f, InterferenceMode::Exact);
        let unpinned: Vec<Var> = f.vars().filter(|&v| f.var(v).pin.is_none()).collect();
        let mut pairs = Vec::new();
        for (k, &x) in unpinned.iter().enumerate() {
            for &y in &unpinned[k + 1..] {
                if env.strongly_interfere(x, y) {
                    pairs.push((x, y));
                }
            }
        }
        pairs
    };
    let Some((x, y)) = pick(rng, &pairs) else {
        return false;
    };
    let r = f.resources.new_virt("chaos_web");
    f.var_mut(x).pin = Some(r);
    f.var_mut(y).pin = Some(r);
    true
}

/// A class of deliberate register-allocation corruption.
///
/// These model allocator bugs rather than pass bugs, so they live in a
/// separate enum with a separate injection point: between
/// [`tossa_regalloc::prepare`] and [`tossa_regalloc::verify_allocation`],
/// mutating the [`Assignment`](tossa_regalloc::Assignment) (or the spill
/// code) the verifier is about to check. Each class is caught by a
/// specific structured [`AllocError`](tossa_regalloc::AllocError).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AllocCorruption {
    /// Force two simultaneously-live variables onto one register — a
    /// scan that mis-sorted intervals. Caught as
    /// [`AllocError::RegisterOverlap`](tossa_regalloc::AllocError::RegisterOverlap).
    AssignOverlappingInterval,
    /// Move a precolored variable off its pinned register — an allocator
    /// ignoring the out-of-SSA pinning. Caught as
    /// [`AllocError::PinClobbered`](tossa_regalloc::AllocError::PinClobbered).
    ClobberPinnedResource,
    /// Delete a `spillld`, leaving its reload temporary undefined — a
    /// spiller losing an insertion. Caught as
    /// [`AllocError::UndefinedUse`](tossa_regalloc::AllocError::UndefinedUse).
    DropReload,
    /// Redirect one live-range-split boundary reload (a `spillld`
    /// defining a `.s` hot sub-web) to a slot nothing stores into — a
    /// splitter miscomputing the boundary slot, so the store/reload
    /// pairing the split promised is broken. Caught as
    /// [`AllocError::UnpairedSlot`](tossa_regalloc::AllocError::UnpairedSlot).
    DropSplitCopy,
    /// Force two webs onto one register at a point where *both ranges*
    /// are live, choosing a pair where at least one web has a lifetime
    /// hole — the PR9 failure mode: hull interference would have caught
    /// the overlap trivially, but a buggy hole check (one that treats
    /// the whole hull gap as free) would miss it. Caught as
    /// [`AllocError::RegisterOverlap`](tossa_regalloc::AllocError::RegisterOverlap).
    AssignInHole,
}

impl AllocCorruption {
    /// All allocation corruption classes.
    pub fn all() -> &'static [AllocCorruption] {
        use AllocCorruption::*;
        &[
            AssignOverlappingInterval,
            ClobberPinnedResource,
            DropReload,
            DropSplitCopy,
            AssignInHole,
        ]
    }
}

/// Injects allocation corruption `c` into the prepared state: the
/// function `f` (already spill-rewritten) and the assignment `asg` about
/// to be verified. Returns `false` when there is no site (e.g. no
/// precolored variable, no spill code), leaving both untouched.
pub fn inject_alloc(
    f: &mut Function,
    asg: &mut tossa_regalloc::Assignment,
    c: AllocCorruption,
    rng: &mut SplitMix64,
) -> bool {
    match c {
        AllocCorruption::AssignOverlappingInterval => assign_overlapping(f, asg, rng),
        AllocCorruption::ClobberPinnedResource => clobber_pinned(f, asg, rng),
        AllocCorruption::DropReload => drop_reload(f, rng),
        AllocCorruption::DropSplitCopy => drop_split_copy(f, rng),
        AllocCorruption::AssignInHole => assign_in_hole(f, asg, rng),
    }
}

fn assign_in_hole(
    f: &Function,
    asg: &mut tossa_regalloc::Assignment,
    rng: &mut SplitMix64,
) -> bool {
    // Pairs whose per-range lifetimes overlap where at least one side
    // has a lifetime hole: merging them is wrong at a point both ranges
    // cover, yet a hole check that wrongly frees the whole hull gap
    // would wave it through. The hull prefilter alone catches every
    // such pair, so this class discriminates the range walk itself.
    let ivs = tossa_regalloc::intervals::build(f);
    let mut sites: Vec<(Var, Var)> = Vec::new();
    for (k, x) in ivs.items.iter().enumerate() {
        for y in &ivs.items[k + 1..] {
            let holed = ivs.ranges_of(x).len() > 1 || ivs.ranges_of(y).len() > 1;
            if holed
                && f.var(x.var).reg.is_none()
                && f.var(y.var).reg.is_none()
                && asg.get(x.var).is_some()
                && asg.get(y.var).is_some()
                && asg.get(x.var) != asg.get(y.var)
                && ivs.overlap(x, y)
            {
                sites.push((x.var, y.var));
            }
        }
    }
    let Some((a, b)) = pick(rng, &sites) else {
        return false;
    };
    let Some(stolen) = asg.get(b) else {
        return false;
    };
    asg.set(a, stolen);
    true
}

fn assign_overlapping(
    f: &Function,
    asg: &mut tossa_regalloc::Assignment,
    rng: &mut SplitMix64,
) -> bool {
    // Two distinct unpinned variables used by one instruction are
    // simultaneously live at its use point; give the first the second's
    // register.
    let mut sites: Vec<(Var, Var)> = Vec::new();
    for (_, i) in f.all_insts() {
        let uses = &f.inst(i).uses;
        for (k, a) in uses.iter().enumerate() {
            for b in &uses[k + 1..] {
                if a.var != b.var
                    && f.var(a.var).reg.is_none()
                    && f.var(b.var).reg.is_none()
                    && asg.get(a.var) != asg.get(b.var)
                    && asg.get(b.var).is_some()
                {
                    sites.push((a.var, b.var));
                }
            }
        }
    }
    let Some((a, b)) = pick(rng, &sites) else {
        return false;
    };
    let Some(stolen) = asg.get(b) else {
        return false;
    };
    asg.set(a, stolen);
    true
}

fn clobber_pinned(
    f: &Function,
    asg: &mut tossa_regalloc::Assignment,
    rng: &mut SplitMix64,
) -> bool {
    let pinned: Vec<Var> = {
        let mut seen = std::collections::HashSet::new();
        f.all_insts()
            .flat_map(|(_, i)| f.inst(i).operands().map(|o| o.var).collect::<Vec<_>>())
            .filter(|&v| seen.insert(v) && f.var(v).reg.is_some())
            .collect()
    };
    let Some(v) = pick(rng, &pinned) else {
        return false;
    };
    let Some(have) = f.var(v).reg else {
        return false;
    };
    let Some(other) = f.machine.regs().find(|&r| r != have) else {
        return false;
    };
    asg.set(v, other);
    true
}

fn drop_reload(f: &mut Function, rng: &mut SplitMix64) -> bool {
    let sites: Vec<_> = f
        .all_insts()
        .filter(|&(_, i)| f.inst(i).opcode == Opcode::SpillLoad)
        .collect();
    let Some((b, i)) = pick(rng, &sites) else {
        return false;
    };
    f.remove_inst(b, i);
    true
}

fn drop_split_copy(f: &mut Function, rng: &mut SplitMix64) -> bool {
    // Boundary reloads inserted by a live-range split define the `.s`
    // hot sub-web; any other reload defines a `.r` use temporary.
    let sites: Vec<_> = f
        .all_insts()
        .filter(|&(_, i)| {
            let inst = f.inst(i);
            inst.opcode == Opcode::SpillLoad
                && inst
                    .defs
                    .first()
                    .is_some_and(|o| f.var(o.var).name.ends_with(".s"))
        })
        .map(|(_, i)| i)
        .collect();
    let Some(i) = pick(rng, &sites) else {
        return false;
    };
    let unpaired = f
        .all_insts()
        .filter(|&(_, j)| matches!(f.inst(j).opcode, Opcode::SpillLoad | Opcode::SpillStore))
        .map(|(_, j)| f.inst(j).imm)
        .max()
        .unwrap_or(0)
        + 1;
    *f.inst_mut(i).imm = unpaired;
    true
}

fn reorder_parallel_copy(f: &mut Function, rng: &mut SplitMix64) -> bool {
    // Adjacent move pairs where the first reads the variable the second
    // overwrites: correct sequentialization ordered the read before the
    // overwrite, so swapping makes the first move read the new value.
    let mut sites = Vec::new();
    for b in f.blocks() {
        let insts: Vec<_> = f.block_insts(b).collect();
        for w in insts.windows(2) {
            let (a, c) = (f.inst(w[0]), f.inst(w[1]));
            if a.opcode.is_move()
                && c.opcode.is_move()
                && a.uses[0].var == c.defs[0].var
                && a.defs[0].var != c.defs[0].var
            {
                sites.push((b, w[0], w[1]));
            }
        }
    }
    let Some((b, i, j)) = pick(rng, &sites) else {
        return false;
    };
    let list = &mut f.block_mut(b).insts;
    let (Some(pi), Some(pj)) = (
        list.iter().position(|&x| x == i),
        list.iter().position(|&x| x == j),
    ) else {
        return false;
    };
    list.swap(pi, pj);
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checked::{check_form, IrForm, PassGuard};
    use crate::error::VerifyError;
    use tossa_ir::machine::Machine;
    use tossa_ir::parse::parse_function;

    fn parse(text: &str) -> Function {
        parse_function(text, &Machine::dsp32()).unwrap()
    }

    /// A function with a multi-argument φ, interfering values, and (after
    /// reconstruction) a dependent copy chain — a site for every class.
    fn specimen() -> Function {
        parse(
            "func @chaos {
entry:
  %a, %b, %n = input
  %z = make 0
  jump head
head:
  %x = phi [entry: %a], [latch: %y]
  %y = phi [entry: %b], [latch: %x]
  %i = phi [entry: %z], [latch: %i2]
  %i2 = addi %i, 1
  %c = cmplt %i2, %n
  br %c, latch, exit
latch:
  jump head
exit:
  ret %x, %y
}",
        )
    }

    #[test]
    fn every_class_has_a_site_on_the_specimen() {
        for (k, &c) in Corruption::all().iter().enumerate() {
            let mut f = specimen();
            if c == Corruption::ReorderParallelCopy {
                crate::reconstruct::out_of_pinned_ssa(&mut f);
            }
            let mut rng = SplitMix64::seed_from_u64(k as u64);
            assert!(inject(&mut f, c, &mut rng), "{c:?} found no site");
        }
    }

    #[test]
    fn drop_phi_arg_caught_by_validate() {
        let mut f = specimen();
        let mut rng = SplitMix64::seed_from_u64(1);
        assert!(inject(&mut f, Corruption::DropPhiArg, &mut rng));
        let e = check_form(&f, IrForm::Ssa).unwrap_err();
        assert!(matches!(e, VerifyError::Structural(_)), "{e}");
    }

    #[test]
    fn double_def_caught_by_verify_ssa() {
        let mut f = specimen();
        let mut rng = SplitMix64::seed_from_u64(2);
        assert!(inject(&mut f, Corruption::DoubleDef, &mut rng));
        let e = check_form(&f, IrForm::Ssa).unwrap_err();
        assert!(matches!(e, VerifyError::Ssa(_)), "{e}");
    }

    #[test]
    fn undefined_use_caught_by_verify_ssa() {
        let mut f = specimen();
        let mut rng = SplitMix64::seed_from_u64(3);
        assert!(inject(&mut f, Corruption::UndefinedUse, &mut rng));
        let e = check_form(&f, IrForm::Ssa).unwrap_err();
        assert!(matches!(e, VerifyError::Ssa(_)), "{e}");
    }

    #[test]
    fn merged_webs_caught_by_check_pinning() {
        let mut f = specimen();
        let mut rng = SplitMix64::seed_from_u64(4);
        assert!(inject(&mut f, Corruption::MergeInterferingWebs, &mut rng));
        let e = check_form(&f, IrForm::PinnedSsa).unwrap_err();
        assert!(matches!(e, VerifyError::Pin(_)), "{e}");
    }

    #[test]
    fn reordered_copies_caught_by_differential_execution() {
        // The swap loop's latch copies form a dependency chain after
        // sequentialization; reordering them changes the outputs.
        let mut f = specimen();
        crate::reconstruct::out_of_pinned_ssa(&mut f);
        let inputs: Vec<Vec<i64>> = vec![vec![7, 9, 1], vec![7, 9, 2], vec![7, 9, 5]];
        let guard = PassGuard::before(&f, &inputs, 100_000);
        let mut rng = SplitMix64::seed_from_u64(5);
        assert!(inject(&mut f, Corruption::ReorderParallelCopy, &mut rng));
        let e = guard.check(&f, IrForm::NonSsa).unwrap_err();
        assert!(
            matches!(e, VerifyError::Divergence { .. }),
            "expected divergence, got {e}"
        );
    }

    #[test]
    fn no_site_leaves_the_function_untouched() {
        let f0 = parse("func @tiny {\nentry:\n  %a = input\n  ret %a\n}");
        for (k, &c) in [Corruption::DropPhiArg, Corruption::ReorderParallelCopy]
            .iter()
            .enumerate()
        {
            let mut f = f0.clone();
            let mut rng = SplitMix64::seed_from_u64(k as u64);
            assert!(!inject(&mut f, c, &mut rng), "{c:?}");
            assert_eq!(f.to_string(), f0.to_string());
        }
    }

    /// Prepares a function for allocation-fault injection: parse,
    /// allocate up to the assignment (spill code in place), assignment
    /// ready to corrupt.
    fn prepared_for_alloc(text: &str) -> (Function, tossa_regalloc::Assignment) {
        let mut f = parse(text);
        let prep = tossa_regalloc::prepare(&mut f, &tossa_regalloc::AllocOptions::default())
            .expect("allocation prepares");
        (f, prep.assignment)
    }

    /// High register pressure: forces spill code so [`AllocCorruption::DropReload`]
    /// has a site.
    fn pressure_specimen_text() -> String {
        let mut text = String::from("func @hp {\nentry:\n  %i = input\n");
        for k in 0..24 {
            text.push_str(&format!("  %v{k} = addi %i, {k}\n"));
        }
        text.push_str("  %s = make 0\n");
        for k in 0..24 {
            text.push_str(&format!("  %s = add %s, %v{k}\n"));
        }
        text.push_str("  ret %s\n}\n");
        text
    }

    #[test]
    fn assign_overlapping_interval_caught_as_register_overlap() {
        let (mut f, mut asg) = prepared_for_alloc(
            "func @a {\nentry:\n  %a, %b = input\n  %c = add %a, %b\n  ret %c\n}",
        );
        let mut rng = SplitMix64::seed_from_u64(7);
        assert!(inject_alloc(
            &mut f,
            &mut asg,
            AllocCorruption::AssignOverlappingInterval,
            &mut rng
        ));
        let e = tossa_regalloc::verify_allocation(&f, &asg).unwrap_err();
        assert!(
            matches!(e, tossa_regalloc::AllocError::RegisterOverlap { .. }),
            "{e}"
        );
    }

    #[test]
    fn clobber_pinned_resource_caught_as_pin_clobbered() {
        let (mut f, mut asg) = prepared_for_alloc(
            "func @p {\nentry:\n  R0, %b = input\n  %c = add R0, %b\n  ret %c\n}",
        );
        let mut rng = SplitMix64::seed_from_u64(8);
        assert!(inject_alloc(
            &mut f,
            &mut asg,
            AllocCorruption::ClobberPinnedResource,
            &mut rng
        ));
        let e = tossa_regalloc::verify_allocation(&f, &asg).unwrap_err();
        assert!(
            matches!(e, tossa_regalloc::AllocError::PinClobbered { .. }),
            "{e}"
        );
    }

    #[test]
    fn drop_reload_caught_as_undefined_use() {
        let (mut f, mut asg) = prepared_for_alloc(&pressure_specimen_text());
        let mut rng = SplitMix64::seed_from_u64(9);
        assert!(inject_alloc(
            &mut f,
            &mut asg,
            AllocCorruption::DropReload,
            &mut rng
        ));
        let e = tossa_regalloc::verify_allocation(&f, &asg).unwrap_err();
        assert!(
            matches!(e, tossa_regalloc::AllocError::UndefinedUse { .. }),
            "{e}"
        );
    }

    /// Pressure shaped so the cost-driven allocator must split: six
    /// webs crossing a loop (weight 7 = entry def + body use ×5 + cold
    /// use) against sixteen heavier short webs (weight 9, dead before
    /// the loop) overflow the register file inside the entry block, so
    /// the cheapest normalized victims are exactly the loop-crossing
    /// webs and their conflict point lies outside the loop — the split
    /// precondition — while the hot sub-webs face no pressure and stay
    /// register-resident.
    fn split_specimen_text() -> String {
        let mut text = String::from("func @sp {\nentry:\n  %n = input\n");
        for k in 0..6 {
            text.push_str(&format!("  %h{k} = addi %n, {k}\n"));
        }
        text.push_str("  %t = make 0\n");
        for k in 0..16 {
            text.push_str(&format!("  %c{k} = addi %n, {}\n", 100 + k));
        }
        for k in 0..16 {
            for _ in 0..8 {
                text.push_str(&format!("  %t = add %t, %c{k}\n"));
            }
        }
        text.push_str("  %z = mov %t\n  jump head\nhead:\n");
        text.push_str("  %cc = cmplt %z, %n\n  br %cc, body, mid\nbody:\n");
        for k in 0..6 {
            text.push_str(&format!("  %z = add %z, %h{k}\n"));
        }
        text.push_str("  jump head\nmid:\n  %s = mov %z\n");
        for k in 0..6 {
            text.push_str(&format!("  %s = add %s, %h{k}\n"));
        }
        text.push_str("  ret %s\n}\n");
        text
    }

    /// A web (%a) with a lifetime hole — dead between its last use and
    /// its redefinition — plus a web (%c) live across that hole: the
    /// [`AllocCorruption::AssignInHole`] site shape.
    fn hole_specimen_text() -> &'static str {
        "func @ih {
entry:
  %a, %p = input
  %b = add %a, %a
  %c = add %b, %p
  %a = make 5
  %r = add %a, %c
  ret %r
}"
    }

    #[test]
    fn assign_in_hole_caught_as_register_overlap() {
        let (mut f, mut asg) = prepared_for_alloc(hole_specimen_text());
        let mut rng = SplitMix64::seed_from_u64(12);
        assert!(
            inject_alloc(&mut f, &mut asg, AllocCorruption::AssignInHole, &mut rng),
            "the specimen offers no holed overlapping pair:\n{f}"
        );
        let e = tossa_regalloc::verify_allocation(&f, &asg).unwrap_err();
        assert!(
            matches!(e, tossa_regalloc::AllocError::RegisterOverlap { .. }),
            "{e}"
        );
    }

    #[test]
    fn drop_split_copy_caught_as_unpaired_slot() {
        let (mut f, mut asg) = prepared_for_alloc(&split_specimen_text());
        let mut rng = SplitMix64::seed_from_u64(11);
        assert!(
            inject_alloc(&mut f, &mut asg, AllocCorruption::DropSplitCopy, &mut rng),
            "the specimen never split:\n{f}"
        );
        let e = tossa_regalloc::verify_allocation(&f, &asg).unwrap_err();
        assert!(
            matches!(e, tossa_regalloc::AllocError::UnpairedSlot { .. }),
            "{e}"
        );
    }

    #[test]
    fn alloc_classes_without_sites_leave_state_untouched() {
        // No pinned variables and no spill code: three of the four
        // classes have no site.
        let (mut f, mut asg) = prepared_for_alloc("func @n {\nentry:\n  %a = input\n  ret %a\n}");
        let before = f.to_string();
        let asg0 = asg.clone();
        let mut rng = SplitMix64::seed_from_u64(10);
        for c in [
            AllocCorruption::ClobberPinnedResource,
            AllocCorruption::DropReload,
            AllocCorruption::DropSplitCopy,
            AllocCorruption::AssignInHole,
        ] {
            assert!(!inject_alloc(&mut f, &mut asg, c, &mut rng), "{c:?}");
        }
        assert_eq!(f.to_string(), before);
        assert_eq!(asg, asg0);
    }

    #[test]
    fn catcher_map_covers_all_classes() {
        use std::collections::HashSet;
        let catchers: HashSet<_> = Corruption::all()
            .iter()
            .map(|c| format!("{:?}", c.caught_by()))
            .collect();
        assert_eq!(catchers.len(), 4, "all four verifiers exercised");
    }
}
