//! Fault injection: deliberate IR/pinning corruptions for verifier
//! validation.
//!
//! Each [`Corruption`] class models a realistic compiler bug — a pass
//! dropping a φ argument, a coalescer merging interfering webs, a copy
//! sequentializer emitting moves in the wrong order — and each class is
//! paired (see [`Corruption::caught_by`]) with the verifier that must
//! catch it. Tests inject every class and assert the corresponding
//! structured [`VerifyError`](crate::error::VerifyError) is produced,
//! proving the checked pipeline's safety net actually trips.

use crate::interfere::{EnvHandles, InterferenceMode};
use tossa_analysis::AnalysisCache;
use tossa_ir::ids::Var;
use tossa_ir::instr::InstData;
use tossa_ir::rng::SplitMix64;
use tossa_ir::{Function, Opcode};

/// A class of deliberate corruption.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Corruption {
    /// Remove one argument (and its predecessor entry) from a φ with at
    /// least two arguments — a broken SSA-repair or edge-split pass.
    DropPhiArg,
    /// Add a second definition of an already-defined variable — a pass
    /// that forgot to rename.
    DoubleDef,
    /// Replace one instruction use with a fresh, never-defined variable —
    /// a dangling reference after aggressive rewriting.
    UndefinedUse,
    /// Pin two strongly-interfering variables to one fresh resource — a
    /// coalescer merging webs it must keep apart (Fig. 2 / Fig. 4 case 6).
    MergeInterferingWebs,
    /// Swap two adjacent moves where the first reads the variable the
    /// second overwrites — a sequentializer ignoring the lost-copy
    /// read-before-overwrite ordering.
    ReorderParallelCopy,
}

/// Which verifier must catch a corruption class.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Catcher {
    /// [`tossa_ir::Function::validate`].
    Structural,
    /// [`tossa_ssa::verify_ssa`].
    Ssa,
    /// [`crate::pinning::check_pinning`].
    Pin,
    /// Differential execution against the pre-corruption function.
    Differential,
}

impl Corruption {
    /// All corruption classes.
    pub fn all() -> &'static [Corruption] {
        use Corruption::*;
        &[
            DropPhiArg,
            DoubleDef,
            UndefinedUse,
            MergeInterferingWebs,
            ReorderParallelCopy,
        ]
    }

    /// The verifier responsible for catching this class.
    pub fn caught_by(self) -> Catcher {
        match self {
            Corruption::DropPhiArg => Catcher::Structural,
            Corruption::DoubleDef | Corruption::UndefinedUse => Catcher::Ssa,
            Corruption::MergeInterferingWebs => Catcher::Pin,
            Corruption::ReorderParallelCopy => Catcher::Differential,
        }
    }
}

/// Injects corruption `c` into `f`, choosing among eligible sites with
/// `rng`. Returns `false` when the function offers no site for this
/// class (e.g. no multi-argument φ), leaving `f` untouched.
pub fn inject(f: &mut Function, c: Corruption, rng: &mut SplitMix64) -> bool {
    match c {
        Corruption::DropPhiArg => drop_phi_arg(f, rng),
        Corruption::DoubleDef => double_def(f, rng),
        Corruption::UndefinedUse => undefined_use(f, rng),
        Corruption::MergeInterferingWebs => merge_interfering_webs(f, rng),
        Corruption::ReorderParallelCopy => reorder_parallel_copy(f, rng),
    }
}

fn pick<T: Copy>(rng: &mut SplitMix64, items: &[T]) -> Option<T> {
    if items.is_empty() {
        None
    } else {
        Some(items[rng.random_range(0..items.len())])
    }
}

fn drop_phi_arg(f: &mut Function, rng: &mut SplitMix64) -> bool {
    let sites: Vec<_> = f
        .all_insts()
        .filter(|&(_, i)| f.inst(i).is_phi() && f.inst(i).uses.len() >= 2)
        .map(|(_, i)| i)
        .collect();
    let Some(i) = pick(rng, &sites) else {
        return false;
    };
    let k = rng.random_range(0..f.inst(i).uses.len());
    let data = f.inst_mut(i);
    data.uses.remove(k);
    data.phi_preds.remove(k);
    true
}

fn double_def(f: &mut Function, rng: &mut SplitMix64) -> bool {
    let defined: Vec<Var> = f
        .all_insts()
        .flat_map(|(_, i)| f.inst(i).defs.clone())
        .map(|d| d.var)
        .collect();
    let Some(v) = pick(rng, &defined) else {
        return false;
    };
    let blocks: Vec<_> = f.blocks().collect();
    let b = pick(rng, &blocks).expect("function has blocks");
    // Before the terminator, after any φs.
    let at = f
        .block(b)
        .insts
        .len()
        .saturating_sub(1)
        .max(f.first_non_phi(b));
    f.insert_inst(
        b,
        at,
        InstData::new(Opcode::Make)
            .with_defs(vec![v.into()])
            .with_imm(0),
    );
    true
}

fn undefined_use(f: &mut Function, rng: &mut SplitMix64) -> bool {
    let sites: Vec<_> = f
        .all_insts()
        .filter(|&(_, i)| !f.inst(i).is_phi() && !f.inst(i).uses.is_empty())
        .map(|(_, i)| i)
        .collect();
    let Some(i) = pick(rng, &sites) else {
        return false;
    };
    let ghost = f.new_var("chaos_ghost");
    let k = rng.random_range(0..f.inst(i).uses.len());
    f.inst_mut(i).uses[k].var = ghost;
    true
}

fn merge_interfering_webs(f: &mut Function, rng: &mut SplitMix64) -> bool {
    let pairs: Vec<(Var, Var)> = {
        let mut cache = AnalysisCache::new();
        let handles = EnvHandles::from_cache(f, &mut cache);
        let env = handles.env(f, InterferenceMode::Exact);
        let unpinned: Vec<Var> = f.vars().filter(|&v| f.var(v).pin.is_none()).collect();
        let mut pairs = Vec::new();
        for (k, &x) in unpinned.iter().enumerate() {
            for &y in &unpinned[k + 1..] {
                if env.strongly_interfere(x, y) {
                    pairs.push((x, y));
                }
            }
        }
        pairs
    };
    let Some((x, y)) = pick(rng, &pairs) else {
        return false;
    };
    let r = f.resources.new_virt("chaos_web");
    f.var_mut(x).pin = Some(r);
    f.var_mut(y).pin = Some(r);
    true
}

fn reorder_parallel_copy(f: &mut Function, rng: &mut SplitMix64) -> bool {
    // Adjacent move pairs where the first reads the variable the second
    // overwrites: correct sequentialization ordered the read before the
    // overwrite, so swapping makes the first move read the new value.
    let mut sites = Vec::new();
    for b in f.blocks() {
        let insts: Vec<_> = f.block_insts(b).collect();
        for w in insts.windows(2) {
            let (a, c) = (f.inst(w[0]), f.inst(w[1]));
            if a.opcode.is_move()
                && c.opcode.is_move()
                && a.uses[0].var == c.defs[0].var
                && a.defs[0].var != c.defs[0].var
            {
                sites.push((b, w[0], w[1]));
            }
        }
    }
    let Some((b, i, j)) = pick(rng, &sites) else {
        return false;
    };
    let list = &mut f.block_mut(b).insts;
    let pi = list.iter().position(|&x| x == i).expect("site in block");
    let pj = list.iter().position(|&x| x == j).expect("site in block");
    list.swap(pi, pj);
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checked::{check_form, IrForm, PassGuard};
    use crate::error::VerifyError;
    use tossa_ir::machine::Machine;
    use tossa_ir::parse::parse_function;

    fn parse(text: &str) -> Function {
        parse_function(text, &Machine::dsp32()).unwrap()
    }

    /// A function with a multi-argument φ, interfering values, and (after
    /// reconstruction) a dependent copy chain — a site for every class.
    fn specimen() -> Function {
        parse(
            "func @chaos {
entry:
  %a, %b, %n = input
  %z = make 0
  jump head
head:
  %x = phi [entry: %a], [latch: %y]
  %y = phi [entry: %b], [latch: %x]
  %i = phi [entry: %z], [latch: %i2]
  %i2 = addi %i, 1
  %c = cmplt %i2, %n
  br %c, latch, exit
latch:
  jump head
exit:
  ret %x, %y
}",
        )
    }

    #[test]
    fn every_class_has_a_site_on_the_specimen() {
        for (k, &c) in Corruption::all().iter().enumerate() {
            let mut f = specimen();
            if c == Corruption::ReorderParallelCopy {
                crate::reconstruct::out_of_pinned_ssa(&mut f);
            }
            let mut rng = SplitMix64::seed_from_u64(k as u64);
            assert!(inject(&mut f, c, &mut rng), "{c:?} found no site");
        }
    }

    #[test]
    fn drop_phi_arg_caught_by_validate() {
        let mut f = specimen();
        let mut rng = SplitMix64::seed_from_u64(1);
        assert!(inject(&mut f, Corruption::DropPhiArg, &mut rng));
        let e = check_form(&f, IrForm::Ssa).unwrap_err();
        assert!(matches!(e, VerifyError::Structural(_)), "{e}");
    }

    #[test]
    fn double_def_caught_by_verify_ssa() {
        let mut f = specimen();
        let mut rng = SplitMix64::seed_from_u64(2);
        assert!(inject(&mut f, Corruption::DoubleDef, &mut rng));
        let e = check_form(&f, IrForm::Ssa).unwrap_err();
        assert!(matches!(e, VerifyError::Ssa(_)), "{e}");
    }

    #[test]
    fn undefined_use_caught_by_verify_ssa() {
        let mut f = specimen();
        let mut rng = SplitMix64::seed_from_u64(3);
        assert!(inject(&mut f, Corruption::UndefinedUse, &mut rng));
        let e = check_form(&f, IrForm::Ssa).unwrap_err();
        assert!(matches!(e, VerifyError::Ssa(_)), "{e}");
    }

    #[test]
    fn merged_webs_caught_by_check_pinning() {
        let mut f = specimen();
        let mut rng = SplitMix64::seed_from_u64(4);
        assert!(inject(&mut f, Corruption::MergeInterferingWebs, &mut rng));
        let e = check_form(&f, IrForm::PinnedSsa).unwrap_err();
        assert!(matches!(e, VerifyError::Pin(_)), "{e}");
    }

    #[test]
    fn reordered_copies_caught_by_differential_execution() {
        // The swap loop's latch copies form a dependency chain after
        // sequentialization; reordering them changes the outputs.
        let mut f = specimen();
        crate::reconstruct::out_of_pinned_ssa(&mut f);
        let inputs: Vec<Vec<i64>> = vec![vec![7, 9, 1], vec![7, 9, 2], vec![7, 9, 5]];
        let guard = PassGuard::before(&f, &inputs, 100_000);
        let mut rng = SplitMix64::seed_from_u64(5);
        assert!(inject(&mut f, Corruption::ReorderParallelCopy, &mut rng));
        let e = guard.check(&f, IrForm::NonSsa).unwrap_err();
        assert!(
            matches!(e, VerifyError::Divergence { .. }),
            "expected divergence, got {e}"
        );
    }

    #[test]
    fn no_site_leaves_the_function_untouched() {
        let f0 = parse("func @tiny {\nentry:\n  %a = input\n  ret %a\n}");
        for (k, &c) in [Corruption::DropPhiArg, Corruption::ReorderParallelCopy]
            .iter()
            .enumerate()
        {
            let mut f = f0.clone();
            let mut rng = SplitMix64::seed_from_u64(k as u64);
            assert!(!inject(&mut f, c, &mut rng), "{c:?}");
            assert_eq!(f.to_string(), f0.to_string());
        }
    }

    #[test]
    fn catcher_map_covers_all_classes() {
        use std::collections::HashSet;
        let catchers: HashSet<_> = Corruption::all()
            .iter()
            .map(|c| format!("{:?}", c.caught_by()))
            .collect();
        assert_eq!(catchers.len(), 4, "all four verifiers exercised");
    }
}
