//! Exhaustive φ-pinning oracle for small functions.
//!
//! The paper proves the φ coalescing problem NP-complete (\[10\], \[LIM3\]),
//! so `Program_pinning` is a heuristic. For functions whose affinity
//! edge count is small this module enumerates *every* subset of
//! coalescing decisions, materializes each legal pinning, runs the real
//! reconstruction, and reports the true minimum move count — an oracle
//! used by tests and ablations to measure how far the greedy pruning is
//! from optimal.

use crate::interfere::{InterferenceEnv, InterferenceMode};
use crate::reconstruct::out_of_pinned_ssa;
use std::collections::HashMap;
use tossa_analysis::AnalysisCache;
use tossa_ir::ids::{Resource, Var};
use tossa_ir::Function;

/// Result of the exhaustive search.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExhaustiveResult {
    /// Minimum move count over all legal pinning subsets.
    pub best_moves: usize,
    /// Number of legal assignments evaluated.
    pub evaluated: usize,
    /// Number of candidate affinity edges.
    pub edges: usize,
}

/// Maximum number of affinity edges the search will enumerate (2^N
/// reconstructions).
pub const MAX_EDGES: usize = 12;

/// Runs the exhaustive search on a pinned SSA function (constraints
/// collected, φ coalescing **not** yet applied). Returns `None` when the
/// function has more than [`MAX_EDGES`] candidate edges.
pub fn exhaustive_phi_pinning(f: &Function) -> Option<ExhaustiveResult> {
    // Candidate edges: (φ def var, argument var) pairs whose current
    // resources differ.
    let mut edges: Vec<(Var, Var)> = Vec::new();
    for (_, i) in f.all_insts() {
        let inst = f.inst(i);
        if !inst.is_phi() {
            continue;
        }
        let x = inst.defs[0].var;
        for u in inst.uses {
            if u.var == x {
                continue;
            }
            let same = match (f.var(x).pin, f.var(u.var).pin) {
                (Some(a), Some(b)) => a == b,
                _ => false,
            };
            if !same && !edges.contains(&(x, u.var)) {
                edges.push((x, u.var));
            }
        }
    }
    if edges.len() > MAX_EDGES {
        return None;
    }

    let mut cache = AnalysisCache::new();
    let dt = cache.domtree(f);
    let live = cache.liveness(f);
    let defs = cache.defs(f);
    let lad = cache.live_at_defs(f);
    let env = InterferenceEnv {
        f,
        dt: &dt,
        live: &live,
        defs: &defs,
        lad: &lad,
        mode: InterferenceMode::Exact,
    };

    let mut best: Option<usize> = None;
    let mut evaluated = 0;
    for mask in 0u32..(1 << edges.len()) {
        let chosen: Vec<(Var, Var)> = edges
            .iter()
            .enumerate()
            .filter(|&(k, _)| mask & (1 << k) != 0)
            .map(|(_, &e)| e)
            .collect();
        let Some(groups) = build_groups(f, &chosen) else {
            continue;
        };
        if !legal(f, &env, &groups) {
            continue;
        }
        let mut candidate = f.clone();
        apply_groups(&mut candidate, &groups);
        let _ = out_of_pinned_ssa(&mut candidate);
        let moves = candidate.count_moves();
        evaluated += 1;
        best = Some(best.map_or(moves, |b: usize| b.min(moves)));
    }
    Some(ExhaustiveResult {
        best_moves: best.expect("the empty assignment is always legal"),
        evaluated,
        edges: edges.len(),
    })
}

/// Groups of variables induced by existing pins plus chosen edges.
/// Returns `None` if a group would contain two distinct physical
/// resources.
fn build_groups(f: &Function, chosen: &[(Var, Var)]) -> Option<Vec<Vec<Var>>> {
    let n = f.num_vars();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(p: &mut [usize], mut x: usize) -> usize {
        while p[x] != x {
            p[x] = p[p[x]];
            x = p[x];
        }
        x
    }
    // Union existing resource co-members.
    let mut by_res: HashMap<Resource, Var> = HashMap::new();
    for v in f.vars() {
        if let Some(r) = f.var(v).pin {
            match by_res.get(&r) {
                Some(&head) => {
                    let (a, b) = (
                        find(&mut parent, head.index()),
                        find(&mut parent, v.index()),
                    );
                    if a != b {
                        parent[a] = b;
                    }
                }
                None => {
                    by_res.insert(r, v);
                }
            }
        }
    }
    for &(a, b) in chosen {
        let (ra, rb) = (find(&mut parent, a.index()), find(&mut parent, b.index()));
        if ra != rb {
            parent[ra] = rb;
        }
    }
    // Check physical-resource clashes and collect groups.
    let mut phys_of: HashMap<usize, Resource> = HashMap::new();
    let mut groups: HashMap<usize, Vec<Var>> = HashMap::new();
    for v in f.vars() {
        let root = find(&mut parent, v.index());
        if let Some(r) = f.var(v).pin {
            if f.resources.as_phys(r).is_some() {
                if let Some(&prev) = phys_of.get(&root) {
                    if prev != r {
                        return None;
                    }
                }
                phys_of.insert(root, r);
            }
        }
        groups.entry(root).or_default().push(v);
    }
    Some(groups.into_values().filter(|g| g.len() > 1).collect())
}

/// A grouping is legal when no two members strongly interfere (simple
/// interferences are allowed — they only cost repairs).
fn legal(_f: &Function, env: &InterferenceEnv<'_>, groups: &[Vec<Var>]) -> bool {
    for g in groups {
        for (k, &a) in g.iter().enumerate() {
            for &b in &g[k + 1..] {
                if env.strongly_interfere(a, b) {
                    return false;
                }
            }
        }
    }
    true
}

/// Writes the grouping back as definition pinnings.
fn apply_groups(f: &mut Function, groups: &[Vec<Var>]) {
    for g in groups {
        // Reuse the group's physical or existing resource, else fresh.
        let existing = g
            .iter()
            .find_map(|&v| f.var(v).pin.filter(|&r| f.resources.as_phys(r).is_some()));
        let any = g.iter().find_map(|&v| f.var(v).pin);
        let r = existing.or(any).unwrap_or_else(|| {
            let name = f.var(g[0]).name.clone();
            f.resources.new_virt(name)
        });
        for &v in g {
            f.var_mut(v).pin = Some(r);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coalesce::program_pinning;
    use crate::collect::{pinning_abi, pinning_sp};
    use tossa_ir::machine::Machine;
    use tossa_ir::parse::parse_function;
    use tossa_ssa::to_ssa;

    fn prepared(text: &str) -> Function {
        let mut f = parse_function(text, &Machine::dsp32()).unwrap();
        f.validate().unwrap();
        if !tossa_ssa::construct::has_phis(&f) {
            to_ssa(&mut f);
        }
        pinning_sp(&mut f);
        pinning_abi(&mut f);
        f
    }

    fn heuristic_moves(f: &Function) -> usize {
        let mut g = f.clone();
        program_pinning(&mut g, &Default::default());
        let _ = out_of_pinned_ssa(&mut g);
        g.count_moves()
    }

    #[test]
    fn heuristic_is_optimal_on_diamond() {
        let f = prepared(
            "func @d {
entry:
  %c = input
  br %c, l, r
l:
  %a = make 1
  jump m
r:
  %b = make 2
  jump m
m:
  %x = phi [l: %a], [r: %b]
  ret %x
}",
        );
        let opt = exhaustive_phi_pinning(&f).expect("small");
        assert_eq!(heuristic_moves(&f), opt.best_moves);
        assert!(opt.evaluated >= 2);
    }

    #[test]
    fn heuristic_is_optimal_on_loop() {
        let f = prepared(
            "func @sum {
entry:
  %n = input
  %acc = make 0
  %i = make 0
  jump head
head:
  %c = cmplt %i, %n
  br %c, body, exit
body:
  %acc = add %acc, %i
  %i = addi %i, 1
  jump head
exit:
  ret %acc
}",
        );
        let opt = exhaustive_phi_pinning(&f).expect("small");
        assert_eq!(heuristic_moves(&f), opt.best_moves);
    }

    #[test]
    fn heuristic_close_to_optimal_on_fig9_shape() {
        let f = prepared(
            "func @fig9 {
entry:
  %cc = input
  br %cc, p1, p2
p1:
  %x = make 1
  %y = make 2
  jump m
p2:
  %z = make 3
  %y2 = make 4
  jump m
m:
  %bigx = phi [p1: %x], [p2: %z]
  %bigy = phi [p1: %y], [p2: %y2]
  %s = add %bigx, %bigy
  ret %s
}",
        );
        let opt = exhaustive_phi_pinning(&f).expect("small");
        let h = heuristic_moves(&f);
        assert!(
            h <= opt.best_moves + 1,
            "heuristic {h} vs optimal {}",
            opt.best_moves
        );
    }

    #[test]
    fn refuses_large_functions() {
        // 13+ edges: a φ with many arguments times several joins.
        let mut text = String::from("func @big {\nentry:\n  %c = input\n");
        for k in 0..14 {
            text.push_str(&format!("  %v{k} = make {k}\n"));
        }
        text.push_str("  jump m0\n");
        for k in 0..14 {
            text.push_str(&format!(
                "m{k}:\n  %p{k} = phi [{}: %v{k}]\n  jump m{}\n",
                if k == 0 {
                    "entry".to_string()
                } else {
                    format!("m{}", k - 1)
                },
                k + 1
            ));
        }
        text.push_str("m14:\n  ret %p13\n}\n");
        let f = parse_function(&text, &Machine::dsp32()).unwrap();
        assert!(exhaustive_phi_pinning(&f).is_none());
    }

    #[test]
    fn empty_assignment_always_evaluated() {
        let f = prepared("func @s {\nentry:\n  %a = make 1\n  ret %a\n}");
        let opt = exhaustive_phi_pinning(&f).expect("no edges");
        assert_eq!(opt.edges, 0);
        assert_eq!(opt.evaluated, 1);
    }
}
