//! The paper's interference model (§3.2–§3.3): `Variable_kills`,
//! `stronglyInterfere`, `Resource_killed`, `Resource_interfere`, plus the
//! optimistic/pessimistic variants of Algorithm 4 (Table 5's `opt` and
//! `pess` rows).

use std::rc::Rc;
use tossa_analysis::{AnalysisCache, DefMap, DomTree, LiveAtDefs, Liveness};
use tossa_ir::ids::Var;
use tossa_ir::Function;

/// How Class 1 kills (overlapping live ranges under dominance) are
/// decided.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum InterferenceMode {
    /// Exact: uses the live-after-def oracle (the paper's base
    /// implementation).
    #[default]
    Exact,
    /// Algorithm 4 `Variable_kills_optimistic`: block-level live-out
    /// only — cheaper, may miss kills (repairs fix the difference).
    Optimistic,
    /// Algorithm 4 `Variable_kills_pessimistic`: block-level live-in or
    /// same-block — may over-report, blocking profitable merges.
    Pessimistic,
}

/// Which interference rule fired. `Class1`–`Class4` are the paper's §4
/// classes; `SameInst` and `Phys` are the implementation's extra
/// structural rules.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InterfereClass {
    /// Dominance with overlapping live ranges (`Variable_kills` Case 1).
    Class1,
    /// φ parallel-copy kill (`Variable_kills` Case 2).
    Class2,
    /// φ arguments disagree in a shared predecessor.
    Class3,
    /// φ definitions in the same block.
    Class4,
    /// Both variables defined by the same instruction.
    SameInst,
    /// Two distinct physical resources.
    Phys,
}

impl InterfereClass {
    /// The provenance-layer tag for this class.
    pub fn provenance(self) -> tossa_trace::provenance::Class {
        use tossa_trace::provenance::Class;
        match self {
            InterfereClass::Class1 => Class::Class1,
            InterfereClass::Class2 => Class::Class2,
            InterfereClass::Class3 => Class::Class3,
            InterfereClass::Class4 => Class::Class4,
            InterfereClass::SameInst => Class::SameInst,
            InterfereClass::Phys => Class::Phys,
        }
    }
}

/// Why two resources interfere: the class that fired plus the concrete
/// variable pair witnessing it. For kill classes (1 and 2) the witness
/// is `(killer, killed)`; for the structural classes it is the
/// offending definition pair. `Phys` carries no witness (the resources
/// themselves are the proof).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InterfereReason {
    /// The rule that fired.
    pub class: InterfereClass,
    /// The variable pair proving it, when one exists.
    pub witness: Option<(Var, Var)>,
}

/// Read-only bundle of the analyses the interference procedures need.
pub struct InterferenceEnv<'a> {
    /// The SSA function under translation.
    pub f: &'a Function,
    /// Dominator tree.
    pub dt: &'a DomTree,
    /// Liveness with the paper's φ conventions.
    pub live: &'a Liveness,
    /// Unique definition sites.
    pub defs: &'a DefMap,
    /// Exact live-after-def oracle (used by [`InterferenceMode::Exact`]).
    pub lad: &'a LiveAtDefs,
    /// Which Class 1 rule to apply.
    pub mode: InterferenceMode,
}

impl<'a> InterferenceEnv<'a> {
    /// Whether `def(a)` dominates `def(b)` at instruction granularity.
    /// Two φ definitions of the same block execute in parallel and do not
    /// dominate one another.
    pub fn def_dominates(&self, a: Var, b: Var) -> bool {
        let (Some(sa), Some(sb)) = (self.defs.site(a), self.defs.site(b)) else {
            return false;
        };
        if sa.block == sb.block {
            if sa.is_phi && sb.is_phi {
                return false;
            }
            sa.pos < sb.pos
        } else {
            self.dt.strictly_dominates(sa.block, sb.block)
        }
    }

    /// The paper's `Variable_kills(a, b)` — true when **`a` kills `b`**:
    ///
    /// * Case 1: `def(b)` dominates `def(a)` and the two live ranges
    ///   overlap, so writing the shared resource at `def(a)` clobbers the
    ///   still-live `b`;
    /// * Case 2: `a = φ(a1:B1, …, an:Bn)` and `b` is live out of some
    ///   `Bi` with `b ≠ ai` — the parallel copy at the end of `Bi`
    ///   clobbers `b`. (`a` may equal `b`: the lost-copy self-kill.)
    pub fn variable_kills(&self, a: Var, b: Var) -> bool {
        self.variable_kills_class(a, b).is_some()
    }

    /// [`Self::variable_kills`], reporting *which* case fired
    /// ([`InterfereClass::Class1`] or [`InterfereClass::Class2`]) for
    /// the provenance layer.
    pub fn variable_kills_class(&self, a: Var, b: Var) -> Option<InterfereClass> {
        // Case 1.
        if a != b && self.def_dominates(b, a) {
            let killed = match self.mode {
                InterferenceMode::Exact => self.lad.after_def(a).is_some_and(|set| set.contains(b)),
                InterferenceMode::Optimistic => {
                    let na = self.defs.site(a).expect("def").block;
                    self.live.live_out(na).contains(b)
                }
                InterferenceMode::Pessimistic => {
                    let na = self.defs.site(a).expect("def").block;
                    let nb = self.defs.site(b).expect("def").block;
                    na == nb || self.live.live_in(na).contains(b)
                }
            };
            if killed {
                tossa_trace::count(tossa_trace::Counter::InterfereClass1, 1);
                return Some(InterfereClass::Class1);
            }
        }
        // Case 2.
        if let Some(site) = self.defs.site(a) {
            if site.is_phi {
                let inst = self.f.inst(site.inst);
                for (k, op) in inst.uses.iter().enumerate() {
                    let bi = inst.phi_preds[k];
                    if b != op.var && self.live.live_out(bi).contains(b) {
                        tossa_trace::count(tossa_trace::Counter::InterfereClass2, 1);
                        return Some(InterfereClass::Class2);
                    }
                }
            }
        }
        None
    }

    /// The paper's `stronglyInterfere(a, b)`: pinning the definitions of
    /// `a` and `b` to one resource would be *incorrect* (not merely
    /// repair-worthy):
    ///
    /// * Classes 3 & 4: both φ-defined in the same block, or their φ
    ///   arguments disagree in a common predecessor;
    /// * two variables defined by the same instruction (Fig. 4 Case 1).
    pub fn strongly_interfere(&self, a: Var, b: Var) -> bool {
        self.strongly_interfere_class(a, b).is_some()
    }

    /// [`Self::strongly_interfere`], reporting *which* rule fired
    /// ([`InterfereClass::Class3`], [`InterfereClass::Class4`], or
    /// [`InterfereClass::SameInst`]) for the provenance layer.
    pub fn strongly_interfere_class(&self, a: Var, b: Var) -> Option<InterfereClass> {
        if a == b {
            return None;
        }
        let (Some(sa), Some(sb)) = (self.defs.site(a), self.defs.site(b)) else {
            return None;
        };
        if sa.inst == sb.inst {
            tossa_trace::count(tossa_trace::Counter::InterfereSameInst, 1);
            return Some(InterfereClass::SameInst); // same instruction
        }
        if sa.is_phi && sb.is_phi {
            if sa.block == sb.block {
                tossa_trace::count(tossa_trace::Counter::InterfereClass4, 1);
                // Class 4 (and same-block φ parallelism).
                return Some(InterfereClass::Class4);
            }
            // Class 3: arguments disagree in a shared predecessor.
            let ia = self.f.inst(sa.inst);
            let ib = self.f.inst(sb.inst);
            for (k, &ba) in ia.phi_preds.iter().enumerate() {
                for (j, &bb) in ib.phi_preds.iter().enumerate() {
                    if ba == bb && ia.uses[k].var != ib.uses[j].var {
                        tossa_trace::count(tossa_trace::Counter::InterfereClass3, 1);
                        return Some(InterfereClass::Class3);
                    }
                }
            }
        }
        None
    }
}

/// Owning bundle of analysis handles from which an [`InterferenceEnv`]
/// borrows. Keeps the `Rc` handles from an [`AnalysisCache`] alive so
/// the env's plain references stay valid while the cache serves other
/// passes.
pub struct EnvHandles {
    dt: Rc<DomTree>,
    live: Rc<Liveness>,
    defs: Rc<DefMap>,
    lad: Rc<LiveAtDefs>,
}

impl EnvHandles {
    /// Pulls (and memoizes) everything the interference procedures need.
    pub fn from_cache(f: &Function, cache: &mut AnalysisCache) -> EnvHandles {
        EnvHandles {
            dt: cache.domtree(f),
            live: cache.liveness(f),
            defs: cache.defs(f),
            lad: cache.live_at_defs(f),
        }
    }

    /// Builds a borrowing [`InterferenceEnv`] over these handles.
    pub fn env<'a>(&'a self, f: &'a Function, mode: InterferenceMode) -> InterferenceEnv<'a> {
        InterferenceEnv {
            f,
            dt: &self.dt,
            live: &self.live,
            defs: &self.defs,
            lad: &self.lad,
            mode,
        }
    }
}

/// A resource viewed as the set of variables pinned to it
/// (§3.3: "we identify the notion of resource with the set of variables
/// pinned to it").
#[derive(Clone, Debug, Default)]
pub struct ResourceSet {
    /// Member variables (definition-pinned).
    pub members: Vec<Var>,
    /// Whether the set denotes a physical register.
    pub is_phys: bool,
}

impl ResourceSet {
    /// A singleton set for an unpinned variable.
    pub fn singleton(v: Var) -> ResourceSet {
        ResourceSet {
            members: vec![v],
            is_phys: false,
        }
    }

    /// The paper's `Resource_killed`: members already killed by another
    /// member (including self-kills).
    pub fn killed_within(&self, env: &InterferenceEnv<'_>) -> Vec<Var> {
        self.members
            .iter()
            .copied()
            .filter(|&ai| self.members.iter().any(|&aj| env.variable_kills(aj, ai)))
            .collect()
    }
}

/// The paper's `Resource_interfere(A, B)`: merging the two variable sets
/// would create a *new* simple interference (a kill of a not-yet-killed
/// variable) or any strong interference. Two distinct physical resources
/// always interfere.
pub fn resource_interfere(env: &InterferenceEnv<'_>, a: &ResourceSet, b: &ResourceSet) -> bool {
    let killed_a = a.killed_within(env);
    let killed_b = b.killed_within(env);
    resource_interfere_with(env, a, b, &killed_a, &killed_b)
}

/// [`resource_interfere`] with the two `killed_within` sets supplied by
/// the caller — lets an oracle that queries many pairs compute each
/// vertex's killed set once instead of once per pair.
pub fn resource_interfere_with(
    env: &InterferenceEnv<'_>,
    a: &ResourceSet,
    b: &ResourceSet,
    killed_a: &[Var],
    killed_b: &[Var],
) -> bool {
    resource_interfere_reason(env, a, b, killed_a, killed_b).is_some()
}

/// [`resource_interfere_with`], reporting the first rule that fired and
/// its witness pair — the provenance the coalescer attaches to every
/// pruned affinity edge.
pub fn resource_interfere_reason(
    env: &InterferenceEnv<'_>,
    a: &ResourceSet,
    b: &ResourceSet,
    killed_a: &[Var],
    killed_b: &[Var],
) -> Option<InterfereReason> {
    if a.is_phys && b.is_phys {
        // Distinct physical registers (callers never ask about A == A).
        return Some(InterfereReason {
            class: InterfereClass::Phys,
            witness: None,
        });
    }
    for &x in &a.members {
        for &y in &b.members {
            if !killed_a.contains(&x) {
                if let Some(class) = env.variable_kills_class(y, x) {
                    return Some(InterfereReason {
                        class,
                        witness: Some((y, x)),
                    });
                }
            }
            if !killed_b.contains(&y) {
                if let Some(class) = env.variable_kills_class(x, y) {
                    return Some(InterfereReason {
                        class,
                        witness: Some((x, y)),
                    });
                }
            }
            if let Some(class) = env.strongly_interfere_class(x, y) {
                return Some(InterfereReason {
                    class,
                    witness: Some((x, y)),
                });
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use tossa_ir::machine::Machine;
    use tossa_ir::parse::parse_function;

    struct Setup {
        f: Function,
        handles: EnvHandles,
    }

    fn setup(text: &str) -> Setup {
        let f = parse_function(text, &Machine::dsp32()).unwrap();
        f.validate().unwrap();
        let handles = EnvHandles::from_cache(&f, &mut AnalysisCache::new());
        Setup { f, handles }
    }

    impl Setup {
        fn env(&self, mode: InterferenceMode) -> InterferenceEnv<'_> {
            InterferenceEnv {
                f: &self.f,
                dt: &self.handles.dt,
                live: &self.handles.live,
                defs: &self.handles.defs,
                lad: &self.handles.lad,
                mode,
            }
        }
        fn var(&self, name: &str) -> Var {
            self.f
                .vars()
                .find(|&v| self.f.var(v).name == name)
                .unwrap_or_else(|| panic!("no var {name}"))
        }
    }

    #[test]
    fn class1_kill_detected() {
        // y defined while x live (x used after): pinning x,y together
        // would clobber x at y's def => y kills x.
        let s = setup(
            "func @c1 {
entry:
  %x = make 1
  %y = make 2
  %s = add %x, %y
  ret %s
}",
        );
        let env = s.env(InterferenceMode::Exact);
        let (x, y) = (s.var("x"), s.var("y"));
        assert!(env.variable_kills(y, x), "y kills x");
        assert!(
            !env.variable_kills(x, y),
            "x defined before y: x cannot kill y"
        );
    }

    #[test]
    fn class1_no_kill_when_dead() {
        let s = setup(
            "func @c1b {
entry:
  %x = make 1
  %u = addi %x, 1
  %y = make 2
  %s = add %y, %u
  ret %s
}",
        );
        let env = s.env(InterferenceMode::Exact);
        let (x, y) = (s.var("x"), s.var("y"));
        // x dead before y's def: no kill either way.
        assert!(!env.variable_kills(y, x));
        assert!(!env.variable_kills(x, y));
    }

    #[test]
    fn class2_phi_parallel_copy_kill() {
        // Paper Fig. 6 middle: y = φ(., z), x live out of z's block,
        // x != z => y kills x.
        let s = setup(
            "func @c2 {
entry:
  %x = make 1
  %z = make 2
  jump m
m:
  %y = phi [entry: %z]
  %s = add %y, %x
  ret %s
}",
        );
        let env = s.env(InterferenceMode::Exact);
        let (x, y, z) = (s.var("x"), s.var("y"), s.var("z"));
        assert!(
            env.variable_kills(y, x),
            "parallel copy at end of entry kills x"
        );
        assert!(!env.variable_kills(y, z), "z is the argument itself");
    }

    #[test]
    fn lost_copy_self_kill() {
        // x = φ(...) with x live out of a predecessor on an unsplit
        // critical edge: x kills itself.
        let s = setup(
            "func @lost {
entry:
  %a = make 0
  jump head
head:
  %x = phi [entry: %a], [head: %x2]
  %x2 = addi %x, 1
  %c = cmplt %x2, %x
  br %c, head, exit
exit:
  ret %x
}",
        );
        let env = s.env(InterferenceMode::Exact);
        let x = s.var("x");
        assert!(env.variable_kills(x, x), "lost-copy self-kill");
    }

    #[test]
    fn class3_phi_args_disagree() {
        let s = setup(
            "func @c3 {
entry:
  %a = make 1
  %b = make 2
  jump m
m:
  %x = phi [entry: %a]
  %y = phi [entry: %b]
  %s = add %x, %y
  ret %s
}",
        );
        let env = s.env(InterferenceMode::Exact);
        let (x, y) = (s.var("x"), s.var("y"));
        // Same block: Classes 3&4 say all φ defs of a block strongly
        // interfere (here also args disagree).
        assert!(env.strongly_interfere(x, y));
        assert!(env.strongly_interfere(y, x));
    }

    #[test]
    fn same_instruction_defs_strongly_interfere() {
        let s = setup(
            "func @si {
entry:
  %a, %b = input
  ret %a
}",
        );
        let env = s.env(InterferenceMode::Exact);
        assert!(env.strongly_interfere(s.var("a"), s.var("b")));
    }

    #[test]
    fn resource_interfere_phys_pair() {
        let s = setup("func @p {\nentry:\n  ret\n}");
        let env = s.env(InterferenceMode::Exact);
        let a = ResourceSet {
            members: vec![],
            is_phys: true,
        };
        let b = ResourceSet {
            members: vec![],
            is_phys: true,
        };
        assert!(resource_interfere(&env, &a, &b));
    }

    #[test]
    fn resource_interfere_respects_already_killed() {
        // x killed within A already; adding another killer of x to the
        // resource is NOT a new interference.
        let s = setup(
            "func @rk {
entry:
  %x = make 1
  %y = make 2
  %s = add %x, %y
  %z = make 3
  %t = add %s, %z
  %u = add %t, %x
  ret %u
}",
        );
        let env = s.env(InterferenceMode::Exact);
        let (x, y, z) = (s.var("x"), s.var("y"), s.var("z"));
        // y kills x; z kills x (x live to the end).
        assert!(env.variable_kills(y, x));
        assert!(env.variable_kills(z, x));
        let a = ResourceSet {
            members: vec![x, y],
            is_phys: false,
        };
        let b = ResourceSet {
            members: vec![z],
            is_phys: false,
        };
        // x is already killed within {x, y}; z also kills x but that is
        // not NEW (and y is live across z's def? y's last use is at s,
        // before z's def, so no y/z kill either).
        let killed_a = a.killed_within(&env);
        assert!(killed_a.contains(&x));
        assert!(!killed_a.contains(&y));
        assert!(!resource_interfere(&env, &a, &b));
    }

    #[test]
    fn optimistic_misses_in_block_kill() {
        // b's range ends within the block: exact sees the kill of b by a,
        // optimistic (live-out only) does not.
        let s = setup(
            "func @opt {
entry:
  %b = make 1
  %a = make 2
  %s = add %a, %b
  ret %s
}",
        );
        let exact = s.env(InterferenceMode::Exact);
        let opt = s.env(InterferenceMode::Optimistic);
        let (a, b) = (s.var("a"), s.var("b"));
        assert!(exact.variable_kills(a, b));
        assert!(
            !opt.variable_kills(a, b),
            "b not live-out: optimistic misses it"
        );
    }

    #[test]
    fn pessimistic_over_reports_same_block() {
        // b dead before a's def, same block: pessimistic still reports.
        let s = setup(
            "func @pess {
entry:
  %b = make 1
  %u = addi %b, 1
  %a = make 2
  %s = add %a, %u
  ret %s
}",
        );
        let exact = s.env(InterferenceMode::Exact);
        let pess = s.env(InterferenceMode::Pessimistic);
        let (a, b) = (s.var("a"), s.var("b"));
        assert!(!exact.variable_kills(a, b));
        assert!(
            pess.variable_kills(a, b),
            "same-block rule over-approximates"
        );
    }
}
