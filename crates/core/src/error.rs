//! The checked-mode error taxonomy.
//!
//! Checked pipeline mode (see [`crate::checked`]) converts invariant
//! violations that would otherwise panic — or worse, silently miscompile
//! — into structured values that a suite runner can collect per function.
//! The taxonomy wraps the leaf error types each crate already defines
//! (`ParseError`, `ValidateError`, `SsaError`, `PinError`,
//! `ParallelCopyError`, `StaleAnalysis`, `Trap`) so a diagnostic always
//! names the pass that failed and the invariant it violated.

use crate::pinning::PinError;
use std::fmt;
use tossa_analysis::StaleAnalysis;
use tossa_ir::function::ValidateError;
use tossa_ir::ids::Block;
use tossa_ir::interp::Trap;
use tossa_ir::parallel_copy::ParallelCopyError;
use tossa_ir::parse::ParseError;
use tossa_regalloc::AllocError;
use tossa_ssa::verify::SsaError;

/// A post-pass verification failure: the function left by a pass violates
/// a structural invariant or diverges from the pre-pass semantics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VerifyError {
    /// CFG well-formedness violation ([`tossa_ir::Function::validate`]).
    Structural(ValidateError),
    /// SSA invariant violation ([`tossa_ssa::verify_ssa`]).
    Ssa(SsaError),
    /// Pin-consistency violation ([`crate::pinning::check_pinning`]).
    Pin(PinError),
    /// The [`tossa_analysis::AnalysisCache`] served (and refreshed) a
    /// memoized analysis after a mutation that never invalidated it.
    StaleAnalysis(StaleAnalysis),
    /// A φ survived translation to non-SSA form.
    ResidualPhi {
        /// The block still holding a φ.
        block: Block,
    },
    /// Differential execution: the post-pass function trapped where the
    /// pre-pass function ran to completion.
    Trap {
        /// The input vector that exposed the trap.
        inputs: Vec<i64>,
        /// The trap raised by the post-pass function.
        trap: Trap,
    },
    /// Differential execution: the post-pass outputs differ from the
    /// pre-pass outputs on some input vector.
    Divergence {
        /// The input vector that exposed the divergence.
        inputs: Vec<i64>,
        /// Outputs of the pre-pass function.
        expected: Vec<i64>,
        /// Outputs of the post-pass function.
        got: Vec<i64>,
    },
}

impl VerifyError {
    /// Stable classification key for this failure, independent of the
    /// blocks/inputs/values baked into the instance. Replay tooling
    /// (service failure reports, the reducer's "same structured error"
    /// predicate) compares keys, not Display strings, so a shrunk
    /// function may trip the same invariant at a different site and
    /// still count as the same failure.
    pub fn class_key(&self) -> &'static str {
        match self {
            VerifyError::Structural(_) => "verify.structural",
            VerifyError::Ssa(_) => "verify.ssa",
            VerifyError::Pin(_) => "verify.pin",
            VerifyError::StaleAnalysis(_) => "verify.stale_analysis",
            VerifyError::ResidualPhi { .. } => "verify.residual_phi",
            VerifyError::Trap { .. } => "verify.trap",
            VerifyError::Divergence { .. } => "verify.divergence",
        }
    }
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::Structural(e) => write!(f, "structural: {e}"),
            VerifyError::Ssa(e) => write!(f, "ssa: {e}"),
            VerifyError::Pin(e) => write!(f, "pinning: {e}"),
            VerifyError::StaleAnalysis(e) => write!(f, "analysis cache: {e}"),
            VerifyError::ResidualPhi { block } => {
                write!(f, "block {block} still holds a φ after out-of-SSA")
            }
            VerifyError::Trap { inputs, trap } => {
                write!(f, "traps on {inputs:?}: {trap}")
            }
            VerifyError::Divergence {
                inputs,
                expected,
                got,
            } => write!(f, "on {inputs:?}: outputs {got:?} != expected {expected:?}"),
        }
    }
}

impl std::error::Error for VerifyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VerifyError::Structural(e) => Some(e),
            VerifyError::Ssa(e) => Some(e),
            VerifyError::Pin(e) => Some(e),
            VerifyError::StaleAnalysis(e) => Some(e),
            VerifyError::Trap { trap, .. } => Some(trap),
            _ => None,
        }
    }
}

impl From<ValidateError> for VerifyError {
    fn from(e: ValidateError) -> VerifyError {
        VerifyError::Structural(e)
    }
}

impl From<SsaError> for VerifyError {
    fn from(e: SsaError) -> VerifyError {
        VerifyError::Ssa(e)
    }
}

impl From<PinError> for VerifyError {
    fn from(e: PinError) -> VerifyError {
        VerifyError::Pin(e)
    }
}

impl From<StaleAnalysis> for VerifyError {
    fn from(e: StaleAnalysis) -> VerifyError {
        VerifyError::StaleAnalysis(e)
    }
}

/// A coalescing/pinning pass produced a pinning the Fig. 4 checker
/// rejects.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CoalesceError {
    /// The pinning after coalescing violates a Fig. 4 rule.
    InvalidPinning(PinError),
}

impl fmt::Display for CoalesceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoalesceError::InvalidPinning(e) => write!(f, "coalescer produced {e}"),
        }
    }
}

impl std::error::Error for CoalesceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoalesceError::InvalidPinning(e) => Some(e),
        }
    }
}

/// The out-of-pinned-SSA translation hit an ill-formed intermediate.
///
/// On `Err` the function may be partially rewritten and must be
/// discarded (checked mode re-clones from the pre-pass snapshot).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReconstructError {
    /// A per-edge or per-instruction parallel copy group was ill-formed
    /// (two writes to one destination from different sources — the
    /// symptom of an incorrect pinning upstream).
    ParallelCopy(ParallelCopyError),
}

impl fmt::Display for ReconstructError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReconstructError::ParallelCopy(e) => write!(f, "reconstruct: {e}"),
        }
    }
}

impl std::error::Error for ReconstructError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReconstructError::ParallelCopy(e) => Some(e),
        }
    }
}

impl From<ParallelCopyError> for ReconstructError {
    fn from(e: ParallelCopyError) -> ReconstructError {
        ReconstructError::ParallelCopy(e)
    }
}

/// Top-level error of one checked pipeline run on one function.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TossaError {
    /// The input did not parse.
    Parse(ParseError),
    /// A pass left the function in a state a verifier rejects, or its
    /// output diverged from the pre-pass semantics.
    Verify {
        /// Name of the pass whose output failed verification.
        pass: &'static str,
        /// The verification failure.
        error: VerifyError,
    },
    /// A coalescing pass produced an incorrect pinning.
    Coalesce(CoalesceError),
    /// Out-of-pinned-SSA translation failed.
    Reconstruct(ReconstructError),
    /// Register allocation failed, or the allocation verifier rejected
    /// an assignment.
    Alloc(AllocError),
    /// A pass panicked (caught at the pipeline boundary); the panic
    /// payload is preserved as a message.
    Panic {
        /// Name of the pass (or stage) that panicked.
        pass: &'static str,
        /// The panic payload, stringified.
        message: String,
    },
}

impl TossaError {
    /// Stable classification key: the variant family plus, where the
    /// wrapped leaf distinguishes genuinely different invariants (verify
    /// and alloc), the leaf class. Panic messages and the pass name are
    /// deliberately excluded — two runs that panic in different passes
    /// still classify together as `panic`, because panic sites move
    /// under shrinking while the *kind* of outcome does not.
    pub fn class_key(&self) -> &'static str {
        match self {
            TossaError::Parse(_) => "parse",
            TossaError::Verify { error, .. } => error.class_key(),
            TossaError::Coalesce(_) => "coalesce.invalid_pinning",
            TossaError::Reconstruct(_) => "reconstruct.parallel_copy",
            TossaError::Alloc(e) => e.class_key(),
            TossaError::Panic { .. } => "panic",
        }
    }
}

impl fmt::Display for TossaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TossaError::Parse(e) => write!(f, "parse: {e}"),
            TossaError::Verify { pass, error } => write!(f, "after {pass}: {error}"),
            TossaError::Coalesce(e) => write!(f, "{e}"),
            TossaError::Reconstruct(e) => write!(f, "{e}"),
            TossaError::Alloc(e) => write!(f, "alloc: {e}"),
            TossaError::Panic { pass, message } => write!(f, "panic in {pass}: {message}"),
        }
    }
}

impl std::error::Error for TossaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TossaError::Parse(e) => Some(e),
            TossaError::Verify { error, .. } => Some(error),
            TossaError::Coalesce(e) => Some(e),
            TossaError::Reconstruct(e) => Some(e),
            TossaError::Alloc(e) => Some(e),
            TossaError::Panic { .. } => None,
        }
    }
}

impl From<ParseError> for TossaError {
    fn from(e: ParseError) -> TossaError {
        TossaError::Parse(e)
    }
}

impl From<CoalesceError> for TossaError {
    fn from(e: CoalesceError) -> TossaError {
        TossaError::Coalesce(e)
    }
}

impl From<ReconstructError> for TossaError {
    fn from(e: ReconstructError) -> TossaError {
        TossaError::Reconstruct(e)
    }
}

impl From<AllocError> for TossaError {
    fn from(e: AllocError) -> TossaError {
        TossaError::Alloc(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_pass() {
        let e = TossaError::Verify {
            pass: "pinning_phi",
            error: VerifyError::Pin(PinError {
                message: "case 6: v1 and v2 pinned to $r strongly interfere".into(),
            }),
        };
        let s = e.to_string();
        assert!(s.contains("pinning_phi"), "{s}");
        assert!(s.contains("case 6"), "{s}");
    }

    #[test]
    fn sources_chain_to_the_leaf() {
        use std::error::Error;
        let e = TossaError::Verify {
            pass: "reconstruct",
            error: VerifyError::Ssa(SsaError {
                message: "v3 has multiple definitions".into(),
            }),
        };
        let leaf = e.source().unwrap().source().unwrap();
        assert!(leaf.to_string().contains("multiple definitions"));
    }

    #[test]
    fn class_keys_are_stable_and_instance_independent() {
        let a = TossaError::Verify {
            pass: "pinning_phi",
            error: VerifyError::Divergence {
                inputs: vec![1],
                expected: vec![2],
                got: vec![3],
            },
        };
        let b = TossaError::Verify {
            pass: "reconstruct",
            error: VerifyError::Divergence {
                inputs: vec![9, 9],
                expected: vec![0],
                got: vec![1],
            },
        };
        assert_eq!(a.class_key(), "verify.divergence");
        assert_eq!(a.class_key(), b.class_key());
        let p = TossaError::Panic {
            pass: "coalesce",
            message: "index out of bounds".into(),
        };
        assert_eq!(p.class_key(), "panic");
    }

    #[test]
    fn divergence_display_shows_both_sides() {
        let e = VerifyError::Divergence {
            inputs: vec![1, 2],
            expected: vec![3],
            got: vec![4],
        };
        let s = e.to_string();
        assert!(
            s.contains("[1, 2]") && s.contains("[3]") && s.contains("[4]"),
            "{s}"
        );
    }
}
