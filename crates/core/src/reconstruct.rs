//! Out-of-pinned-SSA translation: Leung and George's *mark* and
//! *reconstruct* phases (paper §2.3), generalized over any correct
//! pinning.
//!
//! The engine runs a forward must-dataflow computing, for every *slot*
//! (a renaming resource, or an unpinned φ definition standing for
//! itself), which SSA value currently occupies it. Then:
//!
//! * a use pinned to `S` emits `S = cur(x)` **unless `S` already holds
//!   `x`** (Fig. 3: "the algorithm is careful not to introduce a
//!   redundant move instruction in this case"); the argument copies of
//!   one instruction form a parallel group;
//! * a variable whose resource is overwritten between its definition and
//!   a use is *killed*: a repair copy `x′ = R` is inserted right after
//!   the definition and the killed uses read `x′` (Fig. 3's `x′3`);
//! * φs are replaced by one parallel copy per incoming edge, placed at
//!   the end of the predecessor (edges from multi-successor blocks are
//!   split first); no copy is emitted for an argument already occupying
//!   the φ's slot — the gain maximized by the coalescer;
//! * parallel copies are sequentialized, inserting a temporary on cycles
//!   (the swap problem) and ordering reads before writes (the lost-copy
//!   problem).
//!
//! Finally every pinned variable is renamed to its resource's final
//! variable and all φs and pins are erased: the result is ordinary
//! (non-SSA) machine code.

use crate::error::ReconstructError;
use std::collections::{BTreeSet, HashMap};
use tossa_ir::ids::{Block, EntityVec, Inst, Resource, Var};
use tossa_ir::instr::InstData;
use tossa_ir::parallel_copy::{sequentialize, sequentialize_checked};
use tossa_ir::print::{res_str, var_str};
use tossa_ir::{Function, Opcode};
use tossa_trace::provenance;

/// Copy counts produced by one translation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReconstructStats {
    /// Copies materializing φs (per-edge parallel copies).
    pub phi_copies: usize,
    /// Copies satisfying use pinnings (ABI argument setup etc.).
    pub abi_copies: usize,
    /// Repair copies for killed variables.
    pub repair_copies: usize,
    /// Extra temporaries introduced by cycle breaking.
    pub temp_copies: usize,
    /// φ instructions replaced.
    pub phis_removed: usize,
    /// Edges split so copies could be placed on them.
    pub edges_split: usize,
}

impl ReconstructStats {
    /// Publishes the run's totals on the trace sink (no-op when tracing
    /// is disabled).
    fn flush_trace(&self) {
        use tossa_trace::{count, Counter};
        count(Counter::CopiesPhi, self.phi_copies as u64);
        count(Counter::CopiesAbi, self.abi_copies as u64);
        count(Counter::CopiesRepair, self.repair_copies as u64);
        count(Counter::CopiesTemp, self.temp_copies as u64);
        count(Counter::PhisRemoved, self.phis_removed as u64);
        count(Counter::EdgesSplit, self.edges_split as u64);
    }

    /// Total `mov` instructions inserted.
    pub fn total_copies(&self) -> usize {
        self.phi_copies + self.abi_copies + self.repair_copies + self.temp_copies
    }
}

/// Splits every edge `(p, s)` where `s` contains φs and `p` has several
/// successors, so that per-edge parallel copies can be placed at the end
/// of the predecessor without affecting sibling paths. Returns the number
/// of edges split.
pub fn split_edges_for_phis(f: &mut Function) -> usize {
    let mut split = 0;
    for b in f.blocks().collect::<Vec<_>>() {
        let succs: Vec<Block> = f.succs(b).to_vec();
        if succs.len() < 2 {
            continue;
        }
        for (slot, s) in succs.iter().copied().enumerate() {
            if f.phis(s).next().is_none() {
                continue;
            }
            let mid = f.add_block(format!("edge{split}"));
            f.push_inst(mid, InstData::new(Opcode::Jump).with_targets(vec![s]));
            let term = f.terminator(b).expect("has successors");
            f.inst_mut(term).targets[slot] = mid;
            for phi in f.phis(s).collect::<Vec<_>>() {
                for p in f.inst_mut(phi).phi_preds.iter_mut() {
                    if *p == b {
                        *p = mid;
                    }
                }
            }
            split += 1;
        }
    }
    split
}

/// Occupant lattice value: ⊥ (unvisited), ⊤ (unknown), or a variable.
const BOT: u32 = 0;
const TOP: u32 = 1;
fn val(v: Var) -> u32 {
    v.index() as u32 + 2
}
fn meet(a: u32, b: u32) -> u32 {
    match (a, b) {
        (BOT, x) | (x, BOT) => x,
        (x, y) if x == y => x,
        _ => TOP,
    }
}

/// A slot whose occupant is tracked by the must-analysis.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum Slot {
    Res(Resource),
    PhiVar(Var),
}

/// Owns the slot numbering and per-variable home slots; does not borrow
/// the function (which is mutated during rewriting).
///
/// Slot numbering: resources take slots `0..nres` in index order (so a
/// resource's slot is just its index), unpinned φ definitions take the
/// slots after.
struct Engine {
    nslots: usize,
    home: EntityVec<Var, Option<usize>>,
}

impl Engine {
    fn new(f: &Function) -> Engine {
        let mut slot_index: HashMap<Slot, usize> = HashMap::new();
        for r in f.resources.iter() {
            let n = slot_index.len();
            debug_assert_eq!(n, r.index());
            slot_index.insert(Slot::Res(r), n);
        }
        for (_, i) in f.all_insts() {
            let inst = f.inst(i);
            if inst.is_phi() {
                let x = inst.defs[0].var;
                if f.var(x).pin.is_none() {
                    let n = slot_index.len();
                    slot_index.entry(Slot::PhiVar(x)).or_insert(n);
                }
            }
        }
        let mut home: EntityVec<Var, Option<usize>> = EntityVec::filled(f.num_vars(), None);
        for v in f.vars() {
            if let Some(r) = f.var(v).pin {
                home[v] = Some(r.index());
            } else if let Some(&s) = slot_index.get(&Slot::PhiVar(v)) {
                home[v] = Some(s);
            }
        }
        let nslots = slot_index.len();
        Engine { nslots, home }
    }

    /// Home slot of `v` (`None` for plain, never-clobbered variables and
    /// for variables created after analysis).
    fn home(&self, v: Var) -> Option<usize> {
        self.home.get(v).copied().flatten()
    }

    fn res_slot(&self, r: Resource) -> usize {
        r.index()
    }

    /// Whether the value of `y` is readable from its home slot.
    fn available(&self, cur: &[u32], y: Var) -> bool {
        match self.home(y) {
            Some(slot) => cur[slot] == val(y),
            None => true,
        }
    }

    /// Applies one instruction's writes to `state` (use-pin writes, then
    /// definition writes).
    fn transfer_inst(&self, f: &Function, i: Inst, state: &mut [u32]) {
        let inst = f.inst(i);
        if inst.is_phi() {
            return;
        }
        for u in inst.uses {
            if let Some(s) = u.pin {
                state[self.res_slot(s)] = val(u.var);
            }
        }
        for d in inst.defs {
            if let Some(slot) = self.home(d.var) {
                state[slot] = val(d.var);
            }
        }
    }

    /// Applies the φ writes of any edge into `s` to `state`.
    fn transfer_edge(&self, f: &Function, s: Block, state: &mut [u32]) {
        for phi in f.phis(s) {
            let x = f.inst(phi).defs[0].var;
            if let Some(slot) = self.home(x) {
                state[slot] = val(x);
            }
        }
    }

    /// Computes the in-state of every reachable block by forward
    /// worklist fixpoint over reverse postorder. Meets are monotone
    /// (⊥ → value → ⊤), so reprocessing only the blocks whose input
    /// actually changed reaches the same fixpoint as the naive
    /// all-blocks iteration, without its per-round clones.
    fn in_states(&self, f: &Function, rpo: &[Block]) -> EntityVec<Block, Vec<u32>> {
        let nb = f.num_blocks();
        let mut ins: EntityVec<Block, Vec<u32>> = EntityVec::filled(nb, vec![BOT; self.nslots]);
        ins[f.entry] = vec![TOP; self.nslots];
        let mut on_list = vec![false; nb];
        let mut worklist: std::collections::VecDeque<Block> = rpo.iter().copied().collect();
        for &b in rpo {
            on_list[b.index()] = true;
        }
        let mut state = vec![BOT; self.nslots];
        let mut edge = vec![BOT; self.nslots];
        while let Some(b) = worklist.pop_front() {
            on_list[b.index()] = false;
            state.clone_from(&ins[b]);
            for i in f.block_insts(b) {
                self.transfer_inst(f, i, &mut state);
            }
            for &s in f.succs(b) {
                edge.clone_from(&state);
                self.transfer_edge(f, s, &mut edge);
                let mut changed = false;
                let tgt = &mut ins[s];
                for (slot, &v) in edge.iter().enumerate() {
                    let m = meet(tgt[slot], v);
                    if m != tgt[slot] {
                        tgt[slot] = m;
                        changed = true;
                    }
                }
                if changed && !on_list[s.index()] {
                    on_list[s.index()] = true;
                    worklist.push_back(s);
                }
            }
        }
        ins
    }

    /// Slots written (in parallel) just before instruction `i` executes:
    /// its use-pin copies and, for a terminator, the edge copies. Fills
    /// the caller's reusable buffer; slots are unique (last write wins,
    /// matching map-insert semantics), so a linear [`gw_get`] lookup is
    /// exact. Groups are tiny — a few pinned uses plus a few φs.
    fn group_writes_into(
        &self,
        f: &Function,
        b: Block,
        i: Inst,
        is_term: bool,
        out: &mut Vec<(usize, u32)>,
    ) {
        out.clear();
        let put = |out: &mut Vec<(usize, u32)>, slot: usize, v: u32| match out
            .iter_mut()
            .find(|e| e.0 == slot)
        {
            Some(e) => e.1 = v,
            None => out.push((slot, v)),
        };
        for u in f.inst(i).uses {
            if let Some(s) = u.pin {
                put(out, self.res_slot(s), val(u.var));
            }
        }
        if is_term {
            for &s in f.succs(b) {
                for phi in f.phis(s) {
                    let x = f.inst(phi).defs[0].var;
                    if let Some(slot) = self.home(x) {
                        put(out, slot, val(x));
                    }
                }
            }
        }
    }
}

/// Lookup into a [`Engine::group_writes_into`] buffer.
fn gw_get(group: &[(usize, u32)], slot: usize) -> Option<u32> {
    group.iter().find(|e| e.0 == slot).map(|e| e.1)
}

/// Translates pinned SSA code out of SSA form in place.
///
/// Preconditions: `f` is valid SSA with a *correct* pinning
/// (see [`crate::pinning::check_pinning`]). The function's CFG is edited
/// (edge splitting); all φs and pins are gone afterwards.
pub fn out_of_pinned_ssa(f: &mut Function) -> ReconstructStats {
    match translate(f, false) {
        Ok(stats) => stats,
        Err(e) => unreachable!("unchecked translation cannot fail: {e}"),
    }
}

/// [`out_of_pinned_ssa`] for untrusted pinnings: an ill-formed parallel
/// copy group (the symptom of an incorrect pinning upstream) is reported
/// instead of asserted.
///
/// # Errors
/// Returns [`ReconstructError::ParallelCopy`] on a duplicate-destination
/// copy group; `f` is then partially rewritten and must be discarded.
pub fn out_of_pinned_ssa_checked(f: &mut Function) -> Result<ReconstructStats, ReconstructError> {
    translate(f, true)
}

fn translate(f: &mut Function, checked: bool) -> Result<ReconstructStats, ReconstructError> {
    let out = tossa_trace::span("reconstruct", || translate_inner(f, checked));
    if let Ok(stats) = &out {
        stats.flush_trace();
    }
    out
}

fn translate_inner(f: &mut Function, checked: bool) -> Result<ReconstructStats, ReconstructError> {
    let mut stats = ReconstructStats {
        edges_split: split_edges_for_phis(f),
        ..Default::default()
    };

    let engine = Engine::new(f);
    let rpo = tossa_ir::cfg::reverse_postorder(f);
    let ins = engine.in_states(f, &rpo);

    // Variables with no definition (e.g. the incoming value of a dedicated
    // register such as SP) are never killed: their value is the initial
    // content of their resource and needs no repair.
    let mut has_def = vec![false; f.num_vars()];
    for (_, i) in f.all_insts() {
        for d in f.inst(i).defs {
            has_def[d.var.index()] = true;
        }
    }

    // ---- mark phase: find killed variables ------------------------------
    let mut needs_repair: BTreeSet<Var> = BTreeSet::new();
    let mut cur: Vec<u32> = Vec::new();
    let mut insts: Vec<Inst> = Vec::new();
    let mut group: Vec<(usize, u32)> = Vec::new();
    for &b in &rpo {
        cur.clone_from(&ins[b]);
        insts.clear();
        insts.extend(f.block_insts(b));
        for pos in 0..insts.len() {
            let i = insts[pos];
            let inst = f.inst(i);
            if inst.is_phi() {
                continue;
            }
            let is_term = pos + 1 == insts.len() && inst.is_terminator();
            engine.group_writes_into(f, b, i, is_term, &mut group);
            for u in inst.uses {
                match u.pin {
                    Some(s) => {
                        // A copy `S = cur(u)` is emitted unless S already
                        // holds the value; its source must be readable.
                        if has_def[u.var.index()]
                            && cur[engine.res_slot(s)] != val(u.var)
                            && !engine.available(&cur, u.var)
                        {
                            needs_repair.insert(u.var);
                        }
                    }
                    None => {
                        if let Some(slot) = engine.home(u.var) {
                            let clobbered = gw_get(&group, slot).is_some_and(|w| w != val(u.var));
                            if has_def[u.var.index()] && (cur[slot] != val(u.var) || clobbered) {
                                needs_repair.insert(u.var);
                            }
                        }
                    }
                }
            }
            // Edge copy sources must be readable at the end of the block
            // (checked when processing the terminator's group).
            if is_term {
                for &s in f.succs(b) {
                    for phi in f.phis(s) {
                        let pinst = f.inst(phi);
                        let Some(arg) = pinst.phi_arg_for(b) else {
                            continue;
                        };
                        let x = pinst.defs[0].var;
                        if let Some(ds) = engine.home(x) {
                            if cur[ds] == val(arg.var) {
                                continue; // no copy needed
                            }
                        }
                        if has_def[arg.var.index()] && !engine.available(&cur, arg.var) {
                            needs_repair.insert(arg.var);
                        }
                    }
                }
            }
            engine.transfer_inst(f, i, &mut cur);
        }
    }

    // ---- final names -----------------------------------------------------
    // Dense: resource `r`'s final variable at index `r.index()`, and a
    // killed variable's repair at its own index (None elsewhere).
    let mut res_var: Vec<Var> = Vec::with_capacity(f.resources.len());
    for r in f.resources.iter() {
        let name = f.resources.name(r).to_string();
        let v = f.new_var(name);
        if let Some(reg) = f.resources.as_phys(r) {
            f.var_mut(v).reg = Some(reg);
        }
        res_var.push(v);
    }
    let mut repair_var: Vec<Option<Var>> = vec![None; f.num_vars()];
    for &v in &needs_repair {
        let name = format!("{}_rep", f.var(v).name);
        let rv = f.new_var(name);
        repair_var[v.index()] = Some(rv);
    }
    // The final name of a variable: its resource's variable, or itself.
    let out_var = |f: &Function, v: Var| -> Var {
        match f.var(v).pin {
            Some(r) => res_var[r.index()],
            None => v,
        }
    };
    // The final variable currently holding the value of `y`.
    let read_loc = |f: &Function, cur: &[u32], y: Var| -> Var {
        match engine.home(y) {
            Some(slot)
                if cur[slot] != val(y) && y.index() < has_def.len() && has_def[y.index()] =>
            {
                repair_var[y.index()].expect("killed value was marked for repair")
            }
            _ => out_var(f, y),
        }
    };

    // ---- rewrite phase ----------------------------------------------------
    // New instruction lists are applied only after every block has been
    // processed: predecessors must still see their successors' φs.
    let mut new_lists: Vec<(Block, Vec<Inst>)> = Vec::with_capacity(rpo.len());
    let mut temp_counter = 0;
    let mut renamed_uses: Vec<Var> = Vec::new();
    let mut renamed_defs: Vec<Var> = Vec::new();
    let mut group_slots: Vec<(usize, u32)> = Vec::new();
    for &b in &rpo {
        cur.clone_from(&ins[b]);
        insts.clear();
        insts.extend(f.block_insts(b));
        let mut new_list: Vec<Inst> = Vec::with_capacity(insts.len());

        // Repairs of this block's φ definitions come first.
        for &i in &insts {
            if !f.inst(i).is_phi() {
                break;
            }
            let x = f.inst(i).defs[0].var;
            stats.phis_removed += 1;
            if let Some(rv) = repair_var[x.index()] {
                let src = out_var(f, x);
                provenance::record(|| provenance::Kind::Copy {
                    dst: var_str(f, rv),
                    src: var_str(f, src),
                    cause: format!("repair:{}", var_str(f, x)),
                });
                let mov = f.alloc_inst(InstData::mov(rv, src));
                new_list.push(mov);
                stats.repair_copies += 1;
            }
        }

        for pos in 0..insts.len() {
            let i = insts[pos];
            if f.inst(i).is_phi() {
                continue;
            }
            let is_term = pos + 1 == insts.len() && f.inst(i).is_terminator();
            engine.group_writes_into(f, b, i, is_term, &mut group_slots);

            // Build the parallel copy group preceding this instruction.
            // `copy_cause` attributes each destination to the constraint
            // that demanded the copy (keyed by destination: a well-formed
            // parallel copy writes each destination once).
            let mut group: Vec<(Var, Var)> = Vec::new();
            let mut copy_cause: HashMap<Var, String> = HashMap::new();
            for k in 0..f.inst(i).uses.len() {
                let u = f.inst(i).uses[k];
                if let Some(s) = u.pin {
                    if cur[engine.res_slot(s)] == val(u.var) {
                        continue; // redundant move avoided
                    }
                    let src = read_loc(f, &cur, u.var);
                    group.push((res_var[s.index()], src));
                    if tossa_trace::verbose() {
                        copy_cause.insert(res_var[s.index()], format!("abi:{}", res_str(f, s)));
                    }
                }
            }
            group.sort();
            group.dedup();
            let n_abi = group.len();
            if is_term {
                let edge = edge_copy_group(f, &engine, b, &cur, &res_var, &read_loc);
                stats.phi_copies += edge.len();
                if tossa_trace::verbose() {
                    for &(dst, _, succ) in &edge {
                        copy_cause.insert(
                            dst,
                            format!("phi-edge:{}->{}", f.block(b).name, f.block(succ).name),
                        );
                    }
                }
                group.extend(edge.into_iter().map(|(dst, src, _)| (dst, src)));
            }
            stats.abi_copies += n_abi;
            if !group.is_empty() {
                let first_temp = f.num_vars();
                let seq = tossa_trace::span("parallel_copy_seq", || {
                    if checked {
                        sequentialize_checked(&group, || {
                            temp_counter += 1;
                            stats.temp_copies += 1;
                            f.new_var(format!("pcopy{temp_counter}"))
                        })
                        .map_err(ReconstructError::ParallelCopy)
                    } else {
                        Ok(sequentialize(&group, || {
                            temp_counter += 1;
                            stats.temp_copies += 1;
                            f.new_var(format!("pcopy{temp_counter}"))
                        }))
                    }
                })?;
                for (d, s) in seq {
                    if tossa_trace::verbose() {
                        // A destination created by the sequentializer is a
                        // cycle-breaking temporary; anything else keeps the
                        // cause of the group member it realizes.
                        let cause = if d.index() >= first_temp {
                            "cycle".to_string()
                        } else {
                            copy_cause
                                .get(&d)
                                .cloned()
                                .unwrap_or_else(|| "parallel-copy".to_string())
                        };
                        provenance::record(|| provenance::Kind::Copy {
                            dst: var_str(f, d),
                            src: var_str(f, s),
                            cause,
                        });
                    }
                    let mov = f.alloc_inst(InstData::mov(d, s));
                    new_list.push(mov);
                }
            }

            // Compute the renamed operands before mutating (the state
            // advance below must still read the original pins), then
            // rewrite the instruction *in place*: the original id is
            // reused, avoiding a clone + arena grow per instruction.
            let inst = f.inst(i);
            renamed_uses.clear();
            renamed_uses.extend(inst.uses.iter().map(|u| match u.pin {
                Some(s) => res_var[s.index()],
                None => {
                    if let Some(slot) = engine.home(u.var) {
                        let clobbered = gw_get(&group_slots, slot).is_some_and(|w| w != val(u.var));
                        let killed =
                            has_def[u.var.index()] && (cur[slot] != val(u.var) || clobbered);
                        if killed {
                            repair_var[u.var.index()].expect("killed use was marked")
                        } else {
                            out_var(f, u.var)
                        }
                    } else {
                        u.var
                    }
                }
            }));
            let def_repairs: Vec<(Var, Var, Var)> = inst
                .defs
                .iter()
                .filter_map(|d| repair_var[d.var.index()].map(|rv| (rv, out_var(f, d.var), d.var)))
                .collect();
            renamed_defs.clear();
            renamed_defs.extend(inst.defs.iter().map(|d| out_var(f, d.var)));
            // Advance the state while the instruction is still original.
            for &(slot, w) in &group_slots {
                cur[slot] = w;
            }
            engine.transfer_inst(f, i, &mut cur);
            let data = f.inst_mut(i);
            for (u, &v) in data.uses.iter_mut().zip(&renamed_uses) {
                u.var = v;
                u.pin = None;
            }
            for (d, &v) in data.defs.iter_mut().zip(&renamed_defs) {
                d.var = v;
                d.pin = None;
            }
            let is_self_move = data.opcode.is_move() && data.defs[0].var == data.uses[0].var;
            if !is_self_move {
                new_list.push(i);
            }
            for (rv, src, orig) in def_repairs {
                provenance::record(|| provenance::Kind::Copy {
                    dst: var_str(f, rv),
                    src: var_str(f, src),
                    cause: format!("repair:{}", var_str(f, orig)),
                });
                let mov = f.alloc_inst(InstData::mov(rv, src));
                new_list.push(mov);
                stats.repair_copies += 1;
            }
        }
        new_lists.push((b, new_list));
    }
    for (b, list) in new_lists {
        f.block_mut(b).insts = list;
    }

    // Unreachable blocks never execute: reduce them to a bare return so
    // no φ or pin survives anywhere.
    let reachable = tossa_ir::cfg::reachable(f);
    for b in f.blocks().collect::<Vec<_>>() {
        if !reachable[b.index()] {
            f.block_mut(b).insts.clear();
            f.push_inst(b, InstData::new(Opcode::Ret));
        }
    }

    // Erase pins.
    for v in f.vars().collect::<Vec<_>>() {
        f.var_mut(v).pin = None;
    }
    Ok(stats)
}

/// Builds the parallel copy group materializing the φs of `b`'s
/// successors, in final variable names, and applies the skip rule for
/// arguments already occupying the φ's slot. Each move carries the
/// successor block it materializes a φ of, for provenance.
fn edge_copy_group(
    f: &Function,
    engine: &Engine,
    b: Block,
    cur: &[u32],
    res_var: &[Var],
    read_loc: &dyn Fn(&Function, &[u32], Var) -> Var,
) -> Vec<(Var, Var, Block)> {
    let mut moves = Vec::new();
    for &s in f.succs(b) {
        for phi in f.phis(s) {
            let inst = f.inst(phi);
            let Some(arg) = inst.phi_arg_for(b) else {
                continue;
            };
            let x = inst.defs[0].var;
            if let Some(ds) = engine.home(x) {
                if cur[ds] == val(arg.var) {
                    continue; // the coalescing gain: no copy
                }
            }
            let dst = match f.var(x).pin {
                Some(r) => res_var[r.index()],
                None => x,
            };
            let src = read_loc(f, cur, arg.var);
            if dst != src {
                moves.push((dst, src, s));
            }
        }
    }
    moves
}

#[cfg(test)]
mod tests {
    use super::*;
    use tossa_ir::interp;
    use tossa_ir::machine::Machine;
    use tossa_ir::parse::parse_function;

    fn parse(text: &str) -> Function {
        let f = parse_function(text, &Machine::dsp32()).unwrap();
        f.validate().unwrap();
        tossa_ssa::verify_ssa(&f).unwrap();
        f
    }

    fn check_equiv(before: &Function, after: &Function, inputs_list: &[&[i64]]) {
        for &inputs in inputs_list {
            let a = interp::run(before, inputs, 100_000).unwrap();
            let b = interp::run(after, inputs, 100_000)
                .unwrap_or_else(|e| panic!("after traps: {e}\n{after}"));
            assert_eq!(a.outputs, b.outputs, "inputs {inputs:?}\n{after}");
        }
    }

    #[test]
    fn unpinned_phi_naive_copies() {
        let f = parse(
            "func @d {
entry:
  %c = input
  br %c, l, r
l:
  %a = make 1
  jump m
r:
  %b = make 2
  jump m
m:
  %x = phi [l: %a], [r: %b]
  ret %x
}",
        );
        let mut g = f.clone();
        let stats = out_of_pinned_ssa(&mut g);
        g.validate().unwrap_or_else(|e| panic!("{e}\n{g}"));
        assert_eq!(stats.phis_removed, 1);
        assert_eq!(stats.phi_copies, 2); // one per edge, no coalescing
        check_equiv(&f, &g, &[&[0], &[1]]);
    }

    #[test]
    fn coalesced_phi_zero_copies() {
        let mut f = parse(
            "func @d {
entry:
  %c = input
  br %c, l, r
l:
  %a = make 1
  jump m
r:
  %b = make 2
  jump m
m:
  %x = phi [l: %a], [r: %b]
  ret %x
}",
        );
        let orig = f.clone();
        crate::coalesce::program_pinning(&mut f, &Default::default());
        let stats = out_of_pinned_ssa(&mut f);
        assert_eq!(stats.phi_copies, 0, "{f}");
        assert_eq!(f.count_moves(), 0);
        check_equiv(&orig, &f, &[&[0], &[1]]);
    }

    #[test]
    fn lost_copy_is_repaired() {
        // Forcing the φ web into one resource although x and x2 overlap
        // requires a repair copy (Fig. 5(b)'s "worst" solution).
        let mut f = parse(
            "func @lost {
entry:
  %one = make 1
  %n = input
  jump head
head:
  %x = phi [entry: %one], [latch: %x2]
  %x2 = addi %x, 1
  %c = cmplt %x2, %n
  br %c, latch, exit
latch:
  jump head
exit:
  ret %x
}",
        );
        let orig = f.clone();
        let r = f.resources.new_virt("forced");
        for name in ["one", "x", "x2"] {
            let v = f.vars().find(|&v| f.var(v).name == name).unwrap();
            f.var_mut(v).pin = Some(r);
        }
        let stats = out_of_pinned_ssa(&mut f);
        assert!(stats.repair_copies >= 1, "{stats:?}\n{f}");
        check_equiv(&orig, &f, &[&[0], &[1], &[5]]);
    }

    #[test]
    fn swap_problem_sequentialized_with_temp() {
        // Two φs exchanging values each iteration: with each φ coalesced
        // onto its own web the edge copies on the latch form a 2-cycle.
        let mut f = parse(
            "func @swap {
entry:
  %a, %b, %n = input
  %z = make 0
  jump head
head:
  %x = phi [entry: %a], [latch: %y]
  %y = phi [entry: %b], [latch: %x]
  %i = phi [entry: %z], [latch: %i2]
  %i2 = addi %i, 1
  %c = cmplt %i2, %n
  br %c, latch, exit
latch:
  jump head
exit:
  ret %x, %y
}",
        );
        let orig = f.clone();
        let stats = out_of_pinned_ssa(&mut f);
        f.validate().unwrap_or_else(|e| panic!("{e}\n{f}"));
        assert!(stats.temp_copies >= 1, "{stats:?}\n{f}");
        check_equiv(&orig, &f, &[&[7, 9, 1], &[7, 9, 2], &[7, 9, 5]]);
    }

    #[test]
    fn abi_use_pin_emits_setup_copies() {
        let mut f = parse(
            "func @abi {
entry:
  %a, %b = input
  %d = call g(%b!R0, %a!R1)
  ret %d!R0
}",
        );
        let orig = f.clone();
        crate::collect::pinning_abi(&mut f);
        let stats = out_of_pinned_ssa(&mut f);
        f.validate().unwrap();
        // Swapped arguments: both need to move (through a cycle).
        assert!(stats.abi_copies >= 2, "{stats:?}\n{f}");
        check_equiv(&orig, &f, &[&[3, 4], &[0, 0]]);
    }

    #[test]
    fn redundant_abi_copy_avoided() {
        let mut f = parse(
            "func @red {
entry:
  %a, %b = input
  %d = call g(%a, %b)
  ret %d
}",
        );
        let orig = f.clone();
        crate::collect::pinning_abi(&mut f);
        let stats = out_of_pinned_ssa(&mut f);
        // Arguments already arrive in R0/R1; the result is already in R0.
        assert_eq!(stats.total_copies(), 0, "{stats:?}\n{f}");
        assert_eq!(f.count_moves(), 0);
        check_equiv(&orig, &f, &[&[3, 4]]);
    }

    #[test]
    fn two_operand_constraint_honored() {
        let mut f = parse(
            "func @two {
entry:
  %p = input
  %v = load %p
  %q = autoadd %p, 1
  %w = load %q
  %s = add %v, %w
  ret %s
}",
        );
        let orig = f.clone();
        crate::collect::pinning_abi(&mut f);
        let mut g = f.clone();
        let _ = out_of_pinned_ssa(&mut g);
        g.validate().unwrap();
        let autoadd = g
            .all_insts()
            .find(|&(_, i)| g.inst(i).opcode == Opcode::AutoAdd)
            .map(|(_, i)| i)
            .unwrap();
        assert_eq!(g.inst(autoadd).defs[0].var, g.inst(autoadd).uses[0].var);
        check_equiv(&orig, &g, &[&[100], &[4]]);
    }

    #[test]
    fn kill_by_call_result_repaired() {
        // Fig. 3 skeleton: x lives in R0 (first input), the call also
        // defines R0 while x is needed afterwards: repair x′ = R0.
        let mut f = parse(
            "func @kill {
entry:
  %x, %y = input
  %d = call g(%y!R0)
  %s = add %x, %d
  ret %s!R0
}",
        );
        let orig = f.clone();
        crate::collect::pinning_abi(&mut f);
        let stats = out_of_pinned_ssa(&mut f);
        assert!(stats.repair_copies >= 1, "{stats:?}\n{f}");
        check_equiv(&orig, &f, &[&[3, 4], &[100, -1]]);
    }

    #[test]
    fn loop_with_coalescing_end_to_end() {
        let mut f = parse(
            "func @sum {
entry:
  %n = input
  %z = make 0
  %z2 = make 0
  jump head
head:
  %i = phi [entry: %z], [body: %i2]
  %acc = phi [entry: %z2], [body: %acc2]
  %c = cmplt %i, %n
  br %c, body, exit
body:
  %acc2 = add %acc, %i
  %i2 = addi %i, 1
  jump head
exit:
  ret %acc
}",
        );
        let orig = f.clone();
        crate::coalesce::program_pinning(&mut f, &Default::default());
        let stats = out_of_pinned_ssa(&mut f);
        f.validate().unwrap_or_else(|e| panic!("{e}\n{f}"));
        // Full coalescing: i web and acc web each collapse to one name.
        assert_eq!(stats.phi_copies, 0, "{stats:?}\n{f}");
        assert_eq!(f.count_moves(), 0, "{f}");
        check_equiv(&orig, &f, &[&[0], &[1], &[5], &[10]]);
    }

    #[test]
    fn multi_value_return_uses_two_registers() {
        let mut f = parse(
            "func @pair {
entry:
  %a, %b = input
  %s = add %a, %b
  %d = sub %a, %b
  ret %s!R0, %d!R1
}",
        );
        let orig = f.clone();
        crate::collect::pinning_abi(&mut f);
        let _ = out_of_pinned_ssa(&mut f);
        f.validate().unwrap();
        check_equiv(&orig, &f, &[&[9, 4], &[-2, 3]]);
        // The final ret reads the two ABI register variables.
        let ret = f
            .all_insts()
            .find(|&(_, i)| f.inst(i).opcode == Opcode::Ret)
            .map(|(_, i)| i)
            .unwrap();
        let regs: Vec<_> = f.inst(ret).uses.iter().map(|u| f.var(u.var).reg).collect();
        assert!(regs.iter().all(|r| r.is_some()), "{f}");
    }

    #[test]
    fn chained_calls_route_through_r0() {
        // g's result (R0) feeds h's second argument (R1) while a fresh
        // value takes R0: the staging copies must not clobber each other.
        let mut f = parse(
            "func @chain {
entry:
  %a, %b = input
  %r1 = call g(%a, %b)
  %r2 = call h(%b, %r1)
  ret %r2
}",
        );
        let orig = f.clone();
        crate::collect::pinning_abi(&mut f);
        let _ = out_of_pinned_ssa(&mut f);
        f.validate().unwrap();
        check_equiv(&orig, &f, &[&[3, 4], &[0, -7]]);
    }

    #[test]
    fn excess_inputs_stay_virtual() {
        // Only the first four scalar + two pointer args have registers;
        // the rest keep their virtual names.
        let mut f = parse(
            "func @many {
entry:
  %a, %b, %c, %d, %e, %g, %h = input
  %s1 = add %a, %h
  %s2 = add %s1, %g
  ret %s2
}",
        );
        let orig = f.clone();
        crate::collect::pinning_abi(&mut f);
        let _ = out_of_pinned_ssa(&mut f);
        f.validate().unwrap();
        check_equiv(&orig, &f, &[&[1, 2, 3, 4, 5, 6, 7]]);
        let input = f
            .all_insts()
            .find(|&(_, i)| f.inst(i).opcode == Opcode::Input)
            .map(|(_, i)| i)
            .unwrap();
        let defs = &f.inst(input).defs;
        assert!(f.var(defs[0].var).reg.is_some());
        assert!(f.var(defs[6].var).reg.is_none(), "{f}");
    }

    #[test]
    fn psel_chain_coalesces_to_one_name() {
        let mut f = parse(
            "func @pc {
entry:
  %p1, %a1, %p2, %a2 = input
  %z = make 0
  %t1 = psel %p1, %a1, %z
  %x = psel %p2, %a2, %t1
  ret %x
}",
        );
        let orig = f.clone();
        crate::collect::pinning_abi(&mut f); // ties each psel to its else input
        let stats = out_of_pinned_ssa(&mut f);
        f.validate().unwrap();
        // Two copies total: seeding the chain's resource with z, and the
        // return staging into R0. Nothing between the psels.
        assert_eq!(stats.total_copies(), 2, "{stats:?}\n{f}");
        let psels: Vec<_> = f
            .all_insts()
            .filter(|&(_, i)| f.inst(i).opcode == Opcode::PSel)
            .map(|(_, i)| i)
            .collect();
        let names: std::collections::HashSet<_> =
            psels.iter().map(|&i| f.inst(i).defs[0].var).collect();
        assert_eq!(names.len(), 1, "whole chain in one resource\n{f}");
        check_equiv(&orig, &f, &[&[1, 10, 1, 20], &[0, 10, 0, 20]]);
    }

    #[test]
    fn checked_reconstruct_reports_ill_formed_copy_group() {
        // Two φs of one block forced into one resource with different
        // arguments: the per-edge parallel copy writes the resource
        // twice. The unchecked path would assert; the checked path
        // reports a structured error.
        let mut f = parse(
            "func @ill {
entry:
  %a = make 1
  %b = make 2
  jump m
m:
  %x = phi [entry: %a]
  %y = phi [entry: %b]
  ret %x, %y
}",
        );
        let r = f.resources.new_virt("bad");
        for name in ["x", "y"] {
            let v = f.vars().find(|&v| f.var(v).name == name).unwrap();
            f.var_mut(v).pin = Some(r);
        }
        let e = out_of_pinned_ssa_checked(&mut f).unwrap_err();
        assert!(
            matches!(e, ReconstructError::ParallelCopy(_)),
            "expected parallel copy error, got {e}"
        );
    }

    #[test]
    fn unreachable_blocks_are_cleared() {
        let mut f = parse(
            "func @u {
entry:
  %a = make 1
  ret %a
dead:
  %x = phi [dead: %x]
  jump dead
}",
        );
        let _ = out_of_pinned_ssa(&mut f);
        f.validate().unwrap();
        assert_eq!(
            f.all_insts().filter(|&(_, i)| f.inst(i).is_phi()).count(),
            0,
            "no φ survives"
        );
    }
}
