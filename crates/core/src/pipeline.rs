//! The experiment matrix of the paper's Table 1: which passes each named
//! experiment enables. The actual runner lives in `tossa-bench` (it also
//! needs the baseline algorithms); this module is the single source of
//! truth for the pass sets.

use std::fmt;

/// The passes an experiment enables (columns of Table 1).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Passes {
    /// Sreedhar et al.'s SSA→CSSA conversion.
    pub sreedhar: bool,
    /// `pinningCSSA`: pin φ-congruence classes to common resources.
    pub pinning_cssa: bool,
    /// `pinningSP`: pin the SP web (always on in the paper).
    pub pinning_sp: bool,
    /// `pinningABI`: collect ABI/ISA renaming constraints.
    pub pinning_abi: bool,
    /// `pinningφ`: the paper's coalescer (`Program_pinning`).
    pub pinning_phi: bool,
    /// Leung–George mark/reconstruct (always on; the φ replacement).
    pub out_of_pinned_ssa: bool,
    /// `NaiveABI`: local moves instead of ABI pinning.
    pub naive_abi: bool,
    /// Aggressive Chaitin-style repeated coalescing afterwards.
    pub coalescing: bool,
}

/// The named experiments of Tables 2–4 (Table 5 varies
/// [`crate::coalesce::CoalesceOptions`] on top of [`Experiment::LphiAbi`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Experiment {
    /// Table 2 `Lφ+C`: our coalescer, no ABI constraints, then Chaitin.
    LphiC,
    /// Table 2 `C`: plain out-of-SSA then Chaitin (Briggs-style).
    CNoAbi,
    /// Table 2 `Sφ+C`: Sreedhar et al. + CSSA pinning, then Chaitin.
    SphiC,
    /// Table 3 `Lφ,ABI+C`: our coalescer with ABI constraints + Chaitin.
    LphiAbiC,
    /// Table 3 `Sφ+LABI+C`: Sreedhar + ABI pinning + Chaitin.
    SphiLabiC,
    /// Table 3 `LABI+C`: ABI pinning only (no φ coalescing) + Chaitin.
    LabiC,
    /// Table 3 `C`: naive ABI moves + Chaitin.
    CAbi,
    /// Table 4 `Lφ,ABI`: our coalescer with ABI constraints, no Chaitin.
    LphiAbi,
    /// Table 4 `Sφ`: Sreedhar + naive ABI, no Chaitin.
    Sphi,
    /// Table 4 `LABI`: ABI pinning only, no Chaitin.
    Labi,
}

impl Experiment {
    /// All experiments, in table order.
    pub fn all() -> &'static [Experiment] {
        use Experiment::*;
        &[
            LphiC, CNoAbi, SphiC, LphiAbiC, SphiLabiC, LabiC, CAbi, LphiAbi, Sphi, Labi,
        ]
    }

    /// The pass set of this experiment (the bullet row of Table 1).
    pub fn passes(self) -> Passes {
        use Experiment::*;
        let mut p = Passes {
            pinning_sp: true,        // "we choose to always execute pinningSP"
            out_of_pinned_ssa: true, // the φ replacement engine
            ..Passes::default()
        };
        match self {
            LphiC => {
                p.pinning_phi = true;
                p.coalescing = true;
            }
            CNoAbi => {
                p.coalescing = true;
            }
            SphiC => {
                p.sreedhar = true;
                p.pinning_cssa = true;
                p.coalescing = true;
            }
            LphiAbiC => {
                p.pinning_abi = true;
                p.pinning_phi = true;
                p.coalescing = true;
            }
            SphiLabiC => {
                p.sreedhar = true;
                p.pinning_cssa = true;
                p.pinning_abi = true;
                p.coalescing = true;
            }
            LabiC => {
                p.pinning_abi = true;
                p.coalescing = true;
            }
            CAbi => {
                p.naive_abi = true;
                p.coalescing = true;
            }
            LphiAbi => {
                p.pinning_abi = true;
                p.pinning_phi = true;
            }
            Sphi => {
                p.sreedhar = true;
                p.pinning_cssa = true;
                p.naive_abi = true;
            }
            Labi => {
                p.pinning_abi = true;
            }
        }
        p
    }

    /// Whether this experiment enforces ABI constraints in the output
    /// (via pinning or naive moves).
    pub fn enforces_abi(self) -> bool {
        let p = self.passes();
        p.pinning_abi || p.naive_abi
    }

    /// The label used in the paper's tables.
    pub fn label(self) -> &'static str {
        use Experiment::*;
        match self {
            LphiC => "Lphi+C",
            CNoAbi => "C",
            SphiC => "Sphi+C",
            LphiAbiC => "Lphi,ABI+C",
            SphiLabiC => "Sphi+LABI+C",
            LabiC => "LABI+C",
            CAbi => "C",
            LphiAbi => "Lphi,ABI",
            Sphi => "Sphi",
            Labi => "LABI",
        }
    }
}

impl fmt::Display for Experiment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sp_and_reconstruct_always_on() {
        for &e in Experiment::all() {
            let p = e.passes();
            assert!(p.pinning_sp, "{e:?}");
            assert!(p.out_of_pinned_ssa, "{e:?}");
        }
    }

    #[test]
    fn table1_bullet_counts() {
        // The bullet counts of Table 1, row by row.
        use Experiment::*;
        let bullets = |e: Experiment| {
            let p = e.passes();
            [
                p.sreedhar,
                p.pinning_cssa,
                p.pinning_sp,
                p.pinning_abi,
                p.pinning_phi,
                p.out_of_pinned_ssa,
                p.naive_abi,
                p.coalescing,
            ]
            .iter()
            .filter(|&&b| b)
            .count()
        };
        assert_eq!(bullets(LphiC), 4);
        assert_eq!(bullets(CNoAbi), 3);
        assert_eq!(bullets(SphiC), 5);
        assert_eq!(bullets(LphiAbiC), 5);
        assert_eq!(bullets(SphiLabiC), 6);
        assert_eq!(bullets(LabiC), 4);
        assert_eq!(bullets(CAbi), 4);
        assert_eq!(bullets(LphiAbi), 4);
        assert_eq!(bullets(Sphi), 5);
        assert_eq!(bullets(Labi), 3);
    }

    #[test]
    fn naive_abi_excludes_pinning_abi() {
        for &e in Experiment::all() {
            let p = e.passes();
            assert!(!(p.naive_abi && p.pinning_abi), "{e:?}");
        }
    }
}
