//! Pinning bookkeeping and the correct-pinning checker (paper §2.2,
//! Fig. 4).

use crate::interfere::{InterferenceEnv, ResourceSet};
use std::collections::HashMap;
use std::fmt;
use tossa_ir::ids::{Resource, Var};
use tossa_ir::Function;

/// An incorrect pinning (one of Fig. 4's forbidden cases).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PinError {
    /// Description of the violated rule.
    pub message: String,
}

impl fmt::Display for PinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for PinError {}

/// Collects, for every resource, the variables whose *definition* is
/// pinned to it (§3: "we identify the notion of resource with the set of
/// variables pinned to it").
pub fn resource_members(f: &Function) -> HashMap<Resource, Vec<Var>> {
    let mut members: HashMap<Resource, Vec<Var>> = HashMap::new();
    for v in f.vars() {
        if let Some(r) = f.var(v).pin {
            members.entry(r).or_default().push(v);
        }
    }
    members
}

/// Builds the [`ResourceSet`] view of resource `r`.
pub fn resource_set(
    f: &Function,
    members: &HashMap<Resource, Vec<Var>>,
    r: Resource,
) -> ResourceSet {
    ResourceSet {
        members: members.get(&r).cloned().unwrap_or_default(),
        is_phys: f.resources.as_phys(r).is_some(),
    }
}

/// Checks the pinning of `f` against Fig. 4:
///
/// * Case 1 — two *different* variables defined by one instruction pinned
///   to one resource;
/// * Case 2 — two different variables used by one instruction with use
///   pins on one resource;
/// * Case 3 — two φ definitions of one block pinned to one resource;
/// * Case 5 — a φ argument use-pinned to a resource other than the φ
///   result's (φ arguments are implicitly pinned to the result's
///   resource);
/// * Case 6 / Fig. 2 — definition pinnings whose variables strongly
///   interfere (cross-φ swaps like the SP example).
///
/// Case 4 (a definition and a use of one instruction pinned together —
/// the two-operand constraint) is legal and accepted.
///
/// # Errors
/// Returns the first violation found.
pub fn check_pinning(f: &Function, env: &InterferenceEnv<'_>) -> Result<(), PinError> {
    let err = |m: String| Err(PinError { message: m });
    for (b, i) in f.all_insts() {
        let inst = f.inst(i);
        // Case 1: defs of one instruction.
        for (k, d1) in inst.defs.iter().enumerate() {
            for d2 in &inst.defs[k + 1..] {
                if d1.var != d2.var {
                    if let (Some(r1), Some(r2)) = (f.var(d1.var).pin, f.var(d2.var).pin) {
                        if r1 == r2 {
                            return err(format!(
                                "case 1: defs {} and {} of {i} pinned to {}",
                                d1.var,
                                d2.var,
                                f.resources.name(r1)
                            ));
                        }
                    }
                }
            }
        }
        // Case 2: uses of one instruction (operand pins).
        for (k, u1) in inst.uses.iter().enumerate() {
            for u2 in &inst.uses[k + 1..] {
                if u1.var != u2.var {
                    if let (Some(r1), Some(r2)) = (u1.pin, u2.pin) {
                        if r1 == r2 {
                            return err(format!(
                                "case 2: uses {} and {} of {i} pinned to {}",
                                u1.var,
                                u2.var,
                                f.resources.name(r1)
                            ));
                        }
                    }
                }
            }
        }
        // Case 5: φ argument pinned elsewhere than the φ result.
        if inst.is_phi() {
            let def_pin = f.var(inst.defs[0].var).pin;
            for u in inst.uses {
                if let Some(s) = u.pin {
                    if Some(s) != def_pin {
                        return err(format!(
                            "case 5: φ argument {} of {i} in {b} pinned to {} ≠ result pin",
                            u.var,
                            f.resources.name(s)
                        ));
                    }
                }
            }
        }
    }
    // Case 3: φ defs of one block sharing a resource.
    for b in f.blocks() {
        let phis: Vec<_> = f.phis(b).collect();
        for (k, &p1) in phis.iter().enumerate() {
            for &p2 in &phis[k + 1..] {
                let v1 = f.inst(p1).defs[0].var;
                let v2 = f.inst(p2).defs[0].var;
                if let (Some(r1), Some(r2)) = (f.var(v1).pin, f.var(v2).pin) {
                    if r1 == r2 {
                        return err(format!(
                            "case 3: φ defs {v1} and {v2} of {b} pinned to {}",
                            f.resources.name(r1)
                        ));
                    }
                }
            }
        }
    }
    // Case 6 / Fig. 2: strong interference inside one resource.
    let members = resource_members(f);
    for (r, vars) in &members {
        for (k, &x) in vars.iter().enumerate() {
            for &y in &vars[k + 1..] {
                if env.strongly_interfere(x, y) {
                    return err(format!(
                        "case 6: {x} and {y} pinned to {} strongly interfere",
                        f.resources.name(*r)
                    ));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interfere::EnvHandles;
    use crate::interfere::InterferenceMode;
    use tossa_analysis::AnalysisCache;
    use tossa_ir::machine::Machine;
    use tossa_ir::parse::parse_function;

    struct Setup {
        f: Function,
        handles: EnvHandles,
    }

    fn setup(text: &str) -> Setup {
        let f = parse_function(text, &Machine::dsp32()).unwrap();
        f.validate().unwrap();
        let handles = EnvHandles::from_cache(&f, &mut AnalysisCache::new());
        Setup { f, handles }
    }

    impl Setup {
        fn env(&self) -> InterferenceEnv<'_> {
            self.handles.env(&self.f, InterferenceMode::Exact)
        }
    }

    #[test]
    fn accepts_two_operand_pinning_case4() {
        let s = setup(
            "func @ok {
entry:
  %p = input
  %q!$a = autoadd %p!$a, 1
  ret %q
}",
        );
        assert!(check_pinning(&s.f, &s.env()).is_ok());
    }

    #[test]
    fn rejects_case1_same_inst_defs() {
        let s = setup(
            "func @c1 {
entry:
  %a!R0, %b!R0 = input
  ret %a
}",
        );
        let e = check_pinning(&s.f, &s.env()).unwrap_err();
        assert!(e.message.contains("case 1"), "{e}");
    }

    #[test]
    fn rejects_case2_same_inst_uses() {
        let s = setup(
            "func @c2 {
entry:
  %a = make 1
  %b = make 2
  %d = call f(%a!R0, %b!R0)
  ret %d
}",
        );
        let e = check_pinning(&s.f, &s.env()).unwrap_err();
        assert!(e.message.contains("case 2"), "{e}");
    }

    #[test]
    fn rejects_case3_same_block_phis() {
        let s = setup(
            "func @c3 {
entry:
  %a = make 1
  %b = make 2
  jump m
m:
  %x!$r = phi [entry: %a]
  %y!$r = phi [entry: %b]
  ret %x, %y
}",
        );
        let e = check_pinning(&s.f, &s.env()).unwrap_err();
        // Case 3 and case 6 both apply; the per-block check fires first.
        assert!(e.message.contains("case 3"), "{e}");
    }

    #[test]
    fn rejects_case5_arg_pinned_elsewhere() {
        let s = setup(
            "func @c5 {
entry:
  %a = make 1
  jump m
m:
  %x = phi [entry: %a!R1]
  ret %x
}",
        );
        let e = check_pinning(&s.f, &s.env()).unwrap_err();
        assert!(e.message.contains("case 5"), "{e}");
    }

    #[test]
    fn rejects_case6_cross_phi_swap() {
        // Fig. 2: two φs in different blocks pinned to SP with
        // disagreeing arguments in a shared predecessor.
        let s = setup(
            "func @c6 {
entry:
  %sp1!SP = make 1
  %x1 = make 2
  %c = input
  br %c, l, r
l:
  %sp3!SP = phi [entry: %sp1]
  ret %sp3
r:
  %sp4!SP = phi [entry: %x1]
  ret %sp4
}",
        );
        let e = check_pinning(&s.f, &s.env()).unwrap_err();
        assert!(e.message.contains("case 6"), "{e}");
    }

    #[test]
    fn members_map_collects_def_pins() {
        let s = setup(
            "func @m {
entry:
  %a!R0 = make 1
  %b!R0 = addi %a, 1
  %c!$v = make 3
  ret %b
}",
        );
        let members = resource_members(&s.f);
        assert_eq!(members.len(), 2);
        let r0 = s.f.resources.by_name("R0").unwrap();
        assert_eq!(members[&r0].len(), 2);
        let set = resource_set(&s.f, &members, r0);
        assert!(set.is_phys);
        assert_eq!(set.members.len(), 2);
    }
}
