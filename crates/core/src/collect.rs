//! Constraint collection passes (the paper's *collect* phase, split as in
//! §5: `pinningSP`, `pinningABI`, `pinningCSSA`) plus the `NaiveABI`
//! fallback that materializes constraints with local moves when pinning
//! is disabled.

use std::collections::HashMap;
use tossa_ir::ids::{Resource, Var};
use tossa_ir::instr::InstData;
use tossa_ir::machine::PhysReg;
use tossa_ir::print::{res_str, var_str};
use tossa_ir::{Function, Opcode};
use tossa_trace::provenance;

fn phys_resource(f: &mut Function, reg: PhysReg) -> Resource {
    let name = f.machine.reg_name(reg).to_string();
    f.resources.phys(reg, &name)
}

/// Records one pin decision on the provenance stream (no-op when
/// tracing is disabled).
fn record_pin(f: &Function, v: Var, r: Resource, cause: &'static str) {
    provenance::record(|| provenance::Kind::Pin {
        var: var_str(f, v),
        resource: res_str(f, r),
        cause: cause.into(),
    });
}

/// `pinningSP`: pins every SSA version of a dedicated register (`SP` by
/// default in the experiments) back to that register. The paper always
/// runs this pass: SP webs can neither be ignored nor split (§5).
///
/// A variable belongs to the web of register `reg` when its pre-SSA
/// origin carried that register identity, or when it carries it directly
/// (non-SSA input).
pub fn pinning_sp(f: &mut Function) -> usize {
    tossa_trace::span("pinning_sp", || {
        let sp = f.machine.abi.sp;
        let n = pin_register_web(f, sp);
        tossa_trace::count(tossa_trace::Counter::PinsSp, n as u64);
        n
    })
}

/// Pins the SSA web of one dedicated register. Returns the number of
/// variables pinned.
pub fn pin_register_web(f: &mut Function, reg: PhysReg) -> usize {
    let r = phys_resource(f, reg);
    let mut n = 0;
    for v in f.vars().collect::<Vec<_>>() {
        let data = f.var(v);
        let in_web =
            data.reg == Some(reg) || data.origin.is_some_and(|o| f.var(o).reg == Some(reg));
        if in_web && data.pin.is_none() {
            f.var_mut(v).pin = Some(r);
            record_pin(f, v, r, "sp");
            n += 1;
        }
    }
    n
}

/// `pinningABI`: collects the remaining renaming constraints
/// (paper Fig. 1):
///
/// * `input` definitions are pinned to the ABI argument registers in
///   order (`S0: .input C↑R0, P↑P0`);
/// * `call` arguments are use-pinned to argument registers and the result
///   definition is pinned to the return register (`S3`);
/// * `ret` values are use-pinned to return registers (`S8`);
/// * two-operand instructions (`more`, `autoadd`, `psel`) tie their
///   definition and constrained use to one (virtual) resource
///   (`S1`, `S6`).
///
/// Returns the number of operands pinned.
pub fn pinning_abi(f: &mut Function) -> usize {
    tossa_trace::span("pinning_abi", || {
        // Hard-def conflicts materialize as moves; count them as ABI
        // copies so `copies_inserted` covers every mov the pipeline adds.
        let before = if tossa_trace::enabled() {
            f.all_insts().count()
        } else {
            0
        };
        let n = pinning_abi_inner(f);
        tossa_trace::count(tossa_trace::Counter::PinsAbi, n as u64);
        if tossa_trace::enabled() {
            let inserted = f.all_insts().count() - before;
            tossa_trace::count(tossa_trace::Counter::CopiesAbi, inserted as u64);
        }
        n
    })
}

fn pinning_abi_inner(f: &mut Function) -> usize {
    let arg_regs: Vec<PhysReg> = f.machine.abi.arg_regs.clone();
    let ptr_regs: Vec<PhysReg> = f.machine.abi.ptr_arg_regs.clone();
    let ret_reg = f.machine.abi.ret_reg;
    let mut n = 0;
    for (b, i) in f.all_insts().collect::<Vec<_>>() {
        let opcode = f.inst(i).opcode;
        match opcode {
            Opcode::Input => {
                // Scalar args take R0..R3, then pointer regs P0..P1.
                let order: Vec<PhysReg> = arg_regs.iter().chain(ptr_regs.iter()).copied().collect();
                let ndefs = f.inst(i).defs.len();
                for k in 0..ndefs {
                    let Some(&reg) = order.get(k) else { break };
                    n += pin_hard_def(f, b, i, k, reg, "abi:input");
                }
            }
            Opcode::Call => {
                let uses = f.inst(i).uses.to_vec();
                for (k, u) in uses.iter().enumerate() {
                    let Some(&reg) = arg_regs.get(k) else { break };
                    let r = phys_resource(f, reg);
                    f.inst_mut(i).uses[k].pin = Some(r);
                    record_pin(f, u.var, r, "abi:call-arg");
                    n += 1;
                }
                if !f.inst(i).defs.is_empty() {
                    n += pin_hard_def(f, b, i, 0, ret_reg, "abi:call");
                }
            }
            Opcode::Ret => {
                let uses = f.inst(i).uses.to_vec();
                for (k, u) in uses.iter().enumerate() {
                    let Some(&reg) = arg_regs.get(k) else { break };
                    let r = phys_resource(f, reg);
                    f.inst_mut(i).uses[k].pin = Some(r);
                    record_pin(f, u.var, r, "abi:ret");
                    n += 1;
                }
            }
            op if op.is_two_operand() => {
                n += pin_two_operand(f, i);
            }
            _ => {}
        }
    }
    n
}

/// Enforces a *hard* ABI definition constraint: the hardware writes
/// `reg`, unconditionally. If def `k` of `i` is unpinned it is pinned to
/// `reg`; if it is already pinned to another resource (e.g. a φ
/// congruence class from `pinningCSSA`), the instruction is rewritten to
/// define a fresh `reg`-pinned variable and a copy to the original is
/// inserted right after — hiding the constraint would under-count the
/// pipeline's ABI moves.
fn pin_hard_def(
    f: &mut Function,
    b: tossa_ir::Block,
    i: tossa_ir::Inst,
    k: usize,
    reg: PhysReg,
    site: &'static str,
) -> usize {
    let r = phys_resource(f, reg);
    let d = f.inst(i).defs[k].var;
    match f.var(d).pin {
        None => {
            f.var_mut(d).pin = Some(r);
            record_pin(f, d, r, site);
            1
        }
        Some(existing) if existing == r => 0,
        Some(_) => {
            let fresh = f.new_var(format!("{}_abi", f.var(d).name));
            f.var_mut(fresh).pin = Some(r);
            f.inst_mut(i).defs[k].var = fresh;
            record_pin(f, fresh, r, site);
            let pos = f
                .block_insts(b)
                .position(|x| x == i)
                .expect("instruction in block");
            f.insert_inst(b, pos + 1, InstData::mov(d, fresh));
            provenance::record(|| provenance::Kind::Copy {
                dst: var_str(f, d),
                src: var_str(f, fresh),
                cause: format!("pin-split:{site}:{}", res_str(f, r)),
            });
            1
        }
    }
}

/// Ties the definition and the constrained use of a two-operand
/// instruction to one resource, creating a virtual resource when neither
/// side is pinned yet (Fig. 1: `autoadd Q↑Q, P↑Q`).
fn pin_two_operand(f: &mut Function, i: tossa_ir::Inst) -> usize {
    let tied = f.inst(i).opcode.tied_use().expect("two-operand opcode");
    let def_var = f.inst(i).defs[0].var;
    let use_var = f.inst(i).uses[tied].var;
    let use_pin = f.inst(i).uses[tied].pin;
    // Resource choice: the def's existing pin wins (it may be an ABI
    // register), then an explicit operand pin, then the used variable's
    // own resource (this is what chains consecutive two-operand
    // instructions — e.g. a ψ-conventional psel chain — into a single
    // resource), then a fresh one.
    let r = match (f.var(def_var).pin, use_pin, f.var(use_var).pin) {
        (Some(r), _, _) => r,
        (None, Some(r), _) => r,
        (None, None, Some(r)) => r,
        (None, None, None) => {
            let name = f.var(def_var).name.clone();
            f.resources.new_virt(name)
        }
    };
    let mut n = 0;
    if f.var(def_var).pin != Some(r) {
        f.var_mut(def_var).pin = Some(r);
        record_pin(f, def_var, r, "abi:two-operand");
        n += 1;
    }
    if f.inst(i).uses[tied].pin != Some(r) {
        f.inst_mut(i).uses[tied].pin = Some(r);
        n += 1;
    }
    n
}

/// `pinningCSSA`: pins every φ-congruence class (the transitive closure
/// of φ def/arg relations) to one resource, turning the out-of-pinned-SSA
/// phase into an out-of-CSSA translation (§5). Correct only on
/// *conventional* SSA (e.g. after Sreedhar et al.'s conversion).
///
/// Returns the number of variables pinned.
pub fn pinning_cssa(f: &mut Function) -> usize {
    tossa_trace::span("pinning_cssa", || {
        let n = pinning_cssa_inner(f);
        tossa_trace::count(tossa_trace::Counter::PinsPhi, n as u64);
        n
    })
}

fn pinning_cssa_inner(f: &mut Function) -> usize {
    // Union-find over variables.
    let n = f.num_vars();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], x: usize) -> usize {
        let mut root = x;
        while parent[root] != root {
            root = parent[root];
        }
        let mut cur = x;
        while parent[cur] != root {
            let next = parent[cur];
            parent[cur] = root;
            cur = next;
        }
        root
    }
    for (_, i) in f.all_insts().collect::<Vec<_>>() {
        let inst = f.inst(i);
        if !inst.is_phi() {
            continue;
        }
        let d = inst.defs[0].var.index();
        for u in inst.uses {
            let (a, b) = (find(&mut parent, d), find(&mut parent, u.var.index()));
            if a != b {
                parent[a] = b;
            }
        }
    }
    // One resource per class that contains a φ.
    let mut class_res: HashMap<usize, Resource> = HashMap::new();
    let mut pinned = 0;
    for (_, i) in f.all_insts().collect::<Vec<_>>() {
        if !f.inst(i).is_phi() {
            continue;
        }
        let members: Vec<Var> = {
            let inst = f.inst(i);
            std::iter::once(inst.defs[0].var)
                .chain(inst.uses.iter().map(|u| u.var))
                .collect()
        };
        let root = find(&mut parent, members[0].index());
        // Reuse any existing pin of the class (e.g. SP), else fresh.
        let r = match class_res.get(&root) {
            Some(&r) => r,
            None => {
                let existing = members.iter().find_map(|&v| f.var(v).pin);
                let r = existing.unwrap_or_else(|| {
                    let name = f.var(members[0]).name.clone();
                    f.resources.new_virt(name)
                });
                class_res.insert(root, r);
                r
            }
        };
        for &v in &members {
            if f.var(v).pin.is_none() {
                f.var_mut(v).pin = Some(r);
                record_pin(f, v, r, "cssa");
                pinned += 1;
            }
        }
    }
    pinned
}

/// `NaiveABI`: materializes renaming constraints with local move
/// instructions around constrained instructions, for pipelines that skip
/// `pinningABI` (§5). Runs on the *final* (non-SSA) code. Returns the
/// number of moves inserted.
///
/// Argument-staging copies for one instruction form a parallel copy
/// (sequentialized with a temporary on cycles): the destination register
/// of one copy may be the source of another, e.g. when a previous call's
/// result feeds the next call's second argument.
pub fn naive_abi(f: &mut Function) -> usize {
    tossa_trace::span("naive_abi", || {
        let moves = naive_abi_inner(f);
        tossa_trace::count(tossa_trace::Counter::CopiesAbi, moves as u64);
        moves
    })
}

fn naive_abi_inner(f: &mut Function) -> usize {
    let arg_regs: Vec<PhysReg> = f.machine.abi.arg_regs.clone();
    let ptr_regs: Vec<PhysReg> = f.machine.abi.ptr_arg_regs.clone();
    let ret_reg = f.machine.abi.ret_reg;
    let mut reg_vars: HashMap<PhysReg, Var> = HashMap::new();
    for v in f.vars().collect::<Vec<_>>() {
        if let Some(reg) = f.var(v).reg {
            reg_vars.insert(reg, v);
        }
    }
    let mut moves = 0;
    for b in f.blocks().collect::<Vec<_>>() {
        let mut pos = 0;
        while pos < f.block(b).insts.len() {
            let i = f.block(b).insts[pos];
            let opcode = f.inst(i).opcode;
            match opcode {
                Opcode::Input => {
                    let order: Vec<PhysReg> =
                        arg_regs.iter().chain(ptr_regs.iter()).copied().collect();
                    let defs = f.inst(i).defs.to_vec();
                    for (k, d) in defs.iter().enumerate() {
                        let Some(&reg) = order.get(k) else { break };
                        let rv = reg_var(f, &mut reg_vars, reg);
                        if rv == d.var {
                            continue;
                        }
                        f.inst_mut(i).defs[k].var = rv;
                        pos += 1;
                        f.insert_inst(b, pos, InstData::mov(d.var, rv));
                        moves += 1;
                    }
                }
                Opcode::Call => {
                    // Stage the arguments as one parallel copy.
                    let uses = f.inst(i).uses.to_vec();
                    let mut group: Vec<(Var, Var)> = Vec::new();
                    for (k, u) in uses.iter().enumerate() {
                        let Some(&reg) = arg_regs.get(k) else { break };
                        let rv = reg_var(f, &mut reg_vars, reg);
                        if rv != u.var {
                            group.push((rv, u.var));
                        }
                        f.inst_mut(i).uses[k].var = rv;
                    }
                    pos += insert_parallel(f, b, pos, &group, &mut moves);
                    let defs = f.inst(i).defs.to_vec();
                    if let Some(d) = defs.first() {
                        let rv = reg_var(f, &mut reg_vars, ret_reg);
                        if rv != d.var {
                            f.inst_mut(i).defs[0].var = rv;
                            pos += 1;
                            f.insert_inst(b, pos, InstData::mov(d.var, rv));
                            moves += 1;
                        }
                    }
                }
                Opcode::Ret => {
                    let uses = f.inst(i).uses.to_vec();
                    let mut group: Vec<(Var, Var)> = Vec::new();
                    for (k, u) in uses.iter().enumerate() {
                        let Some(&reg) = arg_regs.get(k) else { break };
                        let rv = reg_var(f, &mut reg_vars, reg);
                        if rv != u.var {
                            group.push((rv, u.var));
                        }
                        f.inst_mut(i).uses[k].var = rv;
                    }
                    pos += insert_parallel(f, b, pos, &group, &mut moves);
                }
                op if op.is_two_operand() => {
                    let tied = op.tied_use().expect("two-operand");
                    let d = f.inst(i).defs[0].var;
                    let u = f.inst(i).uses[tied].var;
                    if d != u {
                        // Any *other* use of the destination variable must
                        // be saved first: the in-place form overwrites it.
                        let nuses = f.inst(i).uses.len();
                        for j in 0..nuses {
                            if j != tied && f.inst(i).uses[j].var == d {
                                let tmp = f.new_var(format!("{}_sav", f.var(d).name));
                                f.insert_inst(b, pos, InstData::mov(tmp, d));
                                moves += 1;
                                pos += 1;
                                f.inst_mut(i).uses[j].var = tmp;
                            }
                        }
                        // def = mov use; def = op(..., def) — in-place form.
                        f.insert_inst(b, pos, InstData::mov(d, u));
                        moves += 1;
                        pos += 1;
                        f.inst_mut(i).uses[tied].var = d;
                    }
                }
                _ => {}
            }
            pos += 1;
        }
    }
    moves
}

/// Inserts the sequentialized form of a parallel copy before position
/// `at` in `b`; returns how many instructions were inserted.
fn insert_parallel(
    f: &mut Function,
    b: tossa_ir::Block,
    at: usize,
    group: &[(Var, Var)],
    moves: &mut usize,
) -> usize {
    if group.is_empty() {
        return 0;
    }
    let seq = tossa_ir::parallel_copy::sequentialize(group, || f.new_var("abiswap"));
    let mut inserted = 0;
    for (k, &(d, s)) in seq.iter().enumerate() {
        f.insert_inst(b, at + k, InstData::mov(d, s));
        inserted += 1;
    }
    *moves += inserted;
    seq.len()
}

fn reg_var(f: &mut Function, reg_vars: &mut HashMap<PhysReg, Var>, reg: PhysReg) -> Var {
    if let Some(&v) = reg_vars.get(&reg) {
        return v;
    }
    let name = f.machine.reg_name(reg).to_string();
    let v = f.new_var(name);
    f.var_mut(v).reg = Some(reg);
    reg_vars.insert(reg, v);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use tossa_ir::interp;
    use tossa_ir::machine::Machine;
    use tossa_ir::parse::parse_function;
    use tossa_ssa::to_ssa;

    fn parse(text: &str) -> Function {
        let f = parse_function(text, &Machine::dsp32()).unwrap();
        f.validate().unwrap();
        f
    }

    #[test]
    fn pinning_abi_pins_inputs_calls_rets() {
        let mut f = parse(
            "func @abi {
entry:
  %a, %b = input
  %d = call g(%a, %b)
  ret %d
}",
        );
        let n = pinning_abi(&mut f);
        // 2 input defs + 2 call arg uses + 1 call def + 1 ret use.
        assert_eq!(n, 6);
        let r0 = f.resources.by_name("R0").unwrap();
        let a = f.vars().find(|&v| f.var(v).name == "a").unwrap();
        assert_eq!(f.var(a).pin, Some(r0));
    }

    #[test]
    fn two_operand_gets_common_resource() {
        let mut f = parse(
            "func @t {
entry:
  %p = input
  %q = autoadd %p, 1
  %l = make 161
  %k = more %l, 11258
  %s = add %q, %k
  ret %s
}",
        );
        pinning_abi(&mut f);
        let autoadd = f
            .all_insts()
            .find(|&(_, i)| f.inst(i).opcode == Opcode::AutoAdd)
            .map(|(_, i)| i)
            .unwrap();
        let q = f.inst(autoadd).defs[0].var;
        let pin = f.var(q).pin.expect("def pinned");
        assert_eq!(f.inst(autoadd).uses[0].pin, Some(pin));
        // p arrives in a register (ABI input pin), and the two-operand
        // constraint chains q onto p's resource: the whole pointer web
        // lives in that register.
        let pvar = f.vars().find(|&v| f.var(v).name == "p").unwrap();
        assert_eq!(f.var(pvar).pin, Some(pin));
        // The more-instruction's operands build a fresh virtual resource
        // (no prior pin on either side).
        let k = f.vars().find(|&v| f.var(v).name == "k").unwrap();
        let kpin = f.var(k).pin.expect("def pinned");
        assert!(
            f.resources.as_phys(kpin).is_none(),
            "fresh virtual resource"
        );
    }

    #[test]
    fn pinning_sp_pins_the_whole_web() {
        let mut f = parse(
            "func @sp {
entry:
  SP = addi SP, -16
  %x = load SP
  SP = addi SP, 16
  ret %x
}",
        );
        to_ssa(&mut f);
        let n = pinning_sp(&mut f);
        // Versions of SP: the two defs (the initial SP has reg identity
        // but no def — it keeps its identity).
        assert!(n >= 2, "pinned {n}");
        let spres = f.resources.by_name("SP").unwrap();
        let pinned: Vec<Var> = f.vars().filter(|&v| f.var(v).pin == Some(spres)).collect();
        assert_eq!(pinned.len(), n);
    }

    #[test]
    fn pinning_cssa_groups_phi_webs() {
        let mut f = parse(
            "func @c {
entry:
  %a = make 1
  %b = make 2
  %c = input
  br %c, l, r
l:
  jump m
r:
  jump m
m:
  %x = phi [l: %a], [r: %b]
  ret %x
}",
        );
        let n = pinning_cssa(&mut f);
        assert_eq!(n, 3);
        let x = f.vars().find(|&v| f.var(v).name == "x").unwrap();
        let a = f.vars().find(|&v| f.var(v).name == "a").unwrap();
        let b = f.vars().find(|&v| f.var(v).name == "b").unwrap();
        assert_eq!(f.var(x).pin, f.var(a).pin);
        assert_eq!(f.var(a).pin, f.var(b).pin);
        assert!(f.var(x).pin.is_some());
    }

    #[test]
    fn naive_abi_stages_arguments_in_parallel() {
        // The previous call's result (already in R0) becomes the SECOND
        // argument of the next call while a fresh value takes R0: the two
        // staging copies must not clobber each other.
        let mut f = parse(
            "func @chain {
entry:
  %a, %b = input
  %r1 = call f(%a, %b)
  %r2 = call g(%b, %r1)
  ret %r2
}",
        );
        let reference = interp::run(&f, &[3, 4], 1000).unwrap();
        naive_abi(&mut f);
        f.validate().unwrap();
        assert_eq!(
            interp::run(&f, &[3, 4], 1000).unwrap().outputs,
            reference.outputs
        );
    }

    #[test]
    fn naive_abi_swapped_args_need_a_temp() {
        // call f(b, a) with a in R0 and b in R1: pure swap.
        let mut f = parse(
            "func @swap {
entry:
  %a, %b = input
  %r0 = mov %a
  %r1 = mov %b
  %r = call f(%r1, %r0)
  ret %r
}",
        );
        // Bind a and b to the registers by running naive_abi on the input
        // first (inputs land in R0/R1 via def rewriting).
        let reference = interp::run(&f, &[3, 4], 1000).unwrap();
        naive_abi(&mut f);
        f.validate().unwrap();
        assert_eq!(
            interp::run(&f, &[3, 4], 1000).unwrap().outputs,
            reference.outputs
        );
    }

    #[test]
    fn naive_abi_psel_saves_conflicting_condition() {
        // After renaming, the psel's destination is also its condition:
        // the in-place rewrite must save the condition first.
        let mut f = parse(
            "func @pselc {
entry:
  %x, %a, %t = input
  %x = psel %x, %a, %t
  ret %x
}",
        );
        let reference_in = [[1i64, 10, 20], [0, 10, 20]];
        let refs: Vec<_> = reference_in
            .iter()
            .map(|ins| interp::run(&f, ins, 1000).unwrap().outputs)
            .collect();
        naive_abi(&mut f);
        f.validate().unwrap();
        for (ins, want) in reference_in.iter().zip(&refs) {
            assert_eq!(&interp::run(&f, ins, 1000).unwrap().outputs, want, "{f}");
        }
    }

    #[test]
    fn naive_abi_inserts_local_moves_and_preserves_semantics() {
        let mut f = parse(
            "func @n {
entry:
  %a, %b = input
  %d = call g(%b, %a)
  %q = autoadd %a, 4
  %s = add %d, %q
  ret %s
}",
        );
        let reference = interp::run(&f, &[3, 4], 100).unwrap();
        let moves = naive_abi(&mut f);
        // input: 2, call args: 2, call ret: 1, ret: 1, autoadd: 1.
        assert_eq!(moves, 7);
        f.validate().unwrap();
        assert_eq!(
            interp::run(&f, &[3, 4], 100).unwrap().outputs,
            reference.outputs
        );
        assert_eq!(f.count_moves(), moves);
    }
}
