//! The per-block affinity graph and its pruning (paper §3.1, §3.4,
//! Algorithm 2).
//!
//! Vertices are resources (a pinned resource, or an unpinned variable
//! standing for itself); edges are φ-coalescing opportunities weighted by
//! multiplicity. After removing edges whose endpoints interfere the graph
//! is bipartite (φ-definition side vs. argument side); the remaining
//! pruning problem is NP-complete, so a greedy weighted heuristic deletes
//! edges until no two vertices of a connected component interfere.

use crate::interfere::{resource_interfere_reason, InterfereReason, InterferenceEnv, ResourceSet};
use std::collections::HashMap;
use tossa_ir::ids::{Block, Resource, Var};
use tossa_ir::Function;

/// A vertex of the affinity graph: an already-pinned resource or an
/// unpinned variable (its own resource).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RVertex {
    /// A resource with definition-pinned members.
    Res(Resource),
    /// An unpinned variable.
    Bare(Var),
}

/// `Resource_def(v)` (paper §3): the resource of `v`'s definition.
pub fn resource_def(f: &Function, v: Var) -> RVertex {
    match f.var(v).pin {
        Some(r) => RVertex::Res(r),
        None => RVertex::Bare(v),
    }
}

/// The affinity multigraph of one basic block.
///
/// Edges live in a sorted vec keyed by ordered vertex index pairs.
/// [`AffinityGraph::add_edge`] only buffers; the batch is sorted and
/// merged into the map by the next mutable operation (or an explicit
/// [`AffinityGraph::flush`]). Construction therefore does one sort per
/// graph instead of one hash insert per φ argument, iteration is
/// deterministic by key with no per-round sorting, and the pruning
/// loops' key scans walk a contiguous vec.
#[derive(Clone, Debug, Default)]
pub struct AffinityGraph {
    verts: Vec<RVertex>,
    index: HashMap<RVertex, usize>,
    /// Edge multiplicities, sorted by ordered vertex index pair.
    edges: Vec<(EdgeKey, u32)>,
    /// Buffered insertions, merged into `edges` on flush.
    pending: Vec<(EdgeKey, u32)>,
}

impl AffinityGraph {
    fn vertex(&mut self, v: RVertex) -> usize {
        if let Some(&i) = self.index.get(&v) {
            return i;
        }
        let i = self.verts.len();
        self.verts.push(v);
        self.index.insert(v, i);
        i
    }

    fn key(a: usize, b: usize) -> (usize, usize) {
        if a < b {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Buffers one affinity edge of multiplicity `m` between the
    /// vertices for `a` and `b` (self-loops are dropped). Cheap: the
    /// sorted map is only rebuilt on the next flush.
    pub fn add_edge(&mut self, a: RVertex, b: RVertex, m: u32) {
        let ia = self.vertex(a);
        let ib = self.vertex(b);
        if ia == ib {
            return;
        }
        self.pending.push((Self::key(ia, ib), m));
    }

    /// Merges buffered insertions into the sorted edge map.
    pub fn flush(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let mut batch = std::mem::take(&mut self.pending);
        batch.sort_unstable_by_key(|&(k, _)| k);
        // Merge-join the sorted batch with the sorted map, summing
        // multiplicities of equal keys.
        let old = std::mem::take(&mut self.edges);
        let mut merged: Vec<(EdgeKey, u32)> = Vec::with_capacity(old.len() + batch.len());
        let (mut i, mut j) = (0, 0);
        while i < old.len() || j < batch.len() {
            let next = match (old.get(i), batch.get(j)) {
                (Some(&(ka, ma)), Some(&(kb, _))) if ka < kb => {
                    i += 1;
                    (ka, ma)
                }
                (Some(&(ka, ma)), Some(&(kb, mb))) if ka == kb => {
                    i += 1;
                    j += 1;
                    (ka, ma + mb)
                }
                (_, Some(&(kb, mb))) => {
                    j += 1;
                    (kb, mb)
                }
                (Some(&(ka, ma)), None) => {
                    i += 1;
                    (ka, ma)
                }
                (None, None) => unreachable!(),
            };
            match merged.last_mut() {
                Some(last) if last.0 == next.0 => last.1 += next.1,
                _ => merged.push(next),
            }
        }
        self.edges = merged;
    }

    fn assert_flushed(&self) {
        debug_assert!(self.pending.is_empty(), "AffinityGraph read before flush()");
    }

    /// The sorted edge keys (allocated snapshot, for removal loops).
    fn edge_keys(&self) -> Vec<EdgeKey> {
        self.assert_flushed();
        self.edges.iter().map(|&(k, _)| k).collect()
    }

    /// Multiplicity of the edge with `key`, if present.
    fn weight_of(&self, key: EdgeKey) -> Option<u32> {
        self.assert_flushed();
        self.edges
            .binary_search_by_key(&key, |&(k, _)| k)
            .ok()
            .map(|i| self.edges[i].1)
    }

    /// Removes the edge with `key`, returning its multiplicity.
    fn remove_edge(&mut self, key: EdgeKey) -> Option<u32> {
        self.flush();
        self.edges
            .binary_search_by_key(&key, |&(k, _)| k)
            .ok()
            .map(|i| self.edges.remove(i).1)
    }

    /// Number of edges (ignoring multiplicity).
    pub fn num_edges(&self) -> usize {
        self.assert_flushed();
        self.edges.len()
    }

    /// Sum of multiplicities (the total φ-copy gain at stake).
    pub fn total_multiplicity(&self) -> u32 {
        self.assert_flushed();
        self.edges.iter().map(|&(_, m)| m).sum()
    }

    /// The vertices.
    pub fn vertices(&self) -> &[RVertex] {
        &self.verts
    }

    /// Iterates over `(a, b, multiplicity)` in key order.
    pub fn edges(&self) -> impl Iterator<Item = (RVertex, RVertex, u32)> + '_ {
        self.assert_flushed();
        self.edges
            .iter()
            .map(move |&((a, b), m)| (self.verts[a], self.verts[b], m))
    }
}

/// `Create_affinity_graph` (Algorithm 2 / Algorithm 3): one vertex per
/// `Resource_def` of the φ results and arguments of `block`, one edge per
/// φ argument (with multiplicity). With `depth_filter = Some(d)` only
/// arguments whose definition lives at loop depth `d` contribute
/// (Algorithm 3, the paper's `depth` variant).
///
/// `avoidable` refines the paper's gain estimate (\[LIM1\]): an argument
/// that is already killed within its own resource cannot actually have
/// its copy elided (the reconstruction reads its repair variable), so it
/// contributes no multiplicity and creates no edge.
pub fn create_affinity_graph(
    f: &Function,
    block: Block,
    depth_filter: Option<(&dyn Fn(Var) -> u32, u32)>,
    avoidable: &dyn Fn(Var) -> bool,
) -> AffinityGraph {
    let mut g = AffinityGraph::default();
    for phi in f.phis(block) {
        let inst = f.inst(phi);
        let x_res = resource_def(f, inst.defs[0].var);
        g.vertex(x_res);
        for u in inst.uses {
            if let Some((depth_of, want)) = depth_filter {
                if depth_of(u.var) != want {
                    continue;
                }
            }
            if !avoidable(u.var) {
                continue;
            }
            let arg_res = resource_def(f, u.var);
            // A self-edge means the argument is already coalesced with
            // the φ result: the gain is secured, add_edge drops it.
            g.add_edge(x_res, arg_res, 1);
        }
    }
    g.flush();
    g
}

/// Pairwise resource-interference oracle over graph vertices, memoized
/// for the duration of one block's pruning (no merges happen meanwhile).
pub struct VertexInterference<'a> {
    env: &'a InterferenceEnv<'a>,
    members: &'a HashMap<Resource, Vec<Var>>,
    cache: HashMap<(RVertex, RVertex), Option<InterfereReason>>,
    /// Per-vertex resource set and its `killed_within`, computed once per
    /// oracle lifetime (membership is frozen while a block is pruned).
    per_vertex: HashMap<RVertex, (ResourceSet, Vec<Var>)>,
    /// Query/hit tallies, kept as plain integers on the hot path and
    /// flushed to the trace sink once, when the oracle is dropped.
    queries: u64,
    hits: u64,
}

impl Drop for VertexInterference<'_> {
    fn drop(&mut self) {
        tossa_trace::count(tossa_trace::Counter::OracleQueries, self.queries);
        tossa_trace::count(tossa_trace::Counter::OracleCacheHits, self.hits);
    }
}

impl<'a> VertexInterference<'a> {
    /// Creates the oracle over the current membership map.
    pub fn new(
        env: &'a InterferenceEnv<'a>,
        members: &'a HashMap<Resource, Vec<Var>>,
    ) -> VertexInterference<'a> {
        VertexInterference {
            env,
            members,
            cache: HashMap::new(),
            per_vertex: HashMap::new(),
            queries: 0,
            hits: 0,
        }
    }

    /// The variable set denoted by a vertex.
    pub fn set_of(&self, v: RVertex) -> ResourceSet {
        match v {
            RVertex::Res(r) => ResourceSet {
                members: self.members.get(&r).cloned().unwrap_or_default(),
                is_phys: self.env.f.resources.as_phys(r).is_some(),
            },
            RVertex::Bare(v) => ResourceSet::singleton(v),
        }
    }

    /// Number of definition-pinned members of a resource.
    pub fn members_count(&self, r: Resource) -> usize {
        self.members.get(&r).map_or(0, |m| m.len())
    }

    /// Memoizes the vertex's resource set and killed-within list.
    fn ensure_vertex(&mut self, v: RVertex) {
        if !self.per_vertex.contains_key(&v) {
            let s = self.set_of(v);
            let k = s.killed_within(self.env);
            self.per_vertex.insert(v, (s, k));
        }
    }

    /// Whether two vertices' resources interfere (`Resource_interfere`).
    pub fn interfere(&mut self, a: RVertex, b: RVertex) -> bool {
        self.interfere_reason(a, b).is_some()
    }

    /// [`Self::interfere`], reporting which rule fired and its witness
    /// pair. The reason is memoized alongside the verdict, so asking for
    /// it costs no extra interference work.
    pub fn interfere_reason(&mut self, a: RVertex, b: RVertex) -> Option<InterfereReason> {
        if a == b {
            return None;
        }
        self.queries += 1;
        let key = if vkey(a) < vkey(b) { (a, b) } else { (b, a) };
        if let Some(&v) = self.cache.get(&key) {
            self.hits += 1;
            return v;
        }
        self.ensure_vertex(a);
        self.ensure_vertex(b);
        let (sa, ka) = &self.per_vertex[&a];
        let (sb, kb) = &self.per_vertex[&b];
        let r = resource_interfere_reason(self.env, sa, sb, ka, kb);
        self.cache.insert(key, r);
        r
    }
}

pub(crate) fn vkey(v: RVertex) -> (u8, usize) {
    match v {
        RVertex::Res(r) => (0, r.index()),
        RVertex::Bare(v) => (1, v.index()),
    }
}

/// One affinity edge discarded by pruning, with the interference that
/// justified the deletion — the raw material of a provenance
/// [`Edge`](tossa_trace::provenance::Kind::Edge) record.
#[derive(Clone, Copy, Debug)]
pub struct PrunedEdge {
    /// First endpoint of the deleted edge.
    pub a: RVertex,
    /// Second endpoint.
    pub b: RVertex,
    /// Its affinity multiplicity.
    pub weight: u32,
    /// The vertex pair whose interference killed the edge: the edge's
    /// own endpoints under initial pruning; under bipartite pruning, the
    /// interfering pair the deletion separates (possibly elsewhere in
    /// the component).
    pub offenders: (RVertex, RVertex),
    /// Which rule the offenders tripped, with its variable witness.
    pub reason: InterfereReason,
}

/// `Graph_InitialPruning` (Algorithm 2): drops every affinity edge whose
/// endpoints interfere. Returns the dropped edges with their
/// interference reasons, in deterministic (vertex-index) order.
pub fn initial_pruning(
    g: &mut AffinityGraph,
    oracle: &mut VertexInterference<'_>,
) -> Vec<PrunedEdge> {
    g.flush();
    let verts = g.verts.clone();
    let keys = g.edge_keys();
    let mut pruned = Vec::new();
    for key in keys {
        let (a, b) = (verts[key.0], verts[key.1]);
        if let Some(reason) = oracle.interfere_reason(a, b) {
            let weight = g.remove_edge(key).expect("edge present");
            pruned.push(PrunedEdge {
                a,
                b,
                weight,
                offenders: (a, b),
                reason,
            });
        }
    }
    pruned
}

/// `BipartiteGraph_pruning` (Algorithm 2): repeatedly deletes the
/// affinity edge with the largest weight — the weight of `(x, x1)` being
/// the total multiplicity of sibling edges `(x, x2)` whose far endpoint
/// interferes with `x1` — until no two vertices of a connected component
/// interfere (the paper's Condition 2).
///
/// The paper's listed pseudocode decrements weights incrementally, which
/// can both over-delete (a stale positive weight) and under-delete
/// (interferences at distance > 2 never show up in any weight). Since the
/// stated goal is Condition 2, this implementation recomputes true
/// weights every round and, when all weights are zero but a component
/// still contains an interfering pair, deletes the lightest edge on a
/// path between the offenders. Returns the deleted edges with the
/// interfering pair each deletion separates.
pub fn bipartite_pruning(
    g: &mut AffinityGraph,
    oracle: &mut VertexInterference<'_>,
) -> Vec<PrunedEdge> {
    g.flush();
    let verts = g.verts.clone();
    let mut deleted = Vec::new();
    loop {
        // Find an interfering pair inside one connected component.
        let comps = components(g);
        let mut offender: Option<(usize, usize, InterfereReason)> = None;
        'find: for comp in &comps {
            for (i, &a) in comp.iter().enumerate() {
                for &b in &comp[i + 1..] {
                    if let Some(reason) = oracle.interfere_reason(a, b) {
                        let ia = verts.iter().position(|&v| v == a).expect("vertex");
                        let ib = verts.iter().position(|&v| v == b).expect("vertex");
                        offender = Some((ia, ib, reason));
                        break 'find;
                    }
                }
            }
        }
        let Some((u, v, offender_reason)) = offender else {
            break;
        };

        // True weights of all current edges. Each edge's first
        // interfering far-pair is kept as its provenance witness (found
        // during the same oracle pass — no extra queries).
        let keys = g.edge_keys();
        let mut weight: HashMap<EdgeKey, i64> = keys.iter().map(|&k| (k, 0)).collect();
        let mut culprit: HashMap<EdgeKey, (usize, usize, InterfereReason)> = HashMap::new();
        for (i, &e1) in keys.iter().enumerate() {
            for &e2 in &keys[i + 1..] {
                let Some((ka, far_a, kb, far_b)) = share_vertex(e1, e2) else {
                    continue;
                };
                if let Some(reason) = oracle.interfere_reason(verts[far_a], verts[far_b]) {
                    let ma = g.weight_of(ka).expect("edge") as i64;
                    let mb = g.weight_of(kb).expect("edge") as i64;
                    *weight.get_mut(&ka).expect("edge") += mb;
                    *weight.get_mut(&kb).expect("edge") += ma;
                    culprit.entry(ka).or_insert((far_a, far_b, reason));
                    culprit.entry(kb).or_insert((far_a, far_b, reason));
                }
            }
        }
        let (&best, &w) = weight
            .iter()
            .max_by_key(|&(k, &w)| (w, std::cmp::Reverse(*k)))
            .expect("component with an interfering pair has edges");
        let cut = if w > 0 {
            let (fa, fb, reason) = culprit[&best];
            (best, verts[fa], verts[fb], reason)
        } else {
            // The offenders interfere at distance > 2: cut the lightest
            // edge on a path between them.
            let path = edge_path(g, u, v).expect("same component");
            let key = path
                .into_iter()
                .min_by_key(|&k| (g.weight_of(k).expect("edge"), k))
                .expect("non-empty path");
            (key, verts[u], verts[v], offender_reason)
        };
        let (key, off_a, off_b, reason) = cut;
        let weight = g.remove_edge(key).expect("edge present");
        deleted.push(PrunedEdge {
            a: verts[key.0],
            b: verts[key.1],
            weight,
            offenders: (off_a, off_b),
            reason,
        });
    }
    deleted
}

/// A path (as edge keys) between vertex indices `from` and `to`, by BFS.
type EdgeKey = (usize, usize);

fn edge_path(g: &AffinityGraph, from: usize, to: usize) -> Option<Vec<EdgeKey>> {
    let n = g.verts.len();
    let mut prev: Vec<Option<(usize, EdgeKey)>> = vec![None; n];
    let mut visited = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    visited[from] = true;
    queue.push_back(from);
    while let Some(x) = queue.pop_front() {
        if x == to {
            let mut path = Vec::new();
            let mut cur = to;
            while cur != from {
                let (p, e) = prev[cur].expect("visited");
                path.push(e);
                cur = p;
            }
            return Some(path);
        }
        let mut nexts: Vec<(usize, EdgeKey)> = Vec::new();
        for &((a, b), _) in &g.edges {
            if a == x && !visited[b] {
                nexts.push((b, (a, b)));
            } else if b == x && !visited[a] {
                nexts.push((a, (a, b)));
            }
        }
        nexts.sort();
        for (y, e) in nexts {
            visited[y] = true;
            prev[y] = Some((x, e));
            queue.push_back(y);
        }
    }
    None
}

/// If `e1` and `e2` share exactly one vertex, returns
/// `(e1, far end of e1, e2, far end of e2)`.
fn share_vertex(e1: EdgeKey, e2: EdgeKey) -> Option<(EdgeKey, usize, EdgeKey, usize)> {
    let (a1, b1) = e1;
    let (a2, b2) = e2;
    let (far1, far2) = if a1 == a2 && b1 != b2 {
        (b1, b2)
    } else if a1 == b2 && b1 != a2 {
        (b1, a2)
    } else if b1 == a2 && a1 != b2 {
        (a1, b2)
    } else if b1 == b2 && a1 != a2 {
        (a1, a2)
    } else {
        return None;
    };
    Some((e1, far1, e2, far2))
}

/// Connected components of the pruned graph (vertex index lists);
/// singletons are omitted.
pub fn components(g: &AffinityGraph) -> Vec<Vec<RVertex>> {
    let n = g.verts.len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], x: usize) -> usize {
        let mut r = x;
        while parent[r] != r {
            r = parent[r];
        }
        let mut c = x;
        while parent[c] != r {
            let nx = parent[c];
            parent[c] = r;
            c = nx;
        }
        r
    }
    for &((a, b), _) in &g.edges {
        let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
        if ra != rb {
            parent[ra] = rb;
        }
    }
    let mut groups: HashMap<usize, Vec<RVertex>> = HashMap::new();
    for i in 0..n {
        let r = find(&mut parent, i);
        groups.entry(r).or_default().push(g.verts[i]);
    }
    let mut out: Vec<Vec<RVertex>> = groups.into_values().filter(|g| g.len() > 1).collect();
    out.sort_by_key(|c| c.iter().map(|&v| vkey(v)).min());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interfere::EnvHandles;
    use crate::interfere::InterferenceMode;
    use tossa_analysis::AnalysisCache;
    use tossa_ir::machine::Machine;
    use tossa_ir::parse::parse_function;

    struct Setup {
        f: Function,
        handles: EnvHandles,
    }

    fn setup(text: &str) -> Setup {
        let f = parse_function(text, &Machine::dsp32()).unwrap();
        f.validate().unwrap();
        let handles = EnvHandles::from_cache(&f, &mut AnalysisCache::new());
        Setup { f, handles }
    }

    impl Setup {
        fn env(&self) -> InterferenceEnv<'_> {
            self.handles.env(&self.f, InterferenceMode::Exact)
        }
        fn var(&self, name: &str) -> Var {
            self.f.vars().find(|&v| self.f.var(v).name == name).unwrap()
        }
        fn merge_block(&self) -> Block {
            self.f
                .blocks()
                .find(|&b| self.f.phis(b).next().is_some())
                .expect("block with φs")
        }
    }

    const DIAMOND: &str = "
func @d {
entry:
  %c = input
  br %c, l, r
l:
  %a = make 1
  jump m
r:
  %b = make 2
  jump m
m:
  %x = phi [l: %a], [r: %b]
  ret %x
}";

    #[test]
    fn graph_has_edge_per_argument() {
        let s = setup(DIAMOND);
        let g = create_affinity_graph(&s.f, s.merge_block(), None, &|_| true);
        assert_eq!(g.vertices().len(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.total_multiplicity(), 2);
    }

    #[test]
    fn no_interference_nothing_pruned() {
        let s = setup(DIAMOND);
        let env = s.env();
        let members = crate::pinning::resource_members(&s.f);
        let mut oracle = VertexInterference::new(&env, &members);
        let mut g = create_affinity_graph(&s.f, s.merge_block(), None, &|_| true);
        assert!(initial_pruning(&mut g, &mut oracle).is_empty());
        assert!(bipartite_pruning(&mut g, &mut oracle).is_empty());
        let comps = components(&g);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].len(), 3);
    }

    #[test]
    fn interfering_arg_is_pruned_initially() {
        // a and x interfere (a used after the φ): edge (x, a) survives?
        // a is live out of l? a flows into the φ and is ALSO used in m
        // after the φ: a live-in m => parallel copy at end of l kills a
        // (Class 2) => x kills a => Resource_interfere({x}, {a}).
        let s = setup(
            "func @i {
entry:
  %c = input
  %a = make 1
  br %c, l, r
l:
  jump m
r:
  %b = make 2
  jump m
m:
  %x = phi [l: %a], [r: %b]
  %y = add %x, %a
  ret %y
}",
        );
        let env = s.env();
        let members = crate::pinning::resource_members(&s.f);
        let mut oracle = VertexInterference::new(&env, &members);
        let mut g = create_affinity_graph(&s.f, s.merge_block(), None, &|_| true);
        assert_eq!(g.num_edges(), 2);
        let dropped = initial_pruning(&mut g, &mut oracle);
        assert_eq!(dropped.len(), 1);
        // The pruned edge carries its own endpoints as offenders and a
        // witness: x's def clobbers the still-live a (Class 1 fires
        // before the φ-kill case).
        let p = &dropped[0];
        assert_eq!((p.a, p.b), p.offenders);
        assert_eq!(p.reason.class, crate::interfere::InterfereClass::Class1);
        let (wa, wb) = p.reason.witness.expect("variable witness");
        assert_eq!(s.f.var(wa).name, "x");
        assert_eq!(s.f.var(wb).name, "a");
        // The surviving component coalesces x with b only.
        let comps = components(&g);
        assert_eq!(comps.len(), 1);
        assert!(comps[0].contains(&RVertex::Bare(s.var("b"))));
        assert!(comps[0].contains(&RVertex::Bare(s.var("x"))));
        assert!(!comps[0].contains(&RVertex::Bare(s.var("a"))));
    }

    #[test]
    fn distance_gt2_interference_still_pruned() {
        // Chained φs x = φ(a, m) and m = φ(x, b) connect a and b at graph
        // distance > 2; if a and b interfere, the paper's weight formula
        // never sees the pair — the Condition-2 loop must still separate
        // the component.
        let s = setup(
            "func @chain {
entry:
  %c, %a, %b = input
  jump h1
h1:
  %x = phi [entry: %a], [h2: %m]
  %u = add %x, %b
  br %c, h2, exit
h2:
  %m = phi [h1: %b]
  jump h1
exit:
  ret %u
}",
        );
        let env = s.env();
        let members = crate::pinning::resource_members(&s.f);
        let mut oracle = VertexInterference::new(&env, &members);
        // Build the union graph by hand over both confluence blocks.
        let mut g = AffinityGraph::default();
        for b in s.f.blocks().collect::<Vec<_>>() {
            let part = create_affinity_graph(&s.f, b, None, &|_| true);
            for (va, vb, m) in part.edges() {
                g.add_edge(va, vb, m);
            }
        }
        initial_pruning(&mut g, &mut oracle);
        bipartite_pruning(&mut g, &mut oracle);
        for comp in components(&g) {
            for (i, &va) in comp.iter().enumerate() {
                for &vb in &comp[i + 1..] {
                    assert!(
                        !oracle.interfere(va, vb),
                        "{va:?} vs {vb:?} in one component"
                    );
                }
            }
        }
    }

    #[test]
    fn fig9_both_phis_resolved_together() {
        // Paper Fig. 9: X = φ(x, y); Y = φ(z, y) with x,y interfering and
        // z,y interfering... in the paper x = f1 and y = f2 in one pred,
        // z = f3 in the other. Our algorithm considers both φs at once.
        let s = setup(
            "func @fig9 {
entry:
  %c = input
  br %c, p1, p2
p1:
  %x = make 1
  %y = make 2
  jump m
p2:
  %z = make 3
  %y2 = make 4
  jump m
m:
  %bigx = phi [p1: %x], [p2: %z]
  %bigy = phi [p1: %y], [p2: %y2]
  %s = add %bigx, %bigy
  ret %s
}",
        );
        let env = s.env();
        let members = crate::pinning::resource_members(&s.f);
        let mut oracle = VertexInterference::new(&env, &members);
        let mut g = create_affinity_graph(&s.f, s.merge_block(), None, &|_| true);
        assert_eq!(g.num_edges(), 4);
        // bigx/bigy strongly interfere (same block φs) but that is a
        // vertex-pair, not an edge; x,y interfere (overlap in p1), etc.
        initial_pruning(&mut g, &mut oracle);
        bipartite_pruning(&mut g, &mut oracle);
        // Post-condition: no two vertices of one component interfere.
        for comp in components(&g) {
            for (i, &a) in comp.iter().enumerate() {
                for &b in &comp[i + 1..] {
                    assert!(!oracle.interfere(a, b), "{a:?} vs {b:?}");
                }
            }
        }
    }
}
