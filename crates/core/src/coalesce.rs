//! `Program_pinning` (paper Algorithm 1): the pinning-based φ coalescer.
//!
//! For each confluence point, visited inner-to-outer by loop depth, the
//! affinity graph is built, pruned (initial + weighted bipartite), and
//! each surviving connected component is merged onto a reference resource
//! (`PrunedGraph_pinning`, §3.5). Merging only ever *pins definitions*;
//! Leung–George's mark/reconstruct phases then translate out of SSA with
//! no φ copy for any argument sharing its φ's resource.

use crate::affinity::{
    bipartite_pruning, components, create_affinity_graph, initial_pruning, PrunedEdge, RVertex,
    VertexInterference,
};
use crate::interfere::{InterferenceEnv, InterferenceMode};
use crate::pinning::resource_members;
use std::collections::HashMap;
use tossa_analysis::{AnalysisCache, DefMap};
use tossa_ir::ids::{Block, Resource, Var};
use tossa_ir::print::{res_str, var_str};
use tossa_ir::Function;
use tossa_trace::provenance;

/// Display form of an affinity-graph vertex for provenance records.
fn vert_str(f: &Function, v: RVertex) -> String {
    match v {
        RVertex::Res(r) => res_str(f, r),
        RVertex::Bare(x) => var_str(f, x),
    }
}

/// The witness pair of a pruned edge as display strings: the reason's
/// variable pair when it has one, else the offending vertices
/// themselves (the physical-pair rule).
fn witness_strs(f: &Function, p: &PrunedEdge) -> (String, String) {
    match p.reason.witness {
        Some((a, b)) => (var_str(f, a), var_str(f, b)),
        None => (vert_str(f, p.offenders.0), vert_str(f, p.offenders.1)),
    }
}

/// Tuning knobs of the coalescer (the paper's Table 5 variants plus one
/// ablation of this implementation).
#[derive(Clone, Copy, Debug)]
pub struct CoalesceOptions {
    /// Class 1 interference rule (`base`/`opt`/`pess`).
    pub mode: InterferenceMode,
    /// Algorithm 3: prioritize by the depth of the *move* a φ argument
    /// would generate rather than the φ's own depth (`depth` variant).
    pub depth_priority: bool,
    /// Gain refinement (\[LIM1\]): do not count φ arguments that are
    /// already killed within their own resource as coalescing gain —
    /// their copy cannot be elided anyway. `false` reverts to the
    /// paper's literal gain definition (the `paper-gain` ablation).
    pub refine_gain: bool,
}

impl Default for CoalesceOptions {
    fn default() -> Self {
        CoalesceOptions {
            mode: InterferenceMode::default(),
            depth_priority: false,
            refine_gain: true,
        }
    }
}

/// Statistics of one coalescing run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CoalesceStats {
    /// Confluence blocks processed.
    pub blocks: usize,
    /// Affinity edges seen before pruning.
    pub initial_edges: usize,
    /// Edges removed by initial pruning.
    pub pruned_initial: usize,
    /// Edges removed by bipartite pruning.
    pub pruned_bipartite: usize,
    /// Connected components merged.
    pub merges: usize,
    /// Variables whose definitions were newly pinned.
    pub pinned_vars: usize,
}

impl CoalesceStats {
    /// Publishes the run's totals on the trace sink (no-op when tracing
    /// is disabled).
    fn flush_trace(&self) {
        use tossa_trace::{count, Counter};
        count(Counter::CongruenceClasses, self.merges as u64);
        count(Counter::CoalesceMerges, self.pinned_vars as u64);
        count(Counter::AffinityEdges, self.initial_edges as u64);
        count(Counter::AffinityPrunedInitial, self.pruned_initial as u64);
        count(
            Counter::AffinityPrunedBipartite,
            self.pruned_bipartite as u64,
        );
        count(Counter::PinsPhi, self.pinned_vars as u64);
    }
}

/// Runs the coalescer over the whole function with a private
/// [`AnalysisCache`]. Prefer [`program_pinning_cached`] inside a
/// pipeline that already owns a cache.
pub fn program_pinning(f: &mut Function, opts: &CoalesceOptions) -> CoalesceStats {
    program_pinning_cached(f, opts, &mut AnalysisCache::new())
}

/// Runs the coalescer over the whole function.
///
/// Pinning never changes liveness, dominance, or definition sites, so
/// the analyses are computed once (or reused from `cache` if an earlier
/// pass left them hot) and remain valid across all merges — and for
/// whatever pass runs next.
pub fn program_pinning_cached(
    f: &mut Function,
    opts: &CoalesceOptions,
    cache: &mut AnalysisCache,
) -> CoalesceStats {
    tossa_trace::span("coalesce", || program_pinning_inner(f, opts, cache))
}

fn program_pinning_inner(
    f: &mut Function,
    opts: &CoalesceOptions,
    cache: &mut AnalysisCache,
) -> CoalesceStats {
    let dt = cache.domtree(f);
    let live = cache.liveness(f);
    let defs = cache.defs(f);
    let lad = cache.live_at_defs(f);
    let loops = cache.loops(f);
    let order: Vec<Block> = loops
        .blocks_inner_to_outer(&dt)
        .into_iter()
        .filter(|&b| f.phis(b).next().is_some())
        .collect();

    let mut members = resource_members(f);
    tossa_trace::count(
        tossa_trace::Counter::PinnedVars,
        members.values().map(|m| m.len() as u64).sum(),
    );
    let mut stats = CoalesceStats::default();
    // Merged (virtual) resources become aliases of the reference; operand
    // pins are rewritten once at the end (§3.5: "the update of pinning
    // can be performed only once, just before the mark phase").
    let mut alias: HashMap<Resource, Resource> = HashMap::new();

    let depth_of_def =
        |defs: &DefMap, v: Var| -> u32 { defs.site(v).map(|s| loops.depth(s.block)).unwrap_or(0) };

    let depths: Vec<Option<u32>> = if opts.depth_priority {
        let mut ds: Vec<u32> = (0..=loops.max_depth()).collect();
        ds.reverse();
        ds.into_iter().map(Some).collect()
    } else {
        vec![None]
    };

    for depth in depths {
        for &b in &order {
            stats.blocks += 1;
            // Snapshot the pinning state for this block's optimization;
            // the borrow of `f` ends before components are merged.
            let comps = {
                let env = InterferenceEnv {
                    f,
                    dt: &dt,
                    live: &live,
                    defs: &defs,
                    lad: &lad,
                    mode: opts.mode,
                };
                let mut oracle = VertexInterference::new(&env, &members);
                let depth_fn = |v: Var| depth_of_def(&defs, v);
                let filter: Option<(&dyn Fn(Var) -> u32, u32)> =
                    depth.map(|d| (&depth_fn as &dyn Fn(Var) -> u32, d));
                // An argument already killed within its own resource keeps
                // its copy no matter what (it is restored from a repair
                // variable), so it offers no gain. The killed set of a
                // resource is memoized for the block (several φ arguments
                // often share one resource).
                let killed_memo: std::cell::RefCell<HashMap<Resource, Vec<Var>>> =
                    std::cell::RefCell::new(HashMap::new());
                let avoidable = |v: Var| {
                    if !opts.refine_gain {
                        return true;
                    }
                    match f.var(v).pin {
                        Some(r) => !killed_memo
                            .borrow_mut()
                            .entry(r)
                            .or_insert_with(|| {
                                crate::pinning::resource_set(f, &members, r).killed_within(&env)
                            })
                            .contains(&v),
                        None => !env.variable_kills(v, v),
                    }
                };
                let mut g = tossa_trace::span("affinity_build", || {
                    create_affinity_graph(f, b, filter, &avoidable)
                });
                stats.initial_edges += g.num_edges();
                let pruned_i = initial_pruning(&mut g, &mut oracle);
                let pruned_b = bipartite_pruning(&mut g, &mut oracle);
                stats.pruned_initial += pruned_i.len();
                stats.pruned_bipartite += pruned_b.len();
                // Survivors, in deterministic order, so their coalesced
                // verdicts can be recorded once the merge fixes the
                // reference resource.
                let survivors: Vec<(RVertex, RVertex, u32)> = if tossa_trace::verbose() {
                    let mut s: Vec<_> = g.edges().collect();
                    s.sort_by_key(|&(a, b, _)| {
                        (crate::affinity::vkey(a), crate::affinity::vkey(b))
                    });
                    s
                } else {
                    Vec::new()
                };
                (components(&g), pruned_i, pruned_b, survivors)
            };
            let (comps, pruned_i, pruned_b, survivors) = comps;
            for (p, bipartite) in pruned_i
                .iter()
                .map(|p| (p, false))
                .chain(pruned_b.iter().map(|p| (p, true)))
            {
                provenance::record(|| {
                    let class = p.reason.class.provenance();
                    let witness = witness_strs(f, p);
                    provenance::Kind::Edge {
                        block: f.block(b).name.clone(),
                        a: vert_str(f, p.a),
                        b: vert_str(f, p.b),
                        weight: p.weight,
                        verdict: if bipartite {
                            provenance::Verdict::PrunedBipartite { class, witness }
                        } else {
                            provenance::Verdict::PrunedInitial { class, witness }
                        },
                    }
                });
            }
            for comp in comps {
                stats.merges += 1;
                stats.pinned_vars += merge_component(f, &mut members, &mut alias, &comp);
            }
            // Every surviving edge's endpoints now share a reference
            // resource: record the coalesced verdicts.
            for (va, vb, w) in survivors {
                provenance::record(|| {
                    let into = match va {
                        RVertex::Bare(x) => f.var(x).pin,
                        RVertex::Res(r) => {
                            let mut r = r;
                            while let Some(&n) = alias.get(&r) {
                                r = n;
                            }
                            Some(r)
                        }
                    };
                    provenance::Kind::Edge {
                        block: f.block(b).name.clone(),
                        a: vert_str(f, va),
                        b: vert_str(f, vb),
                        weight: w,
                        verdict: provenance::Verdict::Coalesced {
                            into: into.map_or_else(|| "?".to_string(), |r| res_str(f, r)),
                        },
                    }
                });
            }
        }
    }

    // Final pinning update: resolve merged resources in operand pins.
    if !alias.is_empty() {
        let resolve = |mut r: Resource| {
            while let Some(&n) = alias.get(&r) {
                r = n;
            }
            r
        };
        for bb in f.blocks().collect::<Vec<_>>() {
            for i in f.block_insts(bb).collect::<Vec<_>>() {
                for k in 0..f.inst(i).uses.len() {
                    if let Some(p) = f.inst(i).uses[k].pin {
                        f.inst_mut(i).uses[k].pin = Some(resolve(p));
                    }
                }
            }
        }
        for v in f.vars().collect::<Vec<_>>() {
            if let Some(p) = f.var(v).pin {
                f.var_mut(v).pin = Some(resolve(p));
            }
        }
    }
    stats.flush_trace();
    stats
}

/// `PrunedGraph_pinning` (§3.5): merges one connected component onto its
/// reference resource — the physical one if present (unique, since two
/// physical resources always interfere), else an existing virtual
/// resource, else a fresh one. Returns the number of newly pinned defs.
fn merge_component(
    f: &mut Function,
    members: &mut HashMap<Resource, Vec<Var>>,
    alias: &mut HashMap<Resource, Resource>,
    comp: &[RVertex],
) -> usize {
    // Pick the reference resource.
    let phys = comp.iter().find_map(|&v| match v {
        RVertex::Res(r) if f.resources.as_phys(r).is_some() => Some(r),
        _ => None,
    });
    let existing_virt = comp.iter().find_map(|&v| match v {
        RVertex::Res(r) if f.resources.as_phys(r).is_none() => Some(r),
        _ => None,
    });
    let reference = phys.or(existing_virt).unwrap_or_else(|| {
        let name = comp
            .iter()
            .find_map(|&v| match v {
                RVertex::Bare(x) => Some(f.var(x).name.clone()),
                _ => None,
            })
            .unwrap_or_else(|| "coalesced".to_string());
        f.resources.new_virt(name)
    });

    let mut pinned = 0;
    let mut new_members: Vec<Var> = members.get(&reference).cloned().unwrap_or_default();
    for &v in comp {
        match v {
            RVertex::Res(r) if r != reference => {
                // Absorb the whole resource.
                if let Some(vars) = members.remove(&r) {
                    for x in vars {
                        f.var_mut(x).pin = Some(reference);
                        provenance::record(|| provenance::Kind::Pin {
                            var: var_str(f, x),
                            resource: res_str(f, reference),
                            cause: "coalesce".into(),
                        });
                        new_members.push(x);
                    }
                }
                alias.insert(r, reference);
            }
            RVertex::Bare(x) => {
                f.var_mut(x).pin = Some(reference);
                provenance::record(|| provenance::Kind::Pin {
                    var: var_str(f, x),
                    resource: res_str(f, reference),
                    cause: "coalesce".into(),
                });
                new_members.push(x);
                pinned += 1;
            }
            _ => {}
        }
    }
    members.insert(reference, new_members);
    pinned
}

/// The paper's *gain* for the φs of the function: the number of φ
/// arguments pinned to the same resource as their φ's result — each such
/// argument is one avoided copy.
pub fn phi_gain(f: &Function) -> usize {
    let mut gain = 0;
    for (_, i) in f.all_insts() {
        let inst = f.inst(i);
        if !inst.is_phi() {
            continue;
        }
        let Some(rx) = f.var(inst.defs[0].var).pin else {
            continue;
        };
        for u in inst.uses {
            if f.var(u.var).pin == Some(rx) || u.var == inst.defs[0].var {
                gain += 1;
            }
        }
    }
    gain
}

#[cfg(test)]
mod tests {
    use super::*;
    use tossa_ir::machine::Machine;
    use tossa_ir::parse::parse_function;

    fn parse(text: &str) -> Function {
        let f = parse_function(text, &Machine::dsp32()).unwrap();
        f.validate().unwrap();
        f
    }

    fn var(f: &Function, name: &str) -> Var {
        f.vars().find(|&v| f.var(v).name == name).unwrap()
    }

    #[test]
    fn diamond_fully_coalesced() {
        let mut f = parse(
            "func @d {
entry:
  %c = input
  br %c, l, r
l:
  %a = make 1
  jump m
r:
  %b = make 2
  jump m
m:
  %x = phi [l: %a], [r: %b]
  ret %x
}",
        );
        let stats = program_pinning(&mut f, &CoalesceOptions::default());
        assert_eq!(stats.merges, 1);
        assert_eq!(stats.pinned_vars, 3);
        let (a, b, x) = (var(&f, "a"), var(&f, "b"), var(&f, "x"));
        assert!(f.var(x).pin.is_some());
        assert_eq!(f.var(a).pin, f.var(x).pin);
        assert_eq!(f.var(b).pin, f.var(x).pin);
        assert_eq!(phi_gain(&f), 2);
    }

    #[test]
    fn fig5_interfering_arg_left_out() {
        // Paper Fig. 5: x1 interferes with x (x1 used after the φ would
        // be... here: a used below the φ). Only the other argument is
        // coalesced — one copy remains (Fig. 5(c)), not a repair
        // (Fig. 5(b)).
        let mut f = parse(
            "func @fig5 {
entry:
  %c = input
  %a = make 1
  br %c, l, r
l:
  jump m
r:
  %b = make 2
  jump m
m:
  %x = phi [l: %a], [r: %b]
  %y = add %x, %a
  ret %y
}",
        );
        program_pinning(&mut f, &CoalesceOptions::default());
        let (a, b, x) = (var(&f, "a"), var(&f, "b"), var(&f, "x"));
        assert!(f.var(x).pin.is_some());
        assert_eq!(f.var(b).pin, f.var(x).pin);
        assert_ne!(f.var(a).pin, f.var(x).pin);
        assert_eq!(phi_gain(&f), 1);
    }

    #[test]
    fn loop_phi_coalesced_with_iterated_value() {
        let mut f = parse(
            "func @loop {
entry:
  %n = input
  %z = make 0
  jump head
head:
  %i = phi [entry: %z], [body: %i2]
  %c = cmplt %i, %n
  br %c, body, exit
body:
  %i2 = addi %i, 1
  jump head
exit:
  ret %i
}",
        );
        program_pinning(&mut f, &CoalesceOptions::default());
        let (z, i, i2) = (var(&f, "z"), var(&f, "i"), var(&f, "i2"));
        // i and i2 never overlap (i dies at the addi; i2 dies at the φ
        // copy): full coalescing of the induction web.
        assert!(f.var(i).pin.is_some());
        assert_eq!(f.var(i2).pin, f.var(i).pin);
        assert_eq!(f.var(z).pin, f.var(i).pin);
        assert_eq!(phi_gain(&f), 2);
    }

    #[test]
    fn physical_resource_is_the_reference() {
        let mut f = parse(
            "func @phys {
entry:
  %c = input
  br %c, l, r
l:
  %a = make 1
  jump m
r:
  %b = make 2
  jump m
m:
  %x!R0 = phi [l: %a], [r: %b]
  ret %x!R0
}",
        );
        program_pinning(&mut f, &CoalesceOptions::default());
        let r0 = f.resources.by_name("R0").unwrap();
        assert_eq!(f.var(var(&f, "a")).pin, Some(r0));
        assert_eq!(f.var(var(&f, "b")).pin, Some(r0));
    }

    #[test]
    fn merged_resources_rewrite_use_pins() {
        // A two-operand use pin on a merged virtual resource must be
        // rewritten to the reference resource.
        let mut f = parse(
            "func @twoop {
entry:
  %c = input
  br %c, l, r
l:
  %p = make 100
  jump m
r:
  %p2 = make 200
  jump m
m:
  %q = phi [l: %p], [r: %p2]
  %q2!$qq = autoadd %q!$qq, 1
  ret %q2
}",
        );
        // The autoadd pre-pins q2 (def) and the use of q to $qq.
        // Coalescing should merge the φ web with... q's use pin stays on
        // whatever resource survives.
        program_pinning(&mut f, &CoalesceOptions::default());
        let autoadd = f
            .all_insts()
            .find(|&(_, i)| f.inst(i).opcode == tossa_ir::Opcode::AutoAdd)
            .map(|(_, i)| i)
            .unwrap();
        let use_pin = f.inst(autoadd).uses[0].pin.unwrap();
        let q2_pin = f.var(var(&f, "q2")).pin.unwrap();
        assert_eq!(use_pin, q2_pin, "use pin follows the merged resource");
    }

    #[test]
    fn depth_variant_runs() {
        let mut f = parse(
            "func @dv {
entry:
  %n = input
  %z = make 0
  jump head
head:
  %i = phi [entry: %z], [body: %i2]
  %c = cmplt %i, %n
  br %c, body, exit
body:
  %i2 = addi %i, 1
  jump head
exit:
  ret %i
}",
        );
        let stats = program_pinning(
            &mut f,
            &CoalesceOptions {
                depth_priority: true,
                ..Default::default()
            },
        );
        assert!(stats.pinned_vars >= 2);
        assert_eq!(phi_gain(&f), 2);
    }
}
