//! Typed entity identifiers and dense entity-indexed maps.
//!
//! Every IR object (variable, block, instruction, resource) is referred to
//! by a small, `Copy`, typed index. Typed ids prevent mixing, say, a block
//! index with a variable index, and make dense side-tables cheap.

use std::fmt;
use std::marker::PhantomData;

macro_rules! entity_id {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(u32);

        impl $name {
            /// Creates an id from a dense index.
            ///
            /// # Panics
            /// Panics if `index` exceeds `u32::MAX`.
            #[inline]
            pub fn new(index: usize) -> Self {
                assert!(index <= u32::MAX as usize, "entity index overflow");
                Self(index as u32)
            }

            /// Returns the dense index of this id.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl EntityId for $name {
            fn from_index(index: usize) -> Self {
                Self::new(index)
            }
            fn index(self) -> usize {
                self.0 as usize
            }
        }
    };
}

/// Common interface of typed entity ids, used by [`EntityVec`].
pub trait EntityId: Copy + Eq {
    /// Creates an id from a dense index.
    fn from_index(index: usize) -> Self;
    /// Returns the dense index.
    fn index(self) -> usize;
}

entity_id!(
    /// A virtual register (an SSA variable, or a plain variable outside SSA).
    Var,
    "v"
);
entity_id!(
    /// A basic block of the control flow graph.
    Block,
    "bb"
);
entity_id!(
    /// An instruction, stored in the per-function instruction arena.
    Inst,
    "i"
);
entity_id!(
    /// A renaming resource: a physical register or a virtual register
    /// acting as a coalescing target (see the paper, §2.1).
    Resource,
    "res"
);

/// A dense, growable map from an entity id to a value.
///
/// This is a thin typed wrapper around `Vec<V>`; pushing returns the id of
/// the new entry and indexing uses the typed id.
#[derive(Clone, PartialEq, Eq)]
pub struct EntityVec<K: EntityId, V> {
    items: Vec<V>,
    _marker: PhantomData<K>,
}

impl<K: EntityId, V> EntityVec<K, V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self {
            items: Vec::new(),
            _marker: PhantomData,
        }
    }

    /// Creates a map pre-filled with `len` clones of `value`.
    pub fn filled(len: usize, value: V) -> Self
    where
        V: Clone,
    {
        Self {
            items: vec![value; len],
            _marker: PhantomData,
        }
    }

    /// Appends a value and returns its id.
    pub fn push(&mut self, value: V) -> K {
        let id = K::from_index(self.items.len());
        self.items.push(value);
        id
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterates over `(id, &value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (K, &V)> {
        self.items
            .iter()
            .enumerate()
            .map(|(i, v)| (K::from_index(i), v))
    }

    /// Iterates over all ids.
    pub fn keys(&self) -> impl Iterator<Item = K> + use<K, V> {
        (0..self.items.len()).map(K::from_index)
    }

    /// Iterates over all values.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.items.iter()
    }

    /// Returns a reference to the entry, if in bounds.
    pub fn get(&self, key: K) -> Option<&V> {
        self.items.get(key.index())
    }

    /// Consumes the map, yielding values in id order.
    pub fn into_values(self) -> impl Iterator<Item = V> {
        self.items.into_iter()
    }

    /// Grows the map to cover `key`, filling with `default`.
    pub fn grow_to(&mut self, len: usize, default: V)
    where
        V: Clone,
    {
        if self.items.len() < len {
            self.items.resize(len, default);
        }
    }
}

impl<K: EntityId, V> Default for EntityVec<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: EntityId, V> std::ops::Index<K> for EntityVec<K, V> {
    type Output = V;
    fn index(&self, key: K) -> &V {
        &self.items[key.index()]
    }
}

impl<K: EntityId, V> std::ops::IndexMut<K> for EntityVec<K, V> {
    fn index_mut(&mut self, key: K) -> &mut V {
        &mut self.items[key.index()]
    }
}

impl<K: EntityId, V: fmt::Debug> fmt::Debug for EntityVec<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.items.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entity_ids_roundtrip() {
        let v = Var::new(7);
        assert_eq!(v.index(), 7);
        assert_eq!(format!("{v}"), "v7");
        assert_eq!(format!("{:?}", Block::new(3)), "bb3");
        assert_eq!(format!("{}", Inst::new(0)), "i0");
        assert_eq!(format!("{}", Resource::new(12)), "res12");
    }

    #[test]
    fn entity_ids_are_ordered_by_index() {
        assert!(Var::new(1) < Var::new(2));
        assert_eq!(Var::new(5), Var::new(5));
    }

    #[test]
    fn entity_vec_push_and_index() {
        let mut m: EntityVec<Var, &str> = EntityVec::new();
        let a = m.push("a");
        let b = m.push("b");
        assert_eq!(m[a], "a");
        assert_eq!(m[b], "b");
        assert_eq!(m.len(), 2);
        assert_eq!(m.keys().collect::<Vec<_>>(), vec![a, b]);
    }

    #[test]
    fn entity_vec_grow() {
        let mut m: EntityVec<Var, i32> = EntityVec::new();
        m.grow_to(3, 9);
        assert_eq!(m.len(), 3);
        assert_eq!(m[Var::new(2)], 9);
        m.grow_to(2, 0); // never shrinks
        assert_eq!(m.len(), 3);
    }
}
