//! Instructions and operands.
//!
//! Instruction payloads are stored flat: [`crate::function::Function`]
//! keeps one dense slot per instruction plus two shared pools (operands
//! and block references) indexed by `(start, len)` ranges. [`InstData`]
//! is the *build-time* form — a small struct of `Vec`s used by the
//! builder, the parser, and tests — which `push_inst` flattens into the
//! pools. Reading code receives an [`InstRef`] view (slices into the
//! pools), mutating code an [`InstMut`].

use crate::ids::{Block, Resource, Var};
use crate::opcode::Opcode;

/// A `(start, len)` range into one of the per-function flat pools.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PoolRange {
    /// First pool index covered.
    pub start: u32,
    /// Number of entries.
    pub len: u32,
}

impl PoolRange {
    /// The covered pool indices as a `usize` range.
    #[inline]
    pub fn range(self) -> std::ops::Range<usize> {
        self.start as usize..(self.start + self.len) as usize
    }
}

/// A textual occurrence of a variable in an instruction (paper §2.1),
/// optionally pinned to a resource.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Operand {
    /// The variable.
    pub var: Var,
    /// Operand pinning `var↑pin`, if any.
    pub pin: Option<Resource>,
}

impl Operand {
    /// An unpinned operand.
    pub fn new(var: Var) -> Operand {
        Operand { var, pin: None }
    }

    /// An operand pinned to `res`.
    pub fn pinned(var: Var, res: Resource) -> Operand {
        Operand {
            var,
            pin: Some(res),
        }
    }
}

impl From<Var> for Operand {
    fn from(var: Var) -> Operand {
        Operand::new(var)
    }
}

/// One instruction of the linear IR.
///
/// The representation is deliberately uniform: all opcodes share the same
/// payload fields, with unused fields left empty. `Opcode`-specific
/// invariants are checked by [`crate::function::Function::validate`].
#[derive(Clone, PartialEq, Debug)]
pub struct InstData {
    /// The opcode.
    pub opcode: Opcode,
    /// Defined operands (most instructions define zero or one variable;
    /// `input` defines several).
    pub defs: Vec<Operand>,
    /// Used operands. For `phi`, `uses[i]` flows in from `phi_preds[i]`.
    /// For `psi`, uses are `[p1, a1, p2, a2, ...]`.
    pub uses: Vec<Operand>,
    /// Immediate payload (`make`, `more`, `addi`, `autoadd`).
    pub imm: i64,
    /// Callee name for `call`.
    pub callee: Option<String>,
    /// Branch targets: `[then, else]` for `br`, `[target]` for `jump`.
    pub targets: Vec<Block>,
    /// For `phi`: the predecessor block each use flows in from, parallel
    /// to `uses`.
    pub phi_preds: Vec<Block>,
}

impl InstData {
    /// Creates a bare instruction with the given opcode and no payload.
    pub fn new(opcode: Opcode) -> InstData {
        InstData {
            opcode,
            defs: Vec::new(),
            uses: Vec::new(),
            imm: 0,
            callee: None,
            targets: Vec::new(),
            phi_preds: Vec::new(),
        }
    }

    /// Builder-style: sets defs.
    pub fn with_defs(mut self, defs: Vec<Operand>) -> InstData {
        self.defs = defs;
        self
    }

    /// Builder-style: sets uses.
    pub fn with_uses(mut self, uses: Vec<Operand>) -> InstData {
        self.uses = uses;
        self
    }

    /// Builder-style: sets the immediate.
    pub fn with_imm(mut self, imm: i64) -> InstData {
        self.imm = imm;
        self
    }

    /// Builder-style: sets branch targets.
    pub fn with_targets(mut self, targets: Vec<Block>) -> InstData {
        self.targets = targets;
        self
    }

    /// A copy instruction `dst = src`.
    pub fn mov(dst: Var, src: Var) -> InstData {
        InstData::new(Opcode::Mov)
            .with_defs(vec![Operand::new(dst)])
            .with_uses(vec![Operand::new(src)])
    }

    /// A φ instruction `dst = φ(args...)` with explicit incoming blocks.
    pub fn phi(dst: Var, args: Vec<(Block, Var)>) -> InstData {
        let mut inst = InstData::new(Opcode::Phi).with_defs(vec![Operand::new(dst)]);
        for (block, var) in args {
            inst.phi_preds.push(block);
            inst.uses.push(Operand::new(var));
        }
        inst
    }

    /// Whether this is a φ instruction.
    pub fn is_phi(&self) -> bool {
        self.opcode.is_phi()
    }

    /// Whether this is a terminator.
    pub fn is_terminator(&self) -> bool {
        self.opcode.is_terminator()
    }

    /// Whether this is a `mov` whose source and destination are the same
    /// variable (a no-op that cleanup passes delete).
    pub fn is_self_move(&self) -> bool {
        self.opcode.is_move() && self.defs[0].var == self.uses[0].var
    }

    /// Iterates over all operands, defs first.
    pub fn operands(&self) -> impl Iterator<Item = &Operand> {
        self.defs.iter().chain(self.uses.iter())
    }

    /// Iterates mutably over all operands, defs first.
    pub fn operands_mut(&mut self) -> impl Iterator<Item = &mut Operand> {
        self.defs.iter_mut().chain(self.uses.iter_mut())
    }

    /// For a φ, returns the argument flowing in from `pred`, if any.
    pub fn phi_arg_for(&self, pred: Block) -> Option<Operand> {
        debug_assert!(self.is_phi());
        self.phi_preds
            .iter()
            .position(|&b| b == pred)
            .map(|i| self.uses[i])
    }
}

/// A read-only view of one instruction, borrowing slices out of the
/// function's flat pools. Field names mirror [`InstData`], so most code
/// is agnostic to which form it reads.
#[derive(Clone, Copy, Debug)]
pub struct InstRef<'a> {
    /// The opcode.
    pub opcode: Opcode,
    /// Immediate payload.
    pub imm: i64,
    /// Callee name for `call`.
    pub callee: Option<&'a str>,
    /// Defined operands.
    pub defs: &'a [Operand],
    /// Used operands.
    pub uses: &'a [Operand],
    /// Branch targets.
    pub targets: &'a [Block],
    /// For `phi`: incoming blocks, parallel to `uses`.
    pub phi_preds: &'a [Block],
}

impl<'a> InstRef<'a> {
    /// Whether this is a φ instruction.
    pub fn is_phi(&self) -> bool {
        self.opcode.is_phi()
    }

    /// Whether this is a terminator.
    pub fn is_terminator(&self) -> bool {
        self.opcode.is_terminator()
    }

    /// Whether this is a `mov` whose source and destination are the same
    /// variable.
    pub fn is_self_move(&self) -> bool {
        self.opcode.is_move() && self.defs[0].var == self.uses[0].var
    }

    /// Iterates over all operands, defs first.
    pub fn operands(&self) -> impl Iterator<Item = &'a Operand> {
        self.defs.iter().chain(self.uses.iter())
    }

    /// For a φ, returns the argument flowing in from `pred`, if any.
    pub fn phi_arg_for(&self, pred: Block) -> Option<Operand> {
        debug_assert!(self.is_phi());
        self.phi_preds
            .iter()
            .position(|&b| b == pred)
            .map(|i| self.uses[i])
    }

    /// Materializes the build-time form (for re-pushing or editing).
    pub fn to_data(&self) -> InstData {
        InstData {
            opcode: self.opcode,
            defs: self.defs.to_vec(),
            uses: self.uses.to_vec(),
            imm: self.imm,
            callee: self.callee.map(str::to_string),
            targets: self.targets.to_vec(),
            phi_preds: self.phi_preds.to_vec(),
        }
    }
}

/// A mutable view of one instruction: in-place edits to operands, branch
/// targets, φ predecessors, and the immediate. Length-changing edits go
/// through [`crate::function::Function`] methods (`replace_inst`,
/// `phi_remove_arg`) instead.
#[derive(Debug)]
pub struct InstMut<'a> {
    /// The opcode (read-only; replace the instruction to change it).
    pub opcode: Opcode,
    /// Immediate payload.
    pub imm: &'a mut i64,
    /// Defined operands.
    pub defs: &'a mut [Operand],
    /// Used operands.
    pub uses: &'a mut [Operand],
    /// Branch targets.
    pub targets: &'a mut [Block],
    /// For `phi`: incoming blocks, parallel to `uses`.
    pub phi_preds: &'a mut [Block],
}

impl InstMut<'_> {
    /// Iterates mutably over all operands, defs first.
    pub fn operands_mut(&mut self) -> impl Iterator<Item = &mut Operand> {
        self.defs.iter_mut().chain(self.uses.iter_mut())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mov_constructor() {
        let m = InstData::mov(Var::new(1), Var::new(2));
        assert!(m.opcode.is_move());
        assert_eq!(m.defs[0].var, Var::new(1));
        assert_eq!(m.uses[0].var, Var::new(2));
        assert!(!m.is_self_move());
        assert!(InstData::mov(Var::new(3), Var::new(3)).is_self_move());
    }

    #[test]
    fn phi_args_match_preds() {
        let phi = InstData::phi(
            Var::new(0),
            vec![(Block::new(1), Var::new(10)), (Block::new(2), Var::new(20))],
        );
        assert!(phi.is_phi());
        assert_eq!(phi.phi_arg_for(Block::new(2)).unwrap().var, Var::new(20));
        assert_eq!(phi.phi_arg_for(Block::new(9)), None);
    }

    #[test]
    fn operand_pinning() {
        let r = Resource::new(4);
        let op = Operand::pinned(Var::new(7), r);
        assert_eq!(op.pin, Some(r));
        let op2: Operand = Var::new(8).into();
        assert_eq!(op2.pin, None);
    }

    #[test]
    fn operands_iterate_defs_first() {
        let mut i = InstData::new(Opcode::Add)
            .with_defs(vec![Operand::new(Var::new(0))])
            .with_uses(vec![Operand::new(Var::new(1)), Operand::new(Var::new(2))]);
        let vars: Vec<Var> = i.operands().map(|o| o.var).collect();
        assert_eq!(vars, vec![Var::new(0), Var::new(1), Var::new(2)]);
        for op in i.operands_mut() {
            op.pin = Some(Resource::new(0));
        }
        assert!(i.operands().all(|o| o.pin.is_some()));
    }
}
