//! # tossa-ir — machine-level linear IR
//!
//! The intermediate representation underlying the whole `tossa` workspace:
//! a machine-level linear IR in the spirit of the STMicroelectronics LAI
//! language used by the paper *Optimizing Translation Out of SSA Using
//! Renaming Constraints* (Rastello, de Ferrière, Guillon — CGO 2004).
//!
//! The crate provides:
//!
//! * typed entity ids and dense maps ([`ids`]);
//! * a machine model with ABI renaming constraints ([`machine`]);
//! * instructions, φ/ψ pseudo-instructions, and operand/variable
//!   *pinning* to renaming resources ([`instr`], [`resources`]);
//! * the [`function::Function`] container with a structural validator;
//! * a builder ([`builder`]), printer ([`print`](mod@print)) and parser ([`parse`]);
//! * CFG utilities including critical-edge splitting ([`cfg`](mod@cfg));
//! * parallel-copy sequentialization ([`parallel_copy`]);
//! * a reference interpreter ([`interp`]) used to check every out-of-SSA
//!   translation end-to-end.
//!
//! ## Example
//!
//! ```
//! use tossa_ir::builder::FunctionBuilder;
//! use tossa_ir::machine::Machine;
//! use tossa_ir::interp;
//!
//! let mut fb = FunctionBuilder::new("double", Machine::dsp32());
//! let x = fb.inputs(&["x"])[0];
//! let y = fb.add("y", x, x);
//! fb.ret(&[y]);
//! let f = fb.finish();
//! f.validate()?;
//! assert_eq!(interp::run(&f, &[21], 100)?.outputs, vec![42]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod builder;
pub mod cfg;
pub mod function;
pub mod ids;
pub mod instr;
pub mod interp;
pub mod machine;
pub mod opcode;
pub mod parallel_copy;
pub mod parse;
pub mod print;
pub mod resources;
pub mod rng;

pub use function::Function;
pub use ids::{Block, Inst, Resource, Var};
pub use instr::{InstData, Operand};
pub use machine::{Machine, PhysReg};
pub use opcode::Opcode;
