//! Machine model: physical registers and ABI conventions.
//!
//! The paper targets the STMicroelectronics ST120 DSP. That machine is
//! proprietary, so this crate models a fictional but faithful stand-in,
//! `DSP32`, exposing the same *classes* of renaming constraints the paper
//! exercises:
//!
//! * ABI function parameter passing rules (arguments in `R0..R3`, pointer
//!   arguments in `P0..P1`, result in `R0`) — paper Fig. 1, statements
//!   `S0`, `S3`, `S8`;
//! * a dedicated stack pointer `SP` that must keep its identity across the
//!   out-of-SSA translation — paper §2.2, Fig. 2;
//! * two-operand instructions (`more`, `autoadd`) whose definition must
//!   reuse the resource of their first use — paper Fig. 1, statements
//!   `S1`, `S6`.
//!
//! The out-of-SSA algorithms only observe the machine through pinnings, so
//! any machine inducing the same pinning patterns exercises the same code
//! paths (see DESIGN.md §3).

use std::fmt;

/// A physical register, identified by a small index into the machine's
/// register file description.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PhysReg(pub u8);

impl PhysReg {
    /// Dense index of the register.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for PhysReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Register class of a physical register.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RegClass {
    /// General purpose data register (`R0`–`R15`).
    Gpr,
    /// Pointer/address register (`P0`–`P3`).
    Ptr,
    /// Special dedicated register (`SP`, `LR`).
    Special,
}

/// Description of one physical register.
#[derive(Clone, Debug)]
pub struct RegInfo {
    /// Assembly name, e.g. `"R0"`.
    pub name: String,
    /// Register class.
    pub class: RegClass,
}

/// ABI calling convention of the machine.
#[derive(Clone, Debug)]
pub struct Abi {
    /// Registers carrying scalar arguments, in order.
    pub arg_regs: Vec<PhysReg>,
    /// Registers carrying pointer arguments, in order.
    pub ptr_arg_regs: Vec<PhysReg>,
    /// Register carrying the (single) scalar return value.
    pub ret_reg: PhysReg,
    /// The dedicated stack pointer.
    pub sp: PhysReg,
}

/// A machine description: register file plus ABI.
#[derive(Clone, Debug)]
pub struct Machine {
    regs: Vec<RegInfo>,
    /// The machine's calling convention.
    pub abi: Abi,
}

impl Machine {
    /// The fictional `DSP32` machine used throughout this repository:
    /// sixteen GPRs `R0..R15`, four pointer registers `P0..P3`, and the
    /// dedicated registers `SP` and `LR`.
    pub fn dsp32() -> Machine {
        let mut regs = Vec::new();
        for i in 0..16 {
            regs.push(RegInfo {
                name: format!("R{i}"),
                class: RegClass::Gpr,
            });
        }
        for i in 0..4 {
            regs.push(RegInfo {
                name: format!("P{i}"),
                class: RegClass::Ptr,
            });
        }
        regs.push(RegInfo {
            name: "SP".to_string(),
            class: RegClass::Special,
        });
        regs.push(RegInfo {
            name: "LR".to_string(),
            class: RegClass::Special,
        });
        let r = |i: u8| PhysReg(i);
        let abi = Abi {
            arg_regs: vec![r(0), r(1), r(2), r(3)],
            ptr_arg_regs: vec![r(16), r(17)],
            ret_reg: r(0),
            sp: r(20),
        };
        Machine { regs, abi }
    }

    /// Number of physical registers.
    pub fn num_regs(&self) -> usize {
        self.regs.len()
    }

    /// Assembly name of a register.
    ///
    /// # Panics
    /// Panics if `reg` is out of range for this machine.
    pub fn reg_name(&self, reg: PhysReg) -> &str {
        &self.regs[reg.index()].name
    }

    /// Register class of a register.
    ///
    /// # Panics
    /// Panics if `reg` is out of range for this machine.
    pub fn reg_class(&self, reg: PhysReg) -> RegClass {
        self.regs[reg.index()].class
    }

    /// Looks a register up by assembly name (case-insensitive).
    pub fn reg_by_name(&self, name: &str) -> Option<PhysReg> {
        self.regs
            .iter()
            .position(|r| r.name.eq_ignore_ascii_case(name))
            .map(|i| PhysReg(i as u8))
    }

    /// Iterates over all physical registers.
    pub fn regs(&self) -> impl Iterator<Item = PhysReg> + use<> {
        (0..self.regs.len()).map(|i| PhysReg(i as u8))
    }
}

impl Default for Machine {
    fn default() -> Self {
        Machine::dsp32()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dsp32_register_file() {
        let m = Machine::dsp32();
        assert_eq!(m.num_regs(), 22);
        assert_eq!(m.reg_name(PhysReg(0)), "R0");
        assert_eq!(m.reg_name(PhysReg(16)), "P0");
        assert_eq!(m.reg_name(m.abi.sp), "SP");
        assert_eq!(m.reg_class(m.abi.sp), RegClass::Special);
        assert_eq!(m.reg_class(PhysReg(17)), RegClass::Ptr);
    }

    #[test]
    fn reg_lookup_by_name() {
        let m = Machine::dsp32();
        assert_eq!(m.reg_by_name("R3"), Some(PhysReg(3)));
        assert_eq!(m.reg_by_name("sp"), Some(m.abi.sp));
        assert_eq!(m.reg_by_name("Z9"), None);
    }

    #[test]
    fn abi_registers_are_distinct() {
        let m = Machine::dsp32();
        let mut all = m.abi.arg_regs.clone();
        all.extend(&m.abi.ptr_arg_regs);
        all.push(m.abi.sp);
        let n = all.len();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), n);
        assert!(m.abi.arg_regs.contains(&m.abi.ret_reg));
    }
}
