//! Renaming resources (paper §2.1).
//!
//! A *resource* is either a physical register or a virtual register; a
//! *pinning* pre-colors an operand (or a variable's unique definition) to
//! a resource. The coalescing algorithm merges resources; each resource is
//! interned in a per-function [`ResourceTable`].

use crate::ids::Resource;
use crate::machine::PhysReg;
use std::collections::HashMap;

/// The kind of a renaming resource.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ResourceKind {
    /// A physical (dedicated or ABI) register.
    Phys(PhysReg),
    /// A virtual resource: a coalescing target with no register identity.
    Virt,
}

/// Intern table for the resources of one function.
///
/// Physical resources are interned (one [`Resource`] per [`PhysReg`]);
/// virtual resources are freely created by coalescing and constraint
/// collection.
#[derive(Clone, Debug, Default)]
pub struct ResourceTable {
    kinds: Vec<ResourceKind>,
    names: Vec<String>,
    phys: HashMap<PhysReg, Resource>,
}

impl ResourceTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the interned resource for a physical register, creating it
    /// on first use.
    pub fn phys(&mut self, reg: PhysReg, name: &str) -> Resource {
        if let Some(&r) = self.phys.get(&reg) {
            return r;
        }
        let r = Resource::new(self.kinds.len());
        self.kinds.push(ResourceKind::Phys(reg));
        self.names.push(name.to_string());
        self.phys.insert(reg, r);
        r
    }

    /// Returns the interned resource for a physical register if it exists.
    pub fn phys_existing(&self, reg: PhysReg) -> Option<Resource> {
        self.phys.get(&reg).copied()
    }

    /// Creates a fresh virtual resource with a display name.
    pub fn new_virt(&mut self, name: impl Into<String>) -> Resource {
        let r = Resource::new(self.kinds.len());
        self.kinds.push(ResourceKind::Virt);
        self.names.push(name.into());
        r
    }

    /// The kind of a resource.
    ///
    /// # Panics
    /// Panics if `r` does not belong to this table.
    pub fn kind(&self, r: Resource) -> ResourceKind {
        self.kinds[r.index()]
    }

    /// Whether `r` is a physical resource; returns the register.
    pub fn as_phys(&self, r: Resource) -> Option<PhysReg> {
        match self.kind(r) {
            ResourceKind::Phys(reg) => Some(reg),
            ResourceKind::Virt => None,
        }
    }

    /// Display name of a resource.
    ///
    /// # Panics
    /// Panics if `r` does not belong to this table.
    pub fn name(&self, r: Resource) -> &str {
        &self.names[r.index()]
    }

    /// Looks a resource up by display name.
    pub fn by_name(&self, name: &str) -> Option<Resource> {
        self.names.iter().position(|n| n == name).map(Resource::new)
    }

    /// Number of interned resources.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// Iterates over all resources.
    pub fn iter(&self) -> impl Iterator<Item = Resource> + use<> {
        (0..self.kinds.len()).map(Resource::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phys_resources_are_interned() {
        let mut t = ResourceTable::new();
        let a = t.phys(PhysReg(0), "R0");
        let b = t.phys(PhysReg(0), "R0");
        let c = t.phys(PhysReg(1), "R1");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(t.as_phys(a), Some(PhysReg(0)));
        assert_eq!(t.name(c), "R1");
        assert_eq!(t.phys_existing(PhysReg(1)), Some(c));
        assert_eq!(t.phys_existing(PhysReg(9)), None);
    }

    #[test]
    fn virt_resources_are_fresh() {
        let mut t = ResourceTable::new();
        let a = t.new_virt("x");
        let b = t.new_virt("x");
        assert_ne!(a, b);
        assert_eq!(t.kind(a), ResourceKind::Virt);
        assert_eq!(t.as_phys(a), None);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn lookup_by_name() {
        let mut t = ResourceTable::new();
        let a = t.new_virt("alpha");
        t.new_virt("beta");
        assert_eq!(t.by_name("alpha"), Some(a));
        assert_eq!(t.by_name("gamma"), None);
    }
}
