//! A small deterministic pseudo-random number generator for test-input
//! and workload generation.
//!
//! The repository builds in fully offline environments, so it cannot pull
//! in the `rand` crate; SplitMix64 (Steele, Lea & Flood, OOPSLA 2014) is
//! tiny, statistically solid for generator workloads, and — crucially —
//! stable across platforms and releases, which keeps every seeded suite
//! byte-for-byte reproducible.

use std::ops::Range;

/// SplitMix64: a 64-bit state advanced by a Weyl sequence and finalized
/// with an avalanche mix. Deterministic per seed.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn seed_from_u64(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform sample from a half-open range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    pub fn random_range<T: RangeSample>(&mut self, range: Range<T>) -> T {
        T::sample(self, range)
    }

    /// Uniform `u64` below `bound` (> 0), by Lemire-style widening
    /// multiplication with a rejection step for exact uniformity.
    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }
}

/// Types that can be drawn uniformly from a `Range` by [`SplitMix64`].
pub trait RangeSample: Copy {
    /// Draws a uniform sample from `range`.
    fn sample(rng: &mut SplitMix64, range: Range<Self>) -> Self;
}

impl RangeSample for i64 {
    fn sample(rng: &mut SplitMix64, range: Range<i64>) -> i64 {
        assert!(range.start < range.end, "empty range");
        let span = range.end.wrapping_sub(range.start) as u64;
        range.start.wrapping_add(rng.below(span) as i64)
    }
}

impl RangeSample for i32 {
    fn sample(rng: &mut SplitMix64, range: Range<i32>) -> i32 {
        i64::sample(rng, range.start as i64..range.end as i64) as i32
    }
}

impl RangeSample for usize {
    fn sample(rng: &mut SplitMix64, range: Range<usize>) -> usize {
        assert!(range.start < range.end, "empty range");
        range.start + rng.below((range.end - range.start) as u64) as usize
    }
}

impl RangeSample for u64 {
    fn sample(rng: &mut SplitMix64, range: Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range");
        range.start + rng.below(range.end - range.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SplitMix64::seed_from_u64(42);
        let mut b = SplitMix64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SplitMix64::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(-64i64..64);
            assert!((-64..64).contains(&v));
            let u = rng.random_range(0usize..6);
            assert!(u < 6);
        }
    }

    #[test]
    fn all_values_reachable_in_small_range() {
        let mut rng = SplitMix64::seed_from_u64(1);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[rng.random_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
