//! The function container: blocks, flat instruction arena, variables,
//! resources.
//!
//! Instruction payloads are stored SoA-style: one dense [`InstSlot`] per
//! instruction (opcode, immediate, interned callee, pool ranges) plus two
//! shared pools — one of [`Operand`]s (defs then uses, contiguous per
//! instruction) and one of [`Block`] references (branch targets, or φ
//! predecessors). An instruction costs one 32-byte slot and zero
//! dedicated heap allocations; pool growth is amortized across the whole
//! function.

use crate::ids::{Block, EntityVec, Inst, Resource, Var};
use crate::instr::{InstData, InstMut, InstRef, Operand, PoolRange};
use crate::machine::{Machine, PhysReg};
use crate::opcode::Opcode;
use crate::resources::ResourceTable;
use std::fmt;

/// Per-variable metadata.
#[derive(Clone, Debug)]
pub struct VarData {
    /// Display name (unique names are not required; the printer
    /// disambiguates with the id).
    pub name: String,
    /// *Variable pinning* (paper §2.1): the resource the variable's unique
    /// definition is pinned to, if any. Only meaningful while in SSA form.
    pub pin: Option<Resource>,
    /// After the out-of-SSA translation, variables that carry a physical
    /// register identity record it here; such a variable *is* that
    /// machine register in the final code.
    pub reg: Option<PhysReg>,
    /// For variables produced by SSA renaming: the pre-SSA variable this
    /// version was renamed from. Constraint collection uses it to find
    /// versions of dedicated registers (paper §2.2, the SP web).
    pub origin: Option<Var>,
}

/// Per-block metadata: a label and the ordered instruction list.
#[derive(Clone, Debug)]
pub struct BlockData {
    /// Display label.
    pub name: String,
    /// Ordered instructions; φs first, terminator last.
    pub insts: Vec<Inst>,
}

/// An error found by [`Function::validate`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ValidateError {
    /// Human-readable description of the violated invariant.
    pub message: String,
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ValidateError {}

/// Sentinel for "no callee" in [`InstSlot::callee`].
const NO_CALLEE: u32 = u32::MAX;

/// The flat per-instruction slot. Operands live in the function's
/// operand pool at `ops` (the first `ndefs` entries are defs, the rest
/// uses); branch targets or φ predecessors live in the block pool at
/// `blocks` (which of the two they are is determined by the opcode).
#[derive(Clone, Copy, Debug)]
struct InstSlot {
    opcode: Opcode,
    ndefs: u16,
    /// Index into the interned callee-name table, or [`NO_CALLEE`].
    callee: u32,
    imm: i64,
    ops: PoolRange,
    blocks: PoolRange,
}

/// A function of the linear IR.
///
/// Instructions live in a flat arena ([`Inst`] ids index dense slots);
/// each block holds an ordered list of instruction ids. Removing an
/// instruction from a block leaves its arena slot in place (ids are never
/// reused); replacing an instruction's payload appends fresh pool ranges
/// and abandons the old ones.
#[derive(Clone, Debug)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Entry block.
    pub entry: Block,
    /// The machine this function targets.
    pub machine: Machine,
    /// Renaming resources of this function.
    pub resources: ResourceTable,
    blocks: EntityVec<Block, BlockData>,
    insts: EntityVec<Inst, InstSlot>,
    vars: EntityVec<Var, VarData>,
    /// Shared operand pool: per instruction, defs then uses, contiguous.
    op_pool: Vec<Operand>,
    /// Shared block-reference pool: branch targets or φ predecessors.
    block_pool: Vec<Block>,
    /// Interned callee names (few distinct callees per function).
    callees: Vec<String>,
}

impl Function {
    /// Creates an empty function with a single empty entry block.
    pub fn new(name: impl Into<String>, machine: Machine) -> Function {
        let mut blocks = EntityVec::new();
        let entry = blocks.push(BlockData {
            name: "entry".to_string(),
            insts: Vec::new(),
        });
        Function {
            name: name.into(),
            entry,
            machine,
            resources: ResourceTable::new(),
            blocks,
            insts: EntityVec::new(),
            vars: EntityVec::new(),
            op_pool: Vec::new(),
            block_pool: Vec::new(),
            callees: Vec::new(),
        }
    }

    // ---- variables ------------------------------------------------------

    /// Creates a fresh variable with the given display name.
    pub fn new_var(&mut self, name: impl Into<String>) -> Var {
        self.vars.push(VarData {
            name: name.into(),
            pin: None,
            reg: None,
            origin: None,
        })
    }

    /// Creates a fresh variable that is an SSA version of `origin`
    /// (inherits its display name).
    pub fn new_var_version(&mut self, origin: Var) -> Var {
        let name = self.vars[origin].name.clone();
        let root = self.vars[origin].origin.unwrap_or(origin);
        self.vars.push(VarData {
            name,
            pin: None,
            reg: None,
            origin: Some(root),
        })
    }

    /// Number of variables ever created.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Variable metadata.
    pub fn var(&self, v: Var) -> &VarData {
        &self.vars[v]
    }

    /// Mutable variable metadata.
    pub fn var_mut(&mut self, v: Var) -> &mut VarData {
        &mut self.vars[v]
    }

    /// Iterates over all variables.
    pub fn vars(&self) -> impl Iterator<Item = Var> + use<> {
        let n = self.vars.len();
        (0..n).map(Var::new)
    }

    // ---- blocks ---------------------------------------------------------

    /// Creates a new empty block.
    pub fn add_block(&mut self, name: impl Into<String>) -> Block {
        self.blocks.push(BlockData {
            name: name.into(),
            insts: Vec::new(),
        })
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Block metadata.
    pub fn block(&self, b: Block) -> &BlockData {
        &self.blocks[b]
    }

    /// Mutable block metadata.
    pub fn block_mut(&mut self, b: Block) -> &mut BlockData {
        &mut self.blocks[b]
    }

    /// Iterates over all blocks in creation order.
    pub fn blocks(&self) -> impl Iterator<Item = Block> + use<> {
        let n = self.blocks.len();
        (0..n).map(Block::new)
    }

    // ---- instructions ---------------------------------------------------

    /// Flattens a build-time [`InstData`] into the pools.
    fn flatten(&mut self, data: InstData) -> InstSlot {
        debug_assert!(
            data.targets.is_empty() || data.phi_preds.is_empty(),
            "no opcode carries both branch targets and phi preds"
        );
        let ops = PoolRange {
            start: u32::try_from(self.op_pool.len()).expect("operand pool overflow"),
            len: (data.defs.len() + data.uses.len()) as u32,
        };
        self.op_pool.extend_from_slice(&data.defs);
        self.op_pool.extend_from_slice(&data.uses);
        let blocks = PoolRange {
            start: u32::try_from(self.block_pool.len()).expect("block pool overflow"),
            len: (data.targets.len() + data.phi_preds.len()) as u32,
        };
        self.block_pool.extend_from_slice(&data.targets);
        self.block_pool.extend_from_slice(&data.phi_preds);
        let callee = match data.callee {
            None => NO_CALLEE,
            Some(name) => self.intern_callee(name),
        };
        InstSlot {
            opcode: data.opcode,
            ndefs: data.defs.len() as u16,
            callee,
            imm: data.imm,
            ops,
            blocks,
        }
    }

    fn intern_callee(&mut self, name: String) -> u32 {
        match self.callees.iter().position(|c| *c == name) {
            Some(i) => i as u32,
            None => {
                self.callees.push(name);
                (self.callees.len() - 1) as u32
            }
        }
    }

    /// Appends an instruction to a block and returns its id.
    pub fn push_inst(&mut self, block: Block, data: InstData) -> Inst {
        let slot = self.flatten(data);
        let id = self.insts.push(slot);
        self.blocks[block].insts.push(id);
        id
    }

    /// Inserts an instruction into `block` at position `index`.
    ///
    /// # Panics
    /// Panics if `index > block.insts.len()`.
    pub fn insert_inst(&mut self, block: Block, index: usize, data: InstData) -> Inst {
        let slot = self.flatten(data);
        let id = self.insts.push(slot);
        self.blocks[block].insts.insert(index, id);
        id
    }

    /// Allocates an instruction in the arena without placing it in a block.
    pub fn alloc_inst(&mut self, data: InstData) -> Inst {
        let slot = self.flatten(data);
        self.insts.push(slot)
    }

    /// Replaces the payload of `i` in place (fresh pool ranges are
    /// appended; the old ones are abandoned).
    pub fn replace_inst(&mut self, i: Inst, data: InstData) {
        let slot = self.flatten(data);
        self.insts[i] = slot;
    }

    /// A read-only view of the instruction's payload.
    #[inline]
    pub fn inst(&self, i: Inst) -> InstRef<'_> {
        let s = &self.insts[i];
        let ops = &self.op_pool[s.ops.range()];
        let (defs, uses) = ops.split_at(s.ndefs as usize);
        let blocks = &self.block_pool[s.blocks.range()];
        let (targets, phi_preds) = if s.opcode.is_phi() {
            (&[][..], blocks)
        } else {
            (blocks, &[][..])
        };
        InstRef {
            opcode: s.opcode,
            imm: s.imm,
            callee: if s.callee == NO_CALLEE {
                None
            } else {
                Some(self.callees[s.callee as usize].as_str())
            },
            defs,
            uses,
            targets,
            phi_preds,
        }
    }

    /// A mutable view for in-place payload edits.
    #[inline]
    pub fn inst_mut(&mut self, i: Inst) -> InstMut<'_> {
        let s = &mut self.insts[i];
        let ops = &mut self.op_pool[s.ops.range()];
        let (defs, uses) = ops.split_at_mut(s.ndefs as usize);
        let blocks = &mut self.block_pool[s.blocks.range()];
        let (targets, phi_preds) = if s.opcode.is_phi() {
            (&mut [][..], blocks)
        } else {
            (blocks, &mut [][..])
        };
        InstMut {
            opcode: s.opcode,
            imm: &mut s.imm,
            defs,
            uses,
            targets,
            phi_preds,
        }
    }

    /// The opcode of `i` (cheaper than materializing a full view).
    #[inline]
    pub fn opcode(&self, i: Inst) -> Opcode {
        self.insts[i].opcode
    }

    /// The defined operands of `i`.
    #[inline]
    pub fn defs(&self, i: Inst) -> &[Operand] {
        let s = &self.insts[i];
        &self.op_pool[s.ops.start as usize..s.ops.start as usize + s.ndefs as usize]
    }

    /// The used operands of `i`.
    #[inline]
    pub fn uses(&self, i: Inst) -> &[Operand] {
        let s = &self.insts[i];
        &self.op_pool[s.ops.start as usize + s.ndefs as usize..s.ops.range().end]
    }

    /// Removes φ argument `k` (use and predecessor) of the φ `i`,
    /// shrinking in place.
    ///
    /// # Panics
    /// Panics if `i` is not a φ or `k` is out of range.
    pub fn phi_remove_arg(&mut self, i: Inst, k: usize) {
        let s = &mut self.insts[i];
        assert!(s.opcode.is_phi(), "phi_remove_arg on non-phi");
        let nuses = s.ops.len as usize - s.ndefs as usize;
        assert!(k < nuses, "phi arg index out of range");
        let use_start = s.ops.start as usize + s.ndefs as usize;
        self.op_pool
            .copy_within(use_start + k + 1..use_start + nuses, use_start + k);
        s.ops.len -= 1;
        let pred_start = s.blocks.start as usize;
        let npreds = s.blocks.len as usize;
        self.block_pool
            .copy_within(pred_start + k + 1..pred_start + npreds, pred_start + k);
        s.blocks.len -= 1;
    }

    /// Iterates over the instruction ids of a block.
    pub fn block_insts(&self, b: Block) -> impl Iterator<Item = Inst> + '_ {
        self.blocks[b].insts.iter().copied()
    }

    /// Iterates over `(block, inst)` for the whole function, in block
    /// creation order and intra-block order.
    pub fn all_insts(&self) -> impl Iterator<Item = (Block, Inst)> + '_ {
        self.blocks()
            .flat_map(move |b| self.block_insts(b).map(move |i| (b, i)))
    }

    /// The φ instructions at the head of `b`.
    pub fn phis(&self, b: Block) -> impl Iterator<Item = Inst> + '_ {
        self.block_insts(b)
            .take_while(|&i| self.insts[i].opcode.is_phi())
    }

    /// Index of the first non-φ instruction of `b` (== number of φs).
    pub fn first_non_phi(&self, b: Block) -> usize {
        self.blocks[b]
            .insts
            .iter()
            .take_while(|&&i| self.insts[i].opcode.is_phi())
            .count()
    }

    /// The terminator of `b`, if the block is non-empty and properly
    /// terminated.
    pub fn terminator(&self, b: Block) -> Option<Inst> {
        let last = *self.blocks[b].insts.last()?;
        self.insts[last].opcode.is_terminator().then_some(last)
    }

    /// Successor blocks of `b` according to its terminator. Empty for
    /// `ret` or unterminated blocks.
    pub fn succs(&self, b: Block) -> &[Block] {
        match self.terminator(b) {
            Some(t) => &self.block_pool[self.insts[t].blocks.range()],
            None => &[],
        }
    }

    /// Removes `inst` from `block`'s instruction list (the arena slot
    /// remains allocated). Returns true if it was present.
    pub fn remove_inst(&mut self, block: Block, inst: Inst) -> bool {
        let list = &mut self.blocks[block].insts;
        match list.iter().position(|&i| i == inst) {
            Some(pos) => {
                list.remove(pos);
                true
            }
            None => false,
        }
    }

    // ---- whole-function edits --------------------------------------------

    /// Rewrites every operand variable through `map`.
    pub fn rewrite_vars(&mut self, mut map: impl FnMut(Var) -> Var) {
        for b in 0..self.blocks.len() {
            for k in 0..self.blocks[Block::new(b)].insts.len() {
                let i = self.blocks[Block::new(b)].insts[k];
                let r = self.insts[i].ops.range();
                for op in &mut self.op_pool[r] {
                    op.var = map(op.var);
                }
            }
        }
    }

    /// Computes, for each variable, its defining instruction(s).
    /// In SSA form each list has at most one element.
    pub fn def_sites(&self) -> EntityVec<Var, Vec<(Block, Inst)>> {
        let mut defs: EntityVec<Var, Vec<(Block, Inst)>> =
            EntityVec::filled(self.vars.len(), Vec::new());
        for (b, i) in self.all_insts() {
            for d in self.defs(i) {
                defs[d.var].push((b, i));
            }
        }
        defs
    }

    /// Counts the `mov` instructions currently in the function, ignoring
    /// self-moves (the metric of the paper's Tables 2–4).
    pub fn count_moves(&self) -> usize {
        self.all_insts()
            .filter(|&(_, i)| {
                let s = &self.insts[i];
                s.opcode.is_move() && {
                    let ops = &self.op_pool[s.ops.range()];
                    ops[0].var != ops[1].var
                }
            })
            .count()
    }

    // ---- validation -----------------------------------------------------

    /// Checks structural invariants: every reachable block ends in a
    /// terminator, φs lead their block, branch targets are in range,
    /// per-opcode def/use arities hold, and φ argument counts match their
    /// predecessor lists.
    ///
    /// # Errors
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), ValidateError> {
        let err = |message: String| Err(ValidateError { message });
        for b in self.blocks() {
            let data = &self.blocks[b];
            if data.insts.is_empty() {
                return err(format!("block {b} is empty"));
            }
            let last = *data.insts.last().expect("non-empty");
            if !self.insts[last].opcode.is_terminator() {
                return err(format!("block {b} does not end in a terminator"));
            }
            let mut seen_non_phi = false;
            for (pos, &i) in data.insts.iter().enumerate() {
                let inst = self.inst(i);
                if inst.is_terminator() && pos + 1 != data.insts.len() {
                    return err(format!("terminator {i} of {b} is not last"));
                }
                if inst.is_phi() {
                    if seen_non_phi {
                        return err(format!("phi {i} of {b} after a non-phi"));
                    }
                } else {
                    seen_non_phi = true;
                }
                for t in inst.targets {
                    if t.index() >= self.blocks.len() {
                        return err(format!("{i} targets out-of-range block {t}"));
                    }
                }
                for op in inst.operands() {
                    if op.var.index() >= self.vars.len() {
                        return err(format!("{i} references out-of-range var {}", op.var));
                    }
                }
                self.check_arity(b, i)?;
            }
        }
        // φ argument lists must match the actual predecessors.
        let mut preds: EntityVec<Block, Vec<Block>> =
            EntityVec::filled(self.blocks.len(), Vec::new());
        for b in self.blocks() {
            for &s in self.succs(b) {
                preds[s].push(b);
            }
        }
        for b in self.blocks() {
            for i in self.phis(b) {
                let inst = self.inst(i);
                let mut got: Vec<Block> = inst.phi_preds.to_vec();
                let mut want = preds[b].clone();
                got.sort();
                want.sort();
                want.dedup();
                if got != want {
                    return err(format!(
                        "phi {i} of {b} has preds {got:?} but block has preds {want:?}"
                    ));
                }
            }
        }
        Ok(())
    }

    fn check_arity(&self, b: Block, i: Inst) -> Result<(), ValidateError> {
        let inst = self.inst(i);
        let (defs, uses) = (inst.defs.len(), inst.uses.len());
        let bad = |what: &str| {
            Err(ValidateError {
                message: format!(
                    "{} {i} in {b}: bad {what} arity ({defs} defs, {uses} uses)",
                    inst.opcode
                ),
            })
        };
        match inst.opcode {
            Opcode::Input => {
                if uses != 0 {
                    return bad("use");
                }
            }
            Opcode::Mov
            | Opcode::More
            | Opcode::AddImm
            | Opcode::AutoAdd
            | Opcode::Load
            | Opcode::Neg
            | Opcode::Not => {
                if defs != 1 || uses != 1 {
                    return bad("def/use");
                }
            }
            Opcode::Make => {
                if defs != 1 || uses != 0 {
                    return bad("def/use");
                }
            }
            Opcode::Add
            | Opcode::Sub
            | Opcode::Mul
            | Opcode::And
            | Opcode::Or
            | Opcode::Xor
            | Opcode::Shl
            | Opcode::Shr
            | Opcode::CmpEq
            | Opcode::CmpNe
            | Opcode::CmpLt
            | Opcode::CmpLe => {
                if defs != 1 || uses != 2 {
                    return bad("def/use");
                }
            }
            Opcode::Select | Opcode::PSel => {
                if defs != 1 || uses != 3 {
                    return bad("def/use");
                }
            }
            Opcode::Store => {
                if defs != 0 || uses != 2 {
                    return bad("def/use");
                }
            }
            Opcode::SpillStore => {
                if defs != 0 || uses != 1 {
                    return bad("def/use");
                }
            }
            Opcode::SpillLoad => {
                if defs != 1 || uses != 0 {
                    return bad("def/use");
                }
            }
            Opcode::Call => {
                if defs > 1 {
                    return bad("def");
                }
                if inst.callee.is_none() {
                    return Err(ValidateError {
                        message: format!("call {i} has no callee"),
                    });
                }
            }
            Opcode::Br => {
                if defs != 0 || uses != 1 || inst.targets.len() != 2 {
                    return bad("def/use/target");
                }
            }
            Opcode::Jump => {
                if defs != 0 || uses != 0 || inst.targets.len() != 1 {
                    return bad("def/use/target");
                }
            }
            Opcode::Ret => {
                if defs != 0 {
                    return bad("def");
                }
            }
            Opcode::Phi => {
                if defs != 1 || uses == 0 || uses != inst.phi_preds.len() {
                    return bad("def/use/pred");
                }
            }
            Opcode::Psi => {
                if defs != 1 || uses < 2 || uses % 2 != 0 {
                    return bad("def/use");
                }
            }
        }
        Ok(())
    }
}

/// Convenience: pins the definition of `v` to the interned resource of a
/// physical register.
pub fn pin_var_to_reg(f: &mut Function, v: Var, reg: PhysReg) -> Resource {
    let name = f.machine.reg_name(reg).to_string();
    let r = f.resources.phys(reg, &name);
    f.var_mut(v).pin = Some(r);
    r
}

/// Convenience: pins an operand occurrence. `pos` addresses the operand
/// among defs-then-uses.
///
/// # Panics
/// Panics if `pos` is out of range.
pub fn pin_operand(f: &mut Function, inst: Inst, pos: usize, res: Resource) {
    let data = f.inst_mut(inst);
    let ndefs = data.defs.len();
    if pos < ndefs {
        data.defs[pos].pin = Some(res);
    } else {
        data.uses[pos - ndefs].pin = Some(res);
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.var)?;
        if let Some(r) = self.pin {
            write!(f, "!{r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Var;

    fn tiny() -> Function {
        let mut f = Function::new("t", Machine::dsp32());
        let a = f.new_var("a");
        let b = f.new_var("b");
        f.push_inst(
            f.entry,
            InstData::new(Opcode::Make)
                .with_defs(vec![a.into()])
                .with_imm(1),
        );
        f.push_inst(f.entry, InstData::mov(b, a));
        f.push_inst(
            f.entry,
            InstData::new(Opcode::Ret).with_uses(vec![b.into()]),
        );
        f
    }

    #[test]
    fn build_and_validate() {
        let f = tiny();
        assert!(f.validate().is_ok());
        assert_eq!(f.count_moves(), 1);
        assert_eq!(f.num_blocks(), 1);
        assert_eq!(f.block_insts(f.entry).count(), 3);
    }

    #[test]
    fn self_moves_not_counted() {
        let mut f = tiny();
        let a = Var::new(0);
        f.insert_inst(f.entry, 2, InstData::mov(a, a));
        assert_eq!(f.count_moves(), 1);
    }

    #[test]
    fn validate_rejects_missing_terminator() {
        let mut f = Function::new("t", Machine::dsp32());
        let a = f.new_var("a");
        f.push_inst(
            f.entry,
            InstData::new(Opcode::Make).with_defs(vec![a.into()]),
        );
        let e = f.validate().unwrap_err();
        assert!(e.message.contains("terminator"), "{e}");
    }

    #[test]
    fn validate_rejects_misplaced_phi() {
        let mut f = tiny();
        let c = f.new_var("c");
        let entry = f.entry;
        f.insert_inst(entry, 1, InstData::phi(c, vec![(entry, Var::new(0))]));
        assert!(f.validate().is_err());
    }

    #[test]
    fn validate_rejects_bad_arity() {
        let mut f = Function::new("t", Machine::dsp32());
        let a = f.new_var("a");
        f.push_inst(
            f.entry,
            InstData::new(Opcode::Add)
                .with_defs(vec![a.into()])
                .with_uses(vec![a.into()]),
        );
        f.push_inst(f.entry, InstData::new(Opcode::Ret));
        assert!(f.validate().is_err());
    }

    #[test]
    fn phi_preds_checked_against_cfg() {
        let mut f = Function::new("t", Machine::dsp32());
        let a = f.new_var("a");
        let x = f.new_var("x");
        let merge = f.add_block("merge");
        f.push_inst(
            f.entry,
            InstData::new(Opcode::Make)
                .with_defs(vec![a.into()])
                .with_imm(3),
        );
        f.push_inst(
            f.entry,
            InstData::new(Opcode::Jump).with_targets(vec![merge]),
        );
        // φ claims a pred that is not an actual predecessor.
        let bogus = f.add_block("bogus");
        f.push_inst(bogus, InstData::new(Opcode::Ret));
        f.push_inst(merge, InstData::phi(x, vec![(bogus, a)]));
        f.push_inst(merge, InstData::new(Opcode::Ret).with_uses(vec![x.into()]));
        assert!(f.validate().is_err());
    }

    #[test]
    fn pinning_helpers() {
        let mut f = tiny();
        let v = Var::new(0);
        let reg = f.machine.abi.ret_reg;
        let r = pin_var_to_reg(&mut f, v, reg);
        assert_eq!(f.var(v).pin, Some(r));
        assert_eq!(f.resources.as_phys(r), Some(f.machine.abi.ret_reg));
        let inst = f.block_insts(f.entry).nth(1).unwrap();
        pin_operand(&mut f, inst, 1, r); // the use of the mov
        assert_eq!(f.inst(inst).uses[0].pin, Some(r));
    }

    #[test]
    fn def_sites_in_ssa() {
        let f = tiny();
        let sites = f.def_sites();
        assert_eq!(sites[Var::new(0)].len(), 1);
        assert_eq!(sites[Var::new(1)].len(), 1);
    }

    #[test]
    fn replace_inst_swaps_payload() {
        let mut f = tiny();
        let first = f.block_insts(f.entry).next().unwrap();
        let c = f.new_var("c");
        f.replace_inst(
            first,
            InstData::new(Opcode::Make)
                .with_defs(vec![c.into()])
                .with_imm(9),
        );
        let view = f.inst(first);
        assert_eq!(view.imm, 9);
        assert_eq!(view.defs[0].var, c);
    }

    #[test]
    fn phi_remove_arg_shrinks_in_place() {
        let mut f = Function::new("t", Machine::dsp32());
        let a = f.new_var("a");
        let b = f.new_var("b");
        let x = f.new_var("x");
        let l = f.add_block("l");
        let r = f.add_block("r");
        let m = f.add_block("m");
        let phi = f.push_inst(m, InstData::phi(x, vec![(l, a), (r, b)]));
        f.phi_remove_arg(phi, 0);
        let view = f.inst(phi);
        assert_eq!(view.uses.len(), 1);
        assert_eq!(view.uses[0].var, b);
        assert_eq!(view.phi_preds, &[r]);
    }

    #[test]
    fn callees_are_interned() {
        let mut f = Function::new("t", Machine::dsp32());
        let a = f.new_var("a");
        let b = f.new_var("b");
        let mut call = InstData::new(Opcode::Call).with_defs(vec![a.into()]);
        call.callee = Some("helper".into());
        f.push_inst(f.entry, call);
        let mut call2 = InstData::new(Opcode::Call).with_defs(vec![b.into()]);
        call2.callee = Some("helper".into());
        f.push_inst(f.entry, call2);
        assert_eq!(f.callees.len(), 1);
        let i0 = f.block_insts(f.entry).next().unwrap();
        assert_eq!(f.inst(i0).callee, Some("helper"));
    }
}
