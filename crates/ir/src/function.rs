//! The function container: blocks, instruction arena, variables,
//! resources.

use crate::ids::{Block, EntityVec, Inst, Resource, Var};
use crate::instr::{InstData, Operand};
use crate::machine::{Machine, PhysReg};
use crate::opcode::Opcode;
use crate::resources::ResourceTable;
use std::fmt;

/// Per-variable metadata.
#[derive(Clone, Debug)]
pub struct VarData {
    /// Display name (unique names are not required; the printer
    /// disambiguates with the id).
    pub name: String,
    /// *Variable pinning* (paper §2.1): the resource the variable's unique
    /// definition is pinned to, if any. Only meaningful while in SSA form.
    pub pin: Option<Resource>,
    /// After the out-of-SSA translation, variables that carry a physical
    /// register identity record it here; such a variable *is* that
    /// machine register in the final code.
    pub reg: Option<PhysReg>,
    /// For variables produced by SSA renaming: the pre-SSA variable this
    /// version was renamed from. Constraint collection uses it to find
    /// versions of dedicated registers (paper §2.2, the SP web).
    pub origin: Option<Var>,
}

/// Per-block metadata: a label and the ordered instruction list.
#[derive(Clone, Debug)]
pub struct BlockData {
    /// Display label.
    pub name: String,
    /// Ordered instructions; φs first, terminator last.
    pub insts: Vec<Inst>,
}

/// An error found by [`Function::validate`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ValidateError {
    /// Human-readable description of the violated invariant.
    pub message: String,
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ValidateError {}

/// A function of the linear IR.
///
/// Instructions live in an arena ([`Inst`] ids); each block holds an
/// ordered list of instruction ids. Removing an instruction from a block
/// leaves its arena slot in place (ids are never reused).
#[derive(Clone, Debug)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Entry block.
    pub entry: Block,
    /// The machine this function targets.
    pub machine: Machine,
    /// Renaming resources of this function.
    pub resources: ResourceTable,
    blocks: EntityVec<Block, BlockData>,
    insts: EntityVec<Inst, InstData>,
    vars: EntityVec<Var, VarData>,
}

impl Function {
    /// Creates an empty function with a single empty entry block.
    pub fn new(name: impl Into<String>, machine: Machine) -> Function {
        let mut blocks = EntityVec::new();
        let entry = blocks.push(BlockData {
            name: "entry".to_string(),
            insts: Vec::new(),
        });
        Function {
            name: name.into(),
            entry,
            machine,
            resources: ResourceTable::new(),
            blocks,
            insts: EntityVec::new(),
            vars: EntityVec::new(),
        }
    }

    // ---- variables ------------------------------------------------------

    /// Creates a fresh variable with the given display name.
    pub fn new_var(&mut self, name: impl Into<String>) -> Var {
        self.vars.push(VarData {
            name: name.into(),
            pin: None,
            reg: None,
            origin: None,
        })
    }

    /// Creates a fresh variable that is an SSA version of `origin`
    /// (inherits its display name).
    pub fn new_var_version(&mut self, origin: Var) -> Var {
        let name = self.vars[origin].name.clone();
        let root = self.vars[origin].origin.unwrap_or(origin);
        self.vars.push(VarData {
            name,
            pin: None,
            reg: None,
            origin: Some(root),
        })
    }

    /// Number of variables ever created.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Variable metadata.
    pub fn var(&self, v: Var) -> &VarData {
        &self.vars[v]
    }

    /// Mutable variable metadata.
    pub fn var_mut(&mut self, v: Var) -> &mut VarData {
        &mut self.vars[v]
    }

    /// Iterates over all variables.
    pub fn vars(&self) -> impl Iterator<Item = Var> + use<> {
        let n = self.vars.len();
        (0..n).map(Var::new)
    }

    // ---- blocks ---------------------------------------------------------

    /// Creates a new empty block.
    pub fn add_block(&mut self, name: impl Into<String>) -> Block {
        self.blocks.push(BlockData {
            name: name.into(),
            insts: Vec::new(),
        })
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Block metadata.
    pub fn block(&self, b: Block) -> &BlockData {
        &self.blocks[b]
    }

    /// Mutable block metadata.
    pub fn block_mut(&mut self, b: Block) -> &mut BlockData {
        &mut self.blocks[b]
    }

    /// Iterates over all blocks in creation order.
    pub fn blocks(&self) -> impl Iterator<Item = Block> + use<> {
        let n = self.blocks.len();
        (0..n).map(Block::new)
    }

    // ---- instructions ---------------------------------------------------

    /// Appends an instruction to a block and returns its id.
    pub fn push_inst(&mut self, block: Block, data: InstData) -> Inst {
        let id = self.insts.push(data);
        self.blocks[block].insts.push(id);
        id
    }

    /// Inserts an instruction into `block` at position `index`.
    ///
    /// # Panics
    /// Panics if `index > block.insts.len()`.
    pub fn insert_inst(&mut self, block: Block, index: usize, data: InstData) -> Inst {
        let id = self.insts.push(data);
        self.blocks[block].insts.insert(index, id);
        id
    }

    /// Allocates an instruction in the arena without placing it in a block.
    pub fn alloc_inst(&mut self, data: InstData) -> Inst {
        self.insts.push(data)
    }

    /// Instruction payload.
    pub fn inst(&self, i: Inst) -> &InstData {
        &self.insts[i]
    }

    /// Mutable instruction payload.
    pub fn inst_mut(&mut self, i: Inst) -> &mut InstData {
        &mut self.insts[i]
    }

    /// Iterates over the instruction ids of a block.
    pub fn block_insts(&self, b: Block) -> impl Iterator<Item = Inst> + '_ {
        self.blocks[b].insts.iter().copied()
    }

    /// Iterates over `(block, inst)` for the whole function, in block
    /// creation order and intra-block order.
    pub fn all_insts(&self) -> impl Iterator<Item = (Block, Inst)> + '_ {
        self.blocks()
            .flat_map(move |b| self.block_insts(b).map(move |i| (b, i)))
    }

    /// The φ instructions at the head of `b`.
    pub fn phis(&self, b: Block) -> impl Iterator<Item = Inst> + '_ {
        self.block_insts(b).take_while(|&i| self.insts[i].is_phi())
    }

    /// Index of the first non-φ instruction of `b` (== number of φs).
    pub fn first_non_phi(&self, b: Block) -> usize {
        self.blocks[b]
            .insts
            .iter()
            .take_while(|&&i| self.insts[i].is_phi())
            .count()
    }

    /// The terminator of `b`, if the block is non-empty and properly
    /// terminated.
    pub fn terminator(&self, b: Block) -> Option<Inst> {
        let last = *self.blocks[b].insts.last()?;
        self.insts[last].is_terminator().then_some(last)
    }

    /// Successor blocks of `b` according to its terminator. Empty for
    /// `ret` or unterminated blocks.
    pub fn succs(&self, b: Block) -> &[Block] {
        match self.terminator(b) {
            Some(t) => &self.insts[t].targets,
            None => &[],
        }
    }

    /// Removes `inst` from `block`'s instruction list (the arena slot
    /// remains allocated). Returns true if it was present.
    pub fn remove_inst(&mut self, block: Block, inst: Inst) -> bool {
        let list = &mut self.blocks[block].insts;
        match list.iter().position(|&i| i == inst) {
            Some(pos) => {
                list.remove(pos);
                true
            }
            None => false,
        }
    }

    // ---- whole-function edits --------------------------------------------

    /// Rewrites every operand variable through `map`.
    pub fn rewrite_vars(&mut self, mut map: impl FnMut(Var) -> Var) {
        let block_ids: Vec<Block> = self.blocks().collect();
        for b in block_ids {
            let insts = self.blocks[b].insts.clone();
            for i in insts {
                for op in self.insts[i].operands_mut() {
                    op.var = map(op.var);
                }
            }
        }
    }

    /// Computes, for each variable, its defining instruction(s).
    /// In SSA form each list has at most one element.
    pub fn def_sites(&self) -> EntityVec<Var, Vec<(Block, Inst)>> {
        let mut defs: EntityVec<Var, Vec<(Block, Inst)>> =
            EntityVec::filled(self.vars.len(), Vec::new());
        for (b, i) in self.all_insts() {
            for d in &self.insts[i].defs {
                defs[d.var].push((b, i));
            }
        }
        defs
    }

    /// Counts the `mov` instructions currently in the function, ignoring
    /// self-moves (the metric of the paper's Tables 2–4).
    pub fn count_moves(&self) -> usize {
        self.all_insts()
            .filter(|&(_, i)| {
                let d = &self.insts[i];
                d.opcode.is_move() && !d.is_self_move()
            })
            .count()
    }

    // ---- validation -----------------------------------------------------

    /// Checks structural invariants: every reachable block ends in a
    /// terminator, φs lead their block, branch targets are in range,
    /// per-opcode def/use arities hold, and φ argument counts match their
    /// predecessor lists.
    ///
    /// # Errors
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), ValidateError> {
        let err = |message: String| Err(ValidateError { message });
        for b in self.blocks() {
            let data = &self.blocks[b];
            if data.insts.is_empty() {
                return err(format!("block {b} is empty"));
            }
            let last = *data.insts.last().expect("non-empty");
            if !self.insts[last].is_terminator() {
                return err(format!("block {b} does not end in a terminator"));
            }
            let mut seen_non_phi = false;
            for (pos, &i) in data.insts.iter().enumerate() {
                let inst = &self.insts[i];
                if inst.is_terminator() && pos + 1 != data.insts.len() {
                    return err(format!("terminator {i} of {b} is not last"));
                }
                if inst.is_phi() {
                    if seen_non_phi {
                        return err(format!("phi {i} of {b} after a non-phi"));
                    }
                } else {
                    seen_non_phi = true;
                }
                for t in &inst.targets {
                    if t.index() >= self.blocks.len() {
                        return err(format!("{i} targets out-of-range block {t}"));
                    }
                }
                for op in inst.operands() {
                    if op.var.index() >= self.vars.len() {
                        return err(format!("{i} references out-of-range var {}", op.var));
                    }
                }
                self.check_arity(b, i)?;
            }
        }
        // φ argument lists must match the actual predecessors.
        let mut preds: EntityVec<Block, Vec<Block>> =
            EntityVec::filled(self.blocks.len(), Vec::new());
        for b in self.blocks() {
            for &s in self.succs(b) {
                preds[s].push(b);
            }
        }
        for b in self.blocks() {
            for i in self.phis(b) {
                let inst = &self.insts[i];
                let mut got: Vec<Block> = inst.phi_preds.clone();
                let mut want = preds[b].clone();
                got.sort();
                want.sort();
                want.dedup();
                if got != want {
                    return err(format!(
                        "phi {i} of {b} has preds {got:?} but block has preds {want:?}"
                    ));
                }
            }
        }
        Ok(())
    }

    fn check_arity(&self, b: Block, i: Inst) -> Result<(), ValidateError> {
        let inst = &self.insts[i];
        let (defs, uses) = (inst.defs.len(), inst.uses.len());
        let bad = |what: &str| {
            Err(ValidateError {
                message: format!(
                    "{} {i} in {b}: bad {what} arity ({defs} defs, {uses} uses)",
                    inst.opcode
                ),
            })
        };
        match inst.opcode {
            Opcode::Input => {
                if uses != 0 {
                    return bad("use");
                }
            }
            Opcode::Mov
            | Opcode::More
            | Opcode::AddImm
            | Opcode::AutoAdd
            | Opcode::Load
            | Opcode::Neg
            | Opcode::Not => {
                if defs != 1 || uses != 1 {
                    return bad("def/use");
                }
            }
            Opcode::Make => {
                if defs != 1 || uses != 0 {
                    return bad("def/use");
                }
            }
            Opcode::Add
            | Opcode::Sub
            | Opcode::Mul
            | Opcode::And
            | Opcode::Or
            | Opcode::Xor
            | Opcode::Shl
            | Opcode::Shr
            | Opcode::CmpEq
            | Opcode::CmpNe
            | Opcode::CmpLt
            | Opcode::CmpLe => {
                if defs != 1 || uses != 2 {
                    return bad("def/use");
                }
            }
            Opcode::Select | Opcode::PSel => {
                if defs != 1 || uses != 3 {
                    return bad("def/use");
                }
            }
            Opcode::Store => {
                if defs != 0 || uses != 2 {
                    return bad("def/use");
                }
            }
            Opcode::SpillStore => {
                if defs != 0 || uses != 1 {
                    return bad("def/use");
                }
            }
            Opcode::SpillLoad => {
                if defs != 1 || uses != 0 {
                    return bad("def/use");
                }
            }
            Opcode::Call => {
                if defs > 1 {
                    return bad("def");
                }
                if inst.callee.is_none() {
                    return Err(ValidateError {
                        message: format!("call {i} has no callee"),
                    });
                }
            }
            Opcode::Br => {
                if defs != 0 || uses != 1 || inst.targets.len() != 2 {
                    return bad("def/use/target");
                }
            }
            Opcode::Jump => {
                if defs != 0 || uses != 0 || inst.targets.len() != 1 {
                    return bad("def/use/target");
                }
            }
            Opcode::Ret => {
                if defs != 0 {
                    return bad("def");
                }
            }
            Opcode::Phi => {
                if defs != 1 || uses == 0 || uses != inst.phi_preds.len() {
                    return bad("def/use/pred");
                }
            }
            Opcode::Psi => {
                if defs != 1 || uses < 2 || uses % 2 != 0 {
                    return bad("def/use");
                }
            }
        }
        Ok(())
    }
}

/// Convenience: pins the definition of `v` to the interned resource of a
/// physical register.
pub fn pin_var_to_reg(f: &mut Function, v: Var, reg: PhysReg) -> Resource {
    let name = f.machine.reg_name(reg).to_string();
    let r = f.resources.phys(reg, &name);
    f.var_mut(v).pin = Some(r);
    r
}

/// Convenience: pins an operand occurrence. `pos` addresses the operand
/// among defs-then-uses.
///
/// # Panics
/// Panics if `pos` is out of range.
pub fn pin_operand(f: &mut Function, inst: Inst, pos: usize, res: Resource) {
    let data = f.inst_mut(inst);
    let ndefs = data.defs.len();
    if pos < ndefs {
        data.defs[pos].pin = Some(res);
    } else {
        data.uses[pos - ndefs].pin = Some(res);
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.var)?;
        if let Some(r) = self.pin {
            write!(f, "!{r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Var;

    fn tiny() -> Function {
        let mut f = Function::new("t", Machine::dsp32());
        let a = f.new_var("a");
        let b = f.new_var("b");
        f.push_inst(
            f.entry,
            InstData::new(Opcode::Make)
                .with_defs(vec![a.into()])
                .with_imm(1),
        );
        f.push_inst(f.entry, InstData::mov(b, a));
        f.push_inst(
            f.entry,
            InstData::new(Opcode::Ret).with_uses(vec![b.into()]),
        );
        f
    }

    #[test]
    fn build_and_validate() {
        let f = tiny();
        assert!(f.validate().is_ok());
        assert_eq!(f.count_moves(), 1);
        assert_eq!(f.num_blocks(), 1);
        assert_eq!(f.block_insts(f.entry).count(), 3);
    }

    #[test]
    fn self_moves_not_counted() {
        let mut f = tiny();
        let a = Var::new(0);
        f.insert_inst(f.entry, 2, InstData::mov(a, a));
        assert_eq!(f.count_moves(), 1);
    }

    #[test]
    fn validate_rejects_missing_terminator() {
        let mut f = Function::new("t", Machine::dsp32());
        let a = f.new_var("a");
        f.push_inst(
            f.entry,
            InstData::new(Opcode::Make).with_defs(vec![a.into()]),
        );
        let e = f.validate().unwrap_err();
        assert!(e.message.contains("terminator"), "{e}");
    }

    #[test]
    fn validate_rejects_misplaced_phi() {
        let mut f = tiny();
        let c = f.new_var("c");
        let entry = f.entry;
        f.insert_inst(entry, 1, InstData::phi(c, vec![(entry, Var::new(0))]));
        assert!(f.validate().is_err());
    }

    #[test]
    fn validate_rejects_bad_arity() {
        let mut f = Function::new("t", Machine::dsp32());
        let a = f.new_var("a");
        f.push_inst(
            f.entry,
            InstData::new(Opcode::Add)
                .with_defs(vec![a.into()])
                .with_uses(vec![a.into()]),
        );
        f.push_inst(f.entry, InstData::new(Opcode::Ret));
        assert!(f.validate().is_err());
    }

    #[test]
    fn phi_preds_checked_against_cfg() {
        let mut f = Function::new("t", Machine::dsp32());
        let a = f.new_var("a");
        let x = f.new_var("x");
        let merge = f.add_block("merge");
        f.push_inst(
            f.entry,
            InstData::new(Opcode::Make)
                .with_defs(vec![a.into()])
                .with_imm(3),
        );
        f.push_inst(
            f.entry,
            InstData::new(Opcode::Jump).with_targets(vec![merge]),
        );
        // φ claims a pred that is not an actual predecessor.
        let bogus = f.add_block("bogus");
        f.push_inst(bogus, InstData::new(Opcode::Ret));
        f.push_inst(merge, InstData::phi(x, vec![(bogus, a)]));
        f.push_inst(merge, InstData::new(Opcode::Ret).with_uses(vec![x.into()]));
        assert!(f.validate().is_err());
    }

    #[test]
    fn pinning_helpers() {
        let mut f = tiny();
        let v = Var::new(0);
        let reg = f.machine.abi.ret_reg;
        let r = pin_var_to_reg(&mut f, v, reg);
        assert_eq!(f.var(v).pin, Some(r));
        assert_eq!(f.resources.as_phys(r), Some(f.machine.abi.ret_reg));
        let inst = f.block_insts(f.entry).nth(1).unwrap();
        pin_operand(&mut f, inst, 1, r); // the use of the mov
        assert_eq!(f.inst(inst).uses[0].pin, Some(r));
    }

    #[test]
    fn def_sites_in_ssa() {
        let f = tiny();
        let sites = f.def_sites();
        assert_eq!(sites[Var::new(0)].len(), 1);
        assert_eq!(sites[Var::new(1)].len(), 1);
    }
}
