//! Control-flow graph utilities: predecessor/successor maps, traversal
//! orders, reachability, and critical-edge splitting.

use crate::function::Function;
use crate::ids::{Block, EntityVec};
use crate::instr::InstData;
use crate::opcode::Opcode;

/// Predecessor/successor maps of a function, computed from terminators.
///
/// The maps are a snapshot: recompute after mutating the CFG.
#[derive(Clone, Debug)]
pub struct Cfg {
    succs: EntityVec<Block, Vec<Block>>,
    preds: EntityVec<Block, Vec<Block>>,
    rpo: Vec<Block>,
}

impl Cfg {
    /// Computes the CFG of `f`.
    pub fn compute(f: &Function) -> Cfg {
        let n = f.num_blocks();
        let mut succs: EntityVec<Block, Vec<Block>> = EntityVec::filled(n, Vec::new());
        let mut preds: EntityVec<Block, Vec<Block>> = EntityVec::filled(n, Vec::new());
        for b in f.blocks() {
            for &s in f.succs(b) {
                succs[b].push(s);
                preds[s].push(b);
            }
        }
        let rpo = reverse_postorder(f);
        Cfg { succs, preds, rpo }
    }

    /// Blocks in reverse postorder, cached at construction so every
    /// consumer (dominators, worklist dataflow) shares one traversal.
    /// Unreachable blocks are omitted.
    pub fn rpo(&self) -> &[Block] {
        &self.rpo
    }

    /// Blocks in postorder (reverse of [`Cfg::rpo`]), the natural
    /// iteration order for backward dataflow problems.
    pub fn postorder(&self) -> impl DoubleEndedIterator<Item = Block> + '_ {
        self.rpo.iter().rev().copied()
    }

    /// Successors of `b` in terminator order (then/else for `br`).
    pub fn succs(&self, b: Block) -> &[Block] {
        &self.succs[b]
    }

    /// Predecessors of `b` in block creation order. A block appears twice
    /// if both branch targets reach `b` (the validator forbids this for
    /// blocks with φs; split such edges first).
    pub fn preds(&self, b: Block) -> &[Block] {
        &self.preds[b]
    }

    /// Number of blocks covered.
    pub fn num_blocks(&self) -> usize {
        self.succs.len()
    }
}

/// Blocks in postorder of a DFS from the entry. Unreachable blocks are
/// omitted.
pub fn postorder(f: &Function) -> Vec<Block> {
    let n = f.num_blocks();
    let mut visited = vec![false; n];
    let mut out = Vec::with_capacity(n);
    // Iterative DFS carrying the next successor index.
    let mut stack: Vec<(Block, usize)> = vec![(f.entry, 0)];
    visited[f.entry.index()] = true;
    while let Some(&mut (b, ref mut next)) = stack.last_mut() {
        let succs = f.succs(b);
        if *next < succs.len() {
            let s = succs[*next];
            *next += 1;
            if !visited[s.index()] {
                visited[s.index()] = true;
                stack.push((s, 0));
            }
        } else {
            out.push(b);
            stack.pop();
        }
    }
    out
}

/// Blocks in reverse postorder (a topological-ish order good for forward
/// dataflow). Unreachable blocks are omitted.
pub fn reverse_postorder(f: &Function) -> Vec<Block> {
    let mut po = postorder(f);
    po.reverse();
    po
}

/// The set of blocks reachable from the entry.
pub fn reachable(f: &Function) -> Vec<bool> {
    let mut r = vec![false; f.num_blocks()];
    for b in postorder(f) {
        r[b.index()] = true;
    }
    r
}

/// Splits every critical edge (an edge from a block with several
/// successors to a block with several predecessors) by inserting an empty
/// block containing a single `jump`. φ predecessor lists are updated.
///
/// Out-of-SSA copy insertion places copies "at the end of the predecessor
/// block" (paper §3.2, Class 2); on a critical edge that position is
/// shared with other paths, so edges are split first.
///
/// Returns the number of edges split.
pub fn split_critical_edges(f: &mut Function) -> usize {
    let cfg = Cfg::compute(f);
    let mut split = 0;
    for b in f.blocks().collect::<Vec<_>>() {
        let succs: Vec<Block> = f.succs(b).to_vec();
        if succs.len() < 2 {
            continue;
        }
        for (slot, s) in succs.iter().copied().enumerate() {
            if cfg.preds(s).len() < 2 {
                continue;
            }
            // Critical edge b -> s: insert a middle block.
            let mid = f.add_block(format!("split{split}"));
            f.push_inst(mid, InstData::new(Opcode::Jump).with_targets(vec![s]));
            let term = f
                .terminator(b)
                .expect("block with successors has terminator");
            f.inst_mut(term).targets[slot] = mid;
            // Retarget φs of s: the value now flows in from mid.
            for phi in f.phis(s).collect::<Vec<_>>() {
                for p in f.inst_mut(phi).phi_preds.iter_mut() {
                    if *p == b {
                        *p = mid;
                    }
                }
            }
            split += 1;
        }
    }
    split
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::Function;
    use crate::machine::Machine;

    /// Builds a diamond: entry -> (l, r) -> exit, with a φ at exit.
    fn diamond() -> (Function, Block, Block, Block) {
        let mut f = Function::new("d", Machine::dsp32());
        let c = f.new_var("c");
        let a = f.new_var("a");
        let b = f.new_var("b");
        let x = f.new_var("x");
        let l = f.add_block("l");
        let r = f.add_block("r");
        let exit = f.add_block("exit");
        let e = f.entry;
        f.push_inst(
            e,
            InstData::new(Opcode::Make)
                .with_defs(vec![c.into()])
                .with_imm(1),
        );
        f.push_inst(
            e,
            InstData::new(Opcode::Br)
                .with_uses(vec![c.into()])
                .with_targets(vec![l, r]),
        );
        f.push_inst(
            l,
            InstData::new(Opcode::Make)
                .with_defs(vec![a.into()])
                .with_imm(2),
        );
        f.push_inst(l, InstData::new(Opcode::Jump).with_targets(vec![exit]));
        f.push_inst(
            r,
            InstData::new(Opcode::Make)
                .with_defs(vec![b.into()])
                .with_imm(3),
        );
        f.push_inst(r, InstData::new(Opcode::Jump).with_targets(vec![exit]));
        f.push_inst(exit, InstData::phi(x, vec![(l, a), (r, b)]));
        f.push_inst(exit, InstData::new(Opcode::Ret).with_uses(vec![x.into()]));
        (f, l, r, exit)
    }

    #[test]
    fn cfg_preds_succs() {
        let (f, l, r, exit) = diamond();
        let cfg = Cfg::compute(&f);
        assert_eq!(cfg.succs(f.entry), &[l, r]);
        assert_eq!(cfg.preds(exit), &[l, r]);
        assert_eq!(cfg.preds(f.entry), &[] as &[Block]);
    }

    #[test]
    fn rpo_starts_at_entry_and_respects_order() {
        let (f, _, _, exit) = diamond();
        let rpo = reverse_postorder(&f);
        assert_eq!(rpo[0], f.entry);
        assert_eq!(*rpo.last().unwrap(), exit);
        assert_eq!(rpo.len(), 4);
    }

    #[test]
    fn unreachable_blocks_omitted() {
        let (mut f, _, _, _) = diamond();
        let dead = f.add_block("dead");
        f.push_inst(dead, InstData::new(Opcode::Ret));
        let reach = reachable(&f);
        assert!(!reach[dead.index()]);
        assert_eq!(postorder(&f).len(), 4);
    }

    #[test]
    fn diamond_has_no_critical_edges() {
        let (mut f, _, _, _) = diamond();
        assert_eq!(split_critical_edges(&mut f), 0);
    }

    #[test]
    fn critical_edge_is_split_and_phi_updated() {
        // entry branches to (loop, exit); loop branches back to loop or to
        // exit => edges entry->exit and loop->exit are critical if exit has
        // 2 preds and sources have 2 succs.
        let mut f = Function::new("c", Machine::dsp32());
        let c = f.new_var("c");
        let a = f.new_var("a");
        let x = f.new_var("x");
        let body = f.add_block("body");
        let exit = f.add_block("exit");
        let e = f.entry;
        f.push_inst(
            e,
            InstData::new(Opcode::Make)
                .with_defs(vec![c.into()])
                .with_imm(1),
        );
        f.push_inst(
            e,
            InstData::new(Opcode::Make)
                .with_defs(vec![a.into()])
                .with_imm(7),
        );
        f.push_inst(
            e,
            InstData::new(Opcode::Br)
                .with_uses(vec![c.into()])
                .with_targets(vec![body, exit]),
        );
        f.push_inst(
            body,
            InstData::new(Opcode::Br)
                .with_uses(vec![c.into()])
                .with_targets(vec![body, exit]),
        );
        f.push_inst(exit, InstData::phi(x, vec![(e, a), (body, a)]));
        f.push_inst(exit, InstData::new(Opcode::Ret).with_uses(vec![x.into()]));
        assert!(f.validate().is_ok());

        let n = split_critical_edges(&mut f);
        // All four edges are critical: both sources have two successors
        // and both sinks have two predecessors.
        assert_eq!(n, 4);
        assert!(f.validate().is_ok(), "{:?}", f.validate());
        // After splitting, exit's φ preds are the two new middle blocks.
        let phi = f.phis(exit).next().unwrap();
        for &p in f.inst(phi).phi_preds {
            assert_ne!(p, e);
            assert_ne!(p, body);
        }
        let cfg = Cfg::compute(&f);
        for b in f.blocks() {
            if cfg.succs(b).len() > 1 {
                for &s in cfg.succs(b) {
                    assert!(cfg.preds(s).len() < 2, "critical edge {b}->{s} remains");
                }
            }
        }
    }
}
