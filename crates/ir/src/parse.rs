//! Parser for the textual IR format produced by [`crate::print`].
//!
//! Grammar (informal; `;` starts a comment, whitespace is free):
//!
//! ```text
//! function := "func" "@" ident "{" block+ "}"
//! block    := label ":" inst*
//! inst     := [operands "="] mnemonic payload
//! operand  := "%" name ["!" pin] | regname ["!" pin]
//! pin      := regname | "$" name
//! ```
//!
//! Variable tokens are identified by their full name text (`%x.3` and
//! `%x.4` are distinct variables); block labels likewise. The first block
//! is the entry. A pin written on a def position becomes the *variable
//! pinning* of the defined variable.

use crate::function::Function;
use crate::ids::{Block, Resource, Var};
use crate::instr::{InstData, Operand};
use crate::machine::Machine;
use crate::opcode::Opcode;
use std::collections::HashMap;
use std::fmt;

/// A parse failure, with a 1-based line number, the column of the
/// offending token (0 when unknown), and the token text itself.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Line on which the error was detected.
    pub line: usize,
    /// 1-based column of the offending token within the line; 0 when the
    /// error is not attributable to a single token.
    pub col: usize,
    /// The offending token, when one exists.
    pub token: String,
    /// Description of the problem.
    pub message: String,
}

impl ParseError {
    fn at(line: usize, message: impl Into<String>) -> ParseError {
        ParseError {
            line,
            col: 0,
            token: String::new(),
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.col > 0 {
            write!(f, "line {}:{}: {}", self.line, self.col, self.message)
        } else {
            write!(f, "line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    func: Function,
    vars: HashMap<String, Var>,
    blocks: HashMap<String, Block>,
    virt_res: HashMap<String, Resource>,
    machine: &'a Machine,
    line: usize,
    line_text: String,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError::at(self.line, message))
    }

    /// An error attributed to `token`, with its column located in the
    /// current source line.
    fn err_tok<T>(&self, token: &str, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            line: self.line,
            col: if token.is_empty() {
                0
            } else {
                self.line_text.find(token).map_or(0, |p| p + 1)
            },
            token: token.to_string(),
            message: message.into(),
        })
    }

    fn var_for(&mut self, token: &str) -> Var {
        if let Some(&v) = self.vars.get(token) {
            return v;
        }
        // Strip a trailing ".N" printer suffix for the display name.
        let display = match token.rsplit_once('.') {
            Some((base, idx)) if idx.chars().all(|c| c.is_ascii_digit()) && !base.is_empty() => {
                base
            }
            _ => token,
        };
        let v = self.func.new_var(display);
        self.vars.insert(token.to_string(), v);
        v
    }

    fn resource_for(&mut self, token: &str) -> Result<Resource, ParseError> {
        if let Some(virt) = token.strip_prefix('$') {
            if let Some(&r) = self.virt_res.get(virt) {
                return Ok(r);
            }
            let display = match virt.rsplit_once('.') {
                Some((base, idx))
                    if idx.chars().all(|c| c.is_ascii_digit()) && !base.is_empty() =>
                {
                    base
                }
                _ => virt,
            };
            let r = self.func.resources.new_virt(display);
            self.virt_res.insert(virt.to_string(), r);
            Ok(r)
        } else if let Some(reg) = self.machine.reg_by_name(token) {
            let name = self.machine.reg_name(reg).to_string();
            Ok(self.func.resources.phys(reg, &name))
        } else {
            self.err_tok(token, format!("unknown resource `{token}`"))
        }
    }

    /// Parses `%x.3!R0` / `R0` / `%v!$a` into (var, pin).
    fn operand(&mut self, token: &str) -> Result<Operand, ParseError> {
        let (base, pin) = match token.split_once('!') {
            Some((b, p)) => (b, Some(p)),
            None => (token, None),
        };
        let var = if let Some(name) = base.strip_prefix('%') {
            self.var_for(name)
        } else if let Some(reg) = self.machine.reg_by_name(base) {
            // A bare register name denotes the unique variable carrying
            // that register identity.
            let key = format!("!reg:{base}");
            let v = match self.vars.get(&key) {
                Some(&v) => v,
                None => {
                    let v = self.func.new_var(base);
                    self.func.var_mut(v).reg = Some(reg);
                    self.vars.insert(key, v);
                    v
                }
            };
            v
        } else {
            return self.err_tok(base, format!("expected operand, found `{base}`"));
        };
        let pin = match pin {
            Some(p) => Some(self.resource_for(p)?),
            None => None,
        };
        Ok(Operand { var, pin })
    }

    fn block_ref(&mut self, token: &str) -> Result<Block, ParseError> {
        match self.blocks.get(token) {
            Some(&b) => Ok(b),
            None => self.err_tok(token, format!("unknown block label `{token}`")),
        }
    }

    fn imm(&self, token: &str) -> Result<i64, ParseError> {
        let t = token.trim();
        let (neg, t) = match t.strip_prefix('-') {
            Some(rest) => (true, rest),
            None => (false, t),
        };
        let v = if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
            i64::from_str_radix(hex, 16)
        } else {
            t.parse::<i64>()
        };
        match v {
            Ok(v) => Ok(if neg { -v } else { v }),
            Err(_) => self.err_tok(token, format!("bad immediate `{token}`")),
        }
    }

    fn parse_inst(&mut self, text: &str, current: Block) -> Result<(), ParseError> {
        // Split "defs = rest" (careful: `=` only appears as that separator).
        let (defs_text, rest) = match text.split_once('=') {
            Some((d, r)) => (Some(d.trim()), r.trim()),
            None => (None, text.trim()),
        };
        let (mnemonic, tail) = match rest.split_once(char::is_whitespace) {
            Some((m, t)) => (m.trim(), t.trim()),
            None => (rest, ""),
        };
        let opcode = match Opcode::from_mnemonic(mnemonic) {
            Some(op) => op,
            None => return self.err_tok(mnemonic, format!("unknown mnemonic `{mnemonic}`")),
        };
        let mut inst = InstData::new(opcode);

        if let Some(defs_text) = defs_text {
            for tok in split_commas(defs_text) {
                let op = self.operand(&tok)?;
                if let Some(pin) = op.pin {
                    // Def pin = variable pinning.
                    self.func.var_mut(op.var).pin = Some(pin);
                }
                inst.defs.push(Operand::new(op.var));
            }
        }

        match opcode {
            Opcode::Phi => {
                // [bb: %v], [bb: %v] ...
                for part in split_commas(tail) {
                    let part = part.trim();
                    let Some(inner) = part.strip_prefix('[').and_then(|p| p.strip_suffix(']'))
                    else {
                        return self.err_tok(part, format!("bad phi arg `{part}`"));
                    };
                    let (label, val) = match inner.split_once(':') {
                        Some((l, v)) => (l.trim(), v.trim()),
                        None => return self.err_tok(part, format!("bad phi arg `{part}`")),
                    };
                    let b = self.block_ref(label)?;
                    let op = self.operand(val)?;
                    inst.phi_preds.push(b);
                    inst.uses.push(op);
                }
            }
            Opcode::Psi => {
                for part in split_commas(tail) {
                    let (p, a) = match part.split_once('?') {
                        Some((p, a)) => (p.trim(), a.trim()),
                        None => return self.err_tok(&part, format!("bad psi arg `{part}`")),
                    };
                    let p = self.operand(p)?;
                    let a = self.operand(a)?;
                    inst.uses.push(p);
                    inst.uses.push(a);
                }
            }
            Opcode::Call => {
                let (callee, args) = match tail.split_once('(') {
                    Some((c, a)) => (c.trim(), a.trim().strip_suffix(')').unwrap_or(a.trim())),
                    None => return self.err_tok(tail, format!("bad call syntax `{tail}`")),
                };
                inst.callee = Some(callee.to_string());
                for tok in split_commas(args) {
                    if tok.trim().is_empty() {
                        continue;
                    }
                    let op = self.operand(&tok)?;
                    inst.uses.push(op);
                }
            }
            Opcode::Br => {
                let parts: Vec<String> = split_commas(tail);
                if parts.len() != 3 {
                    return self.err_tok(
                        mnemonic,
                        format!(
                            "br needs `cond, then, else`, found {} operands",
                            parts.len()
                        ),
                    );
                }
                inst.uses.push(self.operand(&parts[0])?);
                let t0 = self.block_ref(&parts[1])?;
                let t1 = self.block_ref(&parts[2])?;
                inst.targets = vec![t0, t1];
            }
            Opcode::Jump => {
                inst.targets = vec![self.block_ref(tail.trim())?];
            }
            Opcode::Make | Opcode::SpillLoad => {
                inst.imm = self.imm(tail)?;
            }
            Opcode::More | Opcode::AddImm | Opcode::AutoAdd | Opcode::SpillStore => {
                let parts: Vec<String> = split_commas(tail);
                if parts.len() != 2 {
                    return self.err_tok(
                        mnemonic,
                        format!(
                            "{mnemonic} needs `use, imm`, found {} operands",
                            parts.len()
                        ),
                    );
                }
                inst.uses.push(self.operand(&parts[0])?);
                inst.imm = self.imm(&parts[1])?;
            }
            _ => {
                for tok in split_commas(tail) {
                    if tok.trim().is_empty() {
                        continue;
                    }
                    inst.uses.push(self.operand(&tok)?);
                }
            }
        }
        self.func.push_inst(current, inst);
        Ok(())
    }
}

fn split_commas(s: &str) -> Vec<String> {
    if s.trim().is_empty() {
        return Vec::new();
    }
    s.split(',').map(|p| p.trim().to_string()).collect()
}

fn strip_comment(line: &str) -> &str {
    match line.find(';') {
        Some(pos) => &line[..pos],
        None => line,
    }
}

/// Parses one function from text.
///
/// # Errors
/// Returns a [`ParseError`] with the offending line on malformed input.
/// The parsed function is *not* validated; call
/// [`Function::validate`] if structural invariants matter.
pub fn parse_function(text: &str, machine: &Machine) -> Result<Function, ParseError> {
    // Pass 1: function name and block labels (for forward references).
    let mut name = None;
    let mut labels: Vec<String> = Vec::new();
    for raw in text.lines() {
        let line = strip_comment(raw).trim();
        if line.is_empty() || line == "}" {
            continue;
        }
        if let Some(rest) = line.strip_prefix("func") {
            let rest = rest.trim().trim_end_matches('{').trim();
            name = Some(rest.trim_start_matches('@').to_string());
            continue;
        }
        if let Some(label) = line.strip_suffix(':') {
            if !label.contains(char::is_whitespace) {
                labels.push(label.to_string());
            }
        }
    }
    let name = name.ok_or_else(|| ParseError::at(1, "missing `func @name {`"))?;

    let mut p = Parser {
        func: Function::new(name, machine.clone()),
        vars: HashMap::new(),
        blocks: HashMap::new(),
        virt_res: HashMap::new(),
        machine,
        line: 0,
        line_text: String::new(),
    };
    // Map labels to blocks; first label is the entry.
    for (i, label) in labels.iter().enumerate() {
        let b = if i == 0 {
            p.func.block_mut(p.func.entry).name = label.clone();
            p.func.entry
        } else {
            p.func.add_block(label.clone())
        };
        if p.blocks.insert(label.clone(), b).is_some() {
            return Err(ParseError::at(1, format!("duplicate label `{label}`")));
        }
    }
    if labels.is_empty() {
        return Err(ParseError::at(1, "function has no blocks"));
    }

    // Pass 2: instructions.
    let mut current: Option<Block> = None;
    for (lineno, raw) in text.lines().enumerate() {
        p.line = lineno + 1;
        let line = strip_comment(raw).trim();
        p.line_text = raw.to_string();
        if line.is_empty() || line == "}" || line.starts_with("func") {
            continue;
        }
        if let Some(label) = line.strip_suffix(':') {
            if let Some(&b) = p.blocks.get(label) {
                current = Some(b);
                continue;
            }
        }
        let Some(cur) = current else {
            return p.err("instruction before first block label");
        };
        p.parse_inst(line, cur)?;
    }
    Ok(p.func)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dsp() -> Machine {
        Machine::dsp32()
    }

    #[test]
    fn parses_straightline() {
        let f = parse_function(
            "func @t {\nentry:\n  %a, %b = input\n  %s = add %a, %b\n  ret %s\n}",
            &dsp(),
        )
        .unwrap();
        assert!(f.validate().is_ok(), "{:?}", f.validate());
        assert_eq!(f.name, "t");
        assert_eq!(f.num_vars(), 3);
        assert_eq!(f.block_insts(f.entry).count(), 3);
    }

    #[test]
    fn parses_loop_with_phi_and_forward_refs() {
        let text = "
func @count {
entry:
  %n = input
  %z = make 0
  jump head
head:
  %i = phi [entry: %z], [body: %i2]
  %c = cmplt %i, %n
  br %c, body, exit
body:
  %i2 = addi %i, 1
  jump head
exit:
  ret %i
}";
        let f = parse_function(text, &dsp()).unwrap();
        assert!(f.validate().is_ok(), "{:?}", f.validate());
        assert_eq!(f.num_blocks(), 4);
    }

    #[test]
    fn parses_pins() {
        let text = "
func @abi {
entry:
  %c!R0, %p!P0 = input
  %q!$q = autoadd %p!$q, 1
  %d!R0 = call f(%c!R0, %q!R1)
  ret %d!R0
}";
        let f = parse_function(text, &dsp()).unwrap();
        assert!(f.validate().is_ok());
        // %c pinned (as variable pinning) to R0.
        let c = Var::new(0);
        let pin = f.var(c).pin.unwrap();
        assert_eq!(f.resources.as_phys(pin), Some(f.machine.abi.ret_reg));
        // %q's def and the use of %p share one virtual resource.
        let q = Var::new(2);
        let qpin = f.var(q).pin.unwrap();
        assert!(f.resources.as_phys(qpin).is_none());
        let autoadd = f.block_insts(f.entry).nth(1).unwrap();
        assert_eq!(f.inst(autoadd).uses[0].pin, Some(qpin));
    }

    #[test]
    fn parses_bare_registers_as_reg_vars() {
        let text = "func @m {\nentry:\n  R0 = make 1\n  %x = mov R0\n  ret %x\n}";
        let f = parse_function(text, &dsp()).unwrap();
        let r0var = Var::new(0);
        assert_eq!(f.var(r0var).reg, Some(f.machine.abi.ret_reg));
        // Same register token maps to the same variable.
        let movi = f.block_insts(f.entry).nth(1).unwrap();
        assert_eq!(f.inst(movi).uses[0].var, r0var);
    }

    #[test]
    fn roundtrips_printed_output() {
        let text = "
func @rt {
entry:
  %a, %p = input
  %k = make 0x00A1
  %k2 = more %k, 0x2BFA
  %v = load %p
  %s = select %k, %v, %a
  store %p, %s
  br %s, left, right
left:
  %r1 = call f(%s)
  jump merge
right:
  jump merge
merge:
  %m = phi [left: %r1], [right: %a]
  %ps = psi %a ? %m, %k ? %v
  ret %m
}";
        let f1 = parse_function(text, &dsp()).unwrap();
        assert!(f1.validate().is_ok(), "{:?}", f1.validate());
        let printed = f1.to_string();
        let f2 = parse_function(&printed, &dsp()).unwrap();
        assert!(f2.validate().is_ok(), "{:?}\n{printed}", f2.validate());
        assert_eq!(f1.num_blocks(), f2.num_blocks());
        assert_eq!(f1.num_vars(), f2.num_vars());
        // Printing is idempotent from the second generation on (block
        // label comments are normalized away by the first round-trip).
        let printed2 = f2.to_string();
        let f3 = parse_function(&printed2, &dsp()).unwrap();
        assert_eq!(f3.to_string(), printed2);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let text = "func @e {\nentry:\n  %a = frob %b\n  ret\n}";
        let e = parse_function(text, &dsp()).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("frob"), "{e}");
        let e2 = parse_function("func @e {\nentry:\n  jump nowhere\n}", &dsp()).unwrap_err();
        assert!(e2.message.contains("nowhere"));
    }

    #[test]
    fn unknown_opcode_names_the_token_and_column() {
        let e =
            parse_function("func @e {\nentry:\n  %a = frobnicate %b, %c\n}", &dsp()).unwrap_err();
        assert_eq!(e.line, 3);
        assert_eq!(e.token, "frobnicate");
        assert_eq!(e.col, 8, "{e}");
        assert!(e.to_string().contains("3:8"), "{e}");
    }

    #[test]
    fn arity_mismatch_is_a_parse_error() {
        // br with two operands instead of `cond, then, else`.
        let e = parse_function("func @e {\nentry:\n  %c = input\n  br %c, entry\n}", &dsp())
            .unwrap_err();
        assert_eq!(e.line, 4);
        assert!(e.message.contains("cond, then, else"), "{e}");
        assert!(e.message.contains("2 operands"), "{e}");
        // addi with a missing immediate.
        let e2 = parse_function(
            "func @e {\nentry:\n  %a = input\n  %b = addi %a\n  ret\n}",
            &dsp(),
        )
        .unwrap_err();
        assert_eq!(e2.line, 4);
        assert!(e2.message.contains("use, imm"), "{e2}");
    }

    #[test]
    fn undefined_label_names_the_token() {
        let e = parse_function(
            "func @e {\nentry:\n  %c = input\n  br %c, entry, missing\n}",
            &dsp(),
        )
        .unwrap_err();
        assert_eq!(e.line, 4);
        assert_eq!(e.token, "missing");
        assert!(e.col > 0, "{e}");
        assert!(e.message.contains("unknown block label"), "{e}");
    }

    #[test]
    fn bad_immediate_and_operand_tokens_attributed() {
        let e =
            parse_function("func @e {\nentry:\n  %a = make 0xZZ\n  ret\n}", &dsp()).unwrap_err();
        assert_eq!(e.token, "0xZZ");
        let e2 =
            parse_function("func @e {\nentry:\n  %a = add ???, %b\n  ret\n}", &dsp()).unwrap_err();
        assert_eq!(e2.token, "???");
        assert!(e2.message.contains("expected operand"), "{e2}");
    }

    #[test]
    fn rejects_instruction_outside_block() {
        let e = parse_function("func @e {\n  ret\n}", &dsp()).unwrap_err();
        assert!(e.message.contains("no blocks") || e.message.contains("before first block"));
    }

    use crate::ids::Var;
}
