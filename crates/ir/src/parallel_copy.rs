//! Parallel copy sequentialization.
//!
//! The out-of-SSA translation replaces the φs of a block by one *parallel
//! copy* per incoming edge (paper §2.3: "The copies `R0 = x'1; R1 = R0`
//! are performed in parallel in the algorithm, so as to avoid the
//! so-called swap problem"). A parallel copy assigns all destinations
//! simultaneously from the *old* values of all sources. Emitting it as a
//! sequence of `mov`s requires ordering reads before overwrites and
//! breaking cycles with a temporary.

use crate::ids::Var;
use std::fmt;

/// An ill-formed parallel copy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParallelCopyError {
    /// Two moves write one destination from different sources; the
    /// parallel semantics would be ambiguous.
    DuplicateDestination {
        /// The destination written twice.
        dst: Var,
        /// Source of the first conflicting move.
        first_src: Var,
        /// Source of the second conflicting move.
        second_src: Var,
    },
}

impl fmt::Display for ParallelCopyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParallelCopyError::DuplicateDestination {
                dst,
                first_src,
                second_src,
            } => write!(
                f,
                "parallel copy writes {dst} from both {first_src} and {second_src}"
            ),
        }
    }
}

impl std::error::Error for ParallelCopyError {}

/// Sequentializes the parallel copy `moves` (pairs `(dst, src)`, all
/// `dst` distinct) into an equivalent ordered list of copies.
///
/// `fresh_temp` is called at most once per dependency cycle to obtain a
/// scratch variable.
///
/// Self-copies (`dst == src`) are dropped. The result preserves parallel
/// semantics: after executing the returned moves in order, every `dst`
/// holds the value `src` had before the first move.
///
/// # Panics
/// Panics (in debug builds) if two moves share a destination with
/// different sources; in release builds the later conflicting move is
/// dropped. Untrusted inputs should go through
/// [`sequentialize_checked`], which reports the conflict instead.
pub fn sequentialize(moves: &[(Var, Var)], mut fresh_temp: impl FnMut() -> Var) -> Vec<(Var, Var)> {
    match sequentialize_checked(moves, &mut fresh_temp) {
        Ok(seq) => seq,
        Err(e) => {
            debug_assert!(false, "{e}");
            // First-conflicting-move-wins keeps release behaviour
            // deterministic without a panic path.
            let mut seen: Vec<Var> = Vec::new();
            let deduped: Vec<(Var, Var)> = moves
                .iter()
                .copied()
                .filter(|&(d, _)| {
                    if seen.contains(&d) {
                        false
                    } else {
                        seen.push(d);
                        true
                    }
                })
                .collect();
            sequentialize_checked(&deduped, fresh_temp).unwrap_or_default()
        }
    }
}

/// [`sequentialize`] for untrusted inputs: reports an ill-formed
/// parallel copy instead of asserting.
///
/// Exact duplicate moves (same destination *and* source) are merged;
/// self-copies are dropped.
///
/// # Errors
/// Returns [`ParallelCopyError::DuplicateDestination`] when two moves
/// write one destination from different sources.
pub fn sequentialize_checked(
    moves: &[(Var, Var)],
    mut fresh_temp: impl FnMut() -> Var,
) -> Result<Vec<(Var, Var)>, ParallelCopyError> {
    let mut unique: Vec<(Var, Var)> = Vec::with_capacity(moves.len());
    for &(d, s) in moves {
        match unique.iter().find(|&&(ud, _)| ud == d) {
            Some(&(_, us)) if us != s => {
                return Err(ParallelCopyError::DuplicateDestination {
                    dst: d,
                    first_src: us,
                    second_src: s,
                });
            }
            Some(_) => {} // exact duplicate: merge
            None => unique.push((d, s)),
        }
    }

    let mut pending: Vec<(Var, Var)> = unique.into_iter().filter(|&(d, s)| d != s).collect();
    let mut out = Vec::with_capacity(pending.len());
    if !pending.is_empty() {
        tossa_trace::count(tossa_trace::Counter::ParallelCopyGroups, 1);
    }

    while !pending.is_empty() {
        // Emit every move whose destination is not needed as a source by
        // any other pending move.
        let mut progressed = false;
        let mut i = 0;
        while i < pending.len() {
            let (d, _) = pending[i];
            let blocked = pending
                .iter()
                .enumerate()
                .any(|(j, &(_, s))| j != i && s == d);
            if blocked {
                i += 1;
            } else {
                out.push(pending.remove(i));
                progressed = true;
            }
        }
        if pending.is_empty() {
            break;
        }
        if !progressed {
            // Every pending destination is also a pending source: we are
            // looking at one or more cycles. Break one by saving a
            // destination's old value in a temp.
            let (d, _) = pending[0];
            let temp = fresh_temp();
            tossa_trace::count(tossa_trace::Counter::ParallelCopyCycles, 1);
            out.push((temp, d));
            for (_, s) in pending.iter_mut() {
                if *s == d {
                    *s = temp;
                }
            }
        }
    }
    Ok(out)
}

/// Applies a list of sequential copies to an environment lookup, returning
/// the final value of each destination — a tiny evaluator used by tests to
/// compare against parallel semantics.
#[doc(hidden)]
pub fn eval_sequential(
    copies: &[(Var, Var)],
    initial: impl Fn(Var) -> i64,
) -> std::collections::HashMap<Var, i64> {
    let mut env: std::collections::HashMap<Var, i64> = std::collections::HashMap::new();
    let read = |env: &std::collections::HashMap<Var, i64>, v: Var| -> i64 {
        env.get(&v).copied().unwrap_or_else(|| initial(v))
    };
    for &(d, s) in copies {
        let val = read(&env, s);
        env.insert(d, val);
    }
    env
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(moves: &[(usize, usize)]) {
        let moves: Vec<(Var, Var)> = moves
            .iter()
            .map(|&(d, s)| (Var::new(d), Var::new(s)))
            .collect();
        let mut next = 1000;
        let seq = sequentialize(&moves, || {
            next += 1;
            Var::new(next)
        });
        let env = eval_sequential(&seq, |v| v.index() as i64);
        for &(d, s) in &moves {
            assert_eq!(
                env.get(&d).copied().unwrap_or(d.index() as i64),
                s.index() as i64,
                "dst {d} should have old value of {s}; seq = {seq:?}"
            );
        }
    }

    #[test]
    fn independent_moves() {
        check(&[(1, 2), (3, 4)]);
    }

    #[test]
    fn chain_is_ordered() {
        // a <- b <- c must emit a=b before b=c.
        check(&[(1, 2), (2, 3)]);
        let moves = [(Var::new(1), Var::new(2)), (Var::new(2), Var::new(3))];
        let seq = sequentialize(&moves, || unreachable!("no cycle"));
        assert_eq!(
            seq,
            vec![(Var::new(1), Var::new(2)), (Var::new(2), Var::new(3))]
        );
    }

    #[test]
    fn swap_uses_one_temp() {
        let moves = [(Var::new(1), Var::new(2)), (Var::new(2), Var::new(1))];
        let mut temps = 0;
        let seq = sequentialize(&moves, || {
            temps += 1;
            Var::new(99)
        });
        assert_eq!(temps, 1);
        assert_eq!(seq.len(), 3);
        check(&[(1, 2), (2, 1)]);
    }

    #[test]
    fn three_cycle() {
        check(&[(1, 2), (2, 3), (3, 1)]);
    }

    #[test]
    fn two_disjoint_cycles_use_two_temps() {
        let moves: Vec<(Var, Var)> = [(1, 2), (2, 1), (3, 4), (4, 3)]
            .iter()
            .map(|&(d, s)| (Var::new(d), Var::new(s)))
            .collect();
        let mut next = 100;
        let seq = sequentialize(&moves, || {
            next += 1;
            Var::new(next)
        });
        assert_eq!(next, 102);
        let env = eval_sequential(&seq, |v| v.index() as i64);
        assert_eq!(env[&Var::new(1)], 2);
        assert_eq!(env[&Var::new(4)], 3);
    }

    #[test]
    fn self_moves_dropped() {
        let moves = [(Var::new(5), Var::new(5))];
        let seq = sequentialize(&moves, || unreachable!());
        assert!(seq.is_empty());
    }

    #[test]
    fn fanout_same_source() {
        check(&[(1, 3), (2, 3)]);
    }

    #[test]
    fn cycle_plus_chain() {
        // chain into a cycle: 5 <- 1, and cycle 1 <-> 2.
        check(&[(5, 1), (1, 2), (2, 1)]);
    }

    #[test]
    fn checked_rejects_conflicting_duplicate_destination() {
        let moves = [(Var::new(1), Var::new(2)), (Var::new(1), Var::new(3))];
        let e = sequentialize_checked(&moves, || unreachable!()).unwrap_err();
        assert_eq!(
            e,
            ParallelCopyError::DuplicateDestination {
                dst: Var::new(1),
                first_src: Var::new(2),
                second_src: Var::new(3),
            }
        );
        assert!(e.to_string().contains("v1"), "{e}");
    }

    #[test]
    fn checked_merges_exact_duplicates_and_self_copies() {
        // The same move twice is not a conflict, and self-copies vanish
        // even when duplicated.
        let moves = [
            (Var::new(1), Var::new(2)),
            (Var::new(1), Var::new(2)),
            (Var::new(3), Var::new(3)),
            (Var::new(3), Var::new(3)),
        ];
        let seq = sequentialize_checked(&moves, || unreachable!()).unwrap();
        assert_eq!(seq, vec![(Var::new(1), Var::new(2))]);
    }

    #[test]
    fn checked_swap_cycle_and_lost_copy() {
        // Swap: exactly one temp.
        let mut temps = 0;
        let seq = sequentialize_checked(
            &[(Var::new(1), Var::new(2)), (Var::new(2), Var::new(1))],
            || {
                temps += 1;
                Var::new(90 + temps)
            },
        )
        .unwrap();
        assert_eq!(temps, 1);
        let env = eval_sequential(&seq, |v| v.index() as i64);
        assert_eq!(env[&Var::new(1)], 2);
        assert_eq!(env[&Var::new(2)], 1);
        // Three-cycle.
        let seq = sequentialize_checked(
            &[
                (Var::new(1), Var::new(2)),
                (Var::new(2), Var::new(3)),
                (Var::new(3), Var::new(1)),
            ],
            || Var::new(99),
        )
        .unwrap();
        let env = eval_sequential(&seq, |v| v.index() as i64);
        assert_eq!(env[&Var::new(3)], 1);
        // Lost-copy shape: the chain out of the cycle reads the old value.
        let seq = sequentialize_checked(
            &[(Var::new(5), Var::new(1)), (Var::new(1), Var::new(2))],
            || unreachable!("no cycle"),
        )
        .unwrap();
        assert_eq!(
            seq,
            vec![(Var::new(5), Var::new(1)), (Var::new(1), Var::new(2))]
        );
    }

    #[test]
    fn unchecked_release_fallback_is_first_wins() {
        // In release builds `sequentialize` must not panic on a duplicate
        // destination; debug builds assert instead.
        if cfg!(not(debug_assertions)) {
            let moves = [(Var::new(1), Var::new(2)), (Var::new(1), Var::new(3))];
            let seq = sequentialize(&moves, || unreachable!());
            assert_eq!(seq, vec![(Var::new(1), Var::new(2))]);
        }
    }
}
