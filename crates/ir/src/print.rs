//! Textual printing of functions (LAI-style assembly).
//!
//! The format round-trips through [`crate::parse`]:
//!
//! ```text
//! func @euclid {
//! bb0:
//!   %a.0!R0, %b.1!R1 = input
//!   jump bb1
//! bb1:
//!   %x.2 = phi [bb0: %a.0], [bb2: %y.3]
//!   ...
//!   br %c.5, bb2, bb3
//! }
//! ```
//!
//! Variables print as `%name.index`; a variable carrying a physical
//! register identity prints as the bare register name (`R0`). Pins print
//! as `!R0` (physical) or `!$name.index` (virtual resource). A pin shown
//! on a def position is the *variable pinning* of the defined variable.

use crate::function::Function;
use crate::ids::{Block, Inst, Resource, Var};
use crate::opcode::Opcode;
use std::fmt;
use std::fmt::Write as _;

fn sanitize(name: &str) -> String {
    let mut s: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if s.is_empty() {
        s.push('v');
    }
    s
}

/// Prints a variable reference.
pub fn var_str(f: &Function, v: Var) -> String {
    let data = f.var(v);
    if let Some(reg) = data.reg {
        return f.machine.reg_name(reg).to_string();
    }
    format!("%{}.{}", sanitize(&data.name), v.index())
}

/// Prints a resource reference.
pub fn res_str(f: &Function, r: Resource) -> String {
    match f.resources.as_phys(r) {
        Some(reg) => f.machine.reg_name(reg).to_string(),
        None => format!("${}.{}", sanitize(f.resources.name(r)), r.index()),
    }
}

fn operand_str(f: &Function, var: Var, pin: Option<Resource>) -> String {
    match pin {
        Some(r) => format!("{}!{}", var_str(f, var), res_str(f, r)),
        None => var_str(f, var),
    }
}

fn block_str(b: Block) -> String {
    format!("bb{}", b.index())
}

/// Prints one instruction (without trailing newline).
pub fn inst_str(f: &Function, i: Inst) -> String {
    let inst = f.inst(i);
    let mut s = String::new();
    // Def list. Def pins are variable pinnings.
    if !inst.defs.is_empty() {
        let defs: Vec<String> = inst
            .defs
            .iter()
            .map(|o| operand_str(f, o.var, f.var(o.var).pin))
            .collect();
        let _ = write!(s, "{} = ", defs.join(", "));
    }
    let _ = write!(s, "{}", inst.opcode);
    let use_str = |o: &crate::instr::Operand| operand_str(f, o.var, o.pin);
    match inst.opcode {
        Opcode::Phi => {
            let args: Vec<String> = inst
                .uses
                .iter()
                .zip(inst.phi_preds)
                .map(|(o, &b)| format!("[{}: {}]", block_str(b), use_str(o)))
                .collect();
            let _ = write!(s, " {}", args.join(", "));
        }
        Opcode::Psi => {
            let args: Vec<String> = inst
                .uses
                .chunks(2)
                .map(|c| format!("{} ? {}", use_str(&c[0]), use_str(&c[1])))
                .collect();
            let _ = write!(s, " {}", args.join(", "));
        }
        Opcode::Call => {
            let args: Vec<String> = inst.uses.iter().map(use_str).collect();
            let _ = write!(s, " {}({})", inst.callee.unwrap_or("?"), args.join(", "));
        }
        Opcode::Br => {
            let _ = write!(
                s,
                " {}, {}, {}",
                use_str(&inst.uses[0]),
                block_str(inst.targets[0]),
                block_str(inst.targets[1])
            );
        }
        Opcode::Jump => {
            let _ = write!(s, " {}", block_str(inst.targets[0]));
        }
        _ => {
            let mut parts: Vec<String> = inst.uses.iter().map(use_str).collect();
            match inst.opcode {
                Opcode::Make
                | Opcode::More
                | Opcode::AddImm
                | Opcode::AutoAdd
                | Opcode::SpillStore
                | Opcode::SpillLoad => {
                    parts.push(format!("{}", inst.imm));
                }
                _ => {}
            }
            if !parts.is_empty() {
                let _ = write!(s, " {}", parts.join(", "));
            }
        }
    }
    s
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "func @{} {{", sanitize(&self.name))?;
        for b in self.blocks() {
            let data = self.block(b);
            write!(f, "bb{}:", b.index())?;
            if !data.name.is_empty() && data.name != format!("bb{}", b.index()) {
                write!(f, "  ; {}", data.name)?;
            }
            writeln!(f)?;
            for i in self.block_insts(b) {
                writeln!(f, "  {}", inst_str(self, i))?;
            }
        }
        writeln!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::{inst_str, var_str};
    use crate::builder::FunctionBuilder;
    use crate::function::pin_var_to_reg;
    use crate::machine::Machine;

    #[test]
    fn var_and_inst_str_helpers() {
        let mut fb = FunctionBuilder::new("h", Machine::dsp32());
        let a = fb.make("a value", 2); // name is sanitized
        fb.ret(&[a]);
        let f = fb.finish();
        assert_eq!(var_str(&f, a), "%a_value.0");
        let first = f.block_insts(f.entry).next().unwrap();
        assert_eq!(inst_str(&f, first), "%a_value.0 = make 2");
    }

    #[test]
    fn prints_straightline() {
        let mut fb = FunctionBuilder::new("t", Machine::dsp32());
        let ins = fb.inputs(&["a", "b"]);
        let s = fb.add("s", ins[0], ins[1]);
        fb.ret(&[s]);
        let f = fb.finish();
        let text = f.to_string();
        assert!(text.contains("func @t {"), "{text}");
        assert!(text.contains("%a.0, %b.1 = input"), "{text}");
        assert!(text.contains("%s.2 = add %a.0, %b.1"), "{text}");
        assert!(text.contains("ret %s.2"), "{text}");
    }

    #[test]
    fn prints_pins_and_phis() {
        let mut fb = FunctionBuilder::new("t", Machine::dsp32());
        let a = fb.make("a", 5);
        let merge = fb.block("m");
        fb.jump(merge);
        fb.switch_to(merge);
        fb.ret(&[a]);
        let entry = fb.func().entry;
        let x = fb.phi("x", &[(entry, a)]);
        let mut f = fb.finish();
        let reg = f.machine.abi.ret_reg;
        pin_var_to_reg(&mut f, x, reg);
        let text = f.to_string();
        assert!(text.contains("%x.1!R0 = phi [bb0: %a.0]"), "{text}");
    }

    #[test]
    fn reg_identity_prints_as_register() {
        let mut fb = FunctionBuilder::new("t", Machine::dsp32());
        let a = fb.make("a", 1);
        fb.ret(&[a]);
        let mut f = fb.finish();
        f.var_mut(a).reg = Some(f.machine.abi.ret_reg);
        let text = f.to_string();
        assert!(text.contains("R0 = make 1"), "{text}");
        assert!(text.contains("ret R0"), "{text}");
    }

    #[test]
    fn prints_calls_and_imm_ops() {
        let mut fb = FunctionBuilder::new("t", Machine::dsp32());
        let a = fb.make("a", 161);
        let k = fb.more("k", a, 11258);
        let p = fb.inputs(&["p"])[0];
        let q = fb.autoadd("q", p, 4);
        let r = fb.call("r", "f", &[k, q]);
        fb.ret(&[r]);
        let f = fb.finish();
        let text = f.to_string();
        assert!(text.contains("%k.1 = more %a.0, 11258"), "{text}");
        assert!(text.contains("%q.3 = autoadd %p.2, 4"), "{text}");
        assert!(text.contains("%r.4 = call f(%k.1, %q.3)"), "{text}");
    }
}
