//! A reference interpreter for the IR.
//!
//! The interpreter gives the IR an executable semantics so that every
//! out-of-SSA translation can be checked end-to-end: a function and its
//! translated form must produce identical outputs on identical inputs.
//!
//! Semantics notes:
//! * values are `i64` with wrapping arithmetic; shifts mask their amount;
//! * memory is a sparse word-addressed map, initially `default_mem`
//!   everywhere;
//! * `call` is a *deterministic pure function* of the callee name and the
//!   argument values (a hash mix) — enough to detect any misrouted value
//!   through ABI registers without modeling real callees;
//! * φs at a block entry evaluate in parallel with values flowing from
//!   the edge just taken; ψ takes the last satisfied guard, 0 otherwise.

use crate::function::Function;
use crate::ids::{Block, Var};
use crate::opcode::Opcode;
use std::collections::HashMap;

/// Why execution stopped abnormally.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Trap {
    /// The step budget was exhausted (likely an infinite loop).
    OutOfFuel,
    /// A variable was read before any assignment.
    UndefinedVar(Var, String),
    /// Control reached a block without a terminator.
    MissingTerminator(Block),
    /// `input` requested more values than were supplied.
    NotEnoughInputs,
    /// A `spillld` read a stack slot no `spillst` has written (a
    /// register allocator dropped or misplaced a reload's store).
    UnwrittenSlot(i64),
}

impl std::fmt::Display for Trap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Trap::OutOfFuel => write!(f, "out of fuel"),
            Trap::UndefinedVar(v, name) => write!(f, "read of undefined {v} (`{name}`)"),
            Trap::MissingTerminator(b) => write!(f, "block {b} has no terminator"),
            Trap::NotEnoughInputs => write!(f, "not enough input values"),
            Trap::UnwrittenSlot(s) => write!(f, "spill reload of unwritten stack slot {s}"),
        }
    }
}

impl std::error::Error for Trap {}

/// Result of a successful run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExecResult {
    /// Values of the `ret` uses, in order.
    pub outputs: Vec<i64>,
    /// Instructions executed.
    pub steps: u64,
}

/// Deterministic model of an external call: a hash mix of the callee name
/// and arguments. Exposed so tests can predict call results.
pub fn call_model(callee: &str, args: &[i64]) -> i64 {
    let mut h: i64 = 0x517c_c1b7_2722_0a95u64 as i64;
    for b in callee.bytes() {
        h = (h ^ b as i64).wrapping_mul(0x0100_0000_01b3);
    }
    for &a in args {
        h = (h ^ a).wrapping_mul(0x0100_0000_01b3);
        h = h.rotate_left(13);
    }
    h
}

/// The variable environment: a dense value/defined-flag pair per
/// variable id. Variables are never created mid-run, so both frames are
/// sized once; reads and writes are direct indexing instead of the
/// hashing a `HashMap<Var, i64>` pays on every executed operand.
struct Env {
    vals: Vec<i64>,
    defined: Vec<bool>,
}

impl Env {
    fn new(n: usize) -> Env {
        Env {
            vals: vec![0; n],
            defined: vec![false; n],
        }
    }

    fn write(&mut self, v: Var, x: i64) {
        self.vals[v.index()] = x;
        self.defined[v.index()] = true;
    }
}

/// The spill frame: dense for the non-negative slot indices the spiller
/// produces, with a sparse spill-over for any negative slot a
/// hand-written test might use. `None`/absent means unwritten (a trap
/// on reload, unlike main memory's `default_mem`).
#[derive(Default)]
struct Frame {
    dense: Vec<Option<i64>>,
    sparse: HashMap<i64, i64>,
}

impl Frame {
    fn store(&mut self, slot: i64, v: i64) {
        match usize::try_from(slot) {
            Ok(s) => {
                if s >= self.dense.len() {
                    self.dense.resize(s + 1, None);
                }
                self.dense[s] = Some(v);
            }
            Err(_) => {
                self.sparse.insert(slot, v);
            }
        }
    }

    fn load(&self, slot: i64) -> Option<i64> {
        match usize::try_from(slot) {
            Ok(s) => self.dense.get(s).copied().flatten(),
            Err(_) => self.sparse.get(&slot).copied(),
        }
    }
}

/// Runs `f` on `inputs` with a step budget.
///
/// # Errors
/// Returns a [`Trap`] on undefined reads, missing terminators, fuel
/// exhaustion, or insufficient inputs.
pub fn run(f: &Function, inputs: &[i64], fuel: u64) -> Result<ExecResult, Trap> {
    let mut env = Env::new(f.num_vars());
    let mut mem: HashMap<i64, i64> = HashMap::new();
    // The spill frame is separate from `mem`: slots are indices, not
    // addresses, and reading an unwritten slot is a trap rather than a
    // `default_mem` value.
    let mut frame = Frame::default();
    let mut steps: u64 = 0;
    let mut block = f.entry;

    // Dedicated (special-class) registers such as SP have a well-defined
    // incoming value; every variable carrying such a register identity
    // starts with it. General-purpose register variables stay undefined
    // so misrouted values still trap.
    for v in f.vars() {
        if let Some(reg) = f.var(v).reg {
            if f.machine.reg_class(reg) == crate::machine::RegClass::Special {
                env.write(v, 0x0010_0000 + (reg.index() as i64) * 0x1_0000);
            }
        }
    }

    let read = |env: &Env, v: Var| -> Result<i64, Trap> {
        if env.defined[v.index()] {
            Ok(env.vals[v.index()])
        } else {
            Err(Trap::UndefinedVar(v, f.var(v).name.clone()))
        }
    };

    let mut updates: Vec<(Var, i64)> = Vec::new();
    loop {
        // Execute the block's instructions (φs were handled on edge entry;
        // at the entry block there are none).
        let mut next: Option<Block> = None;
        for &i in &f.block(block).insts {
            let inst = f.inst(i);
            if inst.is_phi() {
                continue; // evaluated on edge transfer
            }
            steps += 1;
            if steps > fuel {
                tossa_trace::count(tossa_trace::Counter::InterpSteps, steps);
                return Err(Trap::OutOfFuel);
            }
            let u = |idx: usize| read(&env, inst.uses[idx].var);
            match inst.opcode {
                Opcode::Input => {
                    if inputs.len() < inst.defs.len() {
                        return Err(Trap::NotEnoughInputs);
                    }
                    for (k, d) in inst.defs.iter().enumerate() {
                        env.write(d.var, inputs[k]);
                    }
                }
                Opcode::Mov => {
                    let v = u(0)?;
                    env.write(inst.defs[0].var, v);
                }
                Opcode::Make => {
                    env.write(inst.defs[0].var, inst.imm);
                }
                Opcode::More => {
                    let v = u(0)?;
                    env.write(inst.defs[0].var, (v << 16) | (inst.imm & 0xffff));
                }
                Opcode::Add => {
                    let v = u(0)?.wrapping_add(u(1)?);
                    env.write(inst.defs[0].var, v);
                }
                Opcode::Sub => {
                    let v = u(0)?.wrapping_sub(u(1)?);
                    env.write(inst.defs[0].var, v);
                }
                Opcode::Mul => {
                    let v = u(0)?.wrapping_mul(u(1)?);
                    env.write(inst.defs[0].var, v);
                }
                Opcode::And => {
                    let v = u(0)? & u(1)?;
                    env.write(inst.defs[0].var, v);
                }
                Opcode::Or => {
                    let v = u(0)? | u(1)?;
                    env.write(inst.defs[0].var, v);
                }
                Opcode::Xor => {
                    let v = u(0)? ^ u(1)?;
                    env.write(inst.defs[0].var, v);
                }
                Opcode::Shl => {
                    let v = u(0)?.wrapping_shl(u(1)? as u32 & 63);
                    env.write(inst.defs[0].var, v);
                }
                Opcode::Shr => {
                    let v = u(0)?.wrapping_shr(u(1)? as u32 & 63);
                    env.write(inst.defs[0].var, v);
                }
                Opcode::Neg => {
                    let v = u(0)?.wrapping_neg();
                    env.write(inst.defs[0].var, v);
                }
                Opcode::Not => {
                    let v = !u(0)?;
                    env.write(inst.defs[0].var, v);
                }
                Opcode::AddImm | Opcode::AutoAdd => {
                    let v = u(0)?.wrapping_add(inst.imm);
                    env.write(inst.defs[0].var, v);
                }
                Opcode::Load => {
                    let addr = u(0)?;
                    let v = mem.get(&addr).copied().unwrap_or_else(|| default_mem(addr));
                    env.write(inst.defs[0].var, v);
                }
                Opcode::Store => {
                    let addr = u(0)?;
                    let v = u(1)?;
                    mem.insert(addr, v);
                }
                Opcode::SpillStore => {
                    let v = u(0)?;
                    frame.store(inst.imm, v);
                }
                Opcode::SpillLoad => {
                    let v = frame.load(inst.imm).ok_or(Trap::UnwrittenSlot(inst.imm))?;
                    env.write(inst.defs[0].var, v);
                }
                Opcode::CmpEq => {
                    let v = (u(0)? == u(1)?) as i64;
                    env.write(inst.defs[0].var, v);
                }
                Opcode::CmpNe => {
                    let v = (u(0)? != u(1)?) as i64;
                    env.write(inst.defs[0].var, v);
                }
                Opcode::CmpLt => {
                    let v = (u(0)? < u(1)?) as i64;
                    env.write(inst.defs[0].var, v);
                }
                Opcode::CmpLe => {
                    let v = (u(0)? <= u(1)?) as i64;
                    env.write(inst.defs[0].var, v);
                }
                Opcode::Select | Opcode::PSel => {
                    let v = if u(0)? != 0 { u(1)? } else { u(2)? };
                    env.write(inst.defs[0].var, v);
                }
                Opcode::Call => {
                    let mut args = Vec::with_capacity(inst.uses.len());
                    for k in 0..inst.uses.len() {
                        args.push(u(k)?);
                    }
                    let callee = inst.callee.unwrap_or("");
                    let v = call_model(callee, &args);
                    if let Some(d) = inst.defs.first() {
                        env.write(d.var, v);
                    }
                }
                Opcode::Psi => {
                    let mut v = 0;
                    for pair in inst.uses.chunks(2) {
                        if read(&env, pair[0].var)? != 0 {
                            v = read(&env, pair[1].var)?;
                        }
                    }
                    env.write(inst.defs[0].var, v);
                }
                Opcode::Br => {
                    let c = u(0)?;
                    next = Some(if c != 0 {
                        inst.targets[0]
                    } else {
                        inst.targets[1]
                    });
                }
                Opcode::Jump => {
                    next = Some(inst.targets[0]);
                }
                Opcode::Ret => {
                    let mut outputs = Vec::with_capacity(inst.uses.len());
                    for k in 0..inst.uses.len() {
                        outputs.push(u(k)?);
                    }
                    tossa_trace::count(tossa_trace::Counter::InterpSteps, steps);
                    return Ok(ExecResult { outputs, steps });
                }
                Opcode::Phi => unreachable!("phis skipped above"),
            }
        }
        let Some(next_block) = next else {
            return Err(Trap::MissingTerminator(block));
        };
        // Edge transfer: evaluate the successor's φs in parallel. The
        // staging buffer (reads first, writes after) is reused across
        // iterations.
        updates.clear();
        for phi in f.phis(next_block) {
            let inst = f.inst(phi);
            let arg = inst.phi_arg_for(block).ok_or_else(|| {
                Trap::UndefinedVar(inst.defs[0].var, "phi missing pred".to_string())
            })?;
            updates.push((inst.defs[0].var, read(&env, arg.var)?));
            steps += 1;
            if steps > fuel {
                tossa_trace::count(tossa_trace::Counter::InterpSteps, steps);
                return Err(Trap::OutOfFuel);
            }
        }
        for &(d, v) in &updates {
            env.write(d, v);
        }
        block = next_block;
    }
}

/// Initial content of memory at `addr` — a fixed pseudo-random pattern so
/// loads of unwritten cells are deterministic but nontrivial.
pub fn default_mem(addr: i64) -> i64 {
    (addr ^ 0x5bd1_e995).wrapping_mul(0x2545_f491_4f6c_dd1d) >> 17
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::machine::Machine;

    #[test]
    fn arithmetic_and_inputs() {
        let mut fb = FunctionBuilder::new("t", Machine::dsp32());
        let ins = fb.inputs(&["a", "b"]);
        let s = fb.add("s", ins[0], ins[1]);
        let d = fb.mul("d", s, s);
        fb.ret(&[d]);
        let f = fb.finish();
        let r = run(&f, &[3, 4], 100).unwrap();
        assert_eq!(r.outputs, vec![49]);
    }

    #[test]
    fn loop_with_phi() {
        // sum 0..n via φ
        let mut fb = FunctionBuilder::new("sum", Machine::dsp32());
        let n = fb.inputs(&["n"])[0];
        let z = fb.make("z", 0);
        let head = fb.block("head");
        let body = fb.block("body");
        let exit = fb.block("exit");
        fb.jump(head);
        fb.switch_to(body);
        let i = fb.var("i");
        let acc = fb.var("acc");
        let i2 = fb.addi("i2", i, 1);
        let acc2 = fb.add("acc2", acc, i);
        fb.jump(head);
        fb.switch_to(head);
        let entry = fb.func().entry;
        let iphi = fb.phi("i", &[(entry, z), (body, i2)]);
        let accphi = fb.phi("acc", &[(entry, z), (body, acc2)]);
        let c = fb.cmplt("c", iphi, n);
        fb.br(c, body, exit);
        fb.switch_to(exit);
        fb.ret(&[accphi]);
        let mut f = fb.finish();
        f.rewrite_vars(|v| {
            if v == i {
                iphi
            } else if v == acc {
                accphi
            } else {
                v
            }
        });
        assert!(f.validate().is_ok(), "{:?}", f.validate());
        let r = run(&f, &[5], 1000).unwrap();
        assert_eq!(r.outputs, vec![10]); // 0+1+2+3+4
    }

    #[test]
    fn phis_evaluate_in_parallel() {
        // swap via φs: (x, y) = (y, x) each iteration.
        let text = "
func @swap {
entry:
  %a, %b, %n = input
  jump head
head:
  %x = phi [entry: %a], [body: %y]
  %y = phi [entry: %b], [body: %x]
  %i = phi [entry: %n], [body: %i2]
  %i2 = addi %i, -1
  %z = make 0
  %c2 = cmplt %z, %i
  br %c2, body, exit
body:
  jump head
exit:
  ret %x, %y
}";
        let f = crate::parse::parse_function(text, &Machine::dsp32()).unwrap();
        // one iteration: n = 1 -> swapped once
        let r = run(&f, &[7, 9, 1], 1000).unwrap();
        assert_eq!(r.outputs, vec![9, 7]);
        // two iterations: back to original
        let r = run(&f, &[7, 9, 2], 1000).unwrap();
        assert_eq!(r.outputs, vec![7, 9]);
    }

    #[test]
    fn memory_and_calls_are_deterministic() {
        let mut fb = FunctionBuilder::new("m", Machine::dsp32());
        let p = fb.inputs(&["p"])[0];
        let v = fb.load("v", p);
        let q = fb.autoadd("q", p, 1);
        let w = fb.load("w", q);
        let s = fb.add("s", v, w);
        fb.store(p, s);
        let v2 = fb.load("v2", p);
        let r = fb.call("r", "f", &[v2, s]);
        fb.ret(&[r]);
        let f = fb.finish();
        let r1 = run(&f, &[100], 100).unwrap();
        let r2 = run(&f, &[100], 100).unwrap();
        assert_eq!(r1.outputs, r2.outputs);
        let expected = {
            let v = default_mem(100);
            let w = default_mem(101);
            call_model("f", &[v.wrapping_add(w), v.wrapping_add(w)])
        };
        assert_eq!(r1.outputs, vec![expected]);
    }

    #[test]
    fn fuel_limits_infinite_loops() {
        let text = "func @inf {\nentry:\n  jump entry\n}";
        let f = crate::parse::parse_function(text, &Machine::dsp32()).unwrap();
        assert_eq!(run(&f, &[], 50), Err(Trap::OutOfFuel));
    }

    #[test]
    fn undefined_read_traps() {
        let text = "func @u {\nentry:\n  %y = mov %x\n  ret %y\n}";
        let f = crate::parse::parse_function(text, &Machine::dsp32()).unwrap();
        match run(&f, &[], 50) {
            Err(Trap::UndefinedVar(_, name)) => assert_eq!(name, "x"),
            other => panic!("expected undefined var, got {other:?}"),
        }
    }

    #[test]
    fn spill_slots_roundtrip_and_trap_when_unwritten() {
        let text = "
func @sp {
entry:
  %a = input
  spillst %a, 3
  %b = spillld 3
  ret %b
}";
        let f = crate::parse::parse_function(text, &Machine::dsp32()).unwrap();
        assert!(f.validate().is_ok(), "{:?}", f.validate());
        assert_eq!(run(&f, &[42], 50).unwrap().outputs, vec![42]);
        let bad = "func @sp {\nentry:\n  %b = spillld 7\n  ret %b\n}";
        let f2 = crate::parse::parse_function(bad, &Machine::dsp32()).unwrap();
        assert_eq!(run(&f2, &[], 50), Err(Trap::UnwrittenSlot(7)));
    }

    #[test]
    fn psi_takes_last_satisfied_guard() {
        let text = "
func @psi {
entry:
  %p1, %a1, %p2, %a2 = input
  %x = psi %p1 ? %a1, %p2 ? %a2
  ret %x
}";
        let f = crate::parse::parse_function(text, &Machine::dsp32()).unwrap();
        assert_eq!(run(&f, &[1, 10, 1, 20], 50).unwrap().outputs, vec![20]);
        assert_eq!(run(&f, &[1, 10, 0, 20], 50).unwrap().outputs, vec![10]);
        assert_eq!(run(&f, &[0, 10, 0, 20], 50).unwrap().outputs, vec![0]);
    }
}
