//! Ergonomic function construction.
//!
//! [`FunctionBuilder`] keeps a current insertion block and offers one
//! method per opcode, creating result variables on the fly:
//!
//! ```
//! use tossa_ir::builder::FunctionBuilder;
//! use tossa_ir::machine::Machine;
//!
//! let mut fb = FunctionBuilder::new("axpy", Machine::dsp32());
//! let (a, x) = {
//!     let ins = fb.inputs(&["a", "x"]);
//!     (ins[0], ins[1])
//! };
//! let y = fb.mul("y", a, x);
//! let z = fb.addi("z", y, 1);
//! fb.ret(&[z]);
//! let f = fb.finish();
//! assert!(f.validate().is_ok());
//! ```

use crate::function::Function;
use crate::ids::{Block, Inst, Var};
use crate::instr::{InstData, Operand};
use crate::machine::Machine;
use crate::opcode::Opcode;

/// Incremental builder for a [`Function`].
#[derive(Debug)]
pub struct FunctionBuilder {
    func: Function,
    current: Block,
}

impl FunctionBuilder {
    /// Starts a new function positioned at its entry block.
    pub fn new(name: impl Into<String>, machine: Machine) -> FunctionBuilder {
        let func = Function::new(name, machine);
        let current = func.entry;
        FunctionBuilder { func, current }
    }

    /// Finishes construction, returning the function.
    pub fn finish(self) -> Function {
        self.func
    }

    /// Read-only access to the function under construction.
    pub fn func(&self) -> &Function {
        &self.func
    }

    /// Mutable access to the function under construction (for pinning).
    pub fn func_mut(&mut self) -> &mut Function {
        &mut self.func
    }

    /// Creates a new block.
    pub fn block(&mut self, name: impl Into<String>) -> Block {
        self.func.add_block(name)
    }

    /// Moves the insertion point to `b`.
    pub fn switch_to(&mut self, b: Block) {
        self.current = b;
    }

    /// The current insertion block.
    pub fn current(&self) -> Block {
        self.current
    }

    /// Creates a fresh named variable without defining it.
    pub fn var(&mut self, name: &str) -> Var {
        self.func.new_var(name)
    }

    fn emit(&mut self, data: InstData) -> Inst {
        self.func.push_inst(self.current, data)
    }

    fn unary(&mut self, op: Opcode, name: &str, a: Var) -> Var {
        let d = self.func.new_var(name);
        self.emit(
            InstData::new(op)
                .with_defs(vec![d.into()])
                .with_uses(vec![a.into()]),
        );
        d
    }

    fn binary(&mut self, op: Opcode, name: &str, a: Var, b: Var) -> Var {
        let d = self.func.new_var(name);
        self.emit(
            InstData::new(op)
                .with_defs(vec![d.into()])
                .with_uses(vec![a.into(), b.into()]),
        );
        d
    }

    /// Emits the `input` pseudo-instruction defining the live-in
    /// variables, in ABI argument order.
    pub fn inputs(&mut self, names: &[&str]) -> Vec<Var> {
        let vars: Vec<Var> = names.iter().map(|n| self.func.new_var(*n)).collect();
        let defs: Vec<Operand> = vars.iter().map(|&v| v.into()).collect();
        self.emit(InstData::new(Opcode::Input).with_defs(defs));
        vars
    }

    /// `name = make imm`.
    pub fn make(&mut self, name: &str, imm: i64) -> Var {
        let d = self.func.new_var(name);
        self.emit(
            InstData::new(Opcode::Make)
                .with_defs(vec![d.into()])
                .with_imm(imm),
        );
        d
    }

    /// `name = more a, imm` (two-operand constant extension).
    pub fn more(&mut self, name: &str, a: Var, imm: i64) -> Var {
        let d = self.func.new_var(name);
        self.emit(
            InstData::new(Opcode::More)
                .with_defs(vec![d.into()])
                .with_uses(vec![a.into()])
                .with_imm(imm),
        );
        d
    }

    /// `name = mov a`.
    pub fn mov(&mut self, name: &str, a: Var) -> Var {
        let d = self.func.new_var(name);
        self.emit(InstData::mov(d, a));
        d
    }

    /// `name = add a, b`.
    pub fn add(&mut self, name: &str, a: Var, b: Var) -> Var {
        self.binary(Opcode::Add, name, a, b)
    }

    /// `name = sub a, b`.
    pub fn sub(&mut self, name: &str, a: Var, b: Var) -> Var {
        self.binary(Opcode::Sub, name, a, b)
    }

    /// `name = mul a, b`.
    pub fn mul(&mut self, name: &str, a: Var, b: Var) -> Var {
        self.binary(Opcode::Mul, name, a, b)
    }

    /// `name = and a, b`.
    pub fn and(&mut self, name: &str, a: Var, b: Var) -> Var {
        self.binary(Opcode::And, name, a, b)
    }

    /// `name = or a, b`.
    pub fn or(&mut self, name: &str, a: Var, b: Var) -> Var {
        self.binary(Opcode::Or, name, a, b)
    }

    /// `name = xor a, b`.
    pub fn xor(&mut self, name: &str, a: Var, b: Var) -> Var {
        self.binary(Opcode::Xor, name, a, b)
    }

    /// `name = shl a, b`.
    pub fn shl(&mut self, name: &str, a: Var, b: Var) -> Var {
        self.binary(Opcode::Shl, name, a, b)
    }

    /// `name = shr a, b`.
    pub fn shr(&mut self, name: &str, a: Var, b: Var) -> Var {
        self.binary(Opcode::Shr, name, a, b)
    }

    /// `name = neg a`.
    pub fn neg(&mut self, name: &str, a: Var) -> Var {
        self.unary(Opcode::Neg, name, a)
    }

    /// `name = not a`.
    pub fn not(&mut self, name: &str, a: Var) -> Var {
        self.unary(Opcode::Not, name, a)
    }

    /// `name = addi a, imm`.
    pub fn addi(&mut self, name: &str, a: Var, imm: i64) -> Var {
        let d = self.func.new_var(name);
        self.emit(
            InstData::new(Opcode::AddImm)
                .with_defs(vec![d.into()])
                .with_uses(vec![a.into()])
                .with_imm(imm),
        );
        d
    }

    /// `name = autoadd p, imm` (two-operand pointer auto-modification).
    pub fn autoadd(&mut self, name: &str, p: Var, imm: i64) -> Var {
        let d = self.func.new_var(name);
        self.emit(
            InstData::new(Opcode::AutoAdd)
                .with_defs(vec![d.into()])
                .with_uses(vec![p.into()])
                .with_imm(imm),
        );
        d
    }

    /// `name = load p`.
    pub fn load(&mut self, name: &str, p: Var) -> Var {
        self.unary(Opcode::Load, name, p)
    }

    /// `store p, v`.
    pub fn store(&mut self, p: Var, v: Var) {
        self.emit(InstData::new(Opcode::Store).with_uses(vec![p.into(), v.into()]));
    }

    /// `name = cmpeq a, b`.
    pub fn cmpeq(&mut self, name: &str, a: Var, b: Var) -> Var {
        self.binary(Opcode::CmpEq, name, a, b)
    }

    /// `name = cmpne a, b`.
    pub fn cmpne(&mut self, name: &str, a: Var, b: Var) -> Var {
        self.binary(Opcode::CmpNe, name, a, b)
    }

    /// `name = cmplt a, b`.
    pub fn cmplt(&mut self, name: &str, a: Var, b: Var) -> Var {
        self.binary(Opcode::CmpLt, name, a, b)
    }

    /// `name = cmple a, b`.
    pub fn cmple(&mut self, name: &str, a: Var, b: Var) -> Var {
        self.binary(Opcode::CmpLe, name, a, b)
    }

    /// `name = select c, a, b`.
    pub fn select(&mut self, name: &str, c: Var, a: Var, b: Var) -> Var {
        let d = self.func.new_var(name);
        self.emit(
            InstData::new(Opcode::Select)
                .with_defs(vec![d.into()])
                .with_uses(vec![c.into(), a.into(), b.into()]),
        );
        d
    }

    /// `name = call callee(args...)`.
    pub fn call(&mut self, name: &str, callee: &str, args: &[Var]) -> Var {
        let d = self.func.new_var(name);
        let mut inst = InstData::new(Opcode::Call)
            .with_defs(vec![d.into()])
            .with_uses(args.iter().map(|&a| a.into()).collect());
        inst.callee = Some(callee.to_string());
        self.emit(inst);
        d
    }

    /// A call used only for effect (no result).
    pub fn call_void(&mut self, callee: &str, args: &[Var]) {
        let mut inst =
            InstData::new(Opcode::Call).with_uses(args.iter().map(|&a| a.into()).collect());
        inst.callee = Some(callee.to_string());
        self.emit(inst);
    }

    /// `br c, then_block, else_block`.
    pub fn br(&mut self, c: Var, then_block: Block, else_block: Block) {
        self.emit(
            InstData::new(Opcode::Br)
                .with_uses(vec![c.into()])
                .with_targets(vec![then_block, else_block]),
        );
    }

    /// `jump target`.
    pub fn jump(&mut self, target: Block) {
        self.emit(InstData::new(Opcode::Jump).with_targets(vec![target]));
    }

    /// `ret values...`.
    pub fn ret(&mut self, values: &[Var]) {
        self.emit(InstData::new(Opcode::Ret).with_uses(values.iter().map(|&v| v.into()).collect()));
    }

    /// `name = φ(args...)`; args pair incoming blocks with values.
    pub fn phi(&mut self, name: &str, args: &[(Block, Var)]) -> Var {
        let d = self.func.new_var(name);
        let inst = InstData::phi(d, args.to_vec());
        // φs must lead their block: insert after existing φs.
        let pos = self.func.first_non_phi(self.current);
        self.func.insert_inst(self.current, pos, inst);
        d
    }

    /// `name = ψ(p1?a1, p2?a2, ...)`.
    pub fn psi(&mut self, name: &str, guarded: &[(Var, Var)]) -> Var {
        let d = self.func.new_var(name);
        let mut uses = Vec::with_capacity(guarded.len() * 2);
        for &(p, a) in guarded {
            uses.push(p.into());
            uses.push(a.into());
        }
        self.emit(
            InstData::new(Opcode::Psi)
                .with_defs(vec![d.into()])
                .with_uses(uses),
        );
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_a_loop() {
        let mut fb = FunctionBuilder::new("count", Machine::dsp32());
        let n = fb.inputs(&["n"])[0];
        let zero = fb.make("zero", 0);
        let head = fb.block("head");
        let body = fb.block("body");
        let exit = fb.block("exit");
        fb.jump(head);

        fb.switch_to(head);
        let i = fb.var("i");
        let c = fb.cmplt("c", i, n);
        fb.br(c, body, exit);

        fb.switch_to(body);
        let i2 = fb.addi("i2", i, 1);
        fb.jump(head);

        // Now that i2 exists, place the φ — phi() inserts at block head.
        fb.switch_to(head);
        let entry = fb.func().entry;
        let iphi = fb.phi("i", &[(entry, zero), (body, i2)]);
        fb.func_mut()
            .rewrite_vars(|v| if v == i { iphi } else { v });

        fb.switch_to(exit);
        fb.ret(&[iphi]);
        let f = fb.finish();
        assert!(f.validate().is_ok(), "{:?}", f.validate());
        assert_eq!(f.phis(head).count(), 1);
    }

    #[test]
    fn straightline_ops() {
        let mut fb = FunctionBuilder::new("ops", Machine::dsp32());
        let ins = fb.inputs(&["a", "b"]);
        let (a, b) = (ins[0], ins[1]);
        let s = fb.add("s", a, b);
        let d = fb.sub("d", s, b);
        let m = fb.mul("m", d, d);
        let k = fb.make("k", 10);
        let x = fb.xor("x", m, k);
        let sl = fb.shl("sl", x, k);
        let c = fb.cmple("c", sl, a);
        let sel = fb.select("sel", c, sl, a);
        let r = fb.call("r", "helper", &[sel]);
        fb.ret(&[r]);
        let f = fb.finish();
        assert!(f.validate().is_ok(), "{:?}", f.validate());
        assert_eq!(f.block_insts(f.entry).count(), 11);
    }

    #[test]
    fn phi_goes_before_non_phis() {
        let mut fb = FunctionBuilder::new("p", Machine::dsp32());
        let a = fb.make("a", 1);
        let merge = fb.block("m");
        fb.jump(merge);
        fb.switch_to(merge);
        fb.ret(&[a]);
        let entry = fb.func().entry;
        fb.phi("x", &[(entry, a)]);
        let f = fb.finish();
        let first = f.block_insts(merge).next().unwrap();
        assert!(f.inst(first).is_phi());
    }
}
