//! Instruction opcodes of the linear IR.
//!
//! The opcode set is a compact model of a DSP instruction set (see
//! [`crate::machine`]): scalar ALU operations, constant builders
//! (`make`/`more`, the ST120-style 16+16-bit immediate pair of paper
//! Fig. 1), memory accesses with pointer auto-modification (`autoadd`),
//! calls, predication (`select`), and the SSA pseudo-instructions `phi`
//! and `psi`.

use std::fmt;

/// An instruction opcode.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Opcode {
    /// Pseudo-instruction defining the function's live-in variables
    /// (paper's `.input`). Must be the first instruction of the entry
    /// block. Defs are pinned to ABI registers by the collect phase.
    Input,
    /// Register-to-register copy.
    Mov,
    /// Load a 16-bit-style immediate: `def = imm` (paper's `make`).
    Make,
    /// Two-operand immediate extension: `def = (use << 16) | imm`
    /// (paper's `more`); the def must reuse the resource of the use.
    More,
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Left shift (amount masked to 0..63).
    Shl,
    /// Arithmetic right shift (amount masked to 0..63).
    Shr,
    /// Negation.
    Neg,
    /// Bitwise not.
    Not,
    /// Add immediate: `def = use + imm`.
    AddImm,
    /// Pointer auto-modification: `def = use + imm`, two-operand
    /// constrained (paper's `autoadd`, Fig. 1 statement `S1`).
    AutoAdd,
    /// Memory load: `def = mem[use]`.
    Load,
    /// Memory store: `mem[use0] = use1`.
    Store,
    /// Equality comparison producing 0/1.
    CmpEq,
    /// Inequality comparison producing 0/1.
    CmpNe,
    /// Signed less-than comparison producing 0/1.
    CmpLt,
    /// Signed less-or-equal comparison producing 0/1.
    CmpLe,
    /// Predicated selection: `def = use0 != 0 ? use1 : use2`.
    Select,
    /// Predicated move produced by ψ-SSA lowering: same semantics as
    /// `select`, but the definition is two-operand constrained to reuse
    /// the resource of `use2` (the "else" value): the hardware form is
    /// `def = use2; if (use0) def = use1` (paper §5, ψ-conventional SSA).
    PSel,
    /// Spill store: `stack[imm] = use0`. Written by the register
    /// allocator when a value's live range is evicted to the function's
    /// spill frame; `imm` is the stack-slot index.
    SpillStore,
    /// Spill reload: `def = stack[imm]`. The counterpart of
    /// [`Opcode::SpillStore`]; reading a slot no store has written is a
    /// trap ([`crate::interp::Trap::UnwrittenSlot`]).
    SpillLoad,
    /// Function call: `defs = callee(uses)`. Operands are pinned to ABI
    /// registers by the collect phase.
    Call,
    /// Conditional branch on `use0 != 0` to `targets[0]`, else
    /// `targets\[1\]`.
    Br,
    /// Unconditional jump to `targets[0]`.
    Jump,
    /// Function return (paper's `.output`); uses are the returned values,
    /// pinned to ABI registers by the collect phase.
    Ret,
    /// SSA φ pseudo-instruction: merges values at a confluence point.
    /// `uses[i]` flows in from `phi_preds[i]`.
    Phi,
    /// ψ-SSA pseudo-instruction for predicated code (paper §5, \[13\]):
    /// uses are `[p1, a1, p2, a2, ...]`; the value is the last `ai` whose
    /// guard `pi` is true, or 0 when none is.
    Psi,
}

impl Opcode {
    /// Whether this is the SSA φ pseudo-instruction.
    pub fn is_phi(self) -> bool {
        self == Opcode::Phi
    }

    /// Whether this is the ψ-SSA pseudo-instruction.
    pub fn is_psi(self) -> bool {
        self == Opcode::Psi
    }

    /// Whether this is a register-to-register copy.
    pub fn is_move(self) -> bool {
        self == Opcode::Mov
    }

    /// Whether this instruction ends a basic block.
    pub fn is_terminator(self) -> bool {
        matches!(self, Opcode::Br | Opcode::Jump | Opcode::Ret)
    }

    /// Whether this is a call.
    pub fn is_call(self) -> bool {
        self == Opcode::Call
    }

    /// Whether the instruction has effects beyond its defs, so dead-code
    /// elimination must keep it even when the defs are unused.
    pub fn has_side_effects(self) -> bool {
        matches!(
            self,
            Opcode::Store
                | Opcode::SpillStore
                | Opcode::Call
                | Opcode::Ret
                | Opcode::Br
                | Opcode::Jump
                | Opcode::Input
        )
    }

    /// Whether this is a two-operand instruction whose definition is
    /// constrained to reuse the resource of one of its uses (paper §2.1).
    /// The constrained use is [`Opcode::tied_use`].
    pub fn is_two_operand(self) -> bool {
        matches!(self, Opcode::More | Opcode::AutoAdd | Opcode::PSel)
    }

    /// For two-operand instructions: the index of the use whose resource
    /// the definition must reuse.
    pub fn tied_use(self) -> Option<usize> {
        match self {
            Opcode::More | Opcode::AutoAdd => Some(0),
            Opcode::PSel => Some(2),
            _ => None,
        }
    }

    /// The assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Opcode::Input => "input",
            Opcode::Mov => "mov",
            Opcode::Make => "make",
            Opcode::More => "more",
            Opcode::Add => "add",
            Opcode::Sub => "sub",
            Opcode::Mul => "mul",
            Opcode::And => "and",
            Opcode::Or => "or",
            Opcode::Xor => "xor",
            Opcode::Shl => "shl",
            Opcode::Shr => "shr",
            Opcode::Neg => "neg",
            Opcode::Not => "not",
            Opcode::AddImm => "addi",
            Opcode::AutoAdd => "autoadd",
            Opcode::Load => "load",
            Opcode::Store => "store",
            Opcode::CmpEq => "cmpeq",
            Opcode::CmpNe => "cmpne",
            Opcode::CmpLt => "cmplt",
            Opcode::CmpLe => "cmple",
            Opcode::Select => "select",
            Opcode::PSel => "psel",
            Opcode::SpillStore => "spillst",
            Opcode::SpillLoad => "spillld",
            Opcode::Call => "call",
            Opcode::Br => "br",
            Opcode::Jump => "jump",
            Opcode::Ret => "ret",
            Opcode::Phi => "phi",
            Opcode::Psi => "psi",
        }
    }

    /// Parses a mnemonic back into an opcode.
    pub fn from_mnemonic(s: &str) -> Option<Opcode> {
        Some(match s {
            "input" => Opcode::Input,
            "mov" => Opcode::Mov,
            "make" => Opcode::Make,
            "more" => Opcode::More,
            "add" => Opcode::Add,
            "sub" => Opcode::Sub,
            "mul" => Opcode::Mul,
            "and" => Opcode::And,
            "or" => Opcode::Or,
            "xor" => Opcode::Xor,
            "shl" => Opcode::Shl,
            "shr" => Opcode::Shr,
            "neg" => Opcode::Neg,
            "not" => Opcode::Not,
            "addi" => Opcode::AddImm,
            "autoadd" => Opcode::AutoAdd,
            "load" => Opcode::Load,
            "store" => Opcode::Store,
            "cmpeq" => Opcode::CmpEq,
            "cmpne" => Opcode::CmpNe,
            "cmplt" => Opcode::CmpLt,
            "cmple" => Opcode::CmpLe,
            "select" => Opcode::Select,
            "psel" => Opcode::PSel,
            "spillst" => Opcode::SpillStore,
            "spillld" => Opcode::SpillLoad,
            "call" => Opcode::Call,
            "br" => Opcode::Br,
            "jump" => Opcode::Jump,
            "ret" => Opcode::Ret,
            "phi" => Opcode::Phi,
            "psi" => Opcode::Psi,
            _ => return None,
        })
    }

    /// All opcodes, for exhaustive table-driven tests.
    pub fn all() -> &'static [Opcode] {
        &[
            Opcode::Input,
            Opcode::Mov,
            Opcode::Make,
            Opcode::More,
            Opcode::Add,
            Opcode::Sub,
            Opcode::Mul,
            Opcode::And,
            Opcode::Or,
            Opcode::Xor,
            Opcode::Shl,
            Opcode::Shr,
            Opcode::Neg,
            Opcode::Not,
            Opcode::AddImm,
            Opcode::AutoAdd,
            Opcode::Load,
            Opcode::Store,
            Opcode::CmpEq,
            Opcode::CmpNe,
            Opcode::CmpLt,
            Opcode::CmpLe,
            Opcode::Select,
            Opcode::PSel,
            Opcode::SpillStore,
            Opcode::SpillLoad,
            Opcode::Call,
            Opcode::Br,
            Opcode::Jump,
            Opcode::Ret,
            Opcode::Phi,
            Opcode::Psi,
        ]
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mnemonic_roundtrip() {
        for &op in Opcode::all() {
            assert_eq!(Opcode::from_mnemonic(op.mnemonic()), Some(op), "{op:?}");
        }
        assert_eq!(Opcode::from_mnemonic("frobnicate"), None);
    }

    #[test]
    fn classification() {
        assert!(Opcode::Br.is_terminator());
        assert!(Opcode::Jump.is_terminator());
        assert!(Opcode::Ret.is_terminator());
        assert!(!Opcode::Add.is_terminator());
        assert!(Opcode::Mov.is_move());
        assert!(Opcode::More.is_two_operand());
        assert!(Opcode::AutoAdd.is_two_operand());
        assert!(!Opcode::AddImm.is_two_operand());
        assert!(Opcode::Store.has_side_effects());
        assert!(!Opcode::Load.has_side_effects());
        assert!(Opcode::SpillStore.has_side_effects());
        assert!(!Opcode::SpillLoad.has_side_effects());
        assert!(!Opcode::SpillStore.is_two_operand());
        assert!(Opcode::Phi.is_phi() && !Opcode::Phi.is_terminator());
    }
}
