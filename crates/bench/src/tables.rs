//! Regeneration of the paper's Tables 2–5 (plus the Table 1 header) and
//! a post-allocation Table 6 this reproduction adds.
//!
//! Each table function runs the required experiments over the suites and
//! renders rows in the paper's format: the first experiment column is an
//! absolute count, subsequent columns are signed deltas relative to it.

use crate::runner::{run_suite, run_suite_each_allocated_with, run_suite_matrix, SuiteResult};
use crate::suites::Suite;
use std::fmt::Write as _;
use tossa_core::coalesce::CoalesceOptions;
use tossa_core::interfere::InterferenceMode;
use tossa_core::Experiment;
use tossa_regalloc::AllocOptions;
use tossa_trace::json::{parse_json, Json};

fn delta(base: i64, value: i64) -> String {
    let d = value - base;
    if d >= 0 {
        format!("+{d}")
    } else {
        format!("{d}")
    }
}

/// Renders Table 1: the experiment ↔ pass matrix.
pub fn table1() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 1. Details of implemented versions\n\
         {:<14} {:^8} {:^11} {:^9} {:^10} {:^8} {:^18} {:^8} {:^10}",
        "Experiment",
        "Sreedhar",
        "pinningCSSA",
        "pinningSP",
        "pinningABI",
        "pinningPhi",
        "out-of-pinned-SSA",
        "NaiveABI",
        "Coalescing"
    );
    for &e in Experiment::all() {
        let p = e.passes();
        let b = |x: bool| if x { "*" } else { " " };
        let _ = writeln!(
            out,
            "{:<14} {:^8} {:^11} {:^9} {:^10} {:^8} {:^18} {:^8} {:^10}",
            e.label(),
            b(p.sreedhar),
            b(p.pinning_cssa),
            b(p.pinning_sp),
            b(p.pinning_abi),
            b(p.pinning_phi),
            b(p.out_of_pinned_ssa),
            b(p.naive_abi),
            b(p.coalescing)
        );
    }
    out
}

fn run_columns(
    suites: &[Suite],
    experiments: &[Experiment],
    verify: bool,
    alloc: bool,
) -> Vec<(String, Vec<SuiteResult>)> {
    let opts = CoalesceOptions::default();
    suites
        .iter()
        .map(|s| {
            (
                s.name.to_string(),
                run_suite_matrix(s, experiments, &opts, verify, alloc),
            )
        })
        .collect()
}

fn render_move_table(
    title: &str,
    suites: &[Suite],
    experiments: &[Experiment],
    verify: bool,
) -> String {
    let rows = run_columns(suites, experiments, verify, false);
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let mut header = format!("{:<12}", "benchmark");
    for e in experiments {
        let _ = write!(header, " {:>12}", e.label());
    }
    let _ = writeln!(out, "{header}");
    for (name, results) in rows {
        let base = results[0].moves as i64;
        let mut line = format!("{name:<12} {base:>12}");
        for r in &results[1..] {
            let _ = write!(line, " {:>12}", delta(base, r.moves as i64));
        }
        let _ = writeln!(out, "{line}");
    }
    out
}

/// Table 2: move counts with no ABI constraints.
pub fn table2(suites: &[Suite], verify: bool) -> String {
    render_move_table(
        "Table 2. Comparison of move instruction count with no ABI constraint.",
        suites,
        &[Experiment::LphiC, Experiment::CNoAbi, Experiment::SphiC],
        verify,
    )
}

/// Table 3: move counts with renaming constraints.
pub fn table3(suites: &[Suite], verify: bool) -> String {
    render_move_table(
        "Table 3. Comparison of move instruction count with renaming constraints.",
        suites,
        &[
            Experiment::LphiAbiC,
            Experiment::SphiLabiC,
            Experiment::LabiC,
            Experiment::CAbi,
        ],
        verify,
    )
}

/// Table 4: order of magnitude — residual moves with no coalescing
/// (`Lφ,ABI` vs naive φ replacement `Sφ` vs naive ABI handling `LABI`).
pub fn table4(suites: &[Suite], verify: bool) -> String {
    render_move_table(
        "Table 4. Order of magnitude (moves left for a post-SSA coalescer).",
        suites,
        &[Experiment::LphiAbi, Experiment::Sphi, Experiment::Labi],
        verify,
    )
}

/// Table 6 (this reproduction's addition): end-to-end spill+move cost
/// after register allocation on the DSP32 model. Per experiment column,
/// the value is `stores + reloads + moves_after` — the instructions the
/// allocated code actually pays for φ/ABI copies plus register pressure.
/// First column absolute, subsequent columns signed deltas, as in the
/// paper's tables.
pub fn table6(suites: &[Suite], verify: bool) -> String {
    let experiments = &[
        Experiment::LphiAbiC,
        Experiment::SphiLabiC,
        Experiment::LabiC,
        Experiment::CAbi,
    ];
    let rows = run_columns(suites, experiments, verify, true);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 6. Post-allocation spill+move count (stores + reloads + surviving moves)."
    );
    let mut header = format!("{:<12}", "benchmark");
    for e in experiments {
        let _ = write!(header, " {:>12}", e.label());
    }
    let _ = writeln!(out, "{header}");
    for (name, results) in rows {
        let totals: Vec<i64> = results
            .iter()
            .map(|r| r.alloc.as_ref().map_or(0, |a| a.spill_move_total()) as i64)
            .collect();
        let base = totals[0];
        let mut line = format!("{name:<12} {base:>12}");
        for &t in &totals[1..] {
            let _ = write!(line, " {:>12}", delta(base, t));
        }
        let _ = writeln!(out, "{line}");
    }
    out
}

/// The experiment columns of Table 6, in the paper's order.
pub const TABLE6_EXPERIMENTS: [Experiment; 4] = [
    Experiment::LphiAbiC,
    Experiment::SphiLabiC,
    Experiment::LabiC,
    Experiment::CAbi,
];

/// Per-suite, per-experiment post-allocation spill+move totals for the
/// Table 6 experiment set, run under an explicit allocator configuration
/// (the printed [`table6`] always uses the default policy). This is the
/// source for the CI spill-regression gate: the baseline side is
/// generated once with `SpillPolicy::Everywhere` (the PR 4 allocator)
/// and checked in; the fresh side runs the current default.
pub fn table6_totals(
    suites: &[Suite],
    verify: bool,
    alloc_opts: &AllocOptions,
) -> Vec<(String, Vec<(&'static str, u64)>)> {
    let opts = CoalesceOptions::default();
    suites
        .iter()
        .map(|s| {
            let cols = TABLE6_EXPERIMENTS
                .iter()
                .map(|&exp| {
                    let total: usize =
                        run_suite_each_allocated_with(s, exp, &opts, alloc_opts, verify)
                            .iter()
                            .map(|r| r.alloc.as_ref().map_or(0, |a| a.spill_move_total()))
                            .sum();
                    (exp.label(), total as u64)
                })
                .collect();
            (s.name.to_string(), cols)
        })
        .collect()
}

/// Renders [`table6_totals`] output as the checked-in baseline document
/// (`tables table6 --write-baseline FILE`).
pub fn table6_baseline_json(
    spec_scale: usize,
    policy: &str,
    totals: &[(String, Vec<(&'static str, u64)>)],
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema\": \"tossa-table6-baseline/1\",");
    let _ = writeln!(out, "  \"policy\": \"{policy}\",");
    let _ = writeln!(out, "  \"spec_scale\": {spec_scale},");
    let _ = writeln!(out, "  \"suites\": [");
    for (i, (suite, cols)) in totals.iter().enumerate() {
        let cells: Vec<String> = cols
            .iter()
            .map(|(label, v)| format!("\"{label}\": {v}"))
            .collect();
        let comma = if i + 1 < totals.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{ \"suite\": \"{suite}\", \"totals\": {{ {} }} }}{comma}",
            cells.join(", ")
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

/// Compares fresh Table 6 totals against a checked-in baseline document.
/// Returns the per-cell report on success; the list of regressed or
/// structurally missing cells on failure. The gate is one-sided: a fresh
/// total may only *meet or beat* the baseline — the whole point of the
/// cost-driven spiller is that the PR 4 numbers are a ceiling.
///
/// # Errors
/// The `Err` list names every cell whose fresh total exceeds the
/// baseline, plus any baseline cell the fresh run no longer produces.
pub fn table6_gate(
    baseline_text: &str,
    fresh_spec: usize,
    totals: &[(String, Vec<(&'static str, u64)>)],
) -> Result<String, Vec<String>> {
    let doc = match parse_json(baseline_text) {
        Ok(d) => d,
        Err(e) => return Err(vec![format!("baseline does not parse: {e}")]),
    };
    let mut failures = Vec::new();
    if doc.get("schema").and_then(Json::as_str) != Some("tossa-table6-baseline/1") {
        failures.push("baseline is not a tossa-table6-baseline/1 document".into());
    }
    let recorded_spec = doc
        .get("spec_scale")
        .and_then(Json::as_u64)
        .unwrap_or(u64::MAX) as usize;
    if recorded_spec != fresh_spec {
        failures.push(format!(
            "spec-scale mismatch: baseline recorded {recorded_spec}, fresh run used {fresh_spec} \
             — totals are only comparable at the same synthetic-population scale"
        ));
    }
    if !failures.is_empty() {
        return Err(failures);
    }
    let mut report = String::new();
    for s in doc.get("suites").and_then(Json::as_arr).unwrap_or_default() {
        let suite = s.get("suite").and_then(Json::as_str).unwrap_or("?");
        let Some((_, fresh_cols)) = totals.iter().find(|(name, _)| name == suite) else {
            failures.push(format!("{suite}: suite missing from the fresh run"));
            continue;
        };
        let base_cols = s.get("totals").and_then(Json::as_obj).unwrap_or_default();
        for (label, base) in base_cols {
            let Some(base) = base.as_u64() else { continue };
            match fresh_cols.iter().find(|(l, _)| l == label) {
                Some(&(_, fresh)) if fresh <= base => {
                    let _ = writeln!(
                        report,
                        "  {suite}/{label}: {fresh} <= baseline {base} ({})",
                        if fresh < base { "improved" } else { "held" }
                    );
                }
                Some(&(_, fresh)) => failures.push(format!(
                    "{suite}/{label}: spill+move total {fresh} exceeds the PR4 baseline {base}"
                )),
                None => failures.push(format!(
                    "{suite}/{label}: experiment missing from the fresh run"
                )),
            }
        }
    }
    if failures.is_empty() {
        Ok(report)
    } else {
        Err(failures)
    }
}

/// Table 5: weighted (`5^depth`) move counts for the coalescer variants
/// `base`, `depth`, `opt`, `pess` (all on `Lφ,ABI`).
pub fn table5(suites: &[Suite], verify: bool) -> String {
    let variants: [(&str, CoalesceOptions); 5] = [
        ("base", CoalesceOptions::default()),
        (
            "depth",
            CoalesceOptions {
                depth_priority: true,
                ..Default::default()
            },
        ),
        (
            "opt",
            CoalesceOptions {
                mode: InterferenceMode::Optimistic,
                ..Default::default()
            },
        ),
        (
            "pess",
            CoalesceOptions {
                mode: InterferenceMode::Pessimistic,
                ..Default::default()
            },
        ),
        // Ablation of this implementation's gain refinement: the paper's
        // literal gain definition counts already-killed arguments too.
        (
            "paper-gain",
            CoalesceOptions {
                refine_gain: false,
                ..Default::default()
            },
        ),
    ];
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 5. Weighted count of move instructions on variants of our algorithm."
    );
    let mut header = format!("{:<12}", "benchmark");
    for (name, _) in &variants {
        let _ = write!(header, " {:>10}", name);
    }
    let _ = writeln!(out, "{header}");
    for suite in suites {
        let results: Vec<u64> = variants
            .iter()
            .map(|(_, opts)| run_suite(suite, Experiment::LphiAbi, opts, verify).weighted)
            .collect();
        let base = results[0] as i64;
        let mut line = format!("{:<12} {:>10}", suite.name, base);
        for &r in &results[1..] {
            let _ = write!(line, " {:>10}", delta(base, r as i64));
        }
        let _ = writeln!(out, "{line}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suites;

    fn small_suites() -> Vec<Suite> {
        vec![Suite {
            name: "example1-8",
            functions: suites::paper_examples::examples(),
        }]
    }

    #[test]
    fn table1_lists_all_experiments() {
        let t = table1();
        for &e in Experiment::all() {
            assert!(t.contains(e.label()), "{t}");
        }
    }

    #[test]
    fn table2_renders_with_deltas() {
        let t = table2(&small_suites(), true);
        assert!(t.contains("example1-8"), "{t}");
        assert!(t.contains("Lphi+C"), "{t}");
        // Delta columns carry a sign.
        assert!(t.contains('+') || t.contains('-'), "{t}");
    }

    #[test]
    fn table6_reports_post_allocation_totals() {
        let t = table6(&small_suites(), true);
        assert!(t.contains("example1-8"), "{t}");
        assert!(t.contains("spill+move"), "{t}");
    }

    #[test]
    fn table6_gate_holds_and_catches_regressions() {
        let suites = small_suites();
        let totals = table6_totals(&suites, true, &AllocOptions::default());
        assert!(totals[0].1.iter().all(|&(_, v)| v > 0), "{totals:?}");
        let baseline = table6_baseline_json(2, "cost-driven", &totals);
        table6_gate(&baseline, 2, &totals).expect("self-comparison is clean");
        // A mismatched synthetic-population scale is not comparable.
        table6_gate(&baseline, 3, &totals).expect_err("spec mismatch must fail");
        // Tighten every cell below the fresh totals: the gate must name
        // the regressed cells.
        let (label, v) = totals[0].1[0];
        let doctored = baseline.replace(
            &format!("\"{label}\": {v}"),
            &format!("\"{label}\": {}", v - 1),
        );
        let failures = table6_gate(&doctored, 2, &totals).expect_err("regression must fail");
        assert!(
            failures
                .iter()
                .any(|f| f.contains("exceeds the PR4 baseline")),
            "{failures:?}"
        );
    }

    #[test]
    fn table5_runs_all_variants() {
        let t = table5(&small_suites(), true);
        for v in ["base", "depth", "opt", "pess", "paper-gain"] {
            assert!(t.contains(v), "{t}");
        }
    }
}
