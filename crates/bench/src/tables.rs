//! Regeneration of the paper's Tables 2–5 (plus the Table 1 header) and
//! a post-allocation Table 6 this reproduction adds.
//!
//! Each table function runs the required experiments over the suites and
//! renders rows in the paper's format: the first experiment column is an
//! absolute count, subsequent columns are signed deltas relative to it.

use crate::runner::{run_suite, run_suite_matrix, SuiteResult};
use crate::suites::Suite;
use std::fmt::Write as _;
use tossa_core::coalesce::CoalesceOptions;
use tossa_core::interfere::InterferenceMode;
use tossa_core::Experiment;

fn delta(base: i64, value: i64) -> String {
    let d = value - base;
    if d >= 0 {
        format!("+{d}")
    } else {
        format!("{d}")
    }
}

/// Renders Table 1: the experiment ↔ pass matrix.
pub fn table1() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 1. Details of implemented versions\n\
         {:<14} {:^8} {:^11} {:^9} {:^10} {:^8} {:^18} {:^8} {:^10}",
        "Experiment",
        "Sreedhar",
        "pinningCSSA",
        "pinningSP",
        "pinningABI",
        "pinningPhi",
        "out-of-pinned-SSA",
        "NaiveABI",
        "Coalescing"
    );
    for &e in Experiment::all() {
        let p = e.passes();
        let b = |x: bool| if x { "*" } else { " " };
        let _ = writeln!(
            out,
            "{:<14} {:^8} {:^11} {:^9} {:^10} {:^8} {:^18} {:^8} {:^10}",
            e.label(),
            b(p.sreedhar),
            b(p.pinning_cssa),
            b(p.pinning_sp),
            b(p.pinning_abi),
            b(p.pinning_phi),
            b(p.out_of_pinned_ssa),
            b(p.naive_abi),
            b(p.coalescing)
        );
    }
    out
}

fn run_columns(
    suites: &[Suite],
    experiments: &[Experiment],
    verify: bool,
    alloc: bool,
) -> Vec<(String, Vec<SuiteResult>)> {
    let opts = CoalesceOptions::default();
    suites
        .iter()
        .map(|s| {
            (
                s.name.to_string(),
                run_suite_matrix(s, experiments, &opts, verify, alloc),
            )
        })
        .collect()
}

fn render_move_table(
    title: &str,
    suites: &[Suite],
    experiments: &[Experiment],
    verify: bool,
) -> String {
    let rows = run_columns(suites, experiments, verify, false);
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let mut header = format!("{:<12}", "benchmark");
    for e in experiments {
        let _ = write!(header, " {:>12}", e.label());
    }
    let _ = writeln!(out, "{header}");
    for (name, results) in rows {
        let base = results[0].moves as i64;
        let mut line = format!("{name:<12} {base:>12}");
        for r in &results[1..] {
            let _ = write!(line, " {:>12}", delta(base, r.moves as i64));
        }
        let _ = writeln!(out, "{line}");
    }
    out
}

/// Table 2: move counts with no ABI constraints.
pub fn table2(suites: &[Suite], verify: bool) -> String {
    render_move_table(
        "Table 2. Comparison of move instruction count with no ABI constraint.",
        suites,
        &[Experiment::LphiC, Experiment::CNoAbi, Experiment::SphiC],
        verify,
    )
}

/// Table 3: move counts with renaming constraints.
pub fn table3(suites: &[Suite], verify: bool) -> String {
    render_move_table(
        "Table 3. Comparison of move instruction count with renaming constraints.",
        suites,
        &[
            Experiment::LphiAbiC,
            Experiment::SphiLabiC,
            Experiment::LabiC,
            Experiment::CAbi,
        ],
        verify,
    )
}

/// Table 4: order of magnitude — residual moves with no coalescing
/// (`Lφ,ABI` vs naive φ replacement `Sφ` vs naive ABI handling `LABI`).
pub fn table4(suites: &[Suite], verify: bool) -> String {
    render_move_table(
        "Table 4. Order of magnitude (moves left for a post-SSA coalescer).",
        suites,
        &[Experiment::LphiAbi, Experiment::Sphi, Experiment::Labi],
        verify,
    )
}

/// Table 6 (this reproduction's addition): end-to-end spill+move cost
/// after register allocation on the DSP32 model. Per experiment column,
/// the value is `stores + reloads + moves_after` — the instructions the
/// allocated code actually pays for φ/ABI copies plus register pressure.
/// First column absolute, subsequent columns signed deltas, as in the
/// paper's tables.
pub fn table6(suites: &[Suite], verify: bool) -> String {
    let experiments = &[
        Experiment::LphiAbiC,
        Experiment::SphiLabiC,
        Experiment::LabiC,
        Experiment::CAbi,
    ];
    let rows = run_columns(suites, experiments, verify, true);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 6. Post-allocation spill+move count (stores + reloads + surviving moves)."
    );
    let mut header = format!("{:<12}", "benchmark");
    for e in experiments {
        let _ = write!(header, " {:>12}", e.label());
    }
    let _ = writeln!(out, "{header}");
    for (name, results) in rows {
        let totals: Vec<i64> = results
            .iter()
            .map(|r| r.alloc.as_ref().map_or(0, |a| a.spill_move_total()) as i64)
            .collect();
        let base = totals[0];
        let mut line = format!("{name:<12} {base:>12}");
        for &t in &totals[1..] {
            let _ = write!(line, " {:>12}", delta(base, t));
        }
        let _ = writeln!(out, "{line}");
    }
    out
}

/// Table 5: weighted (`5^depth`) move counts for the coalescer variants
/// `base`, `depth`, `opt`, `pess` (all on `Lφ,ABI`).
pub fn table5(suites: &[Suite], verify: bool) -> String {
    let variants: [(&str, CoalesceOptions); 5] = [
        ("base", CoalesceOptions::default()),
        (
            "depth",
            CoalesceOptions {
                depth_priority: true,
                ..Default::default()
            },
        ),
        (
            "opt",
            CoalesceOptions {
                mode: InterferenceMode::Optimistic,
                ..Default::default()
            },
        ),
        (
            "pess",
            CoalesceOptions {
                mode: InterferenceMode::Pessimistic,
                ..Default::default()
            },
        ),
        // Ablation of this implementation's gain refinement: the paper's
        // literal gain definition counts already-killed arguments too.
        (
            "paper-gain",
            CoalesceOptions {
                refine_gain: false,
                ..Default::default()
            },
        ),
    ];
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 5. Weighted count of move instructions on variants of our algorithm."
    );
    let mut header = format!("{:<12}", "benchmark");
    for (name, _) in &variants {
        let _ = write!(header, " {:>10}", name);
    }
    let _ = writeln!(out, "{header}");
    for suite in suites {
        let results: Vec<u64> = variants
            .iter()
            .map(|(_, opts)| run_suite(suite, Experiment::LphiAbi, opts, verify).weighted)
            .collect();
        let base = results[0] as i64;
        let mut line = format!("{:<12} {:>10}", suite.name, base);
        for &r in &results[1..] {
            let _ = write!(line, " {:>10}", delta(base, r as i64));
        }
        let _ = writeln!(out, "{line}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suites;

    fn small_suites() -> Vec<Suite> {
        vec![Suite {
            name: "example1-8",
            functions: suites::paper_examples::examples(),
        }]
    }

    #[test]
    fn table1_lists_all_experiments() {
        let t = table1();
        for &e in Experiment::all() {
            assert!(t.contains(e.label()), "{t}");
        }
    }

    #[test]
    fn table2_renders_with_deltas() {
        let t = table2(&small_suites(), true);
        assert!(t.contains("example1-8"), "{t}");
        assert!(t.contains("Lphi+C"), "{t}");
        // Delta columns carry a sign.
        assert!(t.contains('+') || t.contains('-'), "{t}");
    }

    #[test]
    fn table6_reports_post_allocation_totals() {
        let t = table6(&small_suites(), true);
        assert!(t.contains("example1-8"), "{t}");
        assert!(t.contains("spill+move"), "{t}");
    }

    #[test]
    fn table5_runs_all_variants() {
        let t = table5(&small_suites(), true);
        for v in ["base", "depth", "opt", "pess", "paper-gain"] {
            assert!(t.contains(v), "{t}");
        }
    }
}
