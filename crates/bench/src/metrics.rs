//! Move-count metrics: the quantities the paper's tables report.

use tossa_analysis::AnalysisCache;
use tossa_ir::Function;

/// Static `mov` count (Tables 2–4), ignoring self-moves.
pub fn move_count(f: &Function) -> usize {
    f.count_moves()
}

/// Weighted move count (Table 5): each `mov` weighs `5^depth`, "a static
/// approximation where each loop would contain 5 iterations".
pub fn weighted_move_count(f: &Function) -> u64 {
    weighted_move_count_cached(f, &mut AnalysisCache::new())
}

/// [`weighted_move_count`] against a shared [`AnalysisCache`] (reuses the
/// pipeline's loop forest when it is still valid).
pub fn weighted_move_count_cached(f: &Function, cache: &mut AnalysisCache) -> u64 {
    let loops = cache.loops(f);
    let mut total: u64 = 0;
    for b in f.blocks() {
        let weight = 5u64.saturating_pow(loops.depth(b));
        for i in f.block_insts(b) {
            let inst = f.inst(i);
            if inst.opcode.is_move() && !inst.is_self_move() {
                total += weight;
            }
        }
    }
    total
}

/// Total instruction count (excluding φs), for code-size reporting.
pub fn inst_count(f: &Function) -> usize {
    f.all_insts().filter(|&(_, i)| !f.inst(i).is_phi()).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tossa_ir::machine::Machine;
    use tossa_ir::parse::parse_function;

    #[test]
    fn weighted_counts_respect_depth() {
        let f = parse_function(
            "func @w {
entry:
  %a = make 1
  %b = mov %a
  jump head
head:
  %c = cmplt %b, %a
  br %c, body, exit
body:
  %b = mov %a
  jump head
exit:
  ret %b
}",
            &Machine::dsp32(),
        )
        .unwrap();
        assert_eq!(move_count(&f), 2);
        // One move at depth 0 (weight 1) and one in the loop (weight 5).
        assert_eq!(weighted_move_count(&f), 6);
    }

    #[test]
    fn self_moves_ignored() {
        let f = parse_function(
            "func @s {\nentry:\n  %a = make 1\n  %a = mov %a\n  ret %a\n}",
            &Machine::dsp32(),
        )
        .unwrap();
        assert_eq!(move_count(&f), 0);
        assert_eq!(weighted_move_count(&f), 0);
    }
}
