//! Experiment runner: executes one Table-1 pipeline over a function or a
//! suite, with optional end-to-end interpreter verification.
//!
//! One [`AnalysisCache`] is threaded through the whole pipeline of
//! [`run_experiment`]: pin-only passes (`pinningSP`, `pinningCSSA`,
//! `Program_pinning`) keep every analysis memoized, and structural passes
//! invalidate exactly once. Suites run on a scoped thread pool
//! ([`run_suite_each`]) with results collected in deterministic suite
//! order.

use crate::metrics;
use crate::suites::{BenchFunction, Suite};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;
use tossa_analysis::AnalysisCache;
use tossa_baselines::{aggressive_coalesce_cached, dead_code_elim_cached, to_cssa_cached};
use tossa_core::coalesce::CoalesceOptions;
use tossa_core::collect::{naive_abi, pinning_abi, pinning_cssa, pinning_sp};
use tossa_core::reconstruct::out_of_pinned_ssa;
use tossa_core::{program_pinning_cached, Experiment, ReconstructStats};
use tossa_ir::{interp, Function};
use tossa_regalloc::{allocate, AllocOptions, AllocStats};
use tossa_ssa::{ifconv, opt, psi, to_ssa};

/// Wall-clock nanoseconds of each pipeline stage of one
/// [`run_experiment`] call. Stages an experiment does not enable read 0.
#[derive(Clone, Copy, Debug, Default)]
pub struct StageTimings {
    /// SSA construction, if-conversion, ψ lowering, SSA optimizations.
    pub front_end_ns: u64,
    /// Sreedhar SSA→CSSA conversion.
    pub cssa_ns: u64,
    /// Constraint collection + `Program_pinning` (all pinning passes).
    pub pinning_ns: u64,
    /// Leung–George mark/reconstruct (plus `NaiveABI` when enabled).
    pub reconstruct_ns: u64,
    /// Dead code elimination and aggressive coalescing.
    pub cleanup_ns: u64,
    /// Move-count metrics.
    pub metrics_ns: u64,
    /// Register allocation (0 unless the allocation post-pass ran).
    pub alloc_ns: u64,
    /// End-to-end, including everything above.
    pub total_ns: u64,
}

impl StageTimings {
    /// Accumulates `other` into `self` (suite-level aggregation).
    pub fn add_assign(&mut self, other: &StageTimings) {
        self.front_end_ns += other.front_end_ns;
        self.cssa_ns += other.cssa_ns;
        self.pinning_ns += other.pinning_ns;
        self.reconstruct_ns += other.reconstruct_ns;
        self.cleanup_ns += other.cleanup_ns;
        self.metrics_ns += other.metrics_ns;
        self.alloc_ns += other.alloc_ns;
        self.total_ns += other.total_ns;
    }
}

fn clocked<T>(slot: &mut u64, name: &'static str, f: impl FnOnce() -> T) -> T {
    let start = Instant::now();
    let out = tossa_trace::span(name, f);
    *slot += start.elapsed().as_nanos() as u64;
    out
}

/// Result of running one pipeline on one function.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// The final non-SSA function.
    pub func: Function,
    /// Static move count of the final code.
    pub moves: usize,
    /// `5^depth`-weighted move count (Table 5 metric).
    pub weighted: u64,
    /// Copy statistics from the out-of-pinned-SSA phase.
    pub recon: ReconstructStats,
    /// Moves removed by the Chaitin pass, when enabled.
    pub coalesced: usize,
    /// Per-stage wall clock of this run.
    pub timings: StageTimings,
    /// Register-allocation statistics (the allocation post-pass ran and
    /// [`RunResult::func`] is in physical form).
    pub alloc: Option<AllocStats>,
}

/// Verification failure: the translated function diverged from the
/// source.
#[derive(Clone, Debug)]
pub struct VerifyError {
    /// Function name.
    pub function: String,
    /// Inputs that exposed the divergence.
    pub inputs: Vec<i64>,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} on {:?}: {}",
            self.function, self.inputs, self.message
        )
    }
}

impl std::error::Error for VerifyError {}

const FUEL: u64 = 5_000_000;

/// Shared front end: SSA construction, if-conversion of small diamonds
/// to ψ instructions (the LAO's input is predicated ST120 code, §5),
/// ψ lowering to two-operand `psel` chains, and the SSA-level
/// optimizations the paper assumes have run ("value numbering ... while
/// in SSA form").
pub fn front_end(src: &Function) -> Function {
    let mut f = src.clone();
    to_ssa(&mut f);
    ifconv::if_convert(&mut f, &ifconv::IfConvOptions::default());
    psi::lower_psis(&mut f);
    opt::copy_propagate(&mut f);
    opt::gvn(&mut f);
    opt::dce(&mut f);
    f
}

/// Runs one experiment pipeline on a pre-SSA function.
pub fn run_experiment(src: &Function, exp: Experiment, opts: &CoalesceOptions) -> RunResult {
    let mut t = StageTimings::default();
    let start = Instant::now();
    let f = clocked(&mut t.front_end_ns, "front_end", || front_end(src));
    run_pipeline(f, exp, opts, t, start)
}

/// Runs one experiment pipeline on an already-SSA-converted function (a
/// [`front_end`] output). The front end is experiment-independent, so a
/// suite × experiment matrix computes it once per function and shares it
/// across all experiments; `front_end_ns` then reads 0 here.
pub fn run_experiment_prepared(
    ssa: &Function,
    exp: Experiment,
    opts: &CoalesceOptions,
) -> RunResult {
    run_pipeline(
        ssa.clone(),
        exp,
        opts,
        StageTimings::default(),
        Instant::now(),
    )
}

fn run_pipeline(
    mut f: Function,
    exp: Experiment,
    opts: &CoalesceOptions,
    mut t: StageTimings,
    start: Instant,
) -> RunResult {
    let passes = exp.passes();
    // One analysis manager for the rest of the pipeline. Structural
    // passes invalidate; pin-only passes reuse the memoized analyses.
    let mut cache = AnalysisCache::new();
    if passes.sreedhar {
        clocked(&mut t.cssa_ns, "cssa", || {
            to_cssa_cached(&mut f, &mut cache)
        });
    }
    clocked(&mut t.pinning_ns, "pinning", || {
        if passes.pinning_cssa {
            pinning_cssa(&mut f); // pin-only: cache stays hot
        }
        if passes.pinning_sp {
            pinning_sp(&mut f); // pin-only: cache stays hot
        }
        if passes.pinning_abi {
            pinning_abi(&mut f); // inserts save/restore moves (CFG unchanged)
            cache.invalidate_instructions();
        }
        if passes.pinning_phi {
            program_pinning_cached(&mut f, opts, &mut cache); // pin-only
        }
    });
    debug_assert!(passes.out_of_pinned_ssa);
    let recon = clocked(&mut t.reconstruct_ns, "reconstruct_stage", || {
        let recon = out_of_pinned_ssa(&mut f);
        // Reconstruction only changes block structure when it splits
        // edges; otherwise the CFG-shape analyses stay valid and the
        // cleanup stage's first liveness is the only recompute.
        if recon.edges_split == 0 {
            cache.invalidate_instructions();
        } else {
            cache.invalidate();
        }
        if passes.naive_abi {
            naive_abi(&mut f); // inserts plain moves (CFG unchanged)
            cache.invalidate_instructions();
        }
        recon
    });
    let mut coalesced = 0;
    clocked(&mut t.cleanup_ns, "cleanup", || {
        dead_code_elim_cached(&mut f, &mut cache);
        if passes.coalescing {
            coalesced = aggressive_coalesce_cached(&mut f, &mut cache).coalesced;
            dead_code_elim_cached(&mut f, &mut cache);
        }
    });
    let (moves, weighted) = clocked(&mut t.metrics_ns, "metrics", || {
        (
            metrics::move_count(&f),
            metrics::weighted_move_count_cached(&f, &mut cache),
        )
    });
    t.total_ns = start.elapsed().as_nanos() as u64;
    RunResult {
        func: f,
        moves,
        weighted,
        recon,
        coalesced,
        timings: t,
        alloc: None,
    }
}

/// Runs the register-allocation post-pass on a pipeline result, in
/// place: [`RunResult::func`] is rewritten to physical form (registers +
/// stack slots), the stage is clocked into [`StageTimings::alloc_ns`]
/// and traced like every other stage, and the statistics land in
/// [`RunResult::alloc`]. [`RunResult::moves`] keeps the *pre-allocation*
/// count (the paper's tables metric); the post-allocation survivor count
/// is [`AllocStats::moves_after`].
///
/// # Panics
/// Panics when allocation fails — like a verification failure, an
/// unallocatable function invalidates the whole table.
pub fn apply_alloc(r: &mut RunResult) {
    apply_alloc_with(r, &AllocOptions::default());
}

/// [`apply_alloc`] with explicit allocator options — the policy
/// comparison hook (`explain --spill-everywhere`, the spill-regression
/// gate) that pits the PR4 spill-everywhere policy against the
/// cost-driven default on identical pipeline output.
pub fn apply_alloc_with(r: &mut RunResult, opts: &AllocOptions) {
    let stats = clocked(&mut r.timings.alloc_ns, "alloc_stage", || {
        allocate(&mut r.func, opts)
            .unwrap_or_else(|e| panic!("allocation failed on {}: {e}\n{}", r.func.name, r.func))
    });
    r.timings.total_ns += r.timings.alloc_ns;
    r.alloc = Some(stats);
}

/// Checks that `result` computes the same outputs as `src` on every
/// sample input.
///
/// # Errors
/// Returns the first diverging input.
pub fn verify(src: &Function, result: &Function, inputs: &[Vec<i64>]) -> Result<(), VerifyError> {
    tossa_trace::span("interp_verify", || verify_inner(src, result, inputs))
}

fn verify_inner(src: &Function, result: &Function, inputs: &[Vec<i64>]) -> Result<(), VerifyError> {
    for ins in inputs {
        let want = interp::run(src, ins, FUEL).map_err(|e| VerifyError {
            function: src.name.clone(),
            inputs: ins.clone(),
            message: format!("source traps: {e}"),
        })?;
        let got = interp::run(result, ins, FUEL).map_err(|e| VerifyError {
            function: src.name.clone(),
            inputs: ins.clone(),
            message: format!("translated code traps: {e}"),
        })?;
        if want.outputs != got.outputs {
            return Err(VerifyError {
                function: src.name.clone(),
                inputs: ins.clone(),
                message: format!("outputs {:?} != expected {:?}", got.outputs, want.outputs),
            });
        }
    }
    Ok(())
}

/// Aggregate of one experiment over a whole suite.
#[derive(Clone, Debug, Default)]
pub struct SuiteResult {
    /// Total moves across the suite.
    pub moves: usize,
    /// Total weighted moves.
    pub weighted: u64,
    /// Total φ copies before any cleanup.
    pub phi_copies: usize,
    /// Total ABI copies before any cleanup.
    pub abi_copies: usize,
    /// Total repair copies.
    pub repair_copies: usize,
    /// Total moves removed by Chaitin coalescing.
    pub coalesced: usize,
    /// Summed per-stage wall clock across the suite (CPU-side; with the
    /// parallel runner this exceeds elapsed wall clock).
    pub timings: StageTimings,
    /// Aggregated allocation statistics (`None` when the allocation
    /// post-pass did not run).
    pub alloc: Option<AllocStats>,
}

impl SuiteResult {
    /// Sums per-function results into the suite aggregate. The single
    /// counting path shared by the tables and the trajectory emitter.
    pub fn fold(results: &[RunResult]) -> SuiteResult {
        let mut total = SuiteResult::default();
        for r in results {
            total.moves += r.moves;
            total.weighted += r.weighted;
            total.phi_copies += r.recon.phi_copies;
            total.abi_copies += r.recon.abi_copies;
            total.repair_copies += r.recon.repair_copies;
            total.coalesced += r.coalesced;
            total.timings.add_assign(&r.timings);
            if let Some(a) = &r.alloc {
                total
                    .alloc
                    .get_or_insert_with(AllocStats::default)
                    .add_assign(a);
            }
        }
        total
    }
}

/// Maps `f` over `0..n` on a scoped worker pool (one thread per
/// available core). Results land in index order, so the output is
/// deterministic regardless of scheduling; a worker panic (e.g. a
/// verification failure) propagates to the caller.
pub fn par_map<T: Send>(n: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
    let threads = std::thread::available_parallelism()
        .map_or(1, |p| p.get())
        .min(n.max(1));
    if threads <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = Vec::new();
    slots.resize_with(n, || None);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                let f = &f;
                s.spawn(move || {
                    let mut out: Vec<(usize, T)> = Vec::new();
                    loop {
                        let k = next.fetch_add(1, Ordering::Relaxed);
                        if k >= n {
                            break;
                        }
                        out.push((k, f(k)));
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            // Re-raise worker panics here.
            for (k, r) in h.join().expect("bench worker panicked") {
                slots[k] = Some(r);
            }
        }
    });
    slots
        .into_iter()
        .map(|r| r.expect("every index assigned"))
        .collect()
}

fn check(bf: &BenchFunction, exp: Experiment, r: &RunResult, verify_each: bool) {
    if verify_each {
        if let Err(e) = verify(&bf.func, &r.func, &bf.inputs) {
            panic!("experiment {exp} broke {e}\n{}", r.func);
        }
    }
}

/// Runs the shared [`front_end`] over every function of a suite, in
/// parallel. The result feeds [`run_suite_matrix`] /
/// [`run_experiment_prepared`] so an N-experiment matrix pays for SSA
/// construction once instead of N times.
pub fn prepare_suite(suite: &Suite) -> Vec<Function> {
    par_map(suite.functions.len(), |k| {
        front_end(&suite.functions[k].func)
    })
}

/// [`prepare_suite`] that also records the front end's trace counters
/// (SSA construction runs liveness fixpoints, which count worklist
/// pops). The front end is experiment-independent, so a matrix runs it
/// once per suite and adds the returned set to every cell's pipeline
/// counters — reproducing exactly what a full from-source traced run of
/// each cell would have counted.
pub fn prepare_suite_counted(suite: &Suite) -> (Vec<Function>, tossa_trace::CounterSet) {
    let pairs = par_map(suite.functions.len(), |k| {
        tossa_trace::capture_counters(|| front_end(&suite.functions[k].func))
    });
    let mut total = tossa_trace::CounterSet::default();
    let mut fns = Vec::with_capacity(pairs.len());
    for (f, set) in pairs {
        total.merge(&set);
        fns.push(f);
    }
    (fns, total)
}

/// Per-function results of one experiment over a suite, in suite order,
/// executed on a scoped worker pool (one [`AnalysisCache`] per
/// pipeline).
///
/// # Panics
/// Panics on a verification failure (propagated from any worker).
pub fn run_suite_each(
    suite: &Suite,
    exp: Experiment,
    opts: &CoalesceOptions,
    verify_each: bool,
) -> Vec<RunResult> {
    par_map(suite.functions.len(), |k| {
        let bf = &suite.functions[k];
        let r = run_experiment(&bf.func, exp, opts);
        check(bf, exp, &r, verify_each);
        r
    })
}

/// Serial version of [`run_suite_each`], used by the bench binary's
/// `--serial` mode to measure the parallel runner's speedup.
pub fn run_suite_each_serial(
    suite: &Suite,
    exp: Experiment,
    opts: &CoalesceOptions,
    verify_each: bool,
) -> Vec<RunResult> {
    suite
        .functions
        .iter()
        .map(|bf| {
            let r = run_experiment(&bf.func, exp, opts);
            check(bf, exp, &r, verify_each);
            r
        })
        .collect()
}

/// Per-function results of one experiment over a pre-converted suite
/// (see [`prepare_suite`]); `parallel: false` runs on one thread; `alloc`
/// appends the register-allocation post-pass ([`apply_alloc`]), in which
/// case verification runs on the *allocated* code.
pub fn run_suite_each_prepared(
    suite: &Suite,
    prepared: &[Function],
    exp: Experiment,
    opts: &CoalesceOptions,
    verify_each: bool,
    parallel: bool,
    alloc: bool,
) -> Vec<RunResult> {
    let one = |k: usize| {
        let bf = &suite.functions[k];
        let mut r = run_experiment_prepared(&prepared[k], exp, opts);
        if alloc {
            apply_alloc(&mut r);
        }
        check(bf, exp, &r, verify_each);
        r
    };
    if parallel {
        par_map(suite.functions.len(), one)
    } else {
        (0..suite.functions.len()).map(one).collect()
    }
}

/// [`run_suite_each_prepared`] with a counters-only capture around the
/// *pipeline* portion of each run: the returned [`CounterSet`] covers
/// exactly the translation pipeline — the allocation post-pass and
/// verification run outside the capture — so the counters match a
/// pipeline-only traced pass byte for byte, while the wall clock still
/// covers the allocated end-to-end run. One pass serves both timing and
/// counting; the counters-only capture skips span clocks and provenance
/// strings, so its overhead over an untraced run is a handful of local
/// integer increments in the analysis fixpoints.
///
/// [`CounterSet`]: tossa_trace::CounterSet
///
/// # Panics
/// Panics on an allocation or verification failure (propagated from any
/// worker).
pub fn run_suite_each_prepared_counted(
    suite: &Suite,
    prepared: &[Function],
    exp: Experiment,
    opts: &CoalesceOptions,
    verify_each: bool,
    parallel: bool,
    alloc: bool,
) -> Vec<(RunResult, tossa_trace::CounterSet)> {
    let one = |k: usize| {
        let bf = &suite.functions[k];
        let (mut r, set) =
            tossa_trace::capture_counters(|| run_experiment_prepared(&prepared[k], exp, opts));
        if alloc {
            apply_alloc(&mut r);
        }
        check(bf, exp, &r, verify_each);
        (r, set)
    };
    if parallel {
        par_map(suite.functions.len(), one)
    } else {
        (0..suite.functions.len()).map(one).collect()
    }
}

/// Per-function results of one experiment with the allocation post-pass:
/// the full pipeline, then [`apply_alloc`], then (when `verify_each`)
/// differential execution of the *allocated* code against the pre-SSA
/// source.
///
/// # Panics
/// Panics on an allocation or verification failure (propagated from any
/// worker).
pub fn run_suite_each_allocated(
    suite: &Suite,
    exp: Experiment,
    opts: &CoalesceOptions,
    verify_each: bool,
) -> Vec<RunResult> {
    run_suite_each_allocated_with(suite, exp, opts, &AllocOptions::default(), verify_each)
}

/// [`run_suite_each_allocated`] with explicit allocator options, so the
/// differential layer can pit spill policies against each other on
/// identical pipeline output.
///
/// # Panics
/// Panics on an allocation or verification failure (propagated from any
/// worker).
pub fn run_suite_each_allocated_with(
    suite: &Suite,
    exp: Experiment,
    opts: &CoalesceOptions,
    alloc_opts: &AllocOptions,
    verify_each: bool,
) -> Vec<RunResult> {
    par_map(suite.functions.len(), |k| {
        let bf = &suite.functions[k];
        let mut r = run_experiment(&bf.func, exp, opts);
        apply_alloc_with(&mut r, alloc_opts);
        check(bf, exp, &r, verify_each);
        r
    })
}

/// [`run_suite_each_allocated`] folded to the suite aggregate.
pub fn run_suite_allocated(
    suite: &Suite,
    exp: Experiment,
    opts: &CoalesceOptions,
    verify_each: bool,
) -> SuiteResult {
    SuiteResult::fold(&run_suite_each_allocated(suite, exp, opts, verify_each))
}

/// Per-function results of one experiment over a suite, each run under
/// its own trace capture (workers install per-thread collectors, so the
/// parallel runner records every function's counters and spans). Pair
/// `k` of the output is `(result, trace)` for `suite.functions[k]`.
///
/// # Panics
/// Panics on a verification failure (propagated from any worker).
pub fn run_suite_each_traced(
    suite: &Suite,
    exp: Experiment,
    opts: &CoalesceOptions,
    verify_each: bool,
) -> Vec<(RunResult, tossa_trace::TraceData)> {
    par_map(suite.functions.len(), |k| {
        let bf = &suite.functions[k];
        tossa_trace::capture(|| {
            let r = run_experiment(&bf.func, exp, opts);
            check(bf, exp, &r, verify_each);
            r
        })
    })
}

/// [`run_suite_each_traced`] over a pre-converted suite (see
/// [`prepare_suite`]), collecting *counters only*: each function's
/// pipeline runs under a counters-only capture, starting from the
/// shared front-end output instead of re-running SSA construction per
/// cell. The front end lives in `tossa-ssa`, which records no counters
/// or spans, so the counter totals are identical to a full traced
/// from-source run — but the pass skips span clocks and provenance
/// string building entirely, which is what makes the trajectory's
/// per-cell counter pass affordable.
///
/// # Panics
/// Panics on a verification failure (propagated from any worker).
pub fn run_suite_each_traced_prepared(
    suite: &Suite,
    prepared: &[Function],
    exp: Experiment,
    opts: &CoalesceOptions,
    verify_each: bool,
) -> Vec<(RunResult, tossa_trace::CounterSet)> {
    par_map(suite.functions.len(), |k| {
        let bf = &suite.functions[k];
        tossa_trace::capture_counters(|| {
            let r = run_experiment_prepared(&prepared[k], exp, opts);
            check(bf, exp, &r, verify_each);
            r
        })
    })
}

/// Runs one experiment over a suite (in parallel), verifying every
/// function unless `verify_each` is false.
///
/// # Panics
/// Panics on a verification failure — a translation that changes program
/// behaviour invalidates every number in the tables.
pub fn run_suite(
    suite: &Suite,
    exp: Experiment,
    opts: &CoalesceOptions,
    verify_each: bool,
) -> SuiteResult {
    SuiteResult::fold(&run_suite_each(suite, exp, opts, verify_each))
}

/// Runs several experiments over a suite, converting to SSA once and
/// sharing the prepared functions across all experiments; `alloc`
/// appends the register-allocation post-pass to every run. Returns one
/// [`SuiteResult`] per experiment, in order.
pub fn run_suite_matrix(
    suite: &Suite,
    experiments: &[Experiment],
    opts: &CoalesceOptions,
    verify_each: bool,
    alloc: bool,
) -> Vec<SuiteResult> {
    let prepared = prepare_suite(suite);
    experiments
        .iter()
        .map(|&exp| {
            SuiteResult::fold(&run_suite_each_prepared(
                suite,
                &prepared,
                exp,
                opts,
                verify_each,
                true,
                alloc,
            ))
        })
        .collect()
}

/// Runs a [`BenchFunction`] through an experiment and verifies it.
///
/// # Errors
/// Propagates the verification failure.
pub fn run_verified(
    bf: &BenchFunction,
    exp: Experiment,
    opts: &CoalesceOptions,
) -> Result<RunResult, VerifyError> {
    let r = run_experiment(&bf.func, exp, opts);
    verify(&bf.func, &r.func, &bf.inputs)?;
    Ok(r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suites;

    #[test]
    fn every_experiment_preserves_semantics_on_examples() {
        let ex = suites::paper_examples::examples();
        for &exp in Experiment::all() {
            for bf in &ex {
                run_verified(bf, exp, &CoalesceOptions::default())
                    .unwrap_or_else(|e| panic!("{exp}: {e}"));
            }
        }
    }

    #[test]
    fn our_algorithm_beats_naive_on_kernels() {
        let suite = suites::Suite {
            name: "VALcc1",
            functions: suites::kernels::valcc1(),
        };
        let opts = CoalesceOptions::default();
        let ours = run_suite(&suite, Experiment::LphiC, &opts, true);
        let naive = run_suite(&suite, Experiment::CNoAbi, &opts, true);
        assert!(
            ours.moves <= naive.moves,
            "Lphi+C {} > C {}",
            ours.moves,
            naive.moves
        );
    }

    #[test]
    fn abi_pinning_beats_naive_abi() {
        let suite = suites::Suite {
            name: "VALcc1",
            functions: suites::kernels::valcc1(),
        };
        let opts = CoalesceOptions::default();
        let pinned = run_suite(&suite, Experiment::LphiAbiC, &opts, true);
        let naive = run_suite(&suite, Experiment::CAbi, &opts, true);
        assert!(
            pinned.moves <= naive.moves,
            "Lphi,ABI+C {} > C(abi) {}",
            pinned.moves,
            naive.moves
        );
    }

    #[test]
    fn parallel_suite_matches_serial() {
        let suite = suites::Suite {
            name: "VALcc1",
            functions: suites::kernels::valcc1(),
        };
        let opts = CoalesceOptions::default();
        let par = run_suite_each(&suite, Experiment::LphiAbiC, &opts, false);
        let ser = run_suite_each_serial(&suite, Experiment::LphiAbiC, &opts, false);
        assert_eq!(par.len(), ser.len());
        for (p, s) in par.iter().zip(&ser) {
            assert_eq!(p.moves, s.moves);
            assert_eq!(p.weighted, s.weighted);
            assert_eq!(p.recon, s.recon);
        }
    }

    #[test]
    fn timings_are_populated() {
        let ex = suites::paper_examples::examples();
        let r = run_experiment(
            &ex[0].func,
            Experiment::LphiAbiC,
            &CoalesceOptions::default(),
        );
        assert!(r.timings.total_ns > 0);
        assert!(r.timings.front_end_ns > 0);
        assert!(
            r.timings.total_ns
                >= r.timings.front_end_ns
                    + r.timings.cssa_ns
                    + r.timings.pinning_ns
                    + r.timings.reconstruct_ns
                    + r.timings.cleanup_ns
                    + r.timings.metrics_ns
        );
    }
}
