//! Experiment runner: executes one Table-1 pipeline over a function or a
//! suite, with optional end-to-end interpreter verification.

use crate::metrics;
use crate::suites::{BenchFunction, Suite};
use tossa_baselines::{aggressive_coalesce, dead_code_elim, to_cssa};
use tossa_core::coalesce::CoalesceOptions;
use tossa_core::collect::{naive_abi, pinning_abi, pinning_cssa, pinning_sp};
use tossa_core::reconstruct::out_of_pinned_ssa;
use tossa_core::{program_pinning, Experiment, ReconstructStats};
use tossa_ir::{interp, Function};
use tossa_ssa::{ifconv, opt, psi, to_ssa};

/// Result of running one pipeline on one function.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// The final non-SSA function.
    pub func: Function,
    /// Static move count of the final code.
    pub moves: usize,
    /// `5^depth`-weighted move count (Table 5 metric).
    pub weighted: u64,
    /// Copy statistics from the out-of-pinned-SSA phase.
    pub recon: ReconstructStats,
    /// Moves removed by the Chaitin pass, when enabled.
    pub coalesced: usize,
}

/// Verification failure: the translated function diverged from the
/// source.
#[derive(Clone, Debug)]
pub struct VerifyError {
    /// Function name.
    pub function: String,
    /// Inputs that exposed the divergence.
    pub inputs: Vec<i64>,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} on {:?}: {}", self.function, self.inputs, self.message)
    }
}

impl std::error::Error for VerifyError {}

const FUEL: u64 = 5_000_000;

/// Shared front end: SSA construction, if-conversion of small diamonds
/// to ψ instructions (the LAO's input is predicated ST120 code, §5),
/// ψ lowering to two-operand `psel` chains, and the SSA-level
/// optimizations the paper assumes have run ("value numbering ... while
/// in SSA form").
pub fn front_end(src: &Function) -> Function {
    let mut f = src.clone();
    to_ssa(&mut f);
    ifconv::if_convert(&mut f, &ifconv::IfConvOptions::default());
    psi::lower_psis(&mut f);
    opt::copy_propagate(&mut f);
    opt::gvn(&mut f);
    opt::dce(&mut f);
    f
}

/// Runs one experiment pipeline on a pre-SSA function.
pub fn run_experiment(src: &Function, exp: Experiment, opts: &CoalesceOptions) -> RunResult {
    let passes = exp.passes();
    let mut f = front_end(src);
    if passes.sreedhar {
        to_cssa(&mut f);
    }
    if passes.pinning_cssa {
        pinning_cssa(&mut f);
    }
    if passes.pinning_sp {
        pinning_sp(&mut f);
    }
    if passes.pinning_abi {
        pinning_abi(&mut f);
    }
    if passes.pinning_phi {
        program_pinning(&mut f, opts);
    }
    debug_assert!(passes.out_of_pinned_ssa);
    let recon = out_of_pinned_ssa(&mut f);
    if passes.naive_abi {
        naive_abi(&mut f);
    }
    dead_code_elim(&mut f);
    let mut coalesced = 0;
    if passes.coalescing {
        coalesced = aggressive_coalesce(&mut f).coalesced;
        dead_code_elim(&mut f);
    }
    let moves = metrics::move_count(&f);
    let weighted = metrics::weighted_move_count(&f);
    RunResult { func: f, moves, weighted, recon, coalesced }
}

/// Checks that `result` computes the same outputs as `src` on every
/// sample input.
///
/// # Errors
/// Returns the first diverging input.
pub fn verify(src: &Function, result: &Function, inputs: &[Vec<i64>]) -> Result<(), VerifyError> {
    for ins in inputs {
        let want = interp::run(src, ins, FUEL).map_err(|e| VerifyError {
            function: src.name.clone(),
            inputs: ins.clone(),
            message: format!("source traps: {e}"),
        })?;
        let got = interp::run(result, ins, FUEL).map_err(|e| VerifyError {
            function: src.name.clone(),
            inputs: ins.clone(),
            message: format!("translated code traps: {e}"),
        })?;
        if want.outputs != got.outputs {
            return Err(VerifyError {
                function: src.name.clone(),
                inputs: ins.clone(),
                message: format!("outputs {:?} != expected {:?}", got.outputs, want.outputs),
            });
        }
    }
    Ok(())
}

/// Aggregate of one experiment over a whole suite.
#[derive(Clone, Debug, Default)]
pub struct SuiteResult {
    /// Total moves across the suite.
    pub moves: usize,
    /// Total weighted moves.
    pub weighted: u64,
    /// Total φ copies before any cleanup.
    pub phi_copies: usize,
    /// Total ABI copies before any cleanup.
    pub abi_copies: usize,
    /// Total repair copies.
    pub repair_copies: usize,
    /// Total moves removed by Chaitin coalescing.
    pub coalesced: usize,
}

/// Runs one experiment over a suite, verifying every function unless
/// `verify_each` is false.
///
/// # Panics
/// Panics on a verification failure — a translation that changes program
/// behaviour invalidates every number in the tables.
pub fn run_suite(
    suite: &Suite,
    exp: Experiment,
    opts: &CoalesceOptions,
    verify_each: bool,
) -> SuiteResult {
    let mut total = SuiteResult::default();
    for bf in &suite.functions {
        let r = run_experiment(&bf.func, exp, opts);
        if verify_each {
            if let Err(e) = verify(&bf.func, &r.func, &bf.inputs) {
                panic!("experiment {exp} broke {e}\n{}", r.func);
            }
        }
        total.moves += r.moves;
        total.weighted += r.weighted;
        total.phi_copies += r.recon.phi_copies;
        total.abi_copies += r.recon.abi_copies;
        total.repair_copies += r.recon.repair_copies;
        total.coalesced += r.coalesced;
    }
    total
}

/// Runs a [`BenchFunction`] through an experiment and verifies it.
///
/// # Errors
/// Propagates the verification failure.
pub fn run_verified(
    bf: &BenchFunction,
    exp: Experiment,
    opts: &CoalesceOptions,
) -> Result<RunResult, VerifyError> {
    let r = run_experiment(&bf.func, exp, opts);
    verify(&bf.func, &r.func, &bf.inputs)?;
    Ok(r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suites;

    #[test]
    fn every_experiment_preserves_semantics_on_examples() {
        let ex = suites::paper_examples::examples();
        for &exp in Experiment::all() {
            for bf in &ex {
                run_verified(bf, exp, &CoalesceOptions::default())
                    .unwrap_or_else(|e| panic!("{exp}: {e}"));
            }
        }
    }

    #[test]
    fn our_algorithm_beats_naive_on_kernels() {
        let suite = suites::Suite { name: "VALcc1", functions: suites::kernels::valcc1() };
        let opts = CoalesceOptions::default();
        let ours = run_suite(&suite, Experiment::LphiC, &opts, true);
        let naive = run_suite(&suite, Experiment::CNoAbi, &opts, true);
        assert!(
            ours.moves <= naive.moves,
            "Lphi+C {} > C {}",
            ours.moves,
            naive.moves
        );
    }

    #[test]
    fn abi_pinning_beats_naive_abi() {
        let suite = suites::Suite { name: "VALcc1", functions: suites::kernels::valcc1() };
        let opts = CoalesceOptions::default();
        let pinned = run_suite(&suite, Experiment::LphiAbiC, &opts, true);
        let naive = run_suite(&suite, Experiment::CAbi, &opts, true);
        assert!(
            pinned.moves <= naive.moves,
            "Lphi,ABI+C {} > C(abi) {}",
            pinned.moves,
            naive.moves
        );
    }
}
