//! Hand-written DSP/algorithmic kernels — the substitute for the paper's
//! `VALcc1`/`VALcc2` suites ("about 40 small functions with some basic
//! digital signal processing kernels, integer Discrete Cosine Transform,
//! sorting, searching, and string searching algorithms", §5).
//!
//! Each kernel is written once in LAI-style text (multiple-assignment,
//! pre-SSA). The `VALcc1` suite is the kernels as written; `VALcc2` runs
//! the same kernels through a *temp-heavy* rewriting that models a second
//! compiler emitting lower-quality code (every ALU operand is first
//! copied into a fresh temporary), as the paper compares the same C
//! sources compiled by two different ST120 compilers.

use crate::suites::BenchFunction;
use tossa_ir::instr::InstData;
use tossa_ir::machine::Machine;
use tossa_ir::parse::parse_function;
use tossa_ir::{Function, Opcode};

/// One kernel: name, LAI text, and sample input sets for equivalence
/// checking.
struct Kernel {
    text: &'static str,
    inputs: &'static [&'static [i64]],
}

const KERNELS: &[Kernel] = &[
    // FIR filter with pointer auto-modification (two-operand autoadd).
    Kernel {
        text: "
func @fir {
entry:
  %x, %h, %n = input
  %acc = make 0
  %i = make 0
  jump head
head:
  %c = cmplt %i, %n
  br %c, body, exit
body:
  %xv = load %x
  %hv = load %h
  %x = autoadd %x, 1
  %h = autoadd %h, 1
  %p = mul %xv, %hv
  %acc = add %acc, %p
  %i = addi %i, 1
  jump head
exit:
  ret %acc
}",
        inputs: &[&[1000, 2000, 0], &[1000, 2000, 4], &[5000, 6000, 8]],
    },
    // IIR biquad-ish with feedback shuffle (φ-cycle after SSA).
    Kernel {
        text: "
func @iir {
entry:
  %x, %n = input
  %k3 = make 3
  %k5 = make 5
  %k2 = make 2
  %y1 = make 0
  %y2 = make 0
  %out = make 0
  %i = make 0
  jump head
head:
  %c = cmplt %i, %n
  br %c, body, exit
body:
  %xv = load %x
  %x = autoadd %x, 1
  %t1 = mul %y1, %k3
  %t2 = mul %y2, %k5
  %s = add %t1, %t2
  %yv = add %xv, %s
  %yv = shr %yv, %k2
  %y2 = mov %y1
  %y1 = mov %yv
  %out = add %out, %yv
  %i = addi %i, 1
  jump head
exit:
  ret %out
}",
        inputs: &[&[100, 0], &[100, 3], &[777, 7]],
    },
    // Plain dot product (pointer arithmetic with addi).
    Kernel {
        text: "
func @dot {
entry:
  %a, %b, %n = input
  %acc = make 0
  %i = make 0
  jump head
head:
  %c = cmplt %i, %n
  br %c, body, exit
body:
  %pa = add %a, %i
  %pb = add %b, %i
  %va = load %pa
  %vb = load %pb
  %p = mul %va, %vb
  %acc = add %acc, %p
  %i = addi %i, 1
  jump head
exit:
  ret %acc
}",
        inputs: &[&[10, 20, 0], &[10, 20, 5], &[300, 400, 9]],
    },
    // saxpy with stores; returns a checksum read back from memory.
    Kernel {
        text: "
func @saxpy {
entry:
  %alpha, %x, %y, %n = input
  %i = make 0
  jump head
head:
  %c = cmplt %i, %n
  br %c, body, exit
body:
  %px = add %x, %i
  %py = add %y, %i
  %vx = load %px
  %vy = load %py
  %ax = mul %alpha, %vx
  %s = add %ax, %vy
  store %py, %s
  %i = addi %i, 1
  jump head
exit:
  %sum = make 0
  %j = make 0
  jump chead
chead:
  %cc = cmplt %j, %n
  br %cc, cbody, done
cbody:
  %pj = add %y, %j
  %vj = load %pj
  %sum = add %sum, %vj
  %j = addi %j, 1
  jump chead
done:
  ret %sum
}",
        inputs: &[&[3, 50, 80, 0], &[3, 50, 80, 4], &[-2, 500, 800, 7]],
    },
    // Branchy maximum (control-dependent φ).
    Kernel {
        text: "
func @vmax {
entry:
  %a, %n = input
  %best = load %a
  %i = make 1
  jump head
head:
  %c = cmplt %i, %n
  br %c, body, exit
body:
  %p = add %a, %i
  %v = load %p
  %gt = cmplt %best, %v
  br %gt, take, skip
take:
  %best = mov %v
  jump latch
skip:
  jump latch
latch:
  %i = addi %i, 1
  jump head
exit:
  ret %best
}",
        inputs: &[&[42, 1], &[42, 5], &[9000, 8]],
    },
    // Absolute sum with sign branch and negate.
    Kernel {
        text: "
func @abssum {
entry:
  %a, %n = input
  %zero = make 0
  %acc = make 0
  %i = make 0
  jump head
head:
  %c = cmplt %i, %n
  br %c, body, exit
body:
  %p = add %a, %i
  %v = load %p
  %neg = cmplt %v, %zero
  br %neg, flip, keep
flip:
  %v = neg %v
  jump accum
keep:
  jump accum
accum:
  %acc = add %acc, %v
  %i = addi %i, 1
  jump head
exit:
  ret %acc
}",
        inputs: &[&[11, 0], &[11, 4], &[-300, 6]],
    },
    // 4-point integer DCT-ish butterfly: straightline, uses make/more
    // constant building (two-operand more).
    Kernel {
        text: "
func @idct4 {
entry:
  %p = input
  %x0 = load %p
  %p1 = addi %p, 1
  %x1 = load %p1
  %p2 = addi %p, 2
  %x2 = load %p2
  %p3 = addi %p, 3
  %x3 = load %p3
  %w = make 0x00A1
  %w = more %w, 0x2BFA
  %s0 = add %x0, %x2
  %d0 = sub %x0, %x2
  %s1 = add %x1, %x3
  %d1 = sub %x1, %x3
  %m0 = mul %s1, %w
  %m1 = mul %d1, %w
  %y0 = add %s0, %m0
  %y1 = add %d0, %m1
  %y2 = sub %d0, %m1
  %y3 = sub %s0, %m0
  store %p, %y0
  store %p1, %y1
  store %p2, %y2
  store %p3, %y3
  %t0 = add %y0, %y1
  %t1 = add %y2, %y3
  %r = add %t0, %t1
  ret %r
}",
        inputs: &[&[64], &[1024]],
    },
    // Bubble sort over a small scratch region, returns the sorted sum of
    // min/max sentinels.
    Kernel {
        text: "
func @bubble {
entry:
  %a, %n = input
  %one = make 1
  %i = make 0
  jump ohead
ohead:
  %lim = sub %n, %one
  %oc = cmplt %i, %lim
  br %oc, oinit, done
oinit:
  %j = make 0
  jump ihead
ihead:
  %jlim = sub %lim, %i
  %ic = cmplt %j, %jlim
  br %ic, ibody, olatch
ibody:
  %pj = add %a, %j
  %pj1 = addi %pj, 1
  %v0 = load %pj
  %v1 = load %pj1
  %sw = cmplt %v1, %v0
  br %sw, doswap, iskip
doswap:
  store %pj, %v1
  store %pj1, %v0
  jump ilatch
iskip:
  jump ilatch
ilatch:
  %j = addi %j, 1
  jump ihead
olatch:
  %i = addi %i, 1
  jump ohead
done:
  %lo = load %a
  %plast = add %a, %lim
  %hi = load %plast
  %r = sub %hi, %lo
  ret %r
}",
        inputs: &[&[100, 2], &[100, 5], &[2048, 6]],
    },
    // Binary search over a monotone function of the address.
    Kernel {
        text: "
func @bsearch {
entry:
  %base, %n, %key = input
  %one = make 1
  %lo = make 0
  %hi = mov %n
  jump head
head:
  %c = cmplt %lo, %hi
  br %c, body, exit
body:
  %sum = add %lo, %hi
  %mid = shr %sum, %one
  %p = add %base, %mid
  %v = load %p
  %lt = cmplt %v, %key
  br %lt, right, left
right:
  %lo = addi %mid, 1
  jump head
left:
  %hi = mov %mid
  jump head
exit:
  ret %lo
}",
        inputs: &[&[4000, 8, 0], &[4000, 8, 99999], &[4000, 16, 12345]],
    },
    // Naive string search: count occurrences of a 3-element pattern.
    Kernel {
        text: "
func @strsearch {
entry:
  %s, %n, %pat = input
  %m = make 3
  %count = make 0
  %i = make 0
  jump ohead
ohead:
  %lim = sub %n, %m
  %oc = cmple %i, %lim
  br %oc, oinit, done
oinit:
  %j = make 0
  jump ihead
ihead:
  %ic = cmplt %j, %m
  br %ic, ibody, matched
ibody:
  %si = add %s, %i
  %sij = add %si, %j
  %pj = add %pat, %j
  %sv = load %sij
  %pv = load %pj
  %eq = cmpeq %sv, %pv
  br %eq, ilatch, olatch
ilatch:
  %j = addi %j, 1
  jump ihead
matched:
  %count = addi %count, 1
  jump olatch
olatch:
  %i = addi %i, 1
  jump ohead
done:
  ret %count
}",
        inputs: &[&[100, 6, 100], &[100, 10, 103], &[5000, 12, 5001]],
    },
    // CRC-like bit loop: shifts, xors, predicated with select.
    Kernel {
        text: "
func @crc {
entry:
  %data, %n = input
  %poly = make 0x1D
  %one = make 1
  %acc = make 0
  %i = make 0
  jump ohead
ohead:
  %oc = cmplt %i, %n
  br %oc, obody, done
obody:
  %p = add %data, %i
  %v = load %p
  %acc = xor %acc, %v
  %b = make 0
  jump bhead
bhead:
  %eight = make 8
  %bc = cmplt %b, %eight
  br %bc, bbody, olatch
bbody:
  %low = and %acc, %one
  %shifted = shr %acc, %one
  %x = xor %shifted, %poly
  %acc = select %low, %x, %shifted
  %b = addi %b, 1
  jump bhead
olatch:
  %i = addi %i, 1
  jump ohead
done:
  ret %acc
}",
        inputs: &[&[9000, 0], &[9000, 2], &[9000, 5]],
    },
    // Iterative Fibonacci (the classic φ swap chain).
    Kernel {
        text: "
func @fib {
entry:
  %n = input
  %a = make 0
  %b = make 1
  %i = make 0
  jump head
head:
  %c = cmplt %i, %n
  br %c, body, exit
body:
  %t = add %a, %b
  %a = mov %b
  %b = mov %t
  %i = addi %i, 1
  jump head
exit:
  ret %a
}",
        inputs: &[&[0], &[1], &[10], &[20]],
    },
    // Subtraction-based GCD (data-dependent swap).
    Kernel {
        text: "
func @gcd {
entry:
  %a, %b = input
  jump head
head:
  %ne = cmpne %a, %b
  br %ne, body, exit
body:
  %agtb = cmplt %b, %a
  br %agtb, suba, subb
suba:
  %a = sub %a, %b
  jump head
subb:
  %b = sub %b, %a
  jump head
exit:
  ret %a
}",
        inputs: &[&[12, 18], &[35, 14], &[7, 7], &[1, 9]],
    },
    // Horner polynomial evaluation.
    Kernel {
        text: "
func @horner {
entry:
  %coef, %deg, %x = input
  %acc = make 0
  %i = make 0
  jump head
head:
  %c = cmple %i, %deg
  br %c, body, exit
body:
  %p = add %coef, %i
  %cv = load %p
  %m = mul %acc, %x
  %acc = add %m, %cv
  %i = addi %i, 1
  jump head
exit:
  ret %acc
}",
        inputs: &[&[600, 0, 3], &[600, 3, 2], &[600, 5, -1]],
    },
    // Call-heavy loop: one ABI-constrained call per element.
    Kernel {
        text: "
func @mapcall {
entry:
  %a, %n = input
  %acc = make 0
  %i = make 0
  jump head
head:
  %c = cmplt %i, %n
  br %c, body, exit
body:
  %p = add %a, %i
  %v = load %p
  %r = call transform(%v, %acc)
  %acc = add %acc, %r
  %i = addi %i, 1
  jump head
exit:
  %f = call finish(%acc)
  ret %f
}",
        inputs: &[&[70, 0], &[70, 3], &[70, 6]],
    },
    // Clipping loop using selects (predication-friendly).
    Kernel {
        text: "
func @clip {
entry:
  %a, %n, %lo, %hi = input
  %acc = make 0
  %i = make 0
  jump head
head:
  %c = cmplt %i, %n
  br %c, body, exit
body:
  %p = add %a, %i
  %v = load %p
  %below = cmplt %v, %lo
  %v = select %below, %lo, %v
  %above = cmplt %hi, %v
  %v = select %above, %hi, %v
  store %p, %v
  %acc = add %acc, %v
  %i = addi %i, 1
  jump head
exit:
  ret %acc
}",
        inputs: &[&[333, 0, -10, 10], &[333, 5, -100, 100], &[333, 8, 0, 1]],
    },
    // Count elements matching a key (bounded scan).
    Kernel {
        text: "
func @countmatch {
entry:
  %a, %n, %key = input
  %count = make 0
  %i = make 0
  jump head
head:
  %c = cmplt %i, %n
  br %c, body, exit
body:
  %p = add %a, %i
  %v = load %p
  %eq = cmpeq %v, %key
  %count = add %count, %eq
  %i = addi %i, 1
  jump head
exit:
  ret %count
}",
        inputs: &[&[50, 0, 7], &[50, 6, 7], &[50, 9, 0]],
    },
    // Stack-relative locals: exercises the SP web (pinningSP).
    Kernel {
        text: "
func @stack {
entry:
  %a, %b = input
  SP = addi SP, -4
  store SP, %a
  %t1 = addi SP, 1
  store %t1, %b
  %x = load SP
  %y = load %t1
  %s = add %x, %y
  %t2 = addi SP, 2
  store %t2, %s
  %z = load %t2
  %m = mul %z, %s
  SP = addi SP, 4
  ret %m
}",
        inputs: &[&[3, 4], &[100, -100]],
    },
    // 2x2 matrix multiply, fully unrolled straightline.
    Kernel {
        text: "
func @mat2 {
entry:
  %ma, %mb = input
  %a0 = load %ma
  %pa1 = addi %ma, 1
  %a1 = load %pa1
  %pa2 = addi %ma, 2
  %a2 = load %pa2
  %pa3 = addi %ma, 3
  %a3 = load %pa3
  %b0 = load %mb
  %pb1 = addi %mb, 1
  %b1 = load %pb1
  %pb2 = addi %mb, 2
  %b2 = load %pb2
  %pb3 = addi %mb, 3
  %b3 = load %pb3
  %c0a = mul %a0, %b0
  %c0b = mul %a1, %b2
  %c0 = add %c0a, %c0b
  %c1a = mul %a0, %b1
  %c1b = mul %a1, %b3
  %c1 = add %c1a, %c1b
  %c2a = mul %a2, %b0
  %c2b = mul %a3, %b2
  %c2 = add %c2a, %c2b
  %c3a = mul %a2, %b1
  %c3b = mul %a3, %b3
  %c3 = add %c3a, %c3b
  %t0 = add %c0, %c1
  %t1 = add %c2, %c3
  %tr = add %c0, %c3
  %sum = add %t0, %t1
  %r = xor %sum, %tr
  ret %r
}",
        inputs: &[&[100, 200], &[42, 4242]],
    },
    // Delay-line rotation: a 4-tap shift register per iteration — the
    // φ-permutation pattern where greedy post-hoc coalescing cascades
    // badly but per-block affinity optimization does not.
    Kernel {
        text: "
func @delayline {
entry:
  %x, %n = input
  %k1 = make 3
  %k2 = make 5
  %k3 = make 7
  %k4 = make 11
  %d1 = make 0
  %d2 = make 0
  %d3 = make 0
  %d4 = make 0
  %acc = make 0
  %i = make 0
  jump head
head:
  %c = cmplt %i, %n
  br %c, body, exit
body:
  %xv = load %x
  %x = autoadd %x, 1
  %m1 = mul %d1, %k1
  %m2 = mul %d2, %k2
  %m3 = mul %d3, %k3
  %m4 = mul %d4, %k4
  %s1 = add %m1, %m2
  %s2 = add %m3, %m4
  %s = add %s1, %s2
  %acc = add %acc, %s
  %d4 = mov %d3
  %d3 = mov %d2
  %d2 = mov %d1
  %d1 = mov %xv
  %i = addi %i, 1
  jump head
exit:
  ret %acc
}",
        inputs: &[&[4242, 0], &[4242, 3], &[4242, 9]],
    },
    // Running sum of squares with an early-exit threshold.
    Kernel {
        text: "
func @sumsq {
entry:
  %a, %n, %limit = input
  %acc = make 0
  %i = make 0
  jump head
head:
  %c = cmplt %i, %n
  br %c, body, exit
body:
  %p = add %a, %i
  %v = load %p
  %sq = mul %v, %v
  %acc = add %acc, %sq
  %over = cmplt %limit, %acc
  br %over, exit, latch
latch:
  %i = addi %i, 1
  jump head
exit:
  ret %acc, %i
}",
        inputs: &[&[25, 0, 100], &[25, 6, 99999999], &[25, 9, 5]],
    },
];

/// The temp-heavy "second compiler" rewrite: every use of an ALU
/// instruction is routed through a fresh `addi t, x, 0` temporary — a
/// redundant register-register operation that survives copy propagation,
/// lengthening live ranges the way a weaker code generator does (the
/// paper's two ST120 C compilers differ exactly in such quality).
pub fn temp_heavy(f: &Function) -> Function {
    let mut g = f.clone();
    let mut spill_toggle = false;
    let mut spill_slot: i64 = 0;
    for b in g.blocks().collect::<Vec<_>>() {
        let mut pos = 0;
        while pos < g.block(b).insts.len() {
            let i = g.block(b).insts[pos];
            let opcode = g.inst(i).opcode;
            let rewrite = matches!(
                opcode,
                Opcode::Add
                    | Opcode::Sub
                    | Opcode::Mul
                    | Opcode::And
                    | Opcode::Or
                    | Opcode::Xor
                    | Opcode::Shl
                    | Opcode::Shr
                    | Opcode::CmpEq
                    | Opcode::CmpNe
                    | Opcode::CmpLt
                    | Opcode::CmpLe
            );
            if !rewrite {
                pos += 1;
                continue;
            }
            // Accumulator-style update `x = op(..., x, ...)`?
            let d = g.inst(i).defs[0].var;
            let is_accum = g.inst(i).uses.iter().any(|u| u.var == d);
            let mut saved = None;
            if is_accum {
                spill_toggle = !spill_toggle;
                if spill_toggle {
                    // Model a less aggressive compiler that keeps the old
                    // accumulator value alive across the update and spills
                    // it afterwards: the old value then overlaps the new
                    // definition, reshaping the φ webs' interference.
                    let save = g.new_var("save");
                    g.insert_inst(b, pos, InstData::mov(save, d));
                    pos += 1;
                    saved = Some(save);
                }
            }
            // Route every operand through a redundant `addi t, x, 0`.
            let uses = g.inst(i).uses.to_vec();
            for (k, u) in uses.iter().enumerate() {
                let t = g.new_var(format!("t{}", k));
                g.insert_inst(
                    b,
                    pos,
                    InstData::new(Opcode::AddImm)
                        .with_defs(vec![t.into()])
                        .with_uses(vec![u.var.into()]),
                );
                pos += 1;
                g.inst_mut(i).uses[k].var = t;
            }
            pos += 1; // past the rewritten instruction
            if let Some(save) = saved {
                let addr = g.new_var("spilladdr");
                spill_slot += 1;
                g.insert_inst(
                    b,
                    pos,
                    InstData::new(Opcode::Make)
                        .with_defs(vec![addr.into()])
                        .with_imm(0x7F00_0000 + spill_slot),
                );
                pos += 1;
                g.insert_inst(
                    b,
                    pos,
                    InstData::new(Opcode::Store).with_uses(vec![addr.into(), save.into()]),
                );
                pos += 1;
            }
        }
    }
    g
}

fn parse(text: &str) -> Function {
    let f = parse_function(text, &Machine::dsp32())
        .unwrap_or_else(|e| panic!("kernel parse error: {e}\n{text}"));
    f.validate()
        .unwrap_or_else(|e| panic!("kernel invalid: {e}\n{text}"));
    f
}

/// The `VALcc1` substitute: the kernels as written.
pub fn valcc1() -> Vec<BenchFunction> {
    KERNELS
        .iter()
        .map(|k| BenchFunction {
            func: parse(k.text),
            inputs: k.inputs.iter().map(|i| i.to_vec()).collect(),
        })
        .collect()
}

/// The `VALcc2` substitute: the same kernels through the temp-heavy
/// second-compiler model.
pub fn valcc2() -> Vec<BenchFunction> {
    KERNELS
        .iter()
        .map(|k| BenchFunction {
            func: temp_heavy(&parse(k.text)),
            inputs: k.inputs.iter().map(|i| i.to_vec()).collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tossa_ir::interp;

    #[test]
    fn all_kernels_parse_validate_and_run() {
        for bf in valcc1() {
            for inputs in &bf.inputs {
                let r = interp::run(&bf.func, inputs, 1_000_000)
                    .unwrap_or_else(|e| panic!("kernel {} traps on {inputs:?}: {e}", bf.func.name));
                assert!(!r.outputs.is_empty(), "{}", bf.func.name);
            }
        }
    }

    #[test]
    fn temp_heavy_preserves_semantics_and_adds_temporaries() {
        for (a, b) in valcc1().into_iter().zip(valcc2()) {
            assert!(
                b.func.all_insts().count() >= a.func.all_insts().count(),
                "{}",
                a.func.name
            );
            for inputs in &a.inputs {
                assert_eq!(
                    interp::run(&a.func, inputs, 1_000_000).unwrap().outputs,
                    interp::run(&b.func, inputs, 1_000_000).unwrap().outputs,
                    "{} on {inputs:?}",
                    a.func.name
                );
            }
        }
    }

    #[test]
    fn fib_is_fib() {
        let suite = valcc1();
        let fib = suite.iter().find(|b| b.func.name == "fib").unwrap();
        assert_eq!(
            interp::run(&fib.func, &[10], 10_000).unwrap().outputs,
            vec![55]
        );
    }

    #[test]
    fn gcd_is_gcd() {
        let suite = valcc1();
        let gcd = suite.iter().find(|b| b.func.name == "gcd").unwrap();
        assert_eq!(
            interp::run(&gcd.func, &[12, 18], 10_000).unwrap().outputs,
            vec![6]
        );
        assert_eq!(
            interp::run(&gcd.func, &[35, 14], 10_000).unwrap().outputs,
            vec![7]
        );
    }

    #[test]
    fn suite_size_matches_paper_scale() {
        // "about 40 small functions" across the two compiler variants.
        assert!(valcc1().len() + valcc2().len() >= 38);
    }
}
