//! `LAI Large` substitute: larger fixed-point speech-codec-like
//! functions, modeled on the ETSI EFR vocoder stages the paper's
//! `LAI Large` suite comes from (§5). Each generator emits LAI text with
//! deeper loop nests, more temporaries, and calls, parameterized by a
//! frame size so several scales can be produced deterministically.

use crate::suites::BenchFunction;
use std::fmt::Write as _;
use tossa_ir::machine::Machine;
use tossa_ir::parse::parse_function;

fn build(text: String, inputs: Vec<Vec<i64>>) -> BenchFunction {
    let func = parse_function(&text, &Machine::dsp32())
        .unwrap_or_else(|e| panic!("vocoder parse: {e}\n{text}"));
    func.validate()
        .unwrap_or_else(|e| panic!("vocoder invalid: {e}"));
    BenchFunction { func, inputs }
}

/// Hamming-like windowing: `out[i] = (x[i] * w[i]) >> 15`, windows built
/// with make/more constants, pointers walked with autoadd.
fn windowing(unroll: usize) -> BenchFunction {
    let mut t = String::from(
        "func @vc_window {
entry:
  %x, %w, %out, %n = input
  %k15 = make 15
  %acc = make 0
  %i = make 0
  jump head
head:
  %c = cmplt %i, %n
  br %c, body, exit
body:
",
    );
    for u in 0..unroll {
        let _ = write!(
            t,
            "  %xv{u} = load %x
  %x = autoadd %x, 1
  %wv{u} = load %w
  %w = autoadd %w, 1
  %p{u} = mul %xv{u}, %wv{u}
  %s{u} = shr %p{u}, %k15
  store %out, %s{u}
  %out = autoadd %out, 1
  %acc = add %acc, %s{u}
"
        );
    }
    let _ = write!(
        t,
        "  %i = addi %i, {unroll}
  jump head
exit:
  ret %acc
}}
"
    );
    build(
        t,
        vec![
            vec![1000, 2000, 3000, 0],
            vec![1000, 2000, 3000, 8],
            vec![1000, 2000, 3000, 16],
        ],
    )
}

/// Autocorrelation: nested loop `r[k] = Σ x[i]·x[i+k]`, the classic
/// depth-2 DSP kernel of every LPC front end.
fn autocorrelation() -> BenchFunction {
    let t = "
func @vc_autocorr {
entry:
  %x, %n, %order, %r = input
  %k = make 0
  jump ohead
ohead:
  %oc = cmple %k, %order
  br %oc, oinit, done
oinit:
  %acc = make 0
  %i = make 0
  %lim = sub %n, %k
  jump ihead
ihead:
  %ic = cmplt %i, %lim
  br %ic, ibody, ostore
ibody:
  %pi = add %x, %i
  %ik = add %i, %k
  %pk = add %x, %ik
  %vi = load %pi
  %vk = load %pk
  %p = mul %vi, %vk
  %acc = add %acc, %p
  %i = addi %i, 1
  jump ihead
ostore:
  %pr = add %r, %k
  store %pr, %acc
  %k = addi %k, 1
  jump ohead
done:
  %p0 = load %r
  ret %p0
}
"
    .to_string();
    build(t, vec![vec![100, 6, 3, 900], vec![100, 12, 5, 900]])
}

/// Levinson-like lattice recursion (simplified): two inner sweeps per
/// order with a reflection-coefficient call (models the division the EFR
/// code does via a helper).
fn lattice() -> BenchFunction {
    let t = "
func @vc_lattice {
entry:
  %r, %order = input
  %k15 = make 15
  %err = load %r
  %m = make 1
  jump ohead
ohead:
  %oc = cmple %m, %order
  br %oc, obody, done
obody:
  %pm = add %r, %m
  %rm = load %pm
  %acc = make 0
  %j = make 1
  jump ihead
ihead:
  %ic = cmplt %j, %m
  br %ic, ibody, refl
ibody:
  %pj = add %r, %j
  %aj = load %pj
  %mj = sub %m, %j
  %pmj = add %r, %mj
  %rj = load %pmj
  %pr = mul %aj, %rj
  %pr = shr %pr, %k15
  %acc = add %acc, %pr
  %j = addi %j, 1
  jump ihead
refl:
  %num = sub %rm, %acc
  %kcoef = call divide(%num, %err)
  %j2 = make 1
  jump uhead
uhead:
  %uc = cmplt %j2, %m
  br %uc, ubody, uend
ubody:
  %pj2 = add %r, %j2
  %aj2 = load %pj2
  %mj2 = sub %m, %j2
  %pmj2 = add %r, %mj2
  %amj = load %pmj2
  %t1 = mul %kcoef, %amj
  %t1 = shr %t1, %k15
  %anew = add %aj2, %t1
  store %pj2, %anew
  %j2 = addi %j2, 1
  jump uhead
uend:
  %ksq = mul %kcoef, %kcoef
  %ksq = shr %ksq, %k15
  %one = make 0x7FFF
  %fac = sub %one, %ksq
  %err = mul %err, %fac
  %err = shr %err, %k15
  %m = addi %m, 1
  jump ohead
done:
  ret %err
}
"
    .to_string();
    build(t, vec![vec![700, 2], vec![700, 4], vec![700, 6]])
}

/// Codebook quantization: exhaustive nearest-entry search, depth 2 with
/// a branchy running minimum.
fn quantize() -> BenchFunction {
    let t = "
func @vc_quantize {
entry:
  %vec, %dim, %book, %entries = input
  %best = make 0x7FFF
  %best = more %best, 0xFFFF
  %bestidx = make 0
  %e = make 0
  jump ohead
ohead:
  %oc = cmplt %e, %entries
  br %oc, oinit, done
oinit:
  %dist = make 0
  %d = make 0
  %row = mul %e, %dim
  %base = add %book, %row
  jump ihead
ihead:
  %ic = cmplt %d, %dim
  br %ic, ibody, compare
ibody:
  %pv = add %vec, %d
  %pb = add %base, %d
  %vv = load %pv
  %bv = load %pb
  %diff = sub %vv, %bv
  %sq = mul %diff, %diff
  %dist = add %dist, %sq
  %d = addi %d, 1
  jump ihead
compare:
  %lt = cmplt %dist, %best
  br %lt, newbest, olatch
newbest:
  %best = mov %dist
  %bestidx = mov %e
  jump olatch
olatch:
  %e = addi %e, 1
  jump ohead
done:
  ret %bestidx, %best
}
"
    .to_string();
    build(t, vec![vec![100, 3, 400, 4], vec![100, 4, 400, 8]])
}

/// Pitch interpolation: fractional-delay FIR across a frame, depth 2,
/// with stack-relative scratch (exercises the SP web at scale).
fn interpolate() -> BenchFunction {
    let t = "
func @vc_interp {
entry:
  %sig, %n, %frac = input
  %k6 = make 6
  %k12 = make 12
  SP = addi SP, -8
  %acc = make 0
  %i = make 0
  jump ohead
ohead:
  %oc = cmplt %i, %n
  br %oc, oinit, done
oinit:
  %sum = make 0
  %t = make 0
  jump ihead
ihead:
  %ic = cmplt %t, %k6
  br %ic, ibody, ostore
ibody:
  %idx = add %i, %t
  %ps = add %sig, %idx
  %sv = load %ps
  %coefidx = mul %t, %frac
  %coef = addi %coefidx, 3
  %pr = mul %sv, %coef
  %sum = add %sum, %pr
  %t = addi %t, 1
  jump ihead
ostore:
  %sum = shr %sum, %k12
  %slot = and %i, %k6
  %sp2 = add SP, %slot
  store %sp2, %sum
  %back = load %sp2
  %acc = add %acc, %back
  %i = addi %i, 1
  jump ohead
done:
  SP = addi SP, 8
  ret %acc
}
"
    .to_string();
    build(t, vec![vec![100, 0, 1], vec![100, 5, 2], vec![100, 12, 3]])
}

/// Residual energy: triple-nested subframe/tap/sample sweep with a call
/// per subframe, the biggest function of the suite.
fn residual(depth3: bool) -> BenchFunction {
    let inner = if depth3 {
        "
  %s = make 0
  jump shead
shead:
  %sc = cmplt %s, %taps
  br %sc, sbody, send
sbody:
  %st = add %tap, %s
  %pp = add %exc, %st
  %ev = load %pp
  %prod = mul %ev, %gain
  %energy = add %energy, %prod
  %s = addi %s, 1
  jump shead
send:
"
    } else {
        "
"
    };
    let name = if depth3 {
        "vc_residual3"
    } else {
        "vc_residual2"
    };
    let t = format!(
        "func @{name} {{
entry:
  %exc, %nsub, %taps, %gain = input
  %total = make 0
  %sub = make 0
  jump ohead
ohead:
  %oc = cmplt %sub, %nsub
  br %oc, oinit, done
oinit:
  %energy = make 0
  %tap = make 0
  jump thead
thead:
  %tc = cmplt %tap, %taps
  br %tc, tbody, onorm
tbody:
  %pt = add %exc, %tap
  %tv = load %pt
  %sq = mul %tv, %tv
  %energy = add %energy, %sq
{inner}
  %tap = addi %tap, 1
  jump thead
onorm:
  %norm = call normalize(%energy, %sub)
  %total = add %total, %norm
  %sub = addi %sub, 1
  jump ohead
done:
  ret %total
}}
"
    );
    build(t, vec![vec![100, 2, 3, 2], vec![100, 4, 5, 3]])
}

/// The `LAI Large` substitute suite.
pub fn lai_large() -> Vec<BenchFunction> {
    vec![
        windowing(1),
        windowing(4),
        autocorrelation(),
        lattice(),
        quantize(),
        interpolate(),
        residual(false),
        residual(true),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use tossa_ir::interp;

    #[test]
    fn suite_builds_and_runs() {
        let suite = lai_large();
        assert_eq!(suite.len(), 8);
        for bf in &suite {
            for inputs in &bf.inputs {
                interp::run(&bf.func, inputs, 5_000_000)
                    .unwrap_or_else(|e| panic!("{} traps on {inputs:?}: {e}", bf.func.name));
            }
        }
    }

    #[test]
    fn functions_are_larger_than_kernels() {
        let suite = lai_large();
        let total: usize = suite.iter().map(|b| b.func.all_insts().count()).sum();
        assert!(total > 250, "LAI Large should be big, got {total} insts");
    }
}
