//! `SPECint` substitute: a seeded generator of random *structured*
//! programs (nested if/else and bounded while regions over a pool of
//! mutable variables, with calls, memory traffic, and two-operand
//! instructions). The suite models the scale and shape distribution of a
//! large integer benchmark: many functions, moderate CFGs, deep-ish
//! loops — without the licensed sources.
//!
//! Generation is purely textual (the generator emits LAI code that goes
//! through the ordinary parser), deterministic per seed, and every
//! variable is initialized in the entry block so all paths are
//! definition-complete.

use crate::suites::BenchFunction;
use std::fmt::Write as _;
use tossa_ir::machine::Machine;
use tossa_ir::parse::parse_function;
use tossa_ir::rng::SplitMix64;

/// Tuning of the generator.
#[derive(Clone, Copy, Debug)]
pub struct SynthConfig {
    /// Number of functions to generate.
    pub functions: usize,
    /// Mutable variable pool size per function.
    pub pool: usize,
    /// Maximum region nesting depth.
    pub max_depth: usize,
    /// Statements per region body (before nesting).
    pub body_len: usize,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            functions: 40,
            pool: 8,
            max_depth: 3,
            body_len: 5,
        }
    }
}

struct Gen {
    rng: SplitMix64,
    text: String,
    pool: usize,
    next_label: usize,
    next_tmp: usize,
    loop_count: usize,
}

impl Gen {
    fn var(&mut self) -> String {
        let i = self.rng.random_range(0..self.pool);
        format!("%p{i}")
    }

    fn tmp(&mut self) -> String {
        self.next_tmp += 1;
        format!("%t{}", self.next_tmp)
    }

    fn label(&mut self, stem: &str) -> String {
        self.next_label += 1;
        format!("{stem}{}", self.next_label)
    }

    fn line(&mut self, s: &str) {
        let _ = writeln!(self.text, "  {s}");
    }

    /// One straight-line statement.
    fn statement(&mut self) {
        let choice = self.rng.random_range(0..100);
        let dst = self.var();
        match choice {
            0..=29 => {
                let (a, b) = (self.var(), self.var());
                let op = ["add", "sub", "mul", "xor", "and", "or"][self.rng.random_range(0..6)];
                self.line(&format!("{dst} = {op} {a}, {b}"));
            }
            30..=44 => {
                let a = self.var();
                let imm = self.rng.random_range(-64..64);
                self.line(&format!("{dst} = addi {a}, {imm}"));
            }
            45..=54 => {
                let imm = self.rng.random_range(0..0xFFFF);
                self.line(&format!("{dst} = make {imm}"));
            }
            55..=59 => {
                // Two-operand constant extension.
                let a = self.var();
                let imm = self.rng.random_range(0..0xFFFF);
                self.line(&format!("{dst} = more {a}, {imm}"));
            }
            60..=69 => {
                // Bounded memory access through a masked address.
                let a = self.var();
                let t = self.tmp();
                let mask = self.tmp();
                self.line(&format!("{mask} = make 255"));
                self.line(&format!("{t} = and {a}, {mask}"));
                if self.rng.random_range(0..2) == 0 {
                    self.line(&format!("{dst} = load {t}"));
                } else {
                    let v = self.var();
                    self.line(&format!("store {t}, {v}"));
                }
            }
            70..=74 => {
                // Pointer auto-modification.
                let t = self.tmp();
                let mask = self.tmp();
                let src = self.var();
                self.line(&format!("{mask} = make 1023"));
                self.line(&format!("{t} = and {src}, {mask}"));
                self.line(&format!("{dst} = autoadd {t}, 2"));
            }
            75..=82 => {
                let (a, b) = (self.var(), self.var());
                let callee =
                    ["helper", "lookup", "hashstep", "update"][self.rng.random_range(0..4)];
                self.line(&format!("{dst} = call {callee}({a}, {b})"));
            }
            83..=89 => {
                let (c, a, b) = (self.var(), self.var(), self.var());
                self.line(&format!("{dst} = select {c}, {a}, {b}"));
            }
            90..=94 => {
                let a = self.var();
                self.line(&format!("{dst} = mov {a}"));
            }
            _ => {
                let (a, b) = (self.var(), self.var());
                let op = ["cmpeq", "cmplt", "cmple", "cmpne"][self.rng.random_range(0..4)];
                self.line(&format!("{dst} = {op} {a}, {b}"));
            }
        }
    }

    /// A region: a body of statements with nested ifs/loops, emitted into
    /// the current block; ends still inside a block (no terminator).
    fn region(&mut self, depth: usize, body_len: usize) {
        for _ in 0..body_len {
            let kind = self.rng.random_range(0..100);
            if depth > 0 && kind < 18 {
                self.if_else(depth, body_len);
            } else if depth > 0 && kind < 32 {
                self.bounded_loop(depth, body_len);
            } else {
                self.statement();
            }
        }
    }

    fn if_else(&mut self, depth: usize, body_len: usize) {
        let (a, b) = (self.var(), self.var());
        let c = self.tmp();
        let then_l = self.label("then");
        let else_l = self.label("else");
        let join_l = self.label("join");
        self.line(&format!("{c} = cmplt {a}, {b}"));
        self.line(&format!("br {c}, {then_l}, {else_l}"));
        let _ = writeln!(self.text, "{then_l}:");
        self.region(depth - 1, body_len.max(1) - 1);
        self.line(&format!("jump {join_l}"));
        let _ = writeln!(self.text, "{else_l}:");
        self.region(depth - 1, body_len.max(1) - 1);
        self.line(&format!("jump {join_l}"));
        let _ = writeln!(self.text, "{join_l}:");
    }

    /// A counted loop with a dedicated counter (always terminates).
    fn bounded_loop(&mut self, depth: usize, body_len: usize) {
        self.loop_count += 1;
        let n = self.loop_count;
        let trips = self.rng.random_range(1..6);
        let head = self.label("head");
        let body = self.label("body");
        let exit = self.label("exit");
        self.line(&format!("%loop{n} = make 0"));
        self.line(&format!("%lim{n} = make {trips}"));
        self.line(&format!("jump {head}"));
        let _ = writeln!(self.text, "{head}:");
        self.line(&format!("%lc{n} = cmplt %loop{n}, %lim{n}"));
        self.line(&format!("br %lc{n}, {body}, {exit}"));
        let _ = writeln!(self.text, "{body}:");
        self.region(depth - 1, body_len.max(1) - 1);
        self.line(&format!("%loop{n} = addi %loop{n}, 1"));
        self.line(&format!("jump {head}"));
        let _ = writeln!(self.text, "{exit}:");
    }
}

/// Generates one function deterministically from `seed`.
pub fn generate_function(seed: u64, cfg: &SynthConfig) -> BenchFunction {
    let mut g = Gen {
        rng: SplitMix64::seed_from_u64(seed),
        text: String::new(),
        pool: cfg.pool,
        next_label: 0,
        next_tmp: 0,
        loop_count: 0,
    };
    let _ = writeln!(g.text, "func @synth{seed} {{");
    let _ = writeln!(g.text, "entry:");
    // Inputs seed the first few pool variables; the rest are constants.
    let ninputs = g.rng.random_range(1..4.min(cfg.pool));
    let input_list: Vec<String> = (0..ninputs).map(|i| format!("%p{i}")).collect();
    g.line(&format!("{} = input", input_list.join(", ")));
    for i in ninputs..cfg.pool {
        let imm = g.rng.random_range(0..1000);
        g.line(&format!("%p{i} = make {imm}"));
    }
    g.region(cfg.max_depth, cfg.body_len);
    // Return a couple of pool variables.
    let r1 = g.var();
    let r2 = g.var();
    g.line(&format!("ret {r1}, {r2}"));
    let _ = writeln!(g.text, "}}");

    let func = parse_function(&g.text, &Machine::dsp32())
        .unwrap_or_else(|e| panic!("synth parse: {e}\n{}", g.text));
    func.validate()
        .unwrap_or_else(|e| panic!("synth invalid: {e}\n{}", g.text));

    let mut irng = SplitMix64::seed_from_u64(seed ^ 0xDEAD_BEEF);
    let inputs: Vec<Vec<i64>> = (0..3)
        .map(|_| {
            (0..ninputs)
                .map(|_| irng.random_range(-100i64..100))
                .collect()
        })
        .collect();
    BenchFunction { func, inputs }
}

/// The `SPECint`-like suite.
pub fn specint_like(cfg: &SynthConfig) -> Vec<BenchFunction> {
    (0..cfg.functions as u64)
        .map(|seed| generate_function(seed + 1, cfg))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tossa_ir::interp;

    #[test]
    fn generation_is_deterministic() {
        let cfg = SynthConfig::default();
        let a = generate_function(7, &cfg);
        let b = generate_function(7, &cfg);
        assert_eq!(a.func.to_string(), b.func.to_string());
        assert_ne!(
            a.func.to_string(),
            generate_function(8, &cfg).func.to_string()
        );
    }

    #[test]
    fn all_generated_functions_run() {
        let cfg = SynthConfig {
            functions: 12,
            ..Default::default()
        };
        for bf in specint_like(&cfg) {
            for inputs in &bf.inputs {
                interp::run(&bf.func, inputs, 5_000_000).unwrap_or_else(|e| {
                    panic!("{} traps on {inputs:?}: {e}\n{}", bf.func.name, bf.func)
                });
            }
        }
    }

    #[test]
    fn generated_functions_have_structure() {
        let cfg = SynthConfig::default();
        let mut saw_loop = false;
        let mut saw_branch = false;
        for bf in specint_like(&SynthConfig {
            functions: 10,
            ..cfg
        }) {
            if bf.func.num_blocks() > 4 {
                saw_branch = true;
            }
            if bf.func.to_string().contains("%loop") {
                saw_loop = true;
            }
        }
        assert!(saw_loop && saw_branch);
    }
}
