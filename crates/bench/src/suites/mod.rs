//! The benchmark suites of the paper's §5 (substitutes — see DESIGN.md):
//! `VALcc1`, `VALcc2`, `example1-8`, `LAI Large`, and a `SPECint`-like
//! synthetic population.

pub mod kernels;
pub mod paper_examples;
pub mod synth;
pub mod vocoder;

use tossa_ir::Function;

/// One benchmark function plus sample inputs for end-to-end equivalence
/// checking.
#[derive(Clone, Debug)]
pub struct BenchFunction {
    /// The pre-SSA (multiple-assignment) function.
    pub func: Function,
    /// Input vectors the function is exercised on.
    pub inputs: Vec<Vec<i64>>,
}

/// A named suite.
#[derive(Clone, Debug)]
pub struct Suite {
    /// Suite name as it appears in the paper's tables.
    pub name: &'static str,
    /// The functions.
    pub functions: Vec<BenchFunction>,
}

impl Suite {
    /// Total instruction count (for scale reporting).
    pub fn num_insts(&self) -> usize {
        self.functions
            .iter()
            .map(|b| b.func.all_insts().count())
            .sum()
    }
}

/// All five suites, in the paper's table order. `spec_scale` controls the
/// size of the SPECint-like population (the paper's is large; tests use a
/// smaller scale).
pub fn all_suites(spec_scale: usize) -> Vec<Suite> {
    vec![
        Suite {
            name: "VALcc1",
            functions: kernels::valcc1(),
        },
        Suite {
            name: "VALcc2",
            functions: kernels::valcc2(),
        },
        Suite {
            name: "example1-8",
            functions: paper_examples::examples(),
        },
        Suite {
            name: "LAI Large",
            functions: vocoder::lai_large(),
        },
        Suite {
            name: "SPECint",
            functions: synth::specint_like(&synth::SynthConfig {
                functions: spec_scale,
                ..Default::default()
            }),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_suites() {
        let suites = all_suites(5);
        let names: Vec<&str> = suites.iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            vec!["VALcc1", "VALcc2", "example1-8", "LAI Large", "SPECint"]
        );
        for s in &suites {
            assert!(!s.functions.is_empty(), "{}", s.name);
            assert!(s.num_insts() > 0);
        }
    }
}
