//! `example1-8`: "small examples written in LAI code specifically for
//! the experiment" (§5) — reconstructions of the scenarios in the
//! paper's figures, written as pre-SSA functions whose SSA form exhibits
//! the figures' shapes.

use crate::suites::BenchFunction;
use tossa_ir::machine::Machine;
use tossa_ir::parse::parse_function;

struct Example {
    text: &'static str,
    inputs: &'static [&'static [i64]],
}

const EXAMPLES: &[Example] = &[
    // example1 — Fig. 1: ABI parameter passing + two-operand make/more
    // constant pair + autoadd.
    Example {
        text: "
func @example1 {
entry:
  %cin, %p = input
  %a = load %p
  %p = autoadd %p, 1
  %b = load %p
  %d = call f(%a, %b)
  %e = add %cin, %d
  %l = make 0x00A1
  %k = more %l, 0x2BFA
  %fo = sub %e, %k
  ret %fo
}",
        inputs: &[&[5, 900], &[-3, 1234]],
    },
    // example2 — Fig. 2 (corrected): an SP φ whose arguments agree, the
    // legal variant of the stack-pointer merge.
    Example {
        text: "
func @example2 {
entry:
  %c, %v = input
  SP = addi SP, -2
  store SP, %v
  br %c, l, r
l:
  %x = load SP
  %x = addi %x, 1
  jump m
r:
  %x = load SP
  jump m
m:
  SP = addi SP, 2
  ret %x
}",
        inputs: &[&[0, 7], &[1, 7]],
    },
    // example3 — Fig. 3: input in R0/R1, a loop whose φ web is pinned to
    // R0 by the call and return.
    Example {
        text: "
func @example3 {
entry:
  %x, %y = input
  %k = make 40
  jump head
head:
  %cond = cmplt %x, %k
  br %cond, body, exit
body:
  %x = addi %x, 1
  %y = add %y, %k
  %x = call g(%x, %y)
  jump head
exit:
  ret %x
}",
        inputs: &[&[39, 2], &[100, 5]],
    },
    // example4 — Fig. 5: x = φ(x1, x2) where one argument interferes
    // with the result.
    Example {
        text: "
func @example4 {
entry:
  %c = input
  %x1 = make 10
  br %c, l, r
l:
  jump m
r:
  %x2 = addi %x1, 5
  %x1 = addi %x2, 0
  jump m
m:
  %s = add %x1, %x1
  ret %s
}",
        inputs: &[&[0], &[1]],
    },
    // example5 — Fig. 8: partial coalescing; several definitions feed a
    // call result register while one value crosses the call.
    Example {
        text: "
func @example5 {
entry:
  %c = input
  %z = call f1()
  br %c, l, r
l:
  %w = call f2()
  %z = mov %w
  jump m
r:
  jump m
m:
  %u = call f3(%z)
  %s = add %u, %z
  ret %s
}",
        inputs: &[&[0], &[1]],
    },
    // example6 — Fig. 9: two φs in one block sharing arguments.
    Example {
        text: "
func @example6 {
entry:
  %c = input
  br %c, p1, p2
p1:
  %x = call f1()
  %y = call f2()
  jump m
p2:
  %x = call f3()
  %y = mov %x
  jump m
m:
  %s = add %x, %y
  ret %s
}",
        inputs: &[&[0], &[1]],
    },
    // example7 — Fig. 10: cross-swapping φs benefit from parallel-copy
    // placement.
    Example {
        text: "
func @example7 {
entry:
  %x, %y, %n = input
  %i = make 0
  jump head
head:
  %c = cmplt %i, %n
  br %c, body, exit
body:
  %t = mov %x
  %x = mov %y
  %y = mov %t
  %i = addi %i, 1
  jump head
exit:
  %r = call f(%x, %y)
  ret %r
}",
        inputs: &[&[1, 2, 0], &[1, 2, 1], &[1, 2, 3]],
    },
    // example8 — Fig. 11: a loop with an ABI-constrained autoadd whose φ
    // has one interfering argument.
    Example {
        text: "
func @example8 {
entry:
  %c, %init = input
  %b0 = call f1()
  %mask = make 7
  %b = and %b0, %mask
  %a = make 0
  jump head
head:
  %b = autoadd %b, 1
  %a = add %a, %b
  %cc = cmplt %b, %c
  br %cc, head, exit
exit:
  %r = add %a, %b
  ret %r
}",
        inputs: &[&[0, 0], &[10, 0]],
    },
];

/// The `example1-8` suite.
pub fn examples() -> Vec<BenchFunction> {
    EXAMPLES
        .iter()
        .map(|e| {
            let func = parse_function(e.text, &Machine::dsp32())
                .unwrap_or_else(|err| panic!("example parse: {err}\n{}", e.text));
            func.validate()
                .unwrap_or_else(|err| panic!("example invalid: {err}"));
            BenchFunction {
                func,
                inputs: e.inputs.iter().map(|i| i.to_vec()).collect(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tossa_ir::interp;

    #[test]
    fn all_examples_run() {
        let ex = examples();
        assert_eq!(ex.len(), 8);
        for bf in &ex {
            for inputs in &bf.inputs {
                interp::run(&bf.func, inputs, 1_000_000)
                    .unwrap_or_else(|e| panic!("{} traps on {inputs:?}: {e}", bf.func.name));
            }
        }
    }
}
