//! Delta-debugging reducer for failing fuzz cases.
//!
//! [`reduce`] shrinks a function while preserving a caller-supplied
//! failure predicate (typically "the checked pipeline reports an error
//! on this input"), by greedily applying size-decreasing edits to a
//! fixpoint:
//!
//! * delete one non-terminator instruction;
//! * delete one argument (and its predecessor entry) of a multi-argument
//!   φ;
//! * replace a conditional branch by an unconditional jump to either
//!   target (which usually strands whole blocks, letting instruction
//!   deletion finish the job).
//!
//! Every candidate is tried on a clone, so the predicate sees a complete
//! function and the reduction never passes through a non-failing state.
//! The predicate must tolerate arbitrary (even structurally invalid)
//! candidates and simply return `false` for the ones it cannot process —
//! the checked runner already does, since structural breakage is a
//! structured error, not a panic.

use tossa_ir::ids::Block;
use tossa_ir::instr::InstData;
use tossa_ir::{Function, Opcode};

/// One candidate shrinking edit.
#[derive(Clone, Copy, Debug)]
enum Edit {
    /// Remove the instruction at `block.insts[pos]` (never a terminator).
    DropInst { block: Block, pos: usize },
    /// Remove argument `k` of the φ at `block.insts[pos]`.
    DropPhiArg { block: Block, pos: usize, k: usize },
    /// Replace the `br` terminating `block` by `jump targets[k]`.
    BranchToJump { block: Block, k: usize },
}

fn candidates(f: &Function) -> Vec<Edit> {
    let mut out = Vec::new();
    for b in f.blocks() {
        for (pos, i) in f.block_insts(b).enumerate() {
            let inst = f.inst(i);
            if inst.is_terminator() {
                if inst.opcode == Opcode::Br {
                    out.push(Edit::BranchToJump { block: b, k: 0 });
                    out.push(Edit::BranchToJump { block: b, k: 1 });
                }
                continue;
            }
            out.push(Edit::DropInst { block: b, pos });
            if inst.is_phi() && inst.uses.len() >= 2 {
                for k in 0..inst.uses.len() {
                    out.push(Edit::DropPhiArg { block: b, pos, k });
                }
            }
        }
    }
    out
}

fn apply(f: &mut Function, e: Edit) {
    match e {
        Edit::DropInst { block, pos } => {
            let i = f.block(block).insts[pos];
            f.remove_inst(block, i);
        }
        Edit::DropPhiArg { block, pos, k } => {
            let i = f.block(block).insts[pos];
            f.phi_remove_arg(i, k);
        }
        Edit::BranchToJump { block, k } => {
            let i = f.terminator(block).expect("candidate site had a br");
            let target = f.inst(i).targets[k];
            f.replace_inst(i, InstData::new(Opcode::Jump).with_targets(vec![target]));
        }
    }
}

/// Instruction count, the size metric the reducer minimizes.
pub fn size(f: &Function) -> usize {
    f.all_insts().count()
}

/// Statistics of one reduction.
#[derive(Clone, Copy, Debug)]
pub struct ReduceStats {
    /// Instruction count before reduction.
    pub initial_size: usize,
    /// Instruction count of the reduced function.
    pub final_size: usize,
    /// Edits accepted.
    pub accepted: usize,
    /// Candidate edits tried (accepted + rejected).
    pub tried: usize,
}

/// Greedily shrinks `f` while `failing` stays true, to a fixpoint.
///
/// `failing(&f)` must be true on entry (debug-asserted); the returned
/// function still satisfies it. Candidates are applied to clones, and
/// each accepted edit strictly removes an instruction, a φ argument, or
/// a branch edge, so the loop terminates.
pub fn reduce(f: &Function, failing: &dyn Fn(&Function) -> bool) -> (Function, ReduceStats) {
    debug_assert!(failing(f), "reduce() needs a failing input");
    let mut cur = f.clone();
    let mut stats = ReduceStats {
        initial_size: size(f),
        final_size: 0,
        accepted: 0,
        tried: 0,
    };
    loop {
        let mut progressed = false;
        for e in candidates(&cur) {
            let mut cand = cur.clone();
            apply(&mut cand, e);
            stats.tried += 1;
            if failing(&cand) {
                cur = cand;
                stats.accepted += 1;
                progressed = true;
                break; // positions shifted; re-enumerate
            }
        }
        if !progressed {
            break;
        }
    }
    stats.final_size = size(&cur);
    (cur, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tossa_ir::machine::Machine;
    use tossa_ir::parse::parse_function;

    fn parse(text: &str) -> Function {
        parse_function(text, &Machine::dsp32()).unwrap()
    }

    #[test]
    fn strips_everything_irrelevant_to_the_predicate() {
        // The predicate only cares that some `mul` instruction survives;
        // the reducer must strip the rest of the body around it.
        let f = parse(
            "func @r {
entry:
  %a, %b = input
  %c = make 4
  %d = add %a, %b
  %e = mul %d, %c
  %g = sub %e, %a
  %h = add %g, %g
  ret %h
}",
        );
        let failing = |f: &Function| f.all_insts().any(|(_, i)| f.inst(i).opcode == Opcode::Mul);
        let (red, stats) = reduce(&f, &failing);
        assert!(failing(&red));
        assert!(stats.final_size < stats.initial_size, "{stats:?}");
        // Only the mul and possibly its block scaffolding remain.
        let muls = red
            .all_insts()
            .filter(|&(_, i)| red.inst(i).opcode == Opcode::Mul)
            .count();
        assert_eq!(muls, 1);
        assert!(stats.final_size <= 2, "{red}");
    }

    #[test]
    fn branch_collapses_to_jump() {
        let f = parse(
            "func @b {
entry:
  %c = input
  br %c, l, r
l:
  %x = make 1
  jump m
r:
  %y = make 2
  jump m
m:
  %z = phi [l: %x], [r: %y]
  ret %z
}",
        );
        // Failure = "a make 1 exists" — reachable via the left arm only.
        let failing = |f: &Function| {
            f.all_insts()
                .any(|(_, i)| f.inst(i).opcode == Opcode::Make && f.inst(i).imm == 1)
        };
        let (red, stats) = reduce(&f, &failing);
        assert!(failing(&red));
        assert!(
            red.all_insts()
                .all(|(_, i)| red.inst(i).opcode != Opcode::Br),
            "{red}"
        );
        assert!(stats.accepted > 0);
    }

    #[test]
    fn fixpoint_keeps_the_failure() {
        // Predicate: function still has a φ with two arguments. The
        // reducer may not drop below it.
        let f = parse(
            "func @p {
entry:
  %c = input
  br %c, l, r
l:
  %x = make 1
  jump m
r:
  %y = make 2
  jump m
m:
  %z = phi [l: %x], [r: %y]
  %w = add %z, %z
  ret %w
}",
        );
        let failing = |f: &Function| {
            f.all_insts()
                .any(|(_, i)| f.inst(i).is_phi() && f.inst(i).uses.len() >= 2)
        };
        let (red, _) = reduce(&f, &failing);
        assert!(failing(&red));
        // The add and ret payloads are droppable.
        assert!(
            red.all_insts()
                .all(|(_, i)| red.inst(i).opcode != Opcode::Add),
            "{red}"
        );
    }
}
