//! Decision-provenance reports: *why* each pin, coalesce verdict, copy,
//! and spill happened on a given suite × experiment run.
//!
//! Usage:
//!   `explain [--suite NAME] [--experiment NAME] [--function NAME]`
//!   `        [--naive] [--alloc] [--spill-everywhere] [--hull]`
//!   `        [--spec N] [--json FILE] [--quiet]`
//!   `explain --diff A.json B.json`
//!
//! * `--suite NAME`      — suite to run (default `VALcc1`);
//! * `--experiment NAME` — experiment, by enum key (`LphiAbiC`) or paper
//!   label (`Lphi,ABI+C`); default `LphiAbiC`;
//! * `--function NAME`   — restrict the report to one function;
//! * `--naive`           — pessimistic interference oracle (Algorithm 4
//!   `Variable_kills_pessimistic`): over-reports interference, so
//!   coalescing decisions flip against the default exact oracle — the
//!   knob `--diff` is meant to compare;
//! * `--alloc`           — run the register allocator too, so spill
//!   rationales appear;
//! * `--spill-everywhere` — allocate under the PR4 spill-everywhere
//!   policy instead of the cost-driven default; `--diff` two `--alloc`
//!   dumps (one with this flag, one without) to list exactly the webs
//!   whose spill decision flipped;
//! * `--hull`            — allocate over hull intervals (the pre-PR9
//!   model: no lifetime holes) instead of the per-range default;
//!   `--diff` against a default dump to list exactly the spill
//!   decisions that hole-precise liveness dissolves;
//! * `--json FILE`       — also write the machine-readable
//!   `tossa-explain/1` dump;
//! * `--quiet`           — skip the human-readable report (JSON only);
//! * `--diff A B`        — compare two `tossa-explain/1` dumps and list
//!   every flipped decision; exits 0 on identical decisions, 1 on any
//!   difference.
//!
//! The human report groups each function's records by kind and ends
//! with a pruning summary attributing every killed affinity edge to an
//! interference class with its concrete witness pair.

use tossa_bench::runner::{apply_alloc_with, run_experiment};
use tossa_bench::suites::all_suites;
use tossa_core::coalesce::CoalesceOptions;
use tossa_core::interfere::InterferenceMode;
use tossa_core::Experiment;
use tossa_regalloc::{AllocOptions, IntervalPrecision, SpillPolicy};
use tossa_trace::json::{parse_json, Json};
use tossa_trace::provenance::{records_json, Kind, Record, Verdict};
use tossa_trace::{escape_json, validate_json};

fn parse_experiment(name: &str) -> Option<Experiment> {
    Experiment::all()
        .iter()
        .copied()
        .find(|e| format!("{e:?}") == name || e.label() == name)
}

/// One function's run: its records plus the copy totals for the
/// cross-check line.
struct FunctionDump {
    function: String,
    records: Vec<Record>,
    total_copies: usize,
}

fn run_dump(
    suite_name: &str,
    exp: Experiment,
    opts: &CoalesceOptions,
    alloc: Option<&AllocOptions>,
    only: Option<&str>,
    spec_scale: usize,
) -> Vec<FunctionDump> {
    let suites = all_suites(spec_scale);
    let Some(suite) = suites.iter().find(|s| s.name == suite_name) else {
        eprintln!(
            "unknown suite {suite_name:?}; known: {}",
            suites.iter().map(|s| s.name).collect::<Vec<_>>().join(", ")
        );
        std::process::exit(2);
    };
    suite
        .functions
        .iter()
        .filter(|bf| only.is_none_or(|n| bf.func.name == n))
        .map(|bf| {
            let (r, trace) = tossa_trace::capture(|| {
                let mut r = run_experiment(&bf.func, exp, opts);
                if let Some(aopts) = alloc {
                    apply_alloc_with(&mut r, aopts);
                }
                r
            });
            FunctionDump {
                function: bf.func.name.clone(),
                records: trace.records,
                total_copies: r.recon.total_copies(),
            }
        })
        .collect()
}

fn print_report(d: &FunctionDump) {
    println!("== {} ==", d.function);
    let pins: Vec<_> = d
        .records
        .iter()
        .filter_map(|r| match &r.kind {
            Kind::Pin {
                var,
                resource,
                cause,
            } => Some((var, resource, cause)),
            _ => None,
        })
        .collect();
    println!("pins ({}):", pins.len());
    for (var, resource, cause) in pins {
        println!("  {var} -> {resource}  [{cause}]");
    }
    let edges: Vec<_> = d
        .records
        .iter()
        .filter_map(|r| match &r.kind {
            Kind::Edge {
                block,
                a,
                b,
                weight,
                verdict,
            } => Some((block, a, b, weight, verdict)),
            _ => None,
        })
        .collect();
    let mut by_class: Vec<(&str, usize)> = Vec::new();
    let mut coalesced = 0usize;
    let mut pruned = 0usize;
    println!("affinity edges ({}):", edges.len());
    for (block, a, b, weight, verdict) in &edges {
        match verdict {
            Verdict::Coalesced { into } => {
                coalesced += 1;
                println!("  [{block}] {a} -- {b}  w={weight}  coalesced -> {into}");
            }
            Verdict::PrunedInitial { class, witness }
            | Verdict::PrunedBipartite { class, witness } => {
                pruned += 1;
                let stage = if matches!(verdict, Verdict::PrunedInitial { .. }) {
                    "initial"
                } else {
                    "bipartite"
                };
                match by_class.iter_mut().find(|(n, _)| *n == class.name()) {
                    Some((_, k)) => *k += 1,
                    None => by_class.push((class.name(), 1)),
                }
                println!(
                    "  [{block}] {a} -- {b}  w={weight}  pruned({stage}) {} witness({}, {})",
                    class.name(),
                    witness.0,
                    witness.1
                );
            }
        }
    }
    let copies: Vec<_> = d
        .records
        .iter()
        .filter_map(|r| match &r.kind {
            Kind::Copy { dst, src, cause } => Some((dst, src, cause)),
            _ => None,
        })
        .collect();
    println!("copies ({}):", copies.len());
    for (dst, src, cause) in copies {
        println!("  {dst} = {src}  [{cause}]");
    }
    let spills: Vec<_> = d
        .records
        .iter()
        .filter_map(|r| match &r.kind {
            Kind::Spill {
                var,
                start,
                end,
                cause,
            } => Some((var, start, end, cause)),
            _ => None,
        })
        .collect();
    println!("spills ({}):", spills.len());
    for (var, start, end, cause) in spills {
        println!("  {var} [{start}, {end}]  [{cause}]");
    }
    by_class.sort();
    let classes = by_class
        .iter()
        .map(|(n, k)| format!("{n}={k}"))
        .collect::<Vec<_>>()
        .join(" ");
    println!(
        "summary: {coalesced} coalesced, {pruned} pruned ({})  reconstruct copies={}",
        if classes.is_empty() {
            "-".to_string()
        } else {
            classes
        },
        d.total_copies
    );
    println!();
}

fn dump_json(suite: &str, experiment: Experiment, mode: &str, dumps: &[FunctionDump]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"tossa-explain/1\",\n");
    out.push_str(&format!("  \"suite\": \"{}\",\n", escape_json(suite)));
    out.push_str(&format!("  \"experiment\": \"{experiment:?}\",\n"));
    out.push_str(&format!("  \"mode\": \"{}\",\n", escape_json(mode)));
    out.push_str("  \"functions\": [\n");
    for (i, d) in dumps.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"function\": \"{}\", \"total_copies\": {}, \"records\": {} }}{}\n",
            escape_json(&d.function),
            d.total_copies,
            records_json(&d.records),
            if i + 1 < dumps.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

// ---- diff mode ----------------------------------------------------------

/// A decision, keyed independently of record IDs so two dumps align by
/// *what* was decided, and compared by the verdict itself.
fn decision_key_value(r: &Json) -> Option<(String, String)> {
    let kind = r.get("kind")?.as_str()?;
    match kind {
        "pin" => Some((
            format!("pin {}", r.get("var")?.as_str()?),
            format!(
                "-> {} [{}]",
                r.get("resource")?.as_str()?,
                r.get("cause")?.as_str()?
            ),
        )),
        "edge" => {
            let verdict = r.get("verdict")?.as_str()?;
            let mut value = verdict.to_string();
            if let Some(into) = r.get("into").and_then(Json::as_str) {
                value.push_str(&format!(" -> {into}"));
            }
            if let Some(class) = r.get("class").and_then(Json::as_str) {
                value.push_str(&format!(" ({class})"));
            }
            Some((
                format!(
                    "edge [{}] {} -- {}",
                    r.get("block")?.as_str()?,
                    r.get("a")?.as_str()?,
                    r.get("b")?.as_str()?
                ),
                value,
            ))
        }
        "copy" => Some((
            format!(
                "copy {} = {}",
                r.get("dst")?.as_str()?,
                r.get("src")?.as_str()?
            ),
            format!("[{}]", r.get("cause")?.as_str()?),
        )),
        "spill" => Some((
            format!("spill {}", r.get("var")?.as_str()?),
            format!(
                "[{}, {}] [{}]",
                r.get("start")?.as_u64()?,
                r.get("end")?.as_u64()?,
                r.get("cause")?.as_str()?
            ),
        )),
        _ => None,
    }
}

/// function -> decision key -> list of values (a decision can repeat,
/// e.g. two identical copies; list order is the deterministic record
/// order).
type Decisions = Vec<(String, Vec<(String, Vec<String>)>)>;

fn load_decisions(path: &str) -> Decisions {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("reading {path}: {e}");
        std::process::exit(2);
    });
    let doc = parse_json(&text).unwrap_or_else(|e| {
        eprintln!("parsing {path}: {e}");
        std::process::exit(2);
    });
    if doc.get("schema").and_then(Json::as_str) != Some("tossa-explain/1") {
        eprintln!("{path}: not a tossa-explain/1 dump");
        std::process::exit(2);
    }
    let mut out: Decisions = Vec::new();
    for f in doc
        .get("functions")
        .and_then(Json::as_arr)
        .unwrap_or_default()
    {
        let name = f
            .get("function")
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_string();
        let mut decisions: Vec<(String, Vec<String>)> = Vec::new();
        for r in f.get("records").and_then(Json::as_arr).unwrap_or_default() {
            let Some((key, value)) = decision_key_value(r) else {
                continue;
            };
            match decisions.iter_mut().find(|(k, _)| *k == key) {
                Some((_, vs)) => vs.push(value),
                None => decisions.push((key, vec![value])),
            }
        }
        out.push((name, decisions));
    }
    out
}

fn diff(a_path: &str, b_path: &str) -> i32 {
    let a = load_decisions(a_path);
    let b = load_decisions(b_path);
    let mut flips = 0usize;
    let lookup = |set: &Decisions, f: &str, k: &str| -> Option<Vec<String>> {
        set.iter()
            .find(|(name, _)| name == f)
            .and_then(|(_, ds)| ds.iter().find(|(key, _)| key == k))
            .map(|(_, vs)| vs.clone())
    };
    for (fname, decisions) in &a {
        for (key, va) in decisions {
            match lookup(&b, fname, key) {
                Some(vb) if vb == *va => {}
                Some(vb) => {
                    flips += 1;
                    println!("{fname}: {key}");
                    println!("  - {}", va.join("; "));
                    println!("  + {}", vb.join("; "));
                }
                None => {
                    flips += 1;
                    println!("{fname}: {key}");
                    println!("  - {}", va.join("; "));
                    println!("  + (absent)");
                }
            }
        }
    }
    for (fname, decisions) in &b {
        for (key, vb) in decisions {
            if lookup(&a, fname, key).is_none() {
                flips += 1;
                println!("{fname}: {key}");
                println!("  - (absent)");
                println!("  + {}", vb.join("; "));
            }
        }
    }
    if flips == 0 {
        println!("no differing decisions between {a_path} and {b_path}");
        0
    } else {
        println!("{flips} differing decisions between {a_path} and {b_path}");
        1
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|p| args.get(p + 1))
            .cloned()
    };

    if let Some(p) = args.iter().position(|a| a == "--diff") {
        let (Some(a), Some(b)) = (args.get(p + 1), args.get(p + 2)) else {
            eprintln!("usage: explain --diff A.json B.json");
            std::process::exit(2);
        };
        std::process::exit(diff(a, b));
    }

    let suite = value("--suite").unwrap_or_else(|| "VALcc1".into());
    let exp_name = value("--experiment").unwrap_or_else(|| "LphiAbiC".into());
    let Some(exp) = parse_experiment(&exp_name) else {
        eprintln!(
            "unknown experiment {exp_name:?}; known: {}",
            Experiment::all()
                .iter()
                .map(|e| format!("{e:?}"))
                .collect::<Vec<_>>()
                .join(", ")
        );
        std::process::exit(2);
    };
    let naive = flag("--naive");
    let opts = CoalesceOptions {
        mode: if naive {
            InterferenceMode::Pessimistic
        } else {
            InterferenceMode::default()
        },
        ..CoalesceOptions::default()
    };
    let mode = if naive { "pessimistic" } else { "exact" };
    let spec_scale = value("--spec").and_then(|v| v.parse().ok()).unwrap_or(40);
    let only = value("--function");
    let alloc_opts = flag("--alloc").then(|| AllocOptions {
        spill_policy: if flag("--spill-everywhere") {
            SpillPolicy::Everywhere
        } else {
            SpillPolicy::default()
        },
        precision: if flag("--hull") {
            IntervalPrecision::Hull
        } else {
            IntervalPrecision::default()
        },
        ..Default::default()
    });
    let dumps = run_dump(
        &suite,
        exp,
        &opts,
        alloc_opts.as_ref(),
        only.as_deref(),
        spec_scale,
    );
    if dumps.is_empty() {
        eprintln!("no function matched");
        std::process::exit(2);
    }
    if !flag("--quiet") {
        for d in &dumps {
            print_report(d);
        }
    }
    if let Some(path) = value("--json") {
        let json = dump_json(&suite, exp, mode, &dumps);
        validate_json(&json).expect("explain dump is well-formed JSON");
        std::fs::write(&path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        eprintln!("wrote {path}");
    }
}
