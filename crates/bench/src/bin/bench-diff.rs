//! Statistical regression gate over `BENCH_*.json` trajectories.
//!
//! Usage: `bench-diff OLD.json[,OLD2.json,...] NEW.json[,NEW2.json,...]`
//! `       [--threshold PCT] [--resamples N] [--seed S] [--warn-only]`
//!
//! Timing cells are noisy, so they get a statistical treatment:
//! comma-separated repeat files are reduced per cell by min-of-N (the
//! minimum is the least-noise estimator for wall clocks), then the
//! per-cell log-ratios `ln(new/old)` are bootstrap-resampled
//! (`--resamples`, default 1000, seeded SplitMix64, `--seed` default 42)
//! into a percentile confidence interval on the mean log-ratio. A
//! *confident* timing regression — the whole 95% interval above
//! `--threshold` percent (default 10) — exits 1, unless `--warn-only`
//! downgrades it to a warning (CI uses this: timing noise across runner
//! machines should annotate, not block).
//!
//! Per-stage wall clocks (`stages.*_ns`) are timing-class too: each
//! stage's median log-ratio across all comparable cells is printed as an
//! attribution aid — when the end-to-end wall moves, the report names
//! the stage that moved it. Stage ratios are advisory and never flip the
//! exit status by themselves.
//!
//! Counter, move-count, and allocation cells are deterministic, so they
//! are compared exactly: any drift is reported cell by cell and exits 2
//! even under `--warn-only` — a changed counter means the *translation*
//! changed, which a perf-neutral PR must not do silently. Missing or
//! extra (suite × experiment) cells are structural drift, also exit 2.
//!
//! The top-level `"throughput"` object (schema v4: sustained
//! functions/sec through the full pipeline + allocation) is
//! timing-class: the ratio of `functions_per_sec` between the two sides
//! is reported as advisory and never affects the exit status — service
//! capacity varies with the runner machine, and the end-to-end CI above
//! is the timing gate. A side without the object (a v3 document, or a
//! `--no-throughput` run) simply skips the report.
//!
//! Two counters are exempt from the exact gate:
//! `analysis_cache_hits` and `analysis_cache_misses` measure the
//! memoization layer (how often an analysis memo was reused vs
//! recomputed), not the translation — a caching-policy change such as
//! the instructions-only invalidation fast path legitimately shifts
//! them while every move count, spill count, and output program stays
//! byte-identical. They are compared and *reported* as advisory shifts,
//! but never affect the exit status.
//!
//! Exit status: 0 clean, 1 confident timing regression, 2 counter or
//! structural drift (2 wins when both).

use std::collections::BTreeMap;
use tossa_ir::rng::SplitMix64;
use tossa_trace::json::{parse_json, Json};

/// One (suite × experiment) cell reduced to the comparable parts.
#[derive(Clone, Debug, Default)]
struct Cell {
    wall_ns: f64,
    /// Per-stage wall clocks (`stages.*_ns`), keyed by stage name.
    /// Timing-class like `wall_ns`: min-of-N reduced, ratio-compared.
    stages: BTreeMap<String, f64>,
    /// Deterministic scalars: moves, weighted, alloc stats, counters —
    /// all compared exactly, keyed by field name.
    exact: BTreeMap<String, u64>,
    /// Cache-policy counters (see module docs): compared and reported,
    /// but shifts never affect the exit status.
    advisory: BTreeMap<String, u64>,
}

/// Counters that measure the analysis memoization layer rather than the
/// translation; their drift is advisory (see module docs).
const ADVISORY_COUNTERS: [&str; 2] = [
    "counter.analysis_cache_hits",
    "counter.analysis_cache_misses",
];

type Cells = BTreeMap<(String, String), Cell>;

/// Names of the advisory compile-latency percentiles inside the
/// `"throughput"` object (schema v5), in [`Side::latency_ns`] order.
const LATENCY_KEYS: [&str; 3] = ["latency_p50_ns", "latency_p90_ns", "latency_p99_ns"];

/// One side of the comparison: the cell matrix plus the optional
/// top-level sustained-throughput figures (functions/sec since v4,
/// compile-latency percentiles since v5).
struct Side {
    cells: Cells,
    functions_per_sec: Option<f64>,
    /// p50/p90/p99 per-function compile latency, per [`LATENCY_KEYS`].
    latency_ns: [Option<f64>; 3],
}

fn load(path: &str) -> Side {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("reading {path}: {e}");
        std::process::exit(3);
    });
    let doc = parse_json(&text).unwrap_or_else(|e| {
        eprintln!("parsing {path}: {e}");
        std::process::exit(3);
    });
    let schema = doc.get("schema").and_then(Json::as_str).unwrap_or("");
    if !schema.starts_with("tossa-bench-trajectory/") {
        eprintln!("{path}: not a tossa-bench-trajectory document (schema {schema:?})");
        std::process::exit(3);
    }
    let mut cells = Cells::new();
    for s in doc.get("suites").and_then(Json::as_arr).unwrap_or_default() {
        let suite = s.get("suite").and_then(Json::as_str).unwrap_or("?");
        for e in s
            .get("experiments")
            .and_then(Json::as_arr)
            .unwrap_or_default()
        {
            let exp = e.get("experiment").and_then(Json::as_str).unwrap_or("?");
            let mut cell = Cell {
                wall_ns: e.get("wall_ns").and_then(Json::as_f64).unwrap_or(0.0),
                ..Cell::default()
            };
            if let Some(obj) = e.get("stages").and_then(Json::as_obj) {
                for (k, v) in obj {
                    if let Some(v) = v.as_f64() {
                        cell.stages.insert(k.clone(), v);
                    }
                }
            }
            for key in ["moves", "weighted"] {
                if let Some(v) = e.get(key).and_then(Json::as_u64) {
                    cell.exact.insert(key.to_string(), v);
                }
            }
            for (group, prefix) in [("alloc", "alloc."), ("counters", "counter.")] {
                if let Some(obj) = e.get(group).and_then(Json::as_obj) {
                    for (k, v) in obj {
                        if let Some(v) = v.as_u64() {
                            let field = format!("{prefix}{k}");
                            if ADVISORY_COUNTERS.contains(&field.as_str()) {
                                cell.advisory.insert(field, v);
                            } else {
                                cell.exact.insert(field, v);
                            }
                        }
                    }
                }
            }
            cells.insert((suite.to_string(), exp.to_string()), cell);
        }
    }
    let functions_per_sec = doc
        .get("throughput")
        .and_then(|t| t.get("functions_per_sec"))
        .and_then(Json::as_f64)
        .filter(|&v| v > 0.0);
    let latency_ns = LATENCY_KEYS.map(|key| {
        doc.get("throughput")
            .and_then(|t| t.get(key))
            .and_then(Json::as_f64)
            .filter(|&v| v > 0.0)
    });
    Side {
        cells,
        functions_per_sec,
        latency_ns,
    }
}

/// Loads the comma-separated repeat files of one side and reduces them:
/// min-of-N on timings, exact-equality check on deterministic fields
/// (drift *between repeats of one side* means the benchmark itself is
/// not deterministic — reported and treated as drift).
fn load_side(spec: &str, drift: &mut Vec<String>) -> Side {
    let mut merged: Option<Side> = None;
    for path in spec.split(',') {
        let side = load(path);
        match &mut merged {
            None => merged = Some(side),
            Some(m) => {
                // Throughput is better-is-higher, so the max across
                // repeats is the min-of-N analog (least machine noise).
                m.functions_per_sec = match (m.functions_per_sec, side.functions_per_sec) {
                    (Some(a), Some(b)) => Some(a.max(b)),
                    (a, b) => a.or(b),
                };
                // Latency is better-is-lower: plain min-of-N.
                for (p, v) in m.latency_ns.iter_mut().zip(side.latency_ns) {
                    *p = match (*p, v) {
                        (Some(a), Some(b)) => Some(a.min(b)),
                        (a, b) => a.or(b),
                    };
                }
                for (key, cell) in side.cells {
                    match m.cells.get_mut(&key) {
                        Some(prev) => {
                            prev.wall_ns = prev.wall_ns.min(cell.wall_ns);
                            for (stage, v) in &cell.stages {
                                prev.stages
                                    .entry(stage.clone())
                                    .and_modify(|p| *p = p.min(*v))
                                    .or_insert(*v);
                            }
                            if prev.exact != cell.exact || prev.advisory != cell.advisory {
                                drift.push(format!(
                                    "{}/{}: repeats of {spec} disagree on deterministic fields",
                                    key.0, key.1
                                ));
                            }
                        }
                        None => drift.push(format!(
                            "{}/{}: cell present in {path} but not in earlier repeats",
                            key.0, key.1
                        )),
                    }
                }
            }
        }
    }
    merged.unwrap_or(Side {
        cells: Cells::new(),
        functions_per_sec: None,
        latency_ns: [None; 3],
    })
}

/// Percentile of a sorted slice (nearest-rank).
fn percentile(sorted: &[f64], p: f64) -> f64 {
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|p| args.get(p + 1))
            .cloned()
    };
    let positional: Vec<&String> = {
        let mut out = Vec::new();
        let mut skip = false;
        for (i, a) in args.iter().enumerate() {
            if skip {
                skip = false;
                continue;
            }
            if a == "--threshold" || a == "--resamples" || a == "--seed" {
                skip = true;
                continue;
            }
            if a.starts_with("--") {
                continue;
            }
            let _ = i;
            out.push(a);
        }
        out
    };
    let [old_spec, new_spec] = positional.as_slice() else {
        eprintln!("usage: bench-diff OLD.json[,OLD2,...] NEW.json[,NEW2,...] [--threshold PCT] [--resamples N] [--seed S] [--warn-only]");
        std::process::exit(3);
    };
    let threshold: f64 = value("--threshold")
        .and_then(|v| v.parse().ok())
        .unwrap_or(10.0);
    let resamples: usize = value("--resamples")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1000);
    let seed: u64 = value("--seed").and_then(|v| v.parse().ok()).unwrap_or(42);
    let warn_only = flag("--warn-only");

    let mut drift: Vec<String> = Vec::new();
    let mut advisory: Vec<String> = Vec::new();
    let old_side = load_side(old_spec, &mut drift);
    let new_side = load_side(new_spec, &mut drift);
    let (old, new) = (&old_side.cells, &new_side.cells);

    // ---- structural + exact comparison ---------------------------------
    let mut ratios: Vec<(f64, String)> = Vec::new();
    let mut stage_ratios: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    for (key, o) in old {
        let Some(n) = new.get(key) else {
            drift.push(format!("{}/{}: cell missing in {new_spec}", key.0, key.1));
            continue;
        };
        let label = format!("{}/{}", key.0, key.1);
        for (field, &ov) in &o.exact {
            match n.exact.get(field) {
                Some(&nv) if nv == ov => {}
                Some(&nv) => drift.push(format!("{label}: {field} {ov} -> {nv}")),
                None => drift.push(format!("{label}: {field} dropped ({ov} before)")),
            }
        }
        for field in n.exact.keys() {
            if !o.exact.contains_key(field) {
                drift.push(format!(
                    "{label}: {field} appeared ({} now)",
                    n.exact[field]
                ));
            }
        }
        for (field, &ov) in &o.advisory {
            if let Some(&nv) = n.advisory.get(field) {
                if nv != ov {
                    advisory.push(format!("{label}: {field} {ov} -> {nv}"));
                }
            }
        }
        if o.wall_ns > 0.0 && n.wall_ns > 0.0 {
            ratios.push(((n.wall_ns / o.wall_ns).ln(), label));
        }
        for (stage, &ov) in &o.stages {
            if let Some(&nv) = n.stages.get(stage) {
                if ov > 0.0 && nv > 0.0 {
                    stage_ratios
                        .entry(stage.clone())
                        .or_default()
                        .push((nv / ov).ln());
                }
            }
        }
    }
    for key in new.keys() {
        if !old.contains_key(key) {
            drift.push(format!(
                "{}/{}: new cell absent in {old_spec}",
                key.0, key.1
            ));
        }
    }

    // ---- bootstrap CI on the mean timing log-ratio ---------------------
    let mut timing_regression = false;
    if ratios.is_empty() {
        println!("no comparable timing cells");
    } else {
        let logs: Vec<f64> = ratios.iter().map(|(l, _)| *l).collect();
        let mean = logs.iter().sum::<f64>() / logs.len() as f64;
        let mut rng = SplitMix64::seed_from_u64(seed);
        let mut means: Vec<f64> = (0..resamples.max(1))
            .map(|_| {
                let mut acc = 0.0;
                for _ in 0..logs.len() {
                    acc += logs[rng.random_range(0usize..logs.len())];
                }
                acc / logs.len() as f64
            })
            .collect();
        means.sort_by(|a, b| a.total_cmp(b));
        let lo = percentile(&means, 2.5);
        let hi = percentile(&means, 97.5);
        let pct = |l: f64| (l.exp() - 1.0) * 100.0;
        println!(
            "timing: {} cells, mean ratio {:+.2}% (95% CI [{:+.2}%, {:+.2}%], {} resamples, min-of-N per side)",
            logs.len(),
            pct(mean),
            pct(lo),
            pct(hi),
            resamples
        );
        let mut worst: Vec<&(f64, String)> = ratios.iter().collect();
        worst.sort_by(|a, b| b.0.total_cmp(&a.0));
        for (l, label) in worst.iter().take(3) {
            println!("  slowest shift: {label} {:+.2}%", pct(*l));
        }
        let bound = (1.0 + threshold / 100.0).ln();
        if lo > bound {
            timing_regression = true;
            println!(
                "CONFIDENT timing regression: whole CI above +{threshold}% ({})",
                if warn_only {
                    "warn-only: not failing"
                } else {
                    "failing"
                }
            );
        } else if hi < -bound {
            println!("confident timing improvement: whole CI below -{threshold}%");
        } else {
            println!("timing within noise of +-{threshold}% at 95% confidence");
        }
    }

    // ---- per-stage attribution -----------------------------------------
    // Advisory: names which pipeline stage moved when the end-to-end wall
    // shifts. Median log-ratio per stage across all comparable cells —
    // the median resists the tiny-denominator noise of microsecond
    // stages better than the mean. Never affects the exit status on its
    // own; the end-to-end CI above is the gate.
    if !stage_ratios.is_empty() {
        println!("per-stage timing ratios (median across cells):");
        for (stage, mut logs) in stage_ratios {
            logs.sort_by(|a, b| a.total_cmp(b));
            let median = logs[logs.len() / 2];
            println!(
                "  {stage}: {:+.2}% ({} cells)",
                (median.exp() - 1.0) * 100.0,
                logs.len()
            );
        }
    }

    // ---- advisory throughput -------------------------------------------
    // Sustained functions/sec (schema v4): reported when both sides
    // carry it, never gating — capacity tracks the runner machine.
    match (old_side.functions_per_sec, new_side.functions_per_sec) {
        (Some(o), Some(n)) => {
            println!(
                "throughput (advisory, never gating): {o:.1} -> {n:.1} functions/s ({:+.2}%)",
                (n / o - 1.0) * 100.0
            );
        }
        (None, Some(n)) => {
            println!(
                "throughput (advisory, never gating): {n:.1} functions/s (no old-side figure)"
            );
        }
        (Some(_), None) | (None, None) => {}
    }
    // Compile-latency percentiles (schema v5): same advisory treatment.
    for (key, (o, n)) in LATENCY_KEYS
        .iter()
        .zip(old_side.latency_ns.iter().zip(&new_side.latency_ns))
    {
        match (o, n) {
            (Some(o), Some(n)) => println!(
                "{key} (advisory, never gating): {:.3} -> {:.3} ms ({:+.2}%)",
                o / 1e6,
                n / 1e6,
                (n / o - 1.0) * 100.0
            ),
            (None, Some(n)) => println!(
                "{key} (advisory, never gating): {:.3} ms (no old-side figure)",
                n / 1e6
            ),
            _ => {}
        }
    }

    // ---- verdict --------------------------------------------------------
    if !advisory.is_empty() {
        println!(
            "advisory cache-policy counter shifts ({} fields, never gating):",
            advisory.len()
        );
        for a in &advisory {
            println!("  {a}");
        }
    }
    if drift.is_empty() {
        println!("deterministic cells: identical");
    } else {
        println!("deterministic drift ({} fields):", drift.len());
        for d in &drift {
            println!("  {d}");
        }
    }
    if !drift.is_empty() {
        std::process::exit(2);
    }
    if timing_regression && !warn_only {
        std::process::exit(1);
    }
}
