//! Emits the machine-readable perf trajectory (`BENCH_pr<N>.json`): the
//! full suite × experiment matrix with move counts, weighted counts,
//! per-stage pipeline timings, and end-to-end wall clocks.
//!
//! Usage: `perf [--out FILE] [--serial] [--compare] [--no-verify] [--spec N]`
//!
//! * `--serial`   — run on one thread (the JSON records the mode);
//! * `--compare`  — run serial then parallel, print the speedup, and
//!   write the parallel trajectory;
//! * `--no-verify` — skip the interpreter equivalence check (timings
//!   then measure translation alone);
//! * `--spec N`   — scale of the SPECint-like synthetic population.

use tossa_bench::suites::all_suites;
use tossa_bench::trajectory::{measure, Trajectory};

fn unix_time() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs())
}

fn summarize(t: &Trajectory) {
    eprintln!(
        "{} mode, {} threads: full matrix in {:.3} s",
        t.mode,
        t.threads,
        t.end_to_end_wall_ns as f64 / 1e9
    );
    for (name, nfns, ninsts) in &t.suite_shapes {
        let suite_ns: u64 = t
            .cells
            .iter()
            .filter(|c| &c.suite == name)
            .map(|c| c.wall_ns)
            .sum();
        eprintln!(
            "  {name:<12} {nfns:>4} fns {ninsts:>7} insts  {:>9.3} ms over {} experiments",
            suite_ns as f64 / 1e6,
            t.cells.iter().filter(|c| &c.suite == name).count()
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|p| args.get(p + 1))
            .cloned()
    };
    let out = value("--out").unwrap_or_else(|| "BENCH_pr1.json".into());
    let verify = !flag("--no-verify");
    let spec_scale = value("--spec").and_then(|v| v.parse().ok()).unwrap_or(40);

    let suites = all_suites(spec_scale);
    let trajectory = if flag("--compare") {
        let serial = measure(&suites, verify, true);
        summarize(&serial);
        let parallel = measure(&suites, verify, false);
        summarize(&parallel);
        let focus = ["VALcc1", "VALcc2", "LAI Large"];
        let s = serial.wall_ns_for(&focus) as f64;
        let p = parallel.wall_ns_for(&focus) as f64;
        eprintln!(
            "speedup (kernels + vocoder suites): {:.2}x  (serial {:.3} ms -> parallel {:.3} ms)",
            s / p,
            s / 1e6,
            p / 1e6
        );
        eprintln!(
            "speedup (end to end, all suites):   {:.2}x",
            serial.end_to_end_wall_ns as f64 / parallel.end_to_end_wall_ns as f64
        );
        parallel
    } else {
        let t = measure(&suites, verify, flag("--serial"));
        summarize(&t);
        t
    };

    let json = trajectory.to_json(unix_time());
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    eprintln!("wrote {out}");
}
