//! Emits the machine-readable perf trajectory (`BENCH_pr<N>.json`): the
//! full suite × experiment matrix with move counts, weighted counts,
//! per-stage pipeline timings, per-cell trace counters, and end-to-end
//! wall clocks.
//!
//! Usage: `perf [--out FILE] [--serial] [--compare] [--no-verify]
//! [--no-counters] [--no-alloc] [--no-throughput] [--throughput-ms MS]
//! [--spec N] [--trace [DIR]]`
//!
//! * `--serial`   — run on one thread (the JSON records the mode);
//! * `--compare`  — run serial then parallel, print the speedup, and
//!   write the parallel trajectory;
//! * `--no-verify` — skip the interpreter equivalence check (timings
//!   then measure translation alone);
//! * `--no-counters` — skip the traced counter pass (cells then carry
//!   no `"counters"` object);
//! * `--no-alloc` — skip the register-allocation post-pass (cells then
//!   carry no `"alloc"` object and `alloc_ns` stays 0);
//! * `--no-throughput` — skip the sustained functions/sec measurement
//!   (the JSON then carries no top-level `"throughput"` object);
//! * `--throughput-ms MS` — length of the throughput window (default
//!   1000 ms; timing-class, advisory in `bench-diff`);
//! * `--spec N`   — scale of the SPECint-like synthetic population;
//! * `--trace [DIR]` — additionally run the focus suites (kernels +
//!   vocoder) under per-function trace capture and write
//!   `DIR/trace.jsonl` (one `tossa-trace/1` line per function ×
//!   experiment), `DIR/trace_chrome.json` (Chrome `trace_event`, open
//!   in `about:tracing`/Perfetto), and print the counter summary.
//!   `DIR` defaults to the current directory. Timing cells are always
//!   measured untraced.

use tossa_bench::runner::run_suite_each_traced;
use tossa_bench::suites::all_suites;
use tossa_bench::trajectory::{measure, measure_throughput, Trajectory};
use tossa_core::coalesce::CoalesceOptions;
use tossa_core::Experiment;
use tossa_trace::{chrome_trace, jsonl_record, summary_table, TraceData};

const FOCUS_SUITES: [&str; 3] = ["VALcc1", "VALcc2", "LAI Large"];

fn unix_time() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs())
}

fn summarize(t: &Trajectory) {
    eprintln!(
        "{} mode, {} threads: full matrix in {:.3} s",
        t.mode,
        t.threads,
        t.end_to_end_wall_ns as f64 / 1e9
    );
    for (name, nfns, ninsts) in &t.suite_shapes {
        let suite_ns: u64 = t
            .cells
            .iter()
            .filter(|c| &c.suite == name)
            .map(|c| c.wall_ns)
            .sum();
        eprintln!(
            "  {name:<12} {nfns:>4} fns {ninsts:>7} insts  {:>9.3} ms over {} experiments",
            suite_ns as f64 / 1e6,
            t.cells.iter().filter(|c| &c.suite == name).count()
        );
    }
}

/// Runs the focus suites under per-function trace capture and writes
/// the JSONL stream plus the Chrome trace into `dir`.
fn run_traced(dir: &str, spec_scale: usize, verify: bool) {
    let opts = CoalesceOptions::default();
    let suites = all_suites(spec_scale);
    let mut labelled: Vec<(String, TraceData)> = Vec::new();
    let mut jsonl = String::new();
    let mut total = TraceData::default();
    for suite in suites.iter().filter(|s| FOCUS_SUITES.contains(&s.name)) {
        for &exp in Experiment::all() {
            for (k, (_, trace)) in run_suite_each_traced(suite, exp, &opts, verify)
                .into_iter()
                .enumerate()
            {
                let func = &suite.functions[k].func.name;
                jsonl.push_str(&jsonl_record(func, &exp.to_string(), &trace));
                jsonl.push('\n');
                total.merge(&trace);
                labelled.push((format!("{func}@{exp}"), trace));
            }
        }
    }
    let jsonl_path = format!("{dir}/trace.jsonl");
    std::fs::write(&jsonl_path, &jsonl).unwrap_or_else(|e| panic!("writing {jsonl_path}: {e}"));
    let chrome_path = format!("{dir}/trace_chrome.json");
    let chrome = chrome_trace(&labelled);
    tossa_trace::validate_json(&chrome).expect("chrome trace is well-formed JSON");
    std::fs::write(&chrome_path, &chrome).unwrap_or_else(|e| panic!("writing {chrome_path}: {e}"));
    eprintln!("trace summary (focus suites, all experiments):");
    eprint!("{}", summary_table(&total));
    eprintln!("wrote {jsonl_path} and {chrome_path}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|p| args.get(p + 1))
            .cloned()
    };
    let out = value("--out").unwrap_or_else(|| "BENCH_pr10.json".into());
    let verify = !flag("--no-verify");
    let counters = !flag("--no-counters");
    let alloc = !flag("--no-alloc");
    let spec_scale = value("--spec").and_then(|v| v.parse().ok()).unwrap_or(40);

    let throughput_ms: u64 = value("--throughput-ms")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1000);

    let suites = all_suites(spec_scale);
    let mut trajectory = if flag("--compare") {
        let serial = measure(&suites, verify, true, false, alloc);
        summarize(&serial);
        let parallel = measure(&suites, verify, false, counters, alloc);
        summarize(&parallel);
        let s = serial.wall_ns_for(&FOCUS_SUITES) as f64;
        let p = parallel.wall_ns_for(&FOCUS_SUITES) as f64;
        eprintln!(
            "speedup (kernels + vocoder suites): {:.2}x  (serial {:.3} ms -> parallel {:.3} ms)",
            s / p,
            s / 1e6,
            p / 1e6
        );
        eprintln!(
            "speedup (end to end, all suites):   {:.2}x",
            serial.end_to_end_wall_ns as f64 / parallel.end_to_end_wall_ns as f64
        );
        parallel
    } else {
        let t = measure(&suites, verify, flag("--serial"), counters, alloc);
        summarize(&t);
        t
    };

    if !flag("--no-throughput") {
        let tp = measure_throughput(
            &suites,
            Experiment::LphiAbiC,
            throughput_ms,
            flag("--serial"),
        );
        eprintln!(
            "throughput: {:.1} functions/s sustained ({} fns in {:.3} s on {} threads, {})",
            tp.functions_per_sec(),
            tp.functions,
            tp.wall_ns as f64 / 1e9,
            tp.threads,
            tp.experiment
        );
        if let (Some(p50), Some(p90), Some(p99)) =
            (tp.latency_p50_ns, tp.latency_p90_ns, tp.latency_p99_ns)
        {
            eprintln!(
                "  compile latency p50/p90/p99: {:.3}/{:.3}/{:.3} ms",
                p50 as f64 / 1e6,
                p90 as f64 / 1e6,
                p99 as f64 / 1e6
            );
        }
        trajectory.throughput = Some(tp);
    }

    let json = trajectory.to_json(unix_time());
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    eprintln!("wrote {out}");

    if flag("--trace") {
        // `--trace` may carry an output directory; any other flag (or
        // nothing) after it means the current directory.
        let dir = value("--trace")
            .filter(|v| !v.starts_with("--"))
            .unwrap_or_else(|| ".".into());
        run_traced(&dir, spec_scale, verify);
    }
}
