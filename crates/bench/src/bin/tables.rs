//! Regenerates the paper's tables.
//!
//! Usage: `tables [table1|table2|table3|table4|table5|table6|all] [--no-verify] [--spec N]`
//! `       [--spill-everywhere] [--write-baseline FILE] [--gate FILE]`
//!
//! The last three apply to `table6` only:
//!
//! * `--spill-everywhere` — run the allocator with the PR 4
//!   spill-everywhere policy instead of the cost-driven default (the
//!   ablation column, and the policy the checked-in gate baseline was
//!   generated with);
//! * `--write-baseline FILE` — write the per-suite spill+move totals as
//!   a `tossa-table6-baseline/1` document instead of the rendered table;
//! * `--gate FILE` — recompute the totals and fail (exit 1) if any
//!   suite × experiment cell exceeds the checked-in baseline. The
//!   baseline records its `--spec` scale and the gate refuses a
//!   mismatched comparison.

use tossa_bench::suites::all_suites;
use tossa_bench::tables;
use tossa_regalloc::{AllocOptions, SpillPolicy};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = {
        let mut which = None;
        let mut skip = false;
        for a in &args {
            if skip {
                skip = false;
                continue;
            }
            if matches!(a.as_str(), "--spec" | "--write-baseline" | "--gate") {
                skip = true;
                continue;
            }
            if a.starts_with("--") {
                continue;
            }
            which = Some(a.clone());
            break;
        }
        which.unwrap_or_else(|| "all".into())
    };
    let verify = !args.iter().any(|a| a == "--no-verify");
    let value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|p| args.get(p + 1))
            .cloned()
    };
    let spec_scale: usize = value("--spec").and_then(|v| v.parse().ok()).unwrap_or(40);
    let alloc_opts = AllocOptions {
        spill_policy: if args.iter().any(|a| a == "--spill-everywhere") {
            SpillPolicy::Everywhere
        } else {
            SpillPolicy::CostDriven
        },
        ..Default::default()
    };
    let write_baseline = value("--write-baseline");
    let gate = value("--gate");

    let suites = all_suites(spec_scale);
    eprintln!(
        "suites: {}",
        suites
            .iter()
            .map(|s| format!(
                "{} ({} fns, {} insts)",
                s.name,
                s.functions.len(),
                s.num_insts()
            ))
            .collect::<Vec<_>>()
            .join(", ")
    );
    match which.as_str() {
        "table1" => print!("{}", tables::table1()),
        "table2" => print!("{}", tables::table2(&suites, verify)),
        "table3" => print!("{}", tables::table3(&suites, verify)),
        "table4" => print!("{}", tables::table4(&suites, verify)),
        "table5" => print!("{}", tables::table5(&suites, verify)),
        "table6" if write_baseline.is_some() || gate.is_some() => {
            let totals = tables::table6_totals(&suites, verify, &alloc_opts);
            if let Some(path) = write_baseline {
                let policy = match alloc_opts.spill_policy {
                    SpillPolicy::Everywhere => "spill-everywhere (PR4)",
                    SpillPolicy::CostDriven => "cost-driven",
                };
                let doc = tables::table6_baseline_json(spec_scale, policy, &totals);
                std::fs::write(&path, &doc).unwrap_or_else(|e| panic!("writing {path}: {e}"));
                eprintln!("wrote {path}");
            }
            if let Some(path) = gate {
                let baseline = std::fs::read_to_string(&path)
                    .unwrap_or_else(|e| panic!("reading {path}: {e}"));
                match tables::table6_gate(&baseline, spec_scale, &totals) {
                    Ok(report) => {
                        println!("table6 spill-regression gate vs {path}: clean");
                        print!("{report}");
                    }
                    Err(failures) => {
                        eprintln!("table6 spill-regression gate vs {path}: FAILED");
                        for f in &failures {
                            eprintln!("  {f}");
                        }
                        std::process::exit(1);
                    }
                }
            }
        }
        "table6" => print!("{}", tables::table6(&suites, verify)),
        "all" => {
            println!("{}", tables::table1());
            println!("{}", tables::table2(&suites, verify));
            println!("{}", tables::table3(&suites, verify));
            println!("{}", tables::table4(&suites, verify));
            println!("{}", tables::table5(&suites, verify));
            println!("{}", tables::table6(&suites, verify));
        }
        other => {
            eprintln!("unknown table `{other}`; use table1..table6 or all");
            std::process::exit(2);
        }
    }
}
