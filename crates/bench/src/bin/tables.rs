//! Regenerates the paper's tables.
//!
//! Usage: `tables [table1|table2|table3|table4|table5|table6|all] [--no-verify] [--spec N]`

use tossa_bench::suites::all_suites;
use tossa_bench::tables;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "all".into());
    let verify = !args.iter().any(|a| a == "--no-verify");
    let spec_scale = args
        .iter()
        .position(|a| a == "--spec")
        .and_then(|p| args.get(p + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(40);

    let suites = all_suites(spec_scale);
    eprintln!(
        "suites: {}",
        suites
            .iter()
            .map(|s| format!(
                "{} ({} fns, {} insts)",
                s.name,
                s.functions.len(),
                s.num_insts()
            ))
            .collect::<Vec<_>>()
            .join(", ")
    );
    match which.as_str() {
        "table1" => print!("{}", tables::table1()),
        "table2" => print!("{}", tables::table2(&suites, verify)),
        "table3" => print!("{}", tables::table3(&suites, verify)),
        "table4" => print!("{}", tables::table4(&suites, verify)),
        "table5" => print!("{}", tables::table5(&suites, verify)),
        "table6" => print!("{}", tables::table6(&suites, verify)),
        "all" => {
            println!("{}", tables::table1());
            println!("{}", tables::table2(&suites, verify));
            println!("{}", tables::table3(&suites, verify));
            println!("{}", tables::table4(&suites, verify));
            println!("{}", tables::table5(&suites, verify));
            println!("{}", tables::table6(&suites, verify));
        }
        other => {
            eprintln!("unknown table `{other}`; use table1..table6 or all");
            std::process::exit(2);
        }
    }
}
