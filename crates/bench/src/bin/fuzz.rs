//! Differential fuzzer for the checked pipeline.
//!
//! Generates a seeded random population, runs every (or one) experiment
//! in checked mode — per-pass structural verification plus differential
//! execution against the source — and prints the per-function error
//! report. Failing cases are shrunk with the delta-debugging reducer
//! before printing.
//!
//! Usage: `fuzz [--functions N] [--seed S] [--experiment NAME] [--chaos CLASS] [--fuel F] [--alloc] [--no-reduce]`
//!
//! * `--functions N` — population size (default 200);
//! * `--seed S`      — base seed (default 1; equal seeds, equal runs);
//! * `--experiment NAME` — one experiment (default: all ten);
//! * `--chaos CLASS` — inject a corruption class (`drop-phi-arg`,
//!   `double-def`, `undefined-use`, `merge-webs`, `reorder-copy`, or the
//!   allocation classes `assign-overlap`, `clobber-pin`, `drop-reload`,
//!   `drop-split-copy`, `assign-in-hole`, which imply `--alloc`) to
//!   validate the safety net: the run then
//!   *expects* degradations and fails if the fallback misbehaves;
//! * `--alloc`       — run the checked register-allocation stage after
//!   the pipeline (allocation verifier + post-allocation differential);
//! * `--fuel F`      — interpreter step budget (default 5,000,000);
//! * `--no-reduce`   — print failing cases unreduced;
//! * `--trace [DIR]` — capture per-function traces (verifier spans,
//!   chaos/fallback events, counters) and write `DIR/fuzz_trace.jsonl`
//!   (`tossa-trace/1` lines) plus `DIR/fuzz_trace_chrome.json` (Chrome
//!   `trace_event`); prints the aggregated counter summary. `DIR`
//!   defaults to the current directory.
//!
//! Exit status: 0 when expectations hold (clean without `--chaos`,
//! gracefully degraded with it), 1 otherwise.

use tossa_bench::checked::{
    fuzz_suite, run_checked, run_suite_checked, run_suite_checked_traced, CheckedOptions,
};
use tossa_bench::reduce::reduce;
use tossa_bench::suites::BenchFunction;
use tossa_core::chaos::{AllocCorruption, Catcher, Corruption};
use tossa_core::coalesce::CoalesceOptions;
use tossa_core::Experiment;

/// A fuzzable corruption class: a pipeline-pass fault or an
/// allocation fault (the latter implies the allocation stage).
#[derive(Clone, Copy, Debug)]
enum ChaosClass {
    Pass(Corruption),
    Alloc(AllocCorruption),
}

fn parse_chaos(s: &str) -> Option<ChaosClass> {
    match s {
        "drop-phi-arg" => Some(ChaosClass::Pass(Corruption::DropPhiArg)),
        "double-def" => Some(ChaosClass::Pass(Corruption::DoubleDef)),
        "undefined-use" => Some(ChaosClass::Pass(Corruption::UndefinedUse)),
        "merge-webs" => Some(ChaosClass::Pass(Corruption::MergeInterferingWebs)),
        "reorder-copy" => Some(ChaosClass::Pass(Corruption::ReorderParallelCopy)),
        "assign-overlap" => Some(ChaosClass::Alloc(
            AllocCorruption::AssignOverlappingInterval,
        )),
        "clobber-pin" => Some(ChaosClass::Alloc(AllocCorruption::ClobberPinnedResource)),
        "drop-reload" => Some(ChaosClass::Alloc(AllocCorruption::DropReload)),
        "drop-split-copy" => Some(ChaosClass::Alloc(AllocCorruption::DropSplitCopy)),
        "assign-in-hole" => Some(ChaosClass::Alloc(AllocCorruption::AssignInHole)),
        _ => None,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|p| args.get(p + 1))
            .cloned()
    };
    let functions = value("--functions")
        .and_then(|v| v.parse().ok())
        .unwrap_or(200);
    let seed = value("--seed").and_then(|v| v.parse().ok()).unwrap_or(1u64);
    let fuel = value("--fuel")
        .and_then(|v| v.parse().ok())
        .unwrap_or(5_000_000);
    let chaos_class = value("--chaos").map(|v| {
        parse_chaos(&v).unwrap_or_else(|| {
            eprintln!("unknown chaos class {v:?}");
            std::process::exit(2);
        })
    });
    let (chaos, alloc_chaos) = match chaos_class {
        None => (None, None),
        Some(ChaosClass::Pass(c)) => (Some(c), None),
        Some(ChaosClass::Alloc(c)) => (None, Some(c)),
    };
    let experiments: Vec<Experiment> = match value("--experiment") {
        None => Experiment::all().to_vec(),
        Some(name) => {
            let Some(&e) = Experiment::all().iter().find(|e| e.to_string() == name) else {
                eprintln!(
                    "unknown experiment {name:?}; known: {}",
                    Experiment::all()
                        .iter()
                        .map(|e| e.to_string())
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                std::process::exit(2);
            };
            vec![e]
        }
    };

    let suite = fuzz_suite(functions, seed);
    let opts = CoalesceOptions::default();
    let copts = CheckedOptions {
        fuel,
        chaos,
        chaos_seed: seed,
        alloc: flag("--alloc") || alloc_chaos.is_some(),
        alloc_chaos,
    };

    let tracing = flag("--trace");
    let trace_dir = value("--trace")
        .filter(|v| !v.starts_with("--"))
        .unwrap_or_else(|| ".".into());
    let mut jsonl = String::new();
    let mut labelled: Vec<(String, tossa_trace::TraceData)> = Vec::new();
    let mut trace_total = tossa_trace::TraceData::default();

    let mut ok = true;
    for &exp in &experiments {
        let report = if tracing {
            let (report, traces) = run_suite_checked_traced(&suite, exp, &opts, &copts);
            for (bf, trace) in suite.functions.iter().zip(traces) {
                let func = &bf.func.name;
                jsonl.push_str(&tossa_trace::jsonl_record(func, &exp.to_string(), &trace));
                jsonl.push('\n');
                trace_total.merge(&trace);
                labelled.push((format!("{func}@{exp}"), trace));
            }
            report
        } else {
            run_suite_checked(&suite, exp, &opts, &copts)
        };
        print!("{report}");
        match chaos_class {
            None => {
                // A degradation without injected faults is a real bug:
                // shrink and print each failing case.
                if !report.is_clean() {
                    ok = false;
                    for r in &report.failures {
                        let bf = suite
                            .functions
                            .iter()
                            .find(|bf| bf.func.name == r.function)
                            .expect("report names a suite function");
                        if flag("--no-reduce") {
                            println!("--- failing case {} ---\n{}", r.function, bf.func);
                            continue;
                        }
                        let failing = |f: &tossa_ir::Function| {
                            let cand = BenchFunction {
                                func: f.clone(),
                                inputs: bf.inputs.clone(),
                            };
                            run_checked(&cand, exp, &opts, &copts).error.is_some()
                        };
                        let (small, stats) = reduce(&bf.func, &failing);
                        println!(
                            "--- failing case {} reduced {} -> {} insts ---\n{small}",
                            r.function, stats.initial_size, stats.final_size
                        );
                    }
                }
            }
            Some(c) => {
                // With injected faults the expectation inverts: every
                // verifier-caught class that actually landed must degrade
                // its function, and every fallback must be semantically
                // correct. (The differential class may be neutral on the
                // sampled inputs, so a clean injection is not a miss; the
                // allocation classes are all verifier-caught.)
                let verifier_caught = match c {
                    ChaosClass::Pass(p) => p.caught_by() != Catcher::Differential,
                    ChaosClass::Alloc(_) => true,
                };
                if report.injected == 0 {
                    eprintln!("{exp}: {c:?} found no injection site in this population");
                } else if verifier_caught && report.failures.len() < report.injected {
                    eprintln!(
                        "{exp}: {c:?} injected into {} functions but only {} caught",
                        report.injected,
                        report.failures.len()
                    );
                    ok = false;
                }
                for r in &report.failures {
                    if let Some(e) = &r.fallback_error {
                        eprintln!("{exp}: {c:?} broke the fallback on {}: {e}", r.function);
                        ok = false;
                    }
                }
            }
        }
    }
    if tracing {
        let jsonl_path = format!("{trace_dir}/fuzz_trace.jsonl");
        std::fs::write(&jsonl_path, &jsonl).unwrap_or_else(|e| panic!("writing {jsonl_path}: {e}"));
        let chrome_path = format!("{trace_dir}/fuzz_trace_chrome.json");
        let chrome = tossa_trace::chrome_trace(&labelled);
        tossa_trace::validate_json(&chrome).expect("chrome trace is well-formed JSON");
        std::fs::write(&chrome_path, &chrome)
            .unwrap_or_else(|e| panic!("writing {chrome_path}: {e}"));
        eprintln!("trace summary ({} experiments):", experiments.len());
        eprint!("{}", tossa_trace::summary_table(&trace_total));
        eprintln!("wrote {jsonl_path} and {chrome_path}");
    }
    std::process::exit(if ok { 0 } else { 1 });
}
