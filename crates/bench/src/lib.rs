//! # tossa-bench — workloads and the experiment harness
//!
//! Everything needed to regenerate the paper's evaluation (§5):
//!
//! * [`suites`] — the five benchmark populations (substitutes for
//!   `VALcc1`/`VALcc2`/`example1-8`/`LAI Large`/`SPECint`; see
//!   DESIGN.md §3);
//! * [`metrics`] — move counts and the `5^depth` weighted counts;
//! * [`runner`] — the Table-1 pipeline executor with end-to-end
//!   interpreter verification;
//! * [`tables`] — renderers for Tables 1–5.
//!
//! Regenerate every table with:
//!
//! ```bash
//! cargo run -p tossa-bench --release --bin tables -- all
//! ```

#![warn(missing_docs)]

pub mod metrics;
pub mod runner;
pub mod suites;
pub mod tables;
