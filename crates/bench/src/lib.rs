//! # tossa-bench — workloads and the experiment harness
//!
//! Everything needed to regenerate the paper's evaluation (§5):
//!
//! * [`suites`] — the five benchmark populations (substitutes for
//!   `VALcc1`/`VALcc2`/`example1-8`/`LAI Large`/`SPECint`; see
//!   DESIGN.md §3);
//! * [`metrics`] — move counts and the `5^depth` weighted counts;
//! * [`runner`] — the Table-1 pipeline executor (parallel over suites)
//!   with end-to-end interpreter verification and per-stage timings;
//! * [`checked`] — the checked pipeline mode: per-pass invariant
//!   verification plus differential execution, graceful degradation to
//!   the naive translation, and the per-function error report;
//! * [`reduce`] — delta-debugging reducer for failing fuzz cases;
//! * [`tables`] — renderers for Tables 1–5;
//! * [`trajectory`] — the machine-readable `BENCH_pr<N>.json` perf
//!   trajectory emitter.
//!
//! Regenerate every table with:
//!
//! ```bash
//! cargo run -p tossa-bench --release --bin tables -- all
//! ```
//!
//! Emit the perf trajectory (and, with `--trace DIR`, the JSONL +
//! Chrome-trace observability artifacts) with:
//!
//! ```bash
//! cargo run -p tossa-bench --release --bin perf -- --out BENCH_pr3.json --trace traces/
//! ```

#![warn(missing_docs)]

pub mod checked;
pub mod metrics;
pub mod reduce;
pub mod runner;
pub mod suites;
pub mod tables;
pub mod trajectory;
