//! Machine-readable perf trajectory: `BENCH_pr<N>.json` emission.
//!
//! Each record is one (suite × experiment) cell of the paper's tables,
//! annotated with the end-to-end wall clock of the suite run and the
//! summed per-stage pipeline timings, so successive PRs can be compared
//! number-for-number by scripts (no terminal scraping).
//!
//! The JSON is hand-rolled — the offline container has no serde — but
//! the shape is stable and append-friendly:
//!
//! ```json
//! {
//!   "schema": "tossa-bench-trajectory/5",
//!   "unix_time": 1722800000,
//!   "threads": 8,
//!   "mode": "parallel",
//!   "suites": [
//!     { "suite": "VALcc1", "functions": 18, "insts": 1234, "front_end_ns": ...,
//!       "experiments": [
//!         { "experiment": "LphiC", "label": "Lphi+C",
//!           "wall_ns": 1234567, "moves": 42, "weighted": 130,
//!           "stages": { "front_end_ns": ..., "cssa_ns": ...,
//!                       "pinning_ns": ..., "reconstruct_ns": ...,
//!                       "cleanup_ns": ..., "metrics_ns": ...,
//!                       "alloc_ns": ..., "total_ns": ... },
//!           "alloc": { "regs_used": ..., "spilled_vars": ..., "reloads": ...,
//!                      "stores": ..., "moves_after": ..., "spill_move_total": ... },
//!           "counters": { "congruence_classes": ..., "copies_phi": ..., "...": 0 } } ] } ],
//!   "throughput": { "experiment": "LphiAbiC", "threads": 8, "functions": ...,
//!                   "wall_ns": ..., "target_ms": ..., "functions_per_sec": ...,
//!                   "latency_p50_ns": ..., "latency_p90_ns": ..., "latency_p99_ns": ... },
//!   "end_to_end_wall_ns": 987654321
//! }
//! ```
//!
//! v4 over v3: the optional top-level `"throughput"` object (sustained
//! functions/sec through the full pipeline + allocation — the compile
//! service's capacity figure). v5 over v4: the throughput object also
//! carries per-function compile-latency percentiles
//! (`latency_p50_ns`/`p90`/`p99`, from a log-linear-bucket histogram —
//! see `tossa_trace::metrics`). Per-cell fields are unchanged across
//! v3/v4/v5, so documents compare cell-for-cell; the latency keys are
//! timing-class and advisory in `bench-diff` like the rest of the
//! throughput object.

use crate::runner::{
    apply_alloc, prepare_suite_counted, run_experiment_prepared, run_suite_each_prepared_counted,
    StageTimings, SuiteResult,
};
use crate::suites::Suite;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};
use tossa_core::coalesce::CoalesceOptions;
use tossa_core::Experiment;
use tossa_regalloc::AllocStats;
use tossa_trace::CounterSet;

/// One (suite × experiment) measurement.
#[derive(Clone, Debug)]
pub struct Cell {
    /// Suite name.
    pub suite: String,
    /// Stable experiment key (the enum variant name).
    pub experiment: String,
    /// Paper-table label (not unique: two experiments print as `C`).
    pub label: String,
    /// End-to-end wall clock of the suite run for this experiment.
    pub wall_ns: u64,
    /// Total static move count.
    pub moves: usize,
    /// Total `5^depth`-weighted move count.
    pub weighted: u64,
    /// Summed per-stage pipeline timings across the suite.
    pub stages: StageTimings,
    /// Aggregated register-allocation statistics across the suite;
    /// `None` when the allocation post-pass was off.
    pub alloc: Option<AllocStats>,
    /// Aggregated trace counters across the suite: the pipeline portion
    /// of the timed run executes under a counters-only capture (spans
    /// and provenance skipped, allocation and verification outside the
    /// capture), plus the suite's once-computed front-end counters.
    /// `None` when counter collection was off.
    pub counters: Option<CounterSet>,
}

/// Sustained-throughput measurement: a worker pool cycles the combined
/// worklist of every suite function through the full pipeline (plus the
/// allocation post-pass) until a wall-clock deadline, and the count of
/// *completed* functions per second is the service-capacity figure.
///
/// This is a timing-class dimension — it varies run to run with machine
/// load — so `bench-diff` treats it as advisory (reported, never
/// gating), and it lives as a top-level `"throughput"` object in the
/// trajectory JSON so the per-cell deterministic fields stay
/// byte-identical whether or not the measurement ran.
#[derive(Clone, Debug)]
pub struct Throughput {
    /// Stable experiment key the worklist was compiled under.
    pub experiment: String,
    /// Worker threads in the pool.
    pub threads: usize,
    /// Functions fully compiled (pipeline + allocation) before the
    /// deadline.
    pub functions: u64,
    /// Actual wall clock of the measurement window.
    pub wall_ns: u64,
    /// The requested window length, for the record.
    pub target_ms: u64,
    /// p50 of per-function compile latency inside the window (`None`
    /// when no function completed).
    pub latency_p50_ns: Option<u64>,
    /// p90 of per-function compile latency.
    pub latency_p90_ns: Option<u64>,
    /// p99 of per-function compile latency.
    pub latency_p99_ns: Option<u64>,
}

impl Throughput {
    /// The headline figure: completed functions per wall-clock second.
    pub fn functions_per_sec(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        self.functions as f64 * 1e9 / self.wall_ns as f64
    }
}

/// Measures sustained compile throughput over `suites`: front-ends every
/// function once (SSA construction is experiment-independent and is the
/// service's admission cost, not its steady-state cost), then has
/// `threads` workers pull indices off a shared cursor and run the full
/// `exp` pipeline plus register allocation, cycling the worklist until
/// `target_ms` elapses. Only functions that finish before the deadline
/// count.
pub fn measure_throughput(
    suites: &[Suite],
    exp: Experiment,
    target_ms: u64,
    serial: bool,
) -> Throughput {
    let opts = CoalesceOptions::default();
    let prepared: Vec<_> = suites
        .iter()
        .flat_map(|s| s.functions.iter())
        .map(|bf| crate::runner::front_end(&bf.func))
        .collect();
    let threads = if serial {
        1
    } else {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    };
    let completed = AtomicU64::new(0);
    let cursor = AtomicUsize::new(0);
    // Per-function latency lands in a sharded log-linear histogram —
    // the same instrument the compile service records with — so the
    // percentiles cost the workers five relaxed atomics per function.
    let latency = tossa_trace::metrics::Histogram::new();
    let start = Instant::now();
    let deadline = start + Duration::from_millis(target_ms);
    if !prepared.is_empty() {
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| {
                    while Instant::now() < deadline {
                        let k = cursor.fetch_add(1, Ordering::Relaxed) % prepared.len();
                        let begin = Instant::now();
                        let mut r = run_experiment_prepared(&prepared[k], exp, &opts);
                        apply_alloc(&mut r);
                        latency.record(begin.elapsed().as_nanos() as u64);
                        completed.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
    }
    let snap = latency.snapshot();
    Throughput {
        experiment: format!("{exp:?}"),
        threads,
        functions: completed.into_inner(),
        wall_ns: start.elapsed().as_nanos() as u64,
        target_ms,
        latency_p50_ns: snap.quantile(0.50),
        latency_p90_ns: snap.quantile(0.90),
        latency_p99_ns: snap.quantile(0.99),
    }
}

/// A full trajectory: every suite crossed with every Table-1 experiment.
#[derive(Clone, Debug, Default)]
pub struct Trajectory {
    /// Worker threads the parallel runner used (1 when serial).
    pub threads: usize,
    /// `"parallel"` or `"serial"`.
    pub mode: String,
    /// The cells, in (suite, experiment) order.
    pub cells: Vec<Cell>,
    /// Per-suite function/instruction counts, in suite order.
    pub suite_shapes: Vec<(String, usize, usize)>,
    /// Per-suite wall clock of the shared front end (SSA construction is
    /// experiment-independent, so it runs once per suite), in suite
    /// order.
    pub front_end_ns: Vec<u64>,
    /// Wall clock of the whole matrix.
    pub end_to_end_wall_ns: u64,
    /// Sustained functions/sec measurement (see [`measure_throughput`]);
    /// `None` when the throughput pass was off. Timing-class, advisory
    /// in `bench-diff`.
    pub throughput: Option<Throughput>,
}

/// Runs the full experiment matrix over `suites` and collects the
/// trajectory. `serial` switches the runner to one thread (for speedup
/// comparisons); `verify` re-runs the interpreter equivalence check;
/// `counters` fills [`Cell::counters`] from the timed run itself: the
/// pipeline executes under a counters-only capture (span clocks and
/// provenance are skipped entirely, and the allocation/verification
/// post-passes stay outside the capture), so one pass serves both the
/// timing and the counter columns and the counter totals are identical
/// to the old separate traced pass. `alloc` appends the
/// register-allocation post-pass to every cell (verification then covers
/// the allocated code) and fills [`Cell::alloc`].
pub fn measure(
    suites: &[Suite],
    verify: bool,
    serial: bool,
    counters: bool,
    alloc: bool,
) -> Trajectory {
    let opts = CoalesceOptions::default();
    let threads = if serial {
        1
    } else {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    };
    let mut t = Trajectory {
        threads,
        mode: if serial {
            "serial".into()
        } else {
            "parallel".into()
        },
        ..Trajectory::default()
    };
    let start = Instant::now();
    for suite in suites {
        t.suite_shapes.push((
            suite.name.to_string(),
            suite.functions.len(),
            suite.num_insts(),
        ));
        let begin = Instant::now();
        let (prepared, fe_counters) = prepare_suite_counted(suite);
        t.front_end_ns.push(begin.elapsed().as_nanos() as u64);
        for &exp in Experiment::all() {
            let begin = Instant::now();
            let pairs = run_suite_each_prepared_counted(
                suite, &prepared, exp, &opts, verify, !serial, alloc,
            );
            let wall_ns = begin.elapsed().as_nanos() as u64;
            let (results, sets): (Vec<_>, Vec<_>) = pairs.into_iter().unzip();
            let folded = SuiteResult::fold(&results);
            let cell_counters = counters.then(|| {
                // Front-end counters are experiment-independent; adding
                // the once-per-suite set reproduces exactly what a full
                // from-source traced run of this cell would count.
                let mut total = fe_counters;
                for set in &sets {
                    total.merge(set);
                }
                total
            });
            t.cells.push(Cell {
                suite: suite.name.to_string(),
                experiment: format!("{exp:?}"),
                label: exp.label().to_string(),
                wall_ns,
                moves: folded.moves,
                weighted: folded.weighted,
                stages: folded.timings,
                alloc: folded.alloc,
                counters: cell_counters,
            });
        }
    }
    t.end_to_end_wall_ns = start.elapsed().as_nanos() as u64;
    t
}

impl Trajectory {
    /// Sum of suite wall clocks (including the shared front end)
    /// restricted to the named suites — the speedup figure reported for
    /// kernels + vocoder.
    pub fn wall_ns_for(&self, suite_names: &[&str]) -> u64 {
        let cells: u64 = self
            .cells
            .iter()
            .filter(|c| suite_names.contains(&c.suite.as_str()))
            .map(|c| c.wall_ns)
            .sum();
        let fe: u64 = self
            .suite_shapes
            .iter()
            .zip(&self.front_end_ns)
            .filter(|((name, _, _), _)| suite_names.contains(&name.as_str()))
            .map(|(_, &ns)| ns)
            .sum();
        cells + fe
    }

    /// Renders the trajectory as the `BENCH_pr<N>.json` document.
    pub fn to_json(&self, unix_time: u64) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": \"tossa-bench-trajectory/5\",");
        let _ = writeln!(out, "  \"unix_time\": {unix_time},");
        let _ = writeln!(out, "  \"threads\": {},", self.threads);
        let _ = writeln!(out, "  \"mode\": \"{}\",", self.mode);
        out.push_str("  \"suites\": [\n");
        for (si, (name, nfns, ninsts)) in self.suite_shapes.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {{ \"suite\": \"{name}\", \"functions\": {nfns}, \"insts\": {ninsts}, \"front_end_ns\": {},",
                self.front_end_ns.get(si).copied().unwrap_or(0)
            );
            out.push_str("      \"experiments\": [\n");
            let cells: Vec<&Cell> = self.cells.iter().filter(|c| &c.suite == name).collect();
            for (ci, c) in cells.iter().enumerate() {
                let s = &c.stages;
                let _ = write!(
                    out,
                    "        {{ \"experiment\": \"{}\", \"label\": \"{}\", \
                     \"wall_ns\": {}, \"moves\": {}, \"weighted\": {},\n          \
                     \"stages\": {{ \"front_end_ns\": {}, \"cssa_ns\": {}, \
                     \"pinning_ns\": {}, \"reconstruct_ns\": {}, \"cleanup_ns\": {}, \
                     \"metrics_ns\": {}, \"alloc_ns\": {}, \"total_ns\": {} }}",
                    c.experiment,
                    c.label,
                    c.wall_ns,
                    c.moves,
                    c.weighted,
                    s.front_end_ns,
                    s.cssa_ns,
                    s.pinning_ns,
                    s.reconstruct_ns,
                    s.cleanup_ns,
                    s.metrics_ns,
                    s.alloc_ns,
                    s.total_ns
                );
                if let Some(a) = &c.alloc {
                    let _ = write!(
                        out,
                        ",\n          \"alloc\": {{ \"regs_used\": {}, \"spilled_vars\": {}, \
                         \"reloads\": {}, \"stores\": {}, \"moves_after\": {}, \
                         \"spill_move_total\": {} }}",
                        a.regs_used,
                        a.spilled_vars,
                        a.reloads,
                        a.stores,
                        a.moves_after,
                        a.spill_move_total()
                    );
                }
                if let Some(counters) = &c.counters {
                    let _ = write!(out, ",\n          \"counters\": {}", counters.to_json());
                }
                out.push_str(" }");
                out.push_str(if ci + 1 < cells.len() { ",\n" } else { "\n" });
            }
            out.push_str("      ] }");
            out.push_str(if si + 1 < self.suite_shapes.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n");
        if let Some(tp) = &self.throughput {
            let _ = write!(
                out,
                "  \"throughput\": {{ \"experiment\": \"{}\", \"threads\": {}, \
                 \"functions\": {}, \"wall_ns\": {}, \"target_ms\": {}, \
                 \"functions_per_sec\": {:.3}",
                tp.experiment,
                tp.threads,
                tp.functions,
                tp.wall_ns,
                tp.target_ms,
                tp.functions_per_sec()
            );
            for (key, v) in [
                ("latency_p50_ns", tp.latency_p50_ns),
                ("latency_p90_ns", tp.latency_p90_ns),
                ("latency_p99_ns", tp.latency_p99_ns),
            ] {
                if let Some(n) = v {
                    let _ = write!(out, ", \"{key}\": {n}");
                }
            }
            out.push_str(" },\n");
        }
        let _ = writeln!(out, "  \"end_to_end_wall_ns\": {}", self.end_to_end_wall_ns);
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suites;

    #[test]
    fn trajectory_covers_the_matrix() {
        let suites = vec![suites::Suite {
            name: "example1-8",
            functions: suites::paper_examples::examples(),
        }];
        let mut t = measure(&suites, true, true, true, true);
        t.throughput = Some(measure_throughput(&suites, Experiment::LphiAbiC, 50, true));
        assert_eq!(t.cells.len(), Experiment::all().len());
        assert!(t.cells.iter().all(|c| c.wall_ns > 0));
        let json = t.to_json(0);
        // Shape sanity: parsable keys present once per cell, plus the
        // throughput object's own wall_ns.
        assert_eq!(json.matches("\"wall_ns\"").count(), t.cells.len() + 1);
        assert!(json.contains("\"schema\": \"tossa-bench-trajectory/5\""));
        assert!(json.contains("\"throughput\""));
        assert!(json.contains("\"functions_per_sec\""));
        // Something completed inside the window, so all three latency
        // percentiles must be present.
        assert!(json.contains("\"latency_p50_ns\""));
        assert!(json.contains("\"latency_p90_ns\""));
        assert!(json.contains("\"latency_p99_ns\""));
        // The allocation post-pass ran: every cell carries its stats.
        assert_eq!(json.matches("\"alloc\"").count(), t.cells.len());
        assert!(t.cells.iter().all(|c| c.alloc.is_some()));
        assert!(json.contains("\"end_to_end_wall_ns\""));
        // Balanced braces/brackets (cheap well-formedness check).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn throughput_counts_completed_functions() {
        let suites = vec![suites::Suite {
            name: "example1-8",
            functions: suites::paper_examples::examples(),
        }];
        let tp = measure_throughput(&suites, Experiment::LphiAbiC, 50, true);
        assert!(tp.functions > 0, "no function completed in the window");
        assert!(tp.wall_ns > 0);
        assert!(tp.functions_per_sec() > 0.0);
        assert_eq!(tp.threads, 1);
        assert_eq!(tp.experiment, "LphiAbiC");
        assert!(tp.latency_p50_ns.is_some());
        assert!(tp.latency_p50_ns <= tp.latency_p90_ns);
        assert!(tp.latency_p90_ns <= tp.latency_p99_ns);
    }

    #[test]
    fn throughput_of_an_empty_worklist_is_zero_not_a_hang() {
        let tp = measure_throughput(&[], Experiment::LphiC, 50, true);
        assert_eq!(tp.functions, 0);
        assert_eq!(tp.functions_per_sec(), 0.0);
    }
}
