//! Checked pipeline mode: per-pass verification, graceful fallback, and
//! the per-function error report.
//!
//! [`run_checked`] executes one Table-1 experiment pipeline with a
//! [`PassGuard`] after every pass: structural verifiers (CFG, SSA/CSSA,
//! pin consistency) plus differential execution against the source
//! function on the benchmark's input vectors. Any violation becomes a
//! structured [`TossaError`] instead of a panic, and the function
//! **degrades to the naive out-of-SSA translation** so a suite run
//! completes with a [`SuiteReport`] naming every failed function instead
//! of aborting.
//!
//! Fault injection ([`CheckedOptions::chaos`]) corrupts the pipeline at
//! the point matching the corruption class, which lets tests prove the
//! safety net trips: the corrupted run must produce a structured error
//! *and* a semantically-correct fallback.

use crate::runner::{front_end, par_map};
use crate::suites::{BenchFunction, Suite};
use std::panic::{catch_unwind, AssertUnwindSafe};
use tossa_analysis::AnalysisCache;
use tossa_baselines::{naive_out_of_ssa, to_cssa_cached};
use tossa_core::chaos::{self, AllocCorruption, Catcher, Corruption};
use tossa_core::checked::{check_form, IrForm, PassGuard};
use tossa_core::coalesce::CoalesceOptions;
use tossa_core::collect::{naive_abi, pinning_abi, pinning_cssa, pinning_sp};
use tossa_core::error::{CoalesceError, TossaError, VerifyError};
use tossa_core::reconstruct::out_of_pinned_ssa_checked;
use tossa_core::{program_pinning_cached, Experiment};
use tossa_ir::rng::SplitMix64;
use tossa_ir::Function;
use tossa_regalloc::{AllocOptions, AllocStats};
use tossa_ssa::verify_cssa;

/// Tuning of a checked run.
#[derive(Clone, Copy, Debug)]
pub struct CheckedOptions {
    /// Interpreter step budget per differential execution.
    pub fuel: u64,
    /// Inject this corruption class (for safety-net validation).
    pub chaos: Option<Corruption>,
    /// Seed for the corruption site choice.
    pub chaos_seed: u64,
    /// Run register allocation after the pipeline, with the allocation
    /// verifier and a post-allocation differential check.
    pub alloc: bool,
    /// Inject this allocation corruption between assignment and the
    /// allocation verifier (implies the allocation stage).
    pub alloc_chaos: Option<AllocCorruption>,
}

impl Default for CheckedOptions {
    fn default() -> Self {
        CheckedOptions {
            fuel: 5_000_000,
            chaos: None,
            chaos_seed: 0,
            alloc: false,
            alloc_chaos: None,
        }
    }
}

/// Outcome of one checked run on one function.
#[derive(Clone, Debug)]
pub struct CheckedOutcome {
    /// The final non-SSA function (checked pipeline output, or the naive
    /// fallback after a failure).
    pub func: Function,
    /// Static move count of `func`.
    pub moves: usize,
    /// The failure that triggered the fallback (`None` = clean run).
    pub error: Option<TossaError>,
    /// Whether `func` is the naive fallback translation.
    pub fell_back: bool,
    /// Set when even the fallback failed verification (this indicates a
    /// corrupted *input*, not a pass bug).
    pub fallback_error: Option<TossaError>,
    /// Whether a [`CheckedOptions::chaos`] corruption actually found an
    /// injection site in this function.
    pub injected: bool,
    /// Allocation statistics (when the allocation stage ran cleanly).
    pub alloc: Option<AllocStats>,
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn verify_err(pass: &'static str) -> impl Fn(VerifyError) -> TossaError {
    move |error| TossaError::Verify { pass, error }
}

/// Returns the first recorded stale-analysis diagnostic as an error.
fn stale_check(cache: &mut AnalysisCache, pass: &'static str) -> Result<(), TossaError> {
    match cache.take_stale() {
        Some(s) => Err(TossaError::Verify {
            pass,
            error: VerifyError::StaleAnalysis(s),
        }),
        None => Ok(()),
    }
}

/// Publishes a landed chaos injection on the trace sink and returns
/// whether it landed.
fn note_injection(hit: bool, c: Corruption) -> bool {
    if hit {
        tossa_trace::count(tossa_trace::Counter::ChaosInjected, 1);
        tossa_trace::event("chaos", || format!("{c:?}"));
    }
    hit
}

/// The guarded pipeline proper: every pass is followed by structural
/// verification and differential execution against the pre-front-end
/// source (each earlier guarded pass has already been proven
/// semantics-preserving, so a divergence is attributed to the pass it
/// first appears after).
fn guarded_pipeline(
    ssa: &Function,
    exp: Experiment,
    opts: &CoalesceOptions,
    guard: &PassGuard,
    copts: &CheckedOptions,
    injected: &std::cell::Cell<bool>,
) -> Result<Function, TossaError> {
    let passes = exp.passes();
    let mut f = ssa.clone();
    let mut rng = SplitMix64::seed_from_u64(copts.chaos_seed);
    let chaos_at = |point: Catcher| copts.chaos.filter(|c| c.caught_by() == point);

    // SSA-corrupting chaos classes model a buggy front end.
    if let Some(c) = copts
        .chaos
        .filter(|c| matches!(c.caught_by(), Catcher::Structural | Catcher::Ssa))
    {
        injected.set(note_injection(chaos::inject(&mut f, c, &mut rng), c) || injected.get());
    }
    guard
        .check(&f, IrForm::Ssa)
        .map_err(verify_err("front_end"))?;

    let mut cache = AnalysisCache::new();
    cache.set_deferred_staleness(true);

    if passes.sreedhar {
        to_cssa_cached(&mut f, &mut cache);
        stale_check(&mut cache, "sreedhar")?;
        guard
            .check(&f, IrForm::Ssa)
            .map_err(verify_err("sreedhar"))?;
        verify_cssa(&f).map_err(|e| verify_err("sreedhar")(VerifyError::Ssa(e)))?;
    }
    if passes.pinning_cssa {
        pinning_cssa(&mut f);
        guard
            .check(&f, IrForm::PinnedSsa)
            .map_err(verify_err("pinning_cssa"))?;
    }
    if passes.pinning_sp {
        pinning_sp(&mut f);
        guard
            .check(&f, IrForm::PinnedSsa)
            .map_err(verify_err("pinning_sp"))?;
    }
    if passes.pinning_abi {
        pinning_abi(&mut f);
        cache.invalidate_instructions();
        guard
            .check(&f, IrForm::PinnedSsa)
            .map_err(verify_err("pinning_abi"))?;
    }
    if passes.pinning_phi {
        program_pinning_cached(&mut f, opts, &mut cache);
        stale_check(&mut cache, "pinning_phi")?;
    }
    // Pin-corrupting chaos models a buggy coalescer.
    if let Some(c) = chaos_at(Catcher::Pin) {
        injected.set(note_injection(chaos::inject(&mut f, c, &mut rng), c) || injected.get());
    }
    // A pin violation here is the coalescer's fault (the collect passes
    // were individually verified above).
    match guard.check(&f, IrForm::PinnedSsa) {
        Ok(()) => {}
        Err(VerifyError::Pin(p)) => {
            return Err(TossaError::Coalesce(CoalesceError::InvalidPinning(p)));
        }
        Err(e) => return Err(verify_err("pinning_phi")(e)),
    }

    let recon = out_of_pinned_ssa_checked(&mut f).map_err(TossaError::Reconstruct)?;
    // Same fast path as the unchecked pipeline: no split edges means the
    // CFG-shape analyses survive reconstruction.
    if recon.edges_split == 0 {
        cache.invalidate_instructions();
    } else {
        cache.invalidate();
    }
    if passes.naive_abi {
        naive_abi(&mut f);
        cache.invalidate_instructions();
    }
    // Copy-reordering chaos models a buggy sequentializer.
    if let Some(c) = chaos_at(Catcher::Differential) {
        injected.set(note_injection(chaos::inject(&mut f, c, &mut rng), c) || injected.get());
    }
    guard
        .check(&f, IrForm::NonSsa)
        .map_err(verify_err("reconstruct"))?;

    tossa_baselines::dead_code_elim_cached(&mut f, &mut cache);
    if passes.coalescing {
        tossa_baselines::aggressive_coalesce_cached(&mut f, &mut cache);
        tossa_baselines::dead_code_elim_cached(&mut f, &mut cache);
    }
    stale_check(&mut cache, "cleanup")?;
    guard
        .check(&f, IrForm::NonSsa)
        .map_err(verify_err("cleanup"))?;
    Ok(f)
}

/// Runs one experiment pipeline on one function in checked mode.
///
/// On any verification failure (or pass panic) the run degrades: the
/// returned function is the naive out-of-SSA translation of the
/// front-end output, itself verified against the source, and the
/// triggering error is recorded in the outcome.
pub fn run_checked(
    bf: &BenchFunction,
    exp: Experiment,
    opts: &CoalesceOptions,
    copts: &CheckedOptions,
) -> CheckedOutcome {
    let guard = PassGuard::before(&bf.func, &bf.inputs, copts.fuel);
    let ssa = front_end(&bf.func);
    let injected = std::cell::Cell::new(false);
    let piped = catch_unwind(AssertUnwindSafe(|| {
        guarded_pipeline(&ssa, exp, opts, &guard, copts, &injected)
    }))
    .unwrap_or_else(|p| {
        Err(TossaError::Panic {
            pass: "pipeline",
            message: panic_message(p),
        })
    });
    let injected = injected.get();
    match piped {
        Ok(func) => {
            let mut outcome = CheckedOutcome {
                moves: crate::metrics::move_count(&func),
                func,
                error: None,
                fell_back: false,
                fallback_error: None,
                injected,
                alloc: None,
            };
            if copts.alloc || copts.alloc_chaos.is_some() {
                let hit = std::cell::Cell::new(false);
                let alloced = catch_unwind(AssertUnwindSafe(|| {
                    alloc_checked(&outcome.func, &guard, copts, &hit)
                }))
                .unwrap_or_else(|p| {
                    Err(TossaError::Panic {
                        pass: "alloc",
                        message: panic_message(p),
                    })
                });
                outcome.injected |= hit.get();
                match alloced {
                    Ok((af, stats)) => {
                        outcome.moves = crate::metrics::move_count(&af);
                        outcome.func = af;
                        outcome.alloc = Some(stats);
                    }
                    // The unallocated pipeline output stays usable; the
                    // allocation failure is the reported diagnostic.
                    Err(e) => outcome.error = Some(e),
                }
            }
            outcome
        }
        Err(error) => {
            tossa_trace::count(tossa_trace::Counter::FallbacksTaken, 1);
            tossa_trace::event("fallback", || format!("{}: {error}", bf.func.name));
            let (func, fallback_error) = naive_fallback(&ssa, exp, &guard);
            CheckedOutcome {
                moves: crate::metrics::move_count(&func),
                func,
                error: Some(error),
                fell_back: true,
                fallback_error,
                injected,
                alloc: None,
            }
        }
    }
}

/// The checked allocation stage: assignment + spill code, optional fault
/// injection, the independent allocation verifier, the physical rewrite,
/// then differential execution of the *allocated* code against the
/// pre-pipeline source.
fn alloc_checked(
    func: &Function,
    guard: &PassGuard,
    copts: &CheckedOptions,
    injected: &std::cell::Cell<bool>,
) -> Result<(Function, AllocStats), TossaError> {
    let mut f = func.clone();
    let mut prep =
        tossa_regalloc::prepare(&mut f, &AllocOptions::default()).map_err(TossaError::Alloc)?;
    if let Some(c) = copts.alloc_chaos {
        let mut rng = SplitMix64::seed_from_u64(copts.chaos_seed ^ 0xA110_C0DE);
        let hit = chaos::inject_alloc(&mut f, &mut prep.assignment, c, &mut rng);
        if hit {
            tossa_trace::count(tossa_trace::Counter::ChaosInjected, 1);
            tossa_trace::event("chaos", || format!("{c:?}"));
        }
        injected.set(hit || injected.get());
    }
    tossa_regalloc::verify_allocation(&f, &prep.assignment).map_err(TossaError::Alloc)?;
    let stats = tossa_regalloc::finish(&mut f, prep);
    guard
        .check(&f, IrForm::NonSsa)
        .map_err(verify_err("alloc"))?;
    Ok((f, stats))
}

/// The degraded path: naive φ replacement (plus naive ABI moves when the
/// experiment requires ABI conformance), verified against the source.
fn naive_fallback(
    ssa: &Function,
    exp: Experiment,
    guard: &PassGuard,
) -> (Function, Option<TossaError>) {
    let built = catch_unwind(AssertUnwindSafe(|| {
        let mut g = ssa.clone();
        naive_out_of_ssa(&mut g);
        if exp.enforces_abi() {
            naive_abi(&mut g);
        }
        g
    }));
    match built {
        Ok(g) => {
            let err = guard
                .check(&g, IrForm::NonSsa)
                .err()
                .map(verify_err("naive_fallback"));
            (g, err)
        }
        Err(p) => (
            ssa.clone(),
            Some(TossaError::Panic {
                pass: "naive_fallback",
                message: panic_message(p),
            }),
        ),
    }
}

/// One entry of the per-function error report.
#[derive(Clone, Debug)]
pub struct FunctionReport {
    /// Function name.
    pub function: String,
    /// The failure that triggered the fallback.
    pub error: TossaError,
    /// Whether even the naive fallback failed verification.
    pub fallback_error: Option<TossaError>,
}

/// Aggregate of one checked experiment over a suite.
#[derive(Clone, Debug)]
pub struct SuiteReport {
    /// The experiment run.
    pub experiment: Experiment,
    /// Functions processed.
    pub total: usize,
    /// Functions that completed the full pipeline cleanly.
    pub clean: usize,
    /// Functions a chaos corruption actually landed in (0 without
    /// [`CheckedOptions::chaos`], or when no function offered a site).
    pub injected: usize,
    /// Functions that degraded to the naive translation, with their
    /// diagnostics (empty on a fully clean run).
    pub failures: Vec<FunctionReport>,
}

impl SuiteReport {
    /// Whether every function completed without degradation.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }
}

impl std::fmt::Display for SuiteReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "checked {}: {}/{} clean, {} degraded",
            self.experiment,
            self.clean,
            self.total,
            self.failures.len()
        )?;
        if self.injected > 0 {
            write!(f, " ({} injected)", self.injected)?;
        }
        writeln!(f)?;
        for r in &self.failures {
            writeln!(f, "  {}: {}", r.function, r.error)?;
            if let Some(e) = &r.fallback_error {
                writeln!(f, "  {}: FALLBACK ALSO FAILED: {e}", r.function)?;
            }
        }
        Ok(())
    }
}

/// Runs one experiment over a suite in checked mode, in parallel. Never
/// panics on a pass failure: failing functions degrade to the naive
/// translation and are listed in the report.
pub fn run_suite_checked(
    suite: &Suite,
    exp: Experiment,
    opts: &CoalesceOptions,
    copts: &CheckedOptions,
) -> SuiteReport {
    let outcomes = par_map(suite.functions.len(), |k| {
        run_checked(&suite.functions[k], exp, opts, copts)
    });
    collect_report(suite, exp, outcomes)
}

/// [`run_suite_checked`] with per-function trace capture: each worker
/// installs a collector, so verifier spans, chaos injections, and
/// fallback events are all recorded. Trace `k` belongs to
/// `suite.functions[k]`.
pub fn run_suite_checked_traced(
    suite: &Suite,
    exp: Experiment,
    opts: &CoalesceOptions,
    copts: &CheckedOptions,
) -> (SuiteReport, Vec<tossa_trace::TraceData>) {
    let pairs = par_map(suite.functions.len(), |k| {
        tossa_trace::capture(|| run_checked(&suite.functions[k], exp, opts, copts))
    });
    let (outcomes, traces): (Vec<_>, Vec<_>) = pairs.into_iter().unzip();
    (collect_report(suite, exp, outcomes), traces)
}

fn collect_report(suite: &Suite, exp: Experiment, outcomes: Vec<CheckedOutcome>) -> SuiteReport {
    let mut report = SuiteReport {
        experiment: exp,
        total: outcomes.len(),
        clean: 0,
        injected: 0,
        failures: Vec::new(),
    };
    for (bf, o) in suite.functions.iter().zip(outcomes) {
        if o.injected {
            report.injected += 1;
        }
        match o.error {
            None => report.clean += 1,
            Some(error) => report.failures.push(FunctionReport {
                function: bf.func.name.clone(),
                error,
                fallback_error: o.fallback_error,
            }),
        }
    }
    report
}

/// A deterministic fuzz population: `n` seeded random functions (the
/// SPECint-like generator) with the input set widened from the
/// generator's 3 vectors to 8, so differential execution probes more
/// paths. Equal `(n, seed_base)` yield byte-identical suites.
pub fn fuzz_suite(n: usize, seed_base: u64) -> Suite {
    // Slightly smaller than the SPECint-like default: the checked mode
    // re-verifies and re-executes after every pass, so per-function cost
    // is ~10× a plain run and the population is large.
    let cfg = crate::suites::synth::SynthConfig {
        max_depth: 2,
        body_len: 4,
        ..Default::default()
    };
    let functions = (0..n as u64)
        .map(|k| {
            let seed = seed_base.wrapping_add(k);
            let mut bf = crate::suites::synth::generate_function(seed, &cfg);
            let ninputs = bf.inputs[0].len();
            let mut rng = SplitMix64::seed_from_u64(seed ^ 0xF022_55AA);
            while bf.inputs.len() < 8 {
                bf.inputs.push(
                    (0..ninputs)
                        .map(|_| rng.random_range(-100i64..100))
                        .collect(),
                );
            }
            bf
        })
        .collect();
    Suite {
        name: "fuzz",
        functions,
    }
}

/// Convenience check used by tests and the fuzz binary: a clean checked
/// run must end in valid non-SSA code.
pub fn assert_outcome_valid(o: &CheckedOutcome) -> Result<(), TossaError> {
    check_form(&o.func, IrForm::NonSsa).map_err(|e| TossaError::Verify {
        pass: "final",
        error: e,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suites;

    fn small_suite() -> Suite {
        Suite {
            name: "examples",
            functions: suites::paper_examples::examples(),
        }
    }

    #[test]
    fn checked_mode_is_clean_on_examples() {
        let opts = CoalesceOptions::default();
        let copts = CheckedOptions::default();
        for &exp in Experiment::all() {
            let report = run_suite_checked(&small_suite(), exp, &opts, &copts);
            assert!(report.is_clean(), "{report}");
            assert_eq!(report.clean, report.total);
        }
    }

    #[test]
    fn checked_alloc_is_clean_on_examples_and_reports_stats() {
        let opts = CoalesceOptions::default();
        let copts = CheckedOptions {
            alloc: true,
            ..Default::default()
        };
        for &exp in Experiment::all() {
            let suite = small_suite();
            for bf in &suite.functions {
                let o = run_checked(bf, exp, &opts, &copts);
                assert!(o.error.is_none(), "{exp} {}: {:?}", bf.func.name, o.error);
                let stats = o.alloc.expect("alloc stage ran");
                assert!(stats.regs_used > 0, "{exp} {}", bf.func.name);
            }
        }
    }

    #[test]
    fn alloc_chaos_is_caught_as_structured_alloc_errors() {
        let opts = CoalesceOptions::default();
        let suite = small_suite();
        let copts = CheckedOptions {
            alloc_chaos: Some(AllocCorruption::AssignOverlappingInterval),
            chaos_seed: 5,
            ..Default::default()
        };
        let report = run_suite_checked(&suite, Experiment::LphiC, &opts, &copts);
        assert!(report.injected > 0, "corruption never landed");
        assert!(!report.is_clean(), "corruption landed but was not caught");
        for r in &report.failures {
            assert!(matches!(r.error, TossaError::Alloc(_)), "{}", r.error);
        }
    }

    #[test]
    fn chaos_degrades_to_naive_and_reports() {
        let opts = CoalesceOptions::default();
        let suite = small_suite();
        for (k, &c) in Corruption::all().iter().enumerate() {
            let copts = CheckedOptions {
                chaos: Some(c),
                chaos_seed: 11 + k as u64,
                ..Default::default()
            };
            let report = run_suite_checked(&suite, Experiment::LphiC, &opts, &copts);
            // At least one function must offer a corruption site, be
            // caught, and degrade; every degraded function's fallback
            // must verify.
            assert!(
                !report.is_clean(),
                "{c:?} was never injected or never caught"
            );
            for r in &report.failures {
                assert!(
                    r.fallback_error.is_none(),
                    "{c:?} fallback broken on {}: {:?}",
                    r.function,
                    r.fallback_error
                );
            }
            // The report formats with function names and error text.
            let text = report.to_string();
            assert!(text.contains("degraded"), "{text}");
        }
    }

    #[test]
    fn chaos_errors_match_their_class() {
        let opts = CoalesceOptions::default();
        let suite = small_suite();
        let copts = CheckedOptions {
            chaos: Some(Corruption::MergeInterferingWebs),
            chaos_seed: 3,
            ..Default::default()
        };
        let report = run_suite_checked(&suite, Experiment::LphiC, &opts, &copts);
        assert!(!report.is_clean());
        for r in &report.failures {
            assert!(
                matches!(r.error, TossaError::Coalesce(_)),
                "expected coalesce error, got {} on {}",
                r.error,
                r.function
            );
        }
    }

    #[test]
    fn fallback_output_is_usable() {
        let opts = CoalesceOptions::default();
        let copts = CheckedOptions {
            chaos: Some(Corruption::DoubleDef),
            chaos_seed: 1,
            ..Default::default()
        };
        let bf = &suites::paper_examples::examples()[0];
        let o = run_checked(bf, Experiment::LphiC, &opts, &copts);
        assert!(o.fell_back);
        assert!(o.error.is_some());
        assert_outcome_valid(&o).unwrap();
    }
}
