//! Tier-1 differential-fuzz smoke: 200 seeded random functions through
//! every experiment in checked mode (per-pass structural verification
//! plus differential execution on 8 input vectors per function), with
//! zero semantic mismatches and zero panics; injected faults must
//! degrade to the naive translation and surface in the report.
//!
//! Fixed seeds keep the run byte-for-byte reproducible; the heavier
//! exploratory runs live in the `fuzz` binary.

use tossa_bench::checked::{
    fuzz_suite, run_checked, run_suite_checked, run_suite_checked_traced, CheckedOptions,
};
use tossa_bench::reduce::reduce;
use tossa_bench::suites::{synth, BenchFunction};
use tossa_core::chaos::Corruption;
use tossa_core::coalesce::CoalesceOptions;
use tossa_core::Experiment;

#[test]
fn all_experiments_clean_on_200_seeded_functions() {
    let suite = fuzz_suite(200, 0x5EED);
    assert_eq!(suite.functions.len(), 200);
    for bf in &suite.functions {
        assert_eq!(bf.inputs.len(), 8);
    }
    let opts = CoalesceOptions::default();
    let copts = CheckedOptions::default();
    for &exp in Experiment::all() {
        let report = run_suite_checked(&suite, exp, &opts, &copts);
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.clean, 200);
    }
}

#[test]
fn injected_faults_degrade_gracefully_on_fuzz_population() {
    // A smaller population keeps this in tier-1 budget; every corruption
    // class must be injected somewhere, caught by a structured error,
    // and every degraded function's naive fallback must still verify.
    // The paper examples ride along because their swap/lost-copy loops
    // guarantee a site for the copy-reordering class, which needs a
    // dependent parallel-copy pair after reconstruction.
    let mut suite = fuzz_suite(20, 0xC4A05);
    suite
        .functions
        .extend(tossa_bench::suites::paper_examples::examples());
    let opts = CoalesceOptions::default();
    for (k, &c) in Corruption::all().iter().enumerate() {
        let copts = CheckedOptions {
            chaos: Some(c),
            chaos_seed: 77 + k as u64,
            ..Default::default()
        };
        let report = run_suite_checked(&suite, Experiment::LphiC, &opts, &copts);
        assert!(
            !report.is_clean(),
            "{c:?} was never injected or never caught"
        );
        for r in &report.failures {
            assert!(
                r.fallback_error.is_none(),
                "{c:?} broke the fallback on {}: {:?}",
                r.function,
                r.fallback_error
            );
        }
    }
}

#[test]
fn chaos_with_tracing_keeps_every_capture_well_scoped() {
    // Regression: a chaos-induced panic unwinding through open spans
    // used to leave the thread-local capture unbalanced, corrupting the
    // traces of later functions sharing the worker thread. Every
    // per-function trace must now be well-nested, and each function's
    // records must be independent (ids restart at 0 per capture).
    let mut suite = fuzz_suite(20, 0xC4A05);
    suite
        .functions
        .extend(tossa_bench::suites::paper_examples::examples());
    let opts = CoalesceOptions::default();
    for (k, &c) in Corruption::all().iter().enumerate() {
        let copts = CheckedOptions {
            chaos: Some(c),
            chaos_seed: 77 + k as u64,
            ..Default::default()
        };
        let (report, traces) = run_suite_checked_traced(&suite, Experiment::LphiC, &opts, &copts);
        assert!(!report.is_clean(), "{c:?} was never injected");
        assert_eq!(traces.len(), suite.functions.len());
        for (bf, trace) in suite.functions.iter().zip(&traces) {
            trace
                .check_well_nested()
                .unwrap_or_else(|e| panic!("{c:?} on {}: {e}", bf.func.name));
            for (i, r) in trace.records.iter().enumerate() {
                assert_eq!(
                    r.id as usize, i,
                    "{c:?} on {}: provenance ids leaked across captures",
                    bf.func.name
                );
            }
        }
    }
}

#[test]
fn reducer_shrinks_a_failing_fuzz_case() {
    // Small generator settings so the reduction loop (one checked run
    // per candidate edit) stays cheap.
    let cfg = synth::SynthConfig {
        functions: 1,
        pool: 4,
        max_depth: 1,
        body_len: 3,
    };
    let bf = synth::generate_function(0xBAD5EED, &cfg);
    let opts = CoalesceOptions::default();
    let copts = CheckedOptions {
        chaos: Some(Corruption::DoubleDef),
        chaos_seed: 9,
        ..Default::default()
    };
    let failing = |f: &tossa_ir::Function| {
        let cand = BenchFunction {
            func: f.clone(),
            inputs: bf.inputs.clone(),
        };
        run_checked(&cand, Experiment::LphiC, &opts, &copts)
            .error
            .is_some()
    };
    assert!(failing(&bf.func), "chaos found no site on the seed case");
    let (small, stats) = reduce(&bf.func, &failing);
    assert!(failing(&small), "reduction lost the failure");
    assert!(
        stats.final_size < stats.initial_size,
        "nothing reduced: {stats:?}"
    );
}
