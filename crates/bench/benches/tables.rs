//! Criterion benchmark over the table-generating pipelines: wall-clock
//! time of each Table-1 experiment over each suite (the data behind
//! Tables 2–4 regenerates on every iteration).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tossa_bench::runner::run_suite;
use tossa_bench::suites::all_suites;
use tossa_core::coalesce::CoalesceOptions;
use tossa_core::Experiment;

fn bench_experiments(c: &mut Criterion) {
    let suites = all_suites(10);
    let mut group = c.benchmark_group("experiment");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    for &exp in Experiment::all() {
        for suite in &suites {
            group.bench_with_input(
                BenchmarkId::new(format!("{exp:?}"), suite.name),
                suite,
                |b, suite| {
                    b.iter(|| {
                        black_box(run_suite(
                            suite,
                            exp,
                            &CoalesceOptions::default(),
                            false,
                        ))
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_variants(c: &mut Criterion) {
    use tossa_core::interfere::InterferenceMode;
    let suites = all_suites(10);
    let spec = suites.iter().find(|s| s.name == "SPECint").expect("suite");
    let mut group = c.benchmark_group("table5_variant");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    let variants: [(&str, CoalesceOptions); 4] = [
        ("base", CoalesceOptions::default()),
        ("depth", CoalesceOptions { depth_priority: true, ..Default::default() }),
        ("opt", CoalesceOptions { mode: InterferenceMode::Optimistic, ..Default::default() }),
        ("pess", CoalesceOptions { mode: InterferenceMode::Pessimistic, ..Default::default() }),
    ];
    for (name, opts) in variants {
        group.bench_function(name, |b| {
            b.iter(|| black_box(run_suite(spec, Experiment::LphiAbi, &opts, false)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_experiments, bench_variants);
criterion_main!(benches);
