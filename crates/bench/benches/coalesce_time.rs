//! The compile-time claim of §5 (\[CC3\]): the cost of the post-SSA
//! repeated register coalescer is proportional to the number of move
//! instructions in its input, so handling moves at the SSA level shrinks
//! its workload by an order of magnitude.
//!
//! This bench prepares, outside the timed region, the out-of-SSA outputs
//! of three pipelines (`Lφ,ABI`, `LABI`, `Sφ`) and times only the
//! aggressive Chaitin coalescing that follows each — plus the cost of the
//! pinning coalescer itself, to show the trade is worth it.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tossa_baselines::aggressive_coalesce;
use tossa_bench::runner::run_experiment;
use tossa_bench::suites::all_suites;
use tossa_core::coalesce::CoalesceOptions;
use tossa_core::collect::{pinning_abi, pinning_sp};
use tossa_core::{program_pinning, Experiment};
use tossa_ir::Function;

fn prepared(exp: Experiment) -> Vec<Function> {
    all_suites(10)
        .iter()
        .flat_map(|s| {
            s.functions
                .iter()
                .map(|bf| run_experiment(&bf.func, exp, &CoalesceOptions::default()).func)
                .collect::<Vec<_>>()
        })
        .collect()
}

fn bench_chaitin_workload(c: &mut Criterion) {
    let mut group = c.benchmark_group("chaitin_after");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    for (label, exp) in [
        ("Lphi_ABI", Experiment::LphiAbi),
        ("LABI", Experiment::Labi),
        ("Sphi", Experiment::Sphi),
    ] {
        let funcs = prepared(exp);
        let moves: usize = funcs.iter().map(|f| f.count_moves()).sum();
        group.bench_function(format!("{label}_{moves}_moves"), |b| {
            b.iter_batched(
                || funcs.clone(),
                |mut funcs| {
                    for f in funcs.iter_mut() {
                        black_box(aggressive_coalesce(f));
                    }
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_pinning_coalescer(c: &mut Criterion) {
    // The SSA-level coalescer itself, on pinned SSA input.
    let inputs: Vec<Function> = all_suites(10)
        .iter()
        .flat_map(|s| {
            s.functions
                .iter()
                .map(|bf| {
                    let mut f = tossa_bench::runner::front_end(&bf.func);
                    pinning_sp(&mut f);
                    pinning_abi(&mut f);
                    f
                })
                .collect::<Vec<_>>()
        })
        .collect();
    let mut group = c.benchmark_group("pinning");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    group.bench_function("program_pinning_all_suites", |b| {
        b.iter_batched(
            || inputs.clone(),
            |mut funcs| {
                for f in funcs.iter_mut() {
                    black_box(program_pinning(f, &CoalesceOptions::default()));
                }
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_chaitin_workload, bench_pinning_coalescer);
criterion_main!(benches);
