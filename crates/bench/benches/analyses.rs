//! Microbenchmarks of the analysis substrate on large generated
//! functions: dominators, liveness, the live-after-def oracle, SSA
//! construction, and the out-of-pinned-SSA reconstruction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tossa_analysis::{DefMap, DomTree, LiveAtDefs, Liveness};
use tossa_bench::suites::synth::{generate_function, SynthConfig};
use tossa_core::reconstruct::out_of_pinned_ssa;
use tossa_ir::cfg::Cfg;
use tossa_ir::Function;
use tossa_ssa::to_ssa;

fn big_function(scale: usize) -> Function {
    let cfg = SynthConfig {
        functions: 1,
        pool: 10,
        max_depth: 3,
        body_len: 4 + scale,
    };
    generate_function(42 + scale as u64, &cfg).func
}

fn bench_analyses(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    for scale in [2usize, 6, 12] {
        let f = big_function(scale);
        let insts = f.all_insts().count();
        let cfg = Cfg::compute(&f);
        group.bench_with_input(BenchmarkId::new("domtree", insts), &f, |b, f| {
            b.iter(|| black_box(DomTree::compute(f, &cfg)))
        });
        group.bench_with_input(BenchmarkId::new("liveness", insts), &f, |b, f| {
            b.iter(|| black_box(Liveness::compute(f, &cfg)))
        });
        let live = Liveness::compute(&f, &cfg);
        let defs = DefMap::compute(&f);
        group.bench_with_input(BenchmarkId::new("live_at_defs", insts), &f, |b, f| {
            b.iter(|| black_box(LiveAtDefs::compute(f, &live, &defs)))
        });
        group.bench_with_input(BenchmarkId::new("to_ssa", insts), &f, |b, f| {
            b.iter_batched(
                || f.clone(),
                |mut f| {
                    to_ssa(&mut f);
                    black_box(f)
                },
                criterion::BatchSize::SmallInput,
            )
        });
        let mut ssa = f.clone();
        to_ssa(&mut ssa);
        group.bench_with_input(BenchmarkId::new("reconstruct", insts), &ssa, |b, ssa| {
            b.iter_batched(
                || ssa.clone(),
                |mut f| {
                    black_box(out_of_pinned_ssa(&mut f));
                    f
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_analyses);
criterion_main!(benches);
