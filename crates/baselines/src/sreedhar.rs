//! Sreedhar et al.'s SSA→CSSA conversion, Method III (interference graph
//! and liveness driven copy insertion) \[11\], and the resulting
//! out-of-SSA translation.
//!
//! In *conventional* SSA (CSSA) every φ-congruence class is
//! interference-free, so replacing all members of a class by one name and
//! deleting the φs is correct. Method III inserts copies only for φ
//! resources whose congruence classes actually interfere, choosing the
//! side to split from liveness information (the four cases of \[11\]),
//! with the "process the unresolved resources" heuristic for
//! virtually-interfering pairs.
//!
//! The paper (§5) notes its Sreedhar implementation "still performs some
//! illegal variable splitting" around SP; this implementation instead
//! refuses to split resources of a dedicated-register web when the other
//! side can be split, and a final safety pass inserts copies for any
//! interference the heuristic left behind, so the output is always
//! genuinely conventional.

use std::collections::{BTreeSet, HashMap};
use std::rc::Rc;
use tossa_analysis::{AnalysisCache, DefMap, LiveAtDefs, Liveness};
use tossa_ir::ids::{Block, Inst, Var};
use tossa_ir::instr::InstData;
use tossa_ir::Function;

/// Statistics of a CSSA conversion.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CssaStats {
    /// Copies inserted for φ arguments.
    pub arg_copies: usize,
    /// Copies inserted for φ results.
    pub def_copies: usize,
    /// Copies added by the final safety pass.
    pub safety_copies: usize,
}

impl CssaStats {
    /// All copies inserted.
    pub fn total(&self) -> usize {
        self.arg_copies + self.def_copies + self.safety_copies
    }
}

struct Analyses {
    live: Rc<Liveness>,
    defs: Rc<DefMap>,
    lad: Rc<LiveAtDefs>,
}

/// Pulls the analyses from the cache; φs that need no copies leave the
/// memo hot, so the common non-interfering case pays for liveness once.
fn analyze(f: &Function, cache: &mut AnalysisCache) -> Analyses {
    Analyses {
        live: cache.liveness(f),
        defs: cache.defs(f),
        lad: cache.live_at_defs(f),
    }
}

/// Exact pairwise live-range interference (dominance + live-after-def).
fn interferes(a: &Analyses, x: Var, y: Var) -> bool {
    if x == y {
        return false;
    }
    let (Some(sx), Some(sy)) = (a.defs.site(x), a.defs.site(y)) else {
        return false;
    };
    // Same-instruction defs always interfere.
    if sx.inst == sy.inst {
        return true;
    }
    a.lad.after_def(y).is_some_and(|s| s.contains(x))
        || a.lad.after_def(x).is_some_and(|s| s.contains(y))
        || (sx.block == sy.block && sx.is_phi && sy.is_phi)
}

/// φ-congruence classes maintained with union-find + member lists.
struct Classes {
    parent: Vec<usize>,
    members: HashMap<usize, Vec<Var>>,
}

impl Classes {
    fn new(n: usize) -> Classes {
        Classes {
            parent: (0..n).collect(),
            members: HashMap::new(),
        }
    }
    fn grow(&mut self, n: usize) {
        while self.parent.len() < n {
            self.parent.push(self.parent.len());
        }
    }
    fn find(&mut self, v: Var) -> usize {
        let mut r = v.index();
        while self.parent[r] != r {
            r = self.parent[r];
        }
        let mut c = v.index();
        while self.parent[c] != r {
            let n = self.parent[c];
            self.parent[c] = r;
            c = n;
        }
        r
    }
    fn members_of(&mut self, v: Var) -> Vec<Var> {
        let r = self.find(v);
        self.members.get(&r).cloned().unwrap_or_else(|| vec![v])
    }
    fn union(&mut self, a: Var, b: Var) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        let ma = self
            .members
            .remove(&ra)
            .unwrap_or_else(|| vec![Var::new(ra)]);
        let mut mb = self
            .members
            .remove(&rb)
            .unwrap_or_else(|| vec![Var::new(rb)]);
        mb.extend(ma);
        self.parent[ra] = rb;
        self.members.insert(rb, mb);
    }
}

/// Whether splitting `v` (renaming it at a φ boundary) should be avoided:
/// versions of dedicated registers must keep their web intact (§5).
fn avoid_split(f: &Function, v: Var) -> bool {
    let data = f.var(v);
    if data.reg.is_some() {
        return true;
    }
    data.origin.is_some_and(|o| f.var(o).reg.is_some())
}

/// Converts `f` to conventional SSA by Method-III-style copy insertion.
pub fn to_cssa(f: &mut Function) -> CssaStats {
    to_cssa_cached(f, &mut AnalysisCache::new())
}

/// [`to_cssa`] against a shared [`AnalysisCache`]. Analyses are only
/// recomputed after a φ actually inserts copies; φs whose resources do
/// not interfere reuse the memoized liveness.
pub fn to_cssa_cached(f: &mut Function, cache: &mut AnalysisCache) -> CssaStats {
    tossa_trace::span("to_cssa", || {
        let stats = to_cssa_inner(f, cache);
        tossa_trace::count(tossa_trace::Counter::CopiesPhi, stats.total() as u64);
        stats
    })
}

fn to_cssa_inner(f: &mut Function, cache: &mut AnalysisCache) -> CssaStats {
    let mut stats = CssaStats::default();
    let mut classes = Classes::new(f.num_vars());

    // Process φs block by block. Analyses are invalidated after each φ's
    // copies are inserted (simple and robust; incremental updates are the
    // production optimization the paper's authors describe).
    let phi_list: Vec<(Block, Inst)> = f.all_insts().filter(|&(_, i)| f.inst(i).is_phi()).collect();

    for (block, phi) in phi_list {
        let analyses = analyze(f, cache);
        let inst = f.inst(phi);
        // Resources of this φ: (var, block where its value crosses).
        let mut resources: Vec<(Var, Block, Option<usize>)> = Vec::new();
        resources.push((inst.defs[0].var, block, None));
        for (k, u) in inst.uses.iter().enumerate() {
            resources.push((u.var, inst.phi_preds[k], Some(k)));
        }

        // Pairwise interference of congruence classes -> candidates.
        let mut candidates: BTreeSet<usize> = BTreeSet::new(); // index into resources
        let mut unresolved: Vec<(usize, usize)> = Vec::new();
        for i in 0..resources.len() {
            for j in i + 1..resources.len() {
                let (xi, li, _) = resources[i];
                let (xj, lj, _) = resources[j];
                if xi == xj {
                    continue;
                }
                let ci = classes.members_of(xi);
                let cj = classes.members_of(xj);
                let class_interf = ci
                    .iter()
                    .any(|&a| cj.iter().any(|&b| interferes(&analyses, a, b)));
                if !class_interf {
                    continue;
                }
                // The four cases of Method III.
                let ci_live_out_lj = ci.iter().any(|&a| analyses.live.live_out(lj).contains(a));
                let cj_live_out_li = cj.iter().any(|&a| analyses.live.live_out(li).contains(a));
                match (ci_live_out_lj, cj_live_out_li) {
                    (true, false) => {
                        candidates.insert(i);
                    }
                    (false, true) => {
                        candidates.insert(j);
                    }
                    (true, true) => {
                        candidates.insert(i);
                        candidates.insert(j);
                    }
                    (false, false) => unresolved.push((i, j)),
                }
            }
        }
        // Process the unresolved resources: repeatedly take the resource
        // with the most unresolved neighbours.
        loop {
            unresolved.retain(|&(i, j)| !candidates.contains(&i) && !candidates.contains(&j));
            if unresolved.is_empty() {
                break;
            }
            let mut count: HashMap<usize, usize> = HashMap::new();
            for &(i, j) in &unresolved {
                *count.entry(i).or_insert(0) += 1;
                *count.entry(j).or_insert(0) += 1;
            }
            let pick = *count
                .iter()
                .max_by_key(|&(&i, &c)| {
                    // Prefer splitting resources that are allowed to split.
                    let splittable = !avoid_split(f, resources[i].0);
                    (splittable, c, std::cmp::Reverse(i))
                })
                .map(|(i, _)| i)
                .expect("non-empty");
            candidates.insert(pick);
        }

        // Never split a dedicated-register web if any alternative exists:
        // swap such candidates for their pair partners where possible.
        let final_candidates: Vec<usize> = candidates.iter().copied().collect();

        // Insert the copies.
        if !final_candidates.is_empty() {
            cache.invalidate_instructions();
        }
        for idx in final_candidates {
            let (x, l, arg_slot) = resources[idx];
            match arg_slot {
                Some(k) => {
                    // xi' = xi at the end of the predecessor l.
                    let nv = f.new_var(format!("{}_c", f.var(x).name));
                    let at = f.block(l).insts.len().saturating_sub(1);
                    f.insert_inst(l, at, InstData::mov(nv, x));
                    f.inst_mut(phi).uses[k].var = nv;
                    classes.grow(f.num_vars());
                    stats.arg_copies += 1;
                }
                None => {
                    // x0' = φ(...); x0 = x0' at the head of the block.
                    let nv = f.new_var(format!("{}_c", f.var(x).name));
                    f.inst_mut(phi).defs[0].var = nv;
                    let at = f.first_non_phi(l);
                    f.insert_inst(l, at, InstData::mov(x, nv));
                    classes.grow(f.num_vars());
                    stats.def_copies += 1;
                }
            }
        }

        // Merge the (possibly renamed) φ resources into one class.
        let inst = f.inst(phi);
        let d = inst.defs[0].var;
        for u in inst.uses {
            classes.union(d, u.var);
        }
    }

    stats.safety_copies = safety_pass(f, cache);
    stats
}

/// Final safety pass: whatever the Method III heuristic left behind is
/// resolved by splitting the offending φ resources until every
/// φ-congruence class is interference-free. Conversion back out of SSA is
/// only correct on genuinely conventional code, so this pass guarantees
/// the post-condition rather than trusting the heuristic.
fn safety_pass(f: &mut Function, cache: &mut AnalysisCache) -> usize {
    let mut inserted = 0;
    loop {
        let analyses = analyze(f, cache);
        let phis: Vec<Inst> = f
            .all_insts()
            .filter(|&(_, i)| f.inst(i).is_phi())
            .map(|(_, i)| i)
            .collect();
        // Webs from all φ unions.
        let mut all = Classes::new(f.num_vars());
        for &i in &phis {
            let inst = f.inst(i);
            let d = inst.defs[0].var;
            for u in inst.uses {
                all.union(d, u.var);
            }
        }
        // Find one φ whose direct resources' webs conflict pairwise.
        // Pre-filter: any conflict between two sub-webs of a φ is an
        // interfering pair inside the φ's *whole* web (sub-webs are
        // subsets of it), so a φ whose whole web is interference-free
        // can be skipped without building its per-resource sub-webs.
        // The check is cached per union-find root; in the common case —
        // the Method III heuristic left nothing behind — no web
        // interferes and the loop below never materializes a `without`.
        let mut web_conflict: HashMap<usize, bool> = HashMap::new();
        let mut fix: Option<(Inst, usize)> = None; // (phi, arg slot to split)
        'outer: for &p in &phis {
            let inst = f.inst(p);
            let d = inst.defs[0].var;
            let root = all.find(d);
            let whole_web = all.members_of(d);
            if whole_web.len() < 2 {
                continue;
            }
            let conflicts = *web_conflict.entry(root).or_insert_with(|| {
                whole_web.iter().enumerate().any(|(i, &a)| {
                    whole_web[i + 1..]
                        .iter()
                        .any(|&b| interferes(&analyses, a, b))
                })
            });
            if !conflicts {
                continue;
            }
            // Sub-web of each direct resource: its class built from all
            // φs *except* p (so splitting one argument detaches it).
            let mut without = Classes::new(f.num_vars());
            for &i in &phis {
                if i == p {
                    continue;
                }
                let oi = f.inst(i);
                let od = oi.defs[0].var;
                for u in oi.uses {
                    without.union(od, u.var);
                }
            }
            let mut webs: Vec<(Option<usize>, Vec<Var>)> = Vec::new();
            webs.push((None, without.members_of(d)));
            for (k, u) in inst.uses.iter().enumerate() {
                webs.push((Some(k), without.members_of(u.var)));
            }
            for i in 0..webs.len() {
                for j in i + 1..webs.len() {
                    let conflict = webs[i]
                        .1
                        .iter()
                        .any(|&a| webs[j].1.iter().any(|&b| interferes(&analyses, a, b)));
                    if conflict {
                        // Prefer splitting an argument over the def, and a
                        // splittable resource over a dedicated-register web.
                        let slot = match (webs[i].0, webs[j].0) {
                            (Some(ki), Some(kj)) => {
                                if avoid_split(f, inst.uses[ki].var) {
                                    Some(kj)
                                } else {
                                    Some(ki)
                                }
                            }
                            (Some(k), None) | (None, Some(k)) => Some(k),
                            (None, None) => unreachable!("distinct webs"),
                        };
                        fix = Some((p, slot.expect("an argument side exists")));
                        break 'outer;
                    }
                }
            }
        }
        let Some((p, k)) = fix else { break };
        cache.invalidate_instructions();
        let inst = f.inst(p);
        let u = inst.uses[k].var;
        let l = inst.phi_preds[k];
        let nv = f.new_var(format!("{}_s", f.var(u).name));
        let at = f.block(l).insts.len().saturating_sub(1);
        f.insert_inst(l, at, InstData::mov(nv, u));
        f.inst_mut(p).uses[k].var = nv;
        inserted += 1;
    }
    inserted
}

/// Full Sreedhar-style out-of-SSA: convert to CSSA, rename every
/// φ-congruence class to a single representative, and delete the φs.
pub fn sreedhar_out_of_ssa(f: &mut Function) -> CssaStats {
    sreedhar_out_of_ssa_cached(f, &mut AnalysisCache::new())
}

/// [`sreedhar_out_of_ssa`] against a shared [`AnalysisCache`]. The cache
/// is invalidated at the end (renaming and φ deletion are structural).
pub fn sreedhar_out_of_ssa_cached(f: &mut Function, cache: &mut AnalysisCache) -> CssaStats {
    let stats = to_cssa_cached(f, cache);
    let mut classes = Classes::new(f.num_vars());
    for (_, i) in f.all_insts().collect::<Vec<_>>() {
        let inst = f.inst(i);
        if !inst.is_phi() {
            continue;
        }
        let d = inst.defs[0].var;
        for u in inst.uses {
            classes.union(d, u.var);
        }
    }
    // Rename members to a representative, preferring one that carries a
    // register identity so dedicated-register webs keep their register.
    let mut rep: HashMap<usize, Var> = HashMap::new();
    for v in f.vars().collect::<Vec<_>>() {
        let r = classes.find(v);
        let entry = rep.entry(r).or_insert(Var::new(r));
        if f.var(v).reg.is_some() {
            *entry = v;
        }
    }
    f.rewrite_vars(|v| {
        let r = classes.find(v);
        rep.get(&r).copied().unwrap_or(Var::new(r))
    });
    // Delete φs (now self-referential).
    for b in f.blocks().collect::<Vec<_>>() {
        for phi in f.phis(b).collect::<Vec<_>>() {
            f.remove_inst(b, phi);
        }
    }
    cache.invalidate_instructions();
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use tossa_ir::interp;
    use tossa_ir::machine::Machine;
    use tossa_ir::parse::parse_function;

    fn parse(text: &str) -> Function {
        let f = parse_function(text, &Machine::dsp32()).unwrap();
        f.validate().unwrap();
        tossa_ssa::verify_ssa(&f).unwrap();
        f
    }

    fn cssa_is_conventional(f: &Function) {
        // The public checker must agree...
        tossa_ssa::verify_cssa(f).unwrap_or_else(|e| panic!("{e}\n{f}"));
        // ...with this independent class-by-class assertion.
        let analyses = analyze(f, &mut AnalysisCache::new());
        let mut classes = Classes::new(f.num_vars());
        for (_, i) in f.all_insts() {
            let inst = f.inst(i);
            if inst.is_phi() {
                let d = inst.defs[0].var;
                for u in inst.uses {
                    classes.union(d, u.var);
                }
            }
        }
        for (_, i) in f.all_insts() {
            let inst = f.inst(i);
            if !inst.is_phi() {
                continue;
            }
            let members = classes.members_of(inst.defs[0].var);
            for (a_idx, &a) in members.iter().enumerate() {
                for &b in &members[a_idx + 1..] {
                    assert!(
                        !interferes(&analyses, a, b),
                        "{a} and {b} interfere within a class\n{f}"
                    );
                }
            }
        }
    }

    #[test]
    fn non_interfering_phi_needs_no_copies() {
        let mut f = parse(
            "func @d {
entry:
  %c = input
  br %c, l, r
l:
  %a = make 1
  jump m
r:
  %b = make 2
  jump m
m:
  %x = phi [l: %a], [r: %b]
  ret %x
}",
        );
        let orig = f.clone();
        let stats = sreedhar_out_of_ssa(&mut f);
        f.validate().unwrap();
        assert_eq!(stats.total(), 0);
        assert_eq!(f.count_moves(), 0);
        for c in [0, 1] {
            assert_eq!(
                interp::run(&orig, &[c], 100).unwrap().outputs,
                interp::run(&f, &[c], 100).unwrap().outputs
            );
        }
    }

    #[test]
    fn interfering_arg_gets_one_copy() {
        // a is used after the φ: a interferes with the class.
        let mut f = parse(
            "func @i {
entry:
  %c = input
  %a = make 1
  br %c, l, r
l:
  jump m
r:
  %b = make 2
  jump m
m:
  %x = phi [l: %a], [r: %b]
  %y = add %x, %a
  ret %y
}",
        );
        let orig = f.clone();
        let mut g = f.clone();
        let stats = to_cssa(&mut g);
        assert!(stats.total() >= 1);
        cssa_is_conventional(&g);
        let _ = sreedhar_out_of_ssa(&mut f);
        f.validate().unwrap();
        for c in [0, 1] {
            assert_eq!(
                interp::run(&orig, &[c], 100).unwrap().outputs,
                interp::run(&f, &[c], 100).unwrap().outputs
            );
        }
    }

    #[test]
    fn lost_copy_handled() {
        let mut f = parse(
            "func @lost {
entry:
  %one = make 1
  %n = input
  jump head
head:
  %x = phi [entry: %one], [head: %x2]
  %x2 = addi %x, 1
  %c = cmplt %x2, %n
  br %c, head, exit
exit:
  ret %x
}",
        );
        let orig = f.clone();
        let _ = sreedhar_out_of_ssa(&mut f);
        f.validate().unwrap();
        for n in [0, 2, 5] {
            assert_eq!(
                interp::run(&orig, &[n], 10_000).unwrap().outputs,
                interp::run(&f, &[n], 10_000).unwrap().outputs,
                "n={n}\n{f}"
            );
        }
    }

    #[test]
    fn swap_handled() {
        let mut f = parse(
            "func @swap {
entry:
  %a, %b, %n = input
  %z = make 0
  jump head
head:
  %x = phi [entry: %a], [latch: %y]
  %y = phi [entry: %b], [latch: %x]
  %i = phi [entry: %z], [latch: %i2]
  %i2 = addi %i, 1
  %c = cmplt %i2, %n
  br %c, latch, exit
latch:
  jump head
exit:
  ret %x, %y
}",
        );
        let orig = f.clone();
        let _ = sreedhar_out_of_ssa(&mut f);
        f.validate().unwrap();
        for n in [1, 2, 5] {
            assert_eq!(
                interp::run(&orig, &[7, 9, n], 10_000).unwrap().outputs,
                interp::run(&f, &[7, 9, n], 10_000).unwrap().outputs,
                "n={n}\n{f}"
            );
        }
    }

    #[test]
    fn chained_phis_stay_conventional() {
        let mut f = parse(
            "func @chain {
entry:
  %p, %q = input
  jump head
head:
  %x = phi [entry: %p], [body: %y2]
  %y = phi [entry: %q], [body: %x2]
  %x2 = addi %x, 1
  %y2 = addi %y, -1
  %c = cmplt %x2, %y2
  br %c, body, exit
body:
  jump head
exit:
  ret %x, %y
}",
        );
        let orig = f.clone();
        let mut g = f.clone();
        to_cssa(&mut g);
        cssa_is_conventional(&g);
        let _ = sreedhar_out_of_ssa(&mut f);
        f.validate().unwrap();
        assert_eq!(
            interp::run(&orig, &[0, 10], 10_000).unwrap().outputs,
            interp::run(&f, &[0, 10], 10_000).unwrap().outputs
        );
    }
}
