//! # tossa-baselines — the algorithms the paper compares against
//!
//! * [`naive`] — Cytron-style φ replacement with Briggs et al.'s
//!   swap/lost-copy fixes \[1\], \[4\];
//! * [`sreedhar`] — Sreedhar et al.'s SSA→CSSA Method III and the
//!   resulting out-of-SSA translation \[11\];
//! * [`chaitin`] — aggressive repeated register coalescing \[3\], \[5\];
//! * [`cleanup`] — non-SSA dead code elimination.

#![warn(missing_docs)]

pub mod chaitin;
pub mod cleanup;
pub mod naive;
pub mod sreedhar;

pub use chaitin::{aggressive_coalesce, aggressive_coalesce_cached};
pub use cleanup::{dead_code_elim, dead_code_elim_cached};
pub use naive::naive_out_of_ssa;
pub use sreedhar::{sreedhar_out_of_ssa, sreedhar_out_of_ssa_cached, to_cssa, to_cssa_cached};
