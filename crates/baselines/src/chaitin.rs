//! Aggressive Chaitin-style register coalescing \[3\] on non-SSA code — the
//! paper's `Coalescing` pass (a "repeated register coalescing" \[5\] used
//! outside register allocation, hence aggressive: it ignores
//! colorability).
//!
//! Each round builds liveness and the interference graph, then coalesces
//! every `mov d = s` whose variables do not interfere by merging the
//! vertices (cheap edge union) and rewriting the program; rounds repeat
//! until a fixpoint, since coalescing shortens live ranges and can unlock
//! further coalescing.

use std::collections::HashMap;
use tossa_analysis::{AnalysisCache, BitSet, InterferenceGraph};
use tossa_ir::ids::Var;
use tossa_ir::Function;

/// Statistics of a coalescing run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CoalesceRunStats {
    /// Moves deleted by coalescing.
    pub coalesced: usize,
    /// Rounds (liveness + graph rebuilds) executed.
    pub rounds: usize,
}

/// Whether the pair may be merged at all: never two distinct machine
/// registers; a register variable absorbs a plain one.
fn mergeable(f: &Function, a: Var, b: Var) -> bool {
    match (f.var(a).reg, f.var(b).reg) {
        (Some(ra), Some(rb)) => ra == rb,
        _ => true,
    }
}

/// Chooses the survivor of a merge (the register-carrying side if any).
fn survivor(f: &Function, a: Var, b: Var) -> (Var, Var) {
    if f.var(b).reg.is_some() && f.var(a).reg.is_none() {
        (b, a)
    } else {
        (a, b)
    }
}

/// Runs repeated aggressive coalescing to a fixpoint. Returns statistics.
pub fn aggressive_coalesce(f: &mut Function) -> CoalesceRunStats {
    aggressive_coalesce_cached(f, &mut AnalysisCache::new())
}

/// [`aggressive_coalesce`] against a shared [`AnalysisCache`]. Mutating
/// rounds invalidate the cache; the final (fixpoint) round leaves its
/// liveness memoized for downstream consumers.
pub fn aggressive_coalesce_cached(f: &mut Function, cache: &mut AnalysisCache) -> CoalesceRunStats {
    tossa_trace::span("chaitin_coalesce", || {
        let stats = aggressive_coalesce_inner(f, cache);
        tossa_trace::count(
            tossa_trace::Counter::CopiesCoalesced,
            stats.coalesced as u64,
        );
        stats
    })
}

fn aggressive_coalesce_inner(f: &mut Function, cache: &mut AnalysisCache) -> CoalesceRunStats {
    let mut stats = CoalesceRunStats::default();
    loop {
        stats.rounds += 1;
        // Collect the move sites first: a function without moves needs
        // neither liveness nor an interference graph.
        let moves: Vec<(tossa_ir::ids::Block, tossa_ir::ids::Inst)> = f
            .all_insts()
            .filter(|&(_, i)| f.inst(i).opcode.is_move())
            .collect();
        if moves.is_empty() {
            break;
        }
        let cfg = cache.cfg(f);
        let live = cache.liveness(f);
        // The coalescer only ever queries (and merges) move-operand
        // pairs, so build the graph restricted to those variables.
        let mut movevars: BitSet<Var> = BitSet::new(f.num_vars());
        for &(_, i) in &moves {
            movevars.insert(f.inst(i).defs[0].var);
            movevars.insert(f.inst(i).uses[0].var);
        }
        let mut graph = InterferenceGraph::build_among(f, &cfg, &live, &movevars);
        // Alias map for merges performed this round.
        let mut alias: HashMap<Var, Var> = HashMap::new();
        fn resolve(alias: &HashMap<Var, Var>, mut v: Var) -> Var {
            while let Some(&n) = alias.get(&v) {
                v = n;
            }
            v
        }
        let mut merged_this_round = 0;
        let mut blocked_by_interference = 0;
        for &(_, i) in &moves {
            let inst = f.inst(i);
            let d = resolve(&alias, inst.defs[0].var);
            let s = resolve(&alias, inst.uses[0].var);
            if d == s {
                continue; // becomes a self-move; cleanup deletes it
            }
            if !mergeable(f, d, s) {
                continue;
            }
            if graph.interferes(d, s) {
                blocked_by_interference += 1;
                continue;
            }
            let (keep, gone) = survivor(f, d, s);
            graph.merge(keep, gone);
            alias.insert(gone, keep);
            merged_this_round += 1;
        }
        if merged_this_round == 0 {
            break;
        }
        stats.coalesced += merged_this_round;
        f.rewrite_vars(|v| resolve(&alias, v));
        cache.invalidate_instructions();
        // Delete the now-trivial self-moves.
        for b in f.blocks().collect::<Vec<_>>() {
            for i in f.block_insts(b).collect::<Vec<_>>() {
                if f.inst(i).is_self_move() {
                    f.remove_inst(b, i);
                }
            }
        }
        // Early fixpoint: merging only ever *shortens* live ranges, so a
        // later round can only unlock moves this round rejected for
        // interference. If none were, the next round is guaranteed empty —
        // skip its liveness + graph rebuild.
        if blocked_by_interference == 0 {
            break;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use tossa_ir::interp;
    use tossa_ir::machine::Machine;
    use tossa_ir::parse::parse_function;

    fn parse(text: &str) -> Function {
        let f = parse_function(text, &Machine::dsp32()).unwrap();
        f.validate().unwrap();
        f
    }

    #[test]
    fn coalesces_simple_chain() {
        let mut f = parse(
            "func @c {
entry:
  %a = make 1
  %b = mov %a
  %c = mov %b
  %d = addi %c, 1
  ret %d
}",
        );
        let before = interp::run(&f, &[], 100).unwrap();
        let stats = aggressive_coalesce(&mut f);
        assert_eq!(stats.coalesced, 2);
        assert_eq!(f.count_moves(), 0);
        assert_eq!(interp::run(&f, &[], 100).unwrap().outputs, before.outputs);
    }

    #[test]
    fn keeps_interfering_move() {
        let mut f = parse(
            "func @k {
entry:
  %a = make 1
  %b = mov %a
  %a = make 2
  %s = add %a, %b
  ret %s
}",
        );
        let before = interp::run(&f, &[], 100).unwrap();
        let stats = aggressive_coalesce(&mut f);
        assert_eq!(stats.coalesced, 0);
        assert_eq!(f.count_moves(), 1);
        assert_eq!(interp::run(&f, &[], 100).unwrap().outputs, before.outputs);
    }

    #[test]
    fn never_merges_two_registers() {
        let mut f = parse(
            "func @r {
entry:
  R1 = make 5
  R0 = mov R1
  ret R0
}",
        );
        let stats = aggressive_coalesce(&mut f);
        assert_eq!(stats.coalesced, 0);
        assert_eq!(f.count_moves(), 1);
    }

    #[test]
    fn register_side_survives() {
        let mut f = parse(
            "func @s {
entry:
  %a = make 5
  R0 = mov %a
  ret R0
}",
        );
        let before = interp::run(&f, &[], 100).unwrap();
        aggressive_coalesce(&mut f);
        assert_eq!(f.count_moves(), 0);
        // The make now writes R0 directly.
        let make = f.block_insts(f.entry).next().unwrap();
        assert!(f.var(f.inst(make).defs[0].var).reg.is_some());
        assert_eq!(interp::run(&f, &[], 100).unwrap().outputs, before.outputs);
    }

    #[test]
    fn repeated_rounds_unlock_more() {
        // b = mov a blocked by c's range in round 1? Construct a case
        // where coalescing y/z first removes the overlap blocking x/y.
        let mut f = parse(
            "func @rounds {
entry:
  %x = make 1
  %y = mov %x
  %z = mov %y
  %u = add %z, %z
  ret %u
}",
        );
        let before = interp::run(&f, &[], 100).unwrap();
        let stats = aggressive_coalesce(&mut f);
        assert_eq!(f.count_moves(), 0);
        assert!(stats.rounds >= 1);
        assert_eq!(interp::run(&f, &[], 100).unwrap().outputs, before.outputs);
    }
}
