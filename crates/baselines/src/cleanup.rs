//! Non-SSA cleanup: liveness-based dead code elimination. The paper's
//! pipelines run "dead code and aggressive coalescing phases" after a
//! naive out-of-SSA translation (§5, Table 4 discussion); this is the
//! dead-code part.

use tossa_analysis::AnalysisCache;
use tossa_ir::ids::Inst;
use tossa_ir::Function;

/// Removes instructions without side effects whose definitions are all
/// dead, iterating to a fixpoint. Returns the number removed.
pub fn dead_code_elim(f: &mut Function) -> usize {
    dead_code_elim_cached(f, &mut AnalysisCache::new())
}

/// [`dead_code_elim`] against a shared [`AnalysisCache`]. Rounds that
/// remove code invalidate the cache; the final round's liveness stays
/// memoized.
pub fn dead_code_elim_cached(f: &mut Function, cache: &mut AnalysisCache) -> usize {
    let mut removed = 0;
    loop {
        let live = cache.liveness(f);
        let mut removed_this_round = 0;
        for b in f.blocks().collect::<Vec<_>>() {
            let insts: Vec<Inst> = f.block_insts(b).collect();
            let mut cursor = live.live_exit(f, b);
            // Walk backwards tracking per-point liveness.
            let mut dead: Vec<Inst> = Vec::new();
            for &i in insts.iter().rev() {
                let inst = f.inst(i);
                let is_dead = !inst.opcode.has_side_effects()
                    && !inst.is_terminator()
                    && !inst.defs.is_empty()
                    && inst.defs.iter().all(|d| !cursor.contains(d.var));
                if is_dead {
                    dead.push(i);
                    continue; // its uses do not keep anything alive
                }
                for d in inst.defs {
                    cursor.remove(d.var);
                }
                for u in inst.uses {
                    cursor.insert(u.var);
                }
            }
            for i in dead {
                f.remove_inst(b, i);
                removed_this_round += 1;
            }
        }
        if removed_this_round == 0 {
            break;
        }
        cache.invalidate_instructions();
        removed += removed_this_round;
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use tossa_ir::machine::Machine;
    use tossa_ir::parse::parse_function;

    fn parse(text: &str) -> Function {
        let f = parse_function(text, &Machine::dsp32()).unwrap();
        f.validate().unwrap();
        f
    }

    #[test]
    fn removes_dead_chain() {
        let mut f = parse(
            "func @d {
entry:
  %a = make 1
  %b = addi %a, 1
  %c = make 9
  ret %c
}",
        );
        assert_eq!(dead_code_elim(&mut f), 2);
        assert_eq!(f.block_insts(f.entry).count(), 2);
    }

    #[test]
    fn keeps_stores_and_redefined_values() {
        let mut f = parse(
            "func @k {
entry:
  %p = input
  %x = make 1
  store %p, %x
  %x = make 2
  ret %x
}",
        );
        assert_eq!(dead_code_elim(&mut f), 0);
    }

    #[test]
    fn removes_dead_moves_after_redefinition() {
        let mut f = parse(
            "func @m {
entry:
  %a = make 1
  %x = mov %a
  %x = make 2
  ret %x
}",
        );
        let n = dead_code_elim(&mut f);
        assert_eq!(n, 2); // the mov and then the make feeding it
        assert_eq!(f.count_moves(), 0);
    }
}
