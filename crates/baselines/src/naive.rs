//! Naive out-of-SSA translation (Cytron et al. \[4\] with the correctness
//! fixes of Briggs et al. \[1\]): one copy per φ argument, placed as a
//! parallel copy at the end of each predecessor, then sequentialized.
//! φ-related edges from multi-successor blocks are split first, which
//! rules out the lost-copy problem; cycle breaking in the parallel copy
//! rules out the swap problem.

use tossa_core::reconstruct::split_edges_for_phis;
use tossa_ir::ids::{Block, Inst, Var};
use tossa_ir::instr::InstData;
use tossa_ir::parallel_copy::sequentialize;
use tossa_ir::Function;

/// Statistics of a naive translation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NaiveStats {
    /// Copies inserted for φ arguments.
    pub phi_copies: usize,
    /// Temporaries introduced by cycle breaking.
    pub temp_copies: usize,
    /// φs removed.
    pub phis_removed: usize,
}

/// Replaces every φ with per-edge copies; no coalescing at all.
pub fn naive_out_of_ssa(f: &mut Function) -> NaiveStats {
    tossa_trace::span("naive_out_of_ssa", || {
        let stats = naive_out_of_ssa_inner(f);
        use tossa_trace::{count, Counter};
        count(Counter::CopiesPhi, stats.phi_copies as u64);
        count(Counter::CopiesTemp, stats.temp_copies as u64);
        count(Counter::PhisRemoved, stats.phis_removed as u64);
        stats
    })
}

fn naive_out_of_ssa_inner(f: &mut Function) -> NaiveStats {
    let mut stats = NaiveStats::default();
    split_edges_for_phis(f);

    // Gather all (pred, dst, src) copies, per predecessor block.
    let blocks: Vec<Block> = f.blocks().collect();
    for &b in &blocks {
        let mut group: Vec<(Var, Var)> = Vec::new();
        for &s in f.succs(b).to_vec().iter() {
            for phi in f.phis(s).collect::<Vec<_>>() {
                let inst = f.inst(phi);
                let Some(arg) = inst.phi_arg_for(b) else {
                    continue;
                };
                group.push((inst.defs[0].var, arg.var));
            }
        }
        if group.is_empty() {
            continue;
        }
        stats.phi_copies += group.iter().filter(|(d, s)| d != s).count();
        let seq = sequentialize(&group, || {
            stats.temp_copies += 1;
            f.new_var("swap")
        });
        // Insert before the terminator.
        let term_pos = f.block(b).insts.len() - 1;
        for (k, (d, s)) in seq.into_iter().enumerate() {
            f.insert_inst(b, term_pos + k, InstData::mov(d, s));
        }
    }
    // Delete the φs.
    for &b in &blocks {
        for phi in f.phis(b).collect::<Vec<Inst>>() {
            f.remove_inst(b, phi);
            stats.phis_removed += 1;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use tossa_ir::interp;
    use tossa_ir::machine::Machine;
    use tossa_ir::parse::parse_function;

    fn parse(text: &str) -> Function {
        let f = parse_function(text, &Machine::dsp32()).unwrap();
        f.validate().unwrap();
        f
    }

    #[test]
    fn diamond_two_copies() {
        let mut f = parse(
            "func @d {
entry:
  %c = input
  br %c, l, r
l:
  %a = make 1
  jump m
r:
  %b = make 2
  jump m
m:
  %x = phi [l: %a], [r: %b]
  ret %x
}",
        );
        let orig = f.clone();
        let stats = naive_out_of_ssa(&mut f);
        f.validate().unwrap();
        assert_eq!(stats.phi_copies, 2);
        assert_eq!(stats.phis_removed, 1);
        assert_eq!(f.count_moves(), 2);
        for c in [0, 1] {
            assert_eq!(
                interp::run(&orig, &[c], 100).unwrap().outputs,
                interp::run(&f, &[c], 100).unwrap().outputs
            );
        }
    }

    #[test]
    fn briggs_swap_correct() {
        let mut f = parse(
            "func @swap {
entry:
  %a, %b, %n = input
  %z = make 0
  jump head
head:
  %x = phi [entry: %a], [latch: %y]
  %y = phi [entry: %b], [latch: %x]
  %i = phi [entry: %z], [latch: %i2]
  %i2 = addi %i, 1
  %c = cmplt %i2, %n
  br %c, latch, exit
latch:
  jump head
exit:
  ret %x, %y
}",
        );
        let orig = f.clone();
        let stats = naive_out_of_ssa(&mut f);
        f.validate().unwrap();
        assert!(stats.temp_copies >= 1, "swap needs a temp");
        for n in [1, 2, 3, 7] {
            assert_eq!(
                interp::run(&orig, &[7, 9, n], 10_000).unwrap().outputs,
                interp::run(&f, &[7, 9, n], 10_000).unwrap().outputs,
                "n={n}"
            );
        }
    }

    #[test]
    fn briggs_lost_copy_correct() {
        // Lost-copy shape: φ value used after the loop, back edge is
        // critical before splitting.
        let mut f = parse(
            "func @lost {
entry:
  %one = make 1
  %n = input
  jump head
head:
  %x = phi [entry: %one], [head: %x2]
  %x2 = addi %x, 1
  %c = cmplt %x2, %n
  br %c, head, exit
exit:
  ret %x
}",
        );
        let orig = f.clone();
        naive_out_of_ssa(&mut f);
        f.validate().unwrap();
        for n in [0, 2, 5] {
            assert_eq!(
                interp::run(&orig, &[n], 10_000).unwrap().outputs,
                interp::run(&f, &[n], 10_000).unwrap().outputs,
                "n={n}"
            );
        }
    }
}
