//! A tiny JSON value parser (the build has no serde). Where
//! [`crate::validate_json`] only checks well-formedness, [`parse_json`]
//! builds a [`Json`] tree — used by the `bench-diff` and
//! `explain --diff` binaries to read back `BENCH_*.json` trajectories
//! and `tossa-explain/1` dumps.
//!
//! Numbers are held as `f64`; every integer the exporters write fits in
//! the 53-bit mantissa (nanosecond clocks and counters), so round-trips
//! are exact in practice. Objects keep insertion order and allow
//! duplicate keys ([`Json::get`] returns the first).

/// One parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// First value under `key` when `self` is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(kvs) => kvs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, when `self` is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a `u64` (floored), when `self` is a non-negative
    /// number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The string, when `self` is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, when `self` is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The key/value pairs, when `self` is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(kvs) => Some(kvs),
            _ => None,
        }
    }
}

/// Parses one JSON document into a [`Json`] tree.
///
/// # Errors
/// Returns a byte offset and description of the first syntax error.
pub fn parse_json(s: &str) -> Result<Json, String> {
    let mut p = P {
        b: s.as_bytes(),
        at: 0,
    };
    p.ws();
    let v = p.value()?;
    p.ws();
    if p.at != p.b.len() {
        return Err(format!("trailing data at byte {}", p.at));
    }
    Ok(v)
}

struct P<'a> {
    b: &'a [u8],
    at: usize,
}

impl P<'_> {
    fn ws(&mut self) {
        while self.at < self.b.len() && matches!(self.b[self.at], b' ' | b'\t' | b'\n' | b'\r') {
            self.at += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.at).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.at += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", c as char, self.at))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("expected a value at byte {}", self.at)),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(v)
        } else {
            Err(format!("expected {word:?} at byte {}", self.at))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        self.ws();
        let mut kvs = Vec::new();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Json::Obj(kvs));
        }
        loop {
            self.ws();
            let k = self.string()?;
            self.ws();
            self.expect(b':')?;
            self.ws();
            let v = self.value()?;
            kvs.push((k, v));
            self.ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Json::Obj(kvs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.at)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        self.ws();
        let mut vs = Vec::new();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Json::Arr(vs));
        }
        loop {
            self.ws();
            vs.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Json::Arr(vs));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.at)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err("unterminated string".to_string());
            };
            self.at += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.at += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let mut code = 0u32;
                            for _ in 0..4 {
                                let h = self.peek().ok_or("truncated \\u escape")?;
                                let d = (h as char)
                                    .to_digit(16)
                                    .ok_or_else(|| format!("bad \\u escape at byte {}", self.at))?;
                                code = code * 16 + d;
                                self.at += 1;
                            }
                            // Surrogates are not paired up (the exporters
                            // never write any); replace them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.at)),
                    }
                }
                0x00..=0x1f => {
                    return Err(format!("raw control byte in string at {}", self.at - 1))
                }
                _ => {
                    // Re-borrow the full UTF-8 char starting here.
                    let start = self.at - 1;
                    let rest = &self.b[start..];
                    let ch_len = match rest[0] {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let chunk = std::str::from_utf8(&rest[..ch_len.min(rest.len())])
                        .map_err(|_| format!("invalid UTF-8 at byte {start}"))?;
                    out.push_str(chunk);
                    self.at = start + chunk.len();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        let mut digits = 0;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.at += 1;
            digits += 1;
        }
        if digits == 0 {
            return Err(format!("expected digits at byte {}", self.at));
        }
        if self.peek() == Some(b'.') {
            self.at += 1;
            let mut frac = 0;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.at += 1;
                frac += 1;
            }
            if frac == 0 {
                return Err(format!("expected fraction digits at byte {}", self.at));
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.at += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.at += 1;
            }
            let mut exp = 0;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.at += 1;
                exp += 1;
            }
            if exp == 0 {
                return Err(format!("expected exponent digits at byte {}", self.at));
            }
        }
        let text = std::str::from_utf8(&self.b[start..self.at]).expect("digits are ASCII");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number at byte {start}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v =
            parse_json("{\"a\": [1, 2.5, -3e2], \"b\": {\"c\": \"x\\ny\"}, \"d\": null}").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("d"), Some(&Json::Null));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn decodes_escapes_and_unicode() {
        let v = parse_json("\"q\\\"\\u0041\\t\\u00e9\"").unwrap();
        assert_eq!(v.as_str(), Some("q\"A\t\u{e9}"));
        let raw = parse_json("\"héllo\"").unwrap();
        assert_eq!(raw.as_str(), Some("héllo"));
    }

    #[test]
    fn rejects_what_the_validator_rejects() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\": }",
            "1.",
            "1e",
            "\"x",
            "{\"a\": 1} x",
        ] {
            assert!(parse_json(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn round_trips_exporter_output() {
        let ((), data) = crate::capture(|| {
            crate::count(crate::Counter::CopiesPhi, 3);
            crate::span("coalesce", || {});
        });
        let line = crate::jsonl_record("f", "LphiC", &data);
        let v = parse_json(&line).unwrap();
        assert_eq!(v.get("schema").unwrap().as_str(), Some("tossa-trace/1"));
        assert_eq!(
            v.get("counters")
                .unwrap()
                .get("copies_phi")
                .unwrap()
                .as_u64(),
            Some(3)
        );
        assert_eq!(v.get("spans").unwrap().as_arr().unwrap().len(), 1);
    }
}
