//! Job-outcome counters for the long-running compile service.
//!
//! The pipeline counters in [`crate::Counter`] are *translation* facts:
//! they are deterministic for a given input and pinned cell-by-cell in
//! the `BENCH_pr*.json` trajectories, so the set is closed — adding a
//! field would read as deterministic drift to `bench-diff`. Service
//! outcomes (how many jobs completed, degraded, were shed, hit a
//! budget) are a different dimension: they depend on scheduling, chaos
//! injection, and load, and they aggregate across worker threads of one
//! process rather than inside one single-threaded capture. They
//! therefore live in their own closed enum with their own export
//! schema, `tossa-job-counters/1`.
//!
//! Two containers:
//!
//! * [`JobCounterSet`] — a plain dense bag, for reports and JSON;
//! * [`SharedJobCounters`] — the same shape over `AtomicU64`, safe to
//!   bump from every worker thread without a lock; [`snapshot`] freezes
//!   it into a [`JobCounterSet`].
//!
//! [`snapshot`]: SharedJobCounters::snapshot

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

/// Every structured job-outcome counter the compile service records.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum JobCounter {
    /// Jobs accepted into the queue.
    JobsSubmitted,
    /// Jobs that completed on the checked pipeline (rung 0).
    JobsCompletedChecked,
    /// Jobs that completed on the naive fallback (rung 1).
    JobsCompletedFallback,
    /// Jobs that ended as a structured reject (rung 2).
    JobsRejected,
    /// Jobs shed at admission because the bounded queue stayed full.
    JobsShed,
    /// Retry attempts spent on transiently-failed jobs.
    JobsRetried,
    /// Jobs quarantined as poison after exhausting their attempts.
    JobsQuarantined,
    /// Worker panics contained by `catch_unwind` (never escaped).
    PanicsContained,
    /// Jobs whose wall-clock deadline blew (watchdog-observed).
    DeadlinesBlown,
    /// Jobs that exhausted their interpreter fuel budget.
    FuelExhausted,
    /// Jobs that exceeded their heap-allocation budget.
    AllocBudgetExceeded,
    /// Input frames rejected as malformed before reaching a worker.
    FramesMalformed,
    /// Service-level chaos faults injected.
    ServiceFaultsInjected,
}

impl JobCounter {
    /// Number of job counters (the [`JobCounterSet`] array length).
    pub const COUNT: usize = 13;

    /// Every job counter, in declaration (= export) order.
    pub const ALL: [JobCounter; JobCounter::COUNT] = [
        JobCounter::JobsSubmitted,
        JobCounter::JobsCompletedChecked,
        JobCounter::JobsCompletedFallback,
        JobCounter::JobsRejected,
        JobCounter::JobsShed,
        JobCounter::JobsRetried,
        JobCounter::JobsQuarantined,
        JobCounter::PanicsContained,
        JobCounter::DeadlinesBlown,
        JobCounter::FuelExhausted,
        JobCounter::AllocBudgetExceeded,
        JobCounter::FramesMalformed,
        JobCounter::ServiceFaultsInjected,
    ];

    /// Stable snake_case key used in JSON exports and tables.
    pub fn name(self) -> &'static str {
        match self {
            JobCounter::JobsSubmitted => "jobs_submitted",
            JobCounter::JobsCompletedChecked => "jobs_completed_checked",
            JobCounter::JobsCompletedFallback => "jobs_completed_fallback",
            JobCounter::JobsRejected => "jobs_rejected",
            JobCounter::JobsShed => "jobs_shed",
            JobCounter::JobsRetried => "jobs_retried",
            JobCounter::JobsQuarantined => "jobs_quarantined",
            JobCounter::PanicsContained => "panics_contained",
            JobCounter::DeadlinesBlown => "deadlines_blown",
            JobCounter::FuelExhausted => "fuel_exhausted",
            JobCounter::AllocBudgetExceeded => "alloc_budget_exceeded",
            JobCounter::FramesMalformed => "frames_malformed",
            JobCounter::ServiceFaultsInjected => "service_faults_injected",
        }
    }
}

/// A dense fixed-size bag of job-counter totals.
#[derive(Clone, Copy, PartialEq, Eq, Default)]
pub struct JobCounterSet {
    vals: [u64; JobCounter::COUNT],
}

impl std::fmt::Debug for JobCounterSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut m = f.debug_map();
        for c in JobCounter::ALL {
            if self.get(c) != 0 {
                m.entry(&c.name(), &self.get(c));
            }
        }
        m.finish()
    }
}

impl JobCounterSet {
    /// An all-zero set.
    pub fn new() -> JobCounterSet {
        JobCounterSet::default()
    }

    /// Reads one counter.
    pub fn get(&self, c: JobCounter) -> u64 {
        self.vals[c as usize]
    }

    /// Adds `n` to one counter.
    pub fn add(&mut self, c: JobCounter, n: u64) {
        self.vals[c as usize] += n;
    }

    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: &JobCounterSet) {
        for i in 0..JobCounter::COUNT {
            self.vals[i] += other.vals[i];
        }
    }

    /// Jobs that produced usable output (either rung).
    pub fn completed(&self) -> u64 {
        self.get(JobCounter::JobsCompletedChecked) + self.get(JobCounter::JobsCompletedFallback)
    }

    /// Renders the set as a one-line `tossa-job-counters/1` JSON object
    /// with every counter present (stable key order).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"schema\": \"tossa-job-counters/1\"");
        for c in JobCounter::ALL {
            let _ = write!(out, ", \"{}\": {}", c.name(), self.get(c));
        }
        out.push('}');
        out
    }
}

/// [`JobCounterSet`] over atomics: every worker thread of the service
/// bumps the shared instance lock-free; reporting threads snapshot it.
#[derive(Debug, Default)]
pub struct SharedJobCounters {
    vals: [AtomicU64; JobCounter::COUNT],
}

impl SharedJobCounters {
    /// A fresh all-zero shared set.
    pub fn new() -> SharedJobCounters {
        SharedJobCounters::default()
    }

    /// Adds `n` to one counter (relaxed; totals are read via
    /// [`SharedJobCounters::snapshot`] after the workers quiesce or as a
    /// monotone progress indicator).
    pub fn add(&self, c: JobCounter, n: u64) {
        self.vals[c as usize].fetch_add(n, Ordering::Relaxed);
    }

    /// Reads one counter.
    pub fn get(&self, c: JobCounter) -> u64 {
        self.vals[c as usize].load(Ordering::Relaxed)
    }

    /// Freezes the current totals into a plain set.
    pub fn snapshot(&self) -> JobCounterSet {
        let mut out = JobCounterSet::new();
        for c in JobCounter::ALL {
            out.add(c, self.get(c));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_covers_every_counter_once() {
        let mut names: Vec<&str> = JobCounter::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(names.len(), JobCounter::COUNT);
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), JobCounter::COUNT, "duplicate counter name");
    }

    #[test]
    fn json_is_well_formed_and_complete() {
        let mut set = JobCounterSet::new();
        set.add(JobCounter::JobsSubmitted, 10);
        set.add(JobCounter::JobsShed, 2);
        let json = set.to_json();
        crate::validate_json(&json).expect("well-formed");
        assert!(json.contains("\"schema\": \"tossa-job-counters/1\""));
        for c in JobCounter::ALL {
            assert!(json.contains(c.name()), "{} missing", c.name());
        }
        assert!(json.contains("\"jobs_submitted\": 10"));
        assert!(json.contains("\"jobs_shed\": 2"));
    }

    #[test]
    fn shared_counters_accumulate_across_threads() {
        let shared = SharedJobCounters::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        shared.add(JobCounter::JobsSubmitted, 1);
                    }
                    shared.add(JobCounter::PanicsContained, 1);
                });
            }
        });
        let snap = shared.snapshot();
        assert_eq!(snap.get(JobCounter::JobsSubmitted), 400);
        assert_eq!(snap.get(JobCounter::PanicsContained), 4);
        assert_eq!(snap.completed(), 0);
    }

    #[test]
    fn merge_is_array_addition() {
        let mut a = JobCounterSet::new();
        a.add(JobCounter::JobsRetried, 3);
        let mut b = JobCounterSet::new();
        b.add(JobCounter::JobsRetried, 4);
        b.add(JobCounter::JobsQuarantined, 1);
        a.merge(&b);
        assert_eq!(a.get(JobCounter::JobsRetried), 7);
        assert_eq!(a.get(JobCounter::JobsQuarantined), 1);
    }
}
