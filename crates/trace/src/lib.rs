//! # tossa-trace — pipeline observability
//!
//! A lightweight, zero-cost-when-disabled event sink threaded through
//! the out-of-SSA pipeline the same way [`AnalysisCache`] is: passes
//! call free functions ([`count`], [`span`], [`event`]) that are no-ops
//! unless a collector is installed on the current thread with
//! [`capture`]. Hot loops (the interference oracle, the liveness
//! worklist) accumulate in plain local integers and flush once per
//! pass, so the disabled path costs one thread-local read per pass, not
//! per iteration.
//!
//! Three views of the recorded [`TraceData`]:
//!
//! * [`summary_table`] — a human-readable counter/span table;
//! * [`jsonl_record`] — one JSON line per (function × experiment) run,
//!   schema `tossa-trace/1`, consumed by the bench runner;
//! * [`chrome_trace`] — a Chrome `trace_event` document loadable in
//!   `about:tracing` / [Perfetto](https://ui.perfetto.dev).
//!
//! All JSON is hand-rolled (the build has no serde); [`validate_json`]
//! is a tiny recursive-descent well-formedness checker used by the CI
//! schema tests.
//!
//! [`AnalysisCache`]: https://docs.rs/tossa-analysis

#![warn(missing_docs)]

pub mod json;
pub mod metrics;
pub mod provenance;
pub mod service;

use std::cell::RefCell;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Every structured counter the pipeline records. The discriminant
/// indexes into [`CounterSet`]; [`Counter::name`] is the stable
/// snake_case key used by every exporter (and by the golden tests).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum Counter {
    /// φ-congruence classes formed by `Program_pinning` (non-trivial
    /// affinity components that received a shared resource).
    CongruenceClasses,
    /// Variable pairs merged onto one resource inside those classes.
    CoalesceMerges,
    /// Variables already pinned before `Program_pinning` ran.
    PinnedVars,
    /// Affinity edges created from φs (and refinement candidates).
    AffinityEdges,
    /// Affinity edges discarded by the initial interference pruning.
    AffinityPrunedInitial,
    /// Affinity edges discarded by the bipartite pruning rounds.
    AffinityPrunedBipartite,
    /// Pin/merge rejections: paper interference class 1 (dominance with
    /// overlapping live ranges — `variable_kills` Case 1).
    InterfereClass1,
    /// Rejections: class 2 (φ parallel-copy kill — `variable_kills`
    /// Case 2).
    InterfereClass2,
    /// Rejections: class 3 (φ arguments disagree in a shared
    /// predecessor).
    InterfereClass3,
    /// Rejections: class 4 (resources of φs in the same block).
    InterfereClass4,
    /// Rejections: both variables defined by the same instruction.
    InterfereSameInst,
    /// Queries answered by the memoized vertex-interference oracle.
    OracleQueries,
    /// Oracle queries served from its memo table.
    OracleCacheHits,
    /// φ copies inserted by out-of-pinned-SSA reconstruction.
    CopiesPhi,
    /// ABI (pin-repair) copies inserted by reconstruction.
    CopiesAbi,
    /// Repair copies inserted by reconstruction.
    CopiesRepair,
    /// Cycle-breaking temporaries of parallel-copy sequentialization.
    CopiesTemp,
    /// Moves removed by aggressive (Chaitin) coalescing.
    CopiesCoalesced,
    /// φ instructions removed by reconstruction.
    PhisRemoved,
    /// Critical edges split for φ copy placement.
    EdgesSplit,
    /// Liveness fixpoint worklist pops.
    LivenessIterations,
    /// Analysis-cache accessor calls served from the memo.
    AnalysisCacheHits,
    /// Analysis-cache accessor calls that recomputed.
    AnalysisCacheMisses,
    /// Interpreter steps executed (verification fuel spent).
    InterpSteps,
    /// Parallel-copy groups sequentialized.
    ParallelCopyGroups,
    /// Parallel-copy cycles broken with a temporary.
    ParallelCopyCycles,
    /// Def/use pins placed by `pinningSP`.
    PinsSp,
    /// Operand pins placed by `pinningABI`.
    PinsAbi,
    /// φ-resource pins placed by `pinningCSSA` / `Program_pinning`.
    PinsPhi,
    /// Chaos corruptions injected (checked mode).
    ChaosInjected,
    /// Graceful degradations to the naive fallback (checked mode).
    FallbacksTaken,
    /// Variables the register allocator evicted to the spill frame.
    AllocSpilledVars,
    /// Spill reloads (`spillld`) the allocator inserted.
    AllocReloads,
    /// Spill stores (`spillst`) the allocator inserted.
    AllocStores,
    /// Functions where linear scan failed and the interference-graph
    /// coloring fallback produced the assignment.
    AllocFallbacks,
    /// `mov`s still present after register allocation (self-moves under
    /// the assignment excluded).
    AllocMovesAfter,
}

impl Counter {
    /// Number of counters (the [`CounterSet`] array length).
    pub const COUNT: usize = 36;

    /// Every counter, in declaration (= export) order.
    pub const ALL: [Counter; Counter::COUNT] = [
        Counter::CongruenceClasses,
        Counter::CoalesceMerges,
        Counter::PinnedVars,
        Counter::AffinityEdges,
        Counter::AffinityPrunedInitial,
        Counter::AffinityPrunedBipartite,
        Counter::InterfereClass1,
        Counter::InterfereClass2,
        Counter::InterfereClass3,
        Counter::InterfereClass4,
        Counter::InterfereSameInst,
        Counter::OracleQueries,
        Counter::OracleCacheHits,
        Counter::CopiesPhi,
        Counter::CopiesAbi,
        Counter::CopiesRepair,
        Counter::CopiesTemp,
        Counter::CopiesCoalesced,
        Counter::PhisRemoved,
        Counter::EdgesSplit,
        Counter::LivenessIterations,
        Counter::AnalysisCacheHits,
        Counter::AnalysisCacheMisses,
        Counter::InterpSteps,
        Counter::ParallelCopyGroups,
        Counter::ParallelCopyCycles,
        Counter::PinsSp,
        Counter::PinsAbi,
        Counter::PinsPhi,
        Counter::ChaosInjected,
        Counter::FallbacksTaken,
        Counter::AllocSpilledVars,
        Counter::AllocReloads,
        Counter::AllocStores,
        Counter::AllocFallbacks,
        Counter::AllocMovesAfter,
    ];

    /// Stable snake_case key used in JSON exports and tables.
    pub fn name(self) -> &'static str {
        match self {
            Counter::CongruenceClasses => "congruence_classes",
            Counter::CoalesceMerges => "coalesce_merges",
            Counter::PinnedVars => "pinned_vars",
            Counter::AffinityEdges => "affinity_edges",
            Counter::AffinityPrunedInitial => "affinity_pruned_initial",
            Counter::AffinityPrunedBipartite => "affinity_pruned_bipartite",
            Counter::InterfereClass1 => "interfere_class1",
            Counter::InterfereClass2 => "interfere_class2",
            Counter::InterfereClass3 => "interfere_class3",
            Counter::InterfereClass4 => "interfere_class4",
            Counter::InterfereSameInst => "interfere_same_inst",
            Counter::OracleQueries => "oracle_queries",
            Counter::OracleCacheHits => "oracle_cache_hits",
            Counter::CopiesPhi => "copies_phi",
            Counter::CopiesAbi => "copies_abi",
            Counter::CopiesRepair => "copies_repair",
            Counter::CopiesTemp => "copies_temp",
            Counter::CopiesCoalesced => "copies_coalesced",
            Counter::PhisRemoved => "phis_removed",
            Counter::EdgesSplit => "edges_split",
            Counter::LivenessIterations => "liveness_iterations",
            Counter::AnalysisCacheHits => "analysis_cache_hits",
            Counter::AnalysisCacheMisses => "analysis_cache_misses",
            Counter::InterpSteps => "interp_steps",
            Counter::ParallelCopyGroups => "parallel_copy_groups",
            Counter::ParallelCopyCycles => "parallel_copy_cycles",
            Counter::PinsSp => "pins_sp",
            Counter::PinsAbi => "pins_abi",
            Counter::PinsPhi => "pins_phi",
            Counter::ChaosInjected => "chaos_injected",
            Counter::FallbacksTaken => "fallbacks_taken",
            Counter::AllocSpilledVars => "alloc_spilled_vars",
            Counter::AllocReloads => "alloc_reloads",
            Counter::AllocStores => "alloc_stores",
            Counter::AllocFallbacks => "alloc_fallbacks",
            Counter::AllocMovesAfter => "alloc_moves_after",
        }
    }
}

/// A dense fixed-size bag of counter totals; `+` over runs is array
/// addition.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct CounterSet {
    vals: [u64; Counter::COUNT],
}

impl Default for CounterSet {
    fn default() -> Self {
        CounterSet {
            vals: [0; Counter::COUNT],
        }
    }
}

impl std::fmt::Debug for CounterSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut m = f.debug_map();
        for c in Counter::ALL {
            if self.get(c) != 0 {
                m.entry(&c.name(), &self.get(c));
            }
        }
        m.finish()
    }
}

impl CounterSet {
    /// An all-zero set.
    pub fn new() -> CounterSet {
        CounterSet::default()
    }

    /// Reads one counter.
    pub fn get(&self, c: Counter) -> u64 {
        self.vals[c as usize]
    }

    /// Adds `n` to one counter.
    pub fn add(&mut self, c: Counter, n: u64) {
        self.vals[c as usize] += n;
    }

    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: &CounterSet) {
        for i in 0..Counter::COUNT {
            self.vals[i] += other.vals[i];
        }
    }

    /// Total copies inserted by reconstruction (φ + ABI + repair +
    /// cycle temporaries) — the quantity the paper's tables count
    /// before cleanup.
    pub fn copies_inserted(&self) -> u64 {
        self.get(Counter::CopiesPhi)
            + self.get(Counter::CopiesAbi)
            + self.get(Counter::CopiesRepair)
            + self.get(Counter::CopiesTemp)
    }

    /// Renders the set as a one-line JSON object with every counter
    /// present (stable key order).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, c) in Counter::ALL.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{}\": {}", c.name(), self.get(*c));
        }
        out.push('}');
        out
    }
}

/// One closed wall-time span. Spans are recorded on close, in close
/// order; `depth` is the nesting level at open time, and the set of
/// spans of one capture is well-nested by construction (the collector
/// keeps an open-span stack).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Span {
    /// Pass name (e.g. `"coalesce"`, `"reconstruct"`).
    pub name: &'static str,
    /// Nesting depth at open time (0 = top level).
    pub depth: u32,
    /// Start, nanoseconds since the process-wide trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Id of the OS thread that ran the span (stable small integer).
    pub tid: u64,
}

/// A point event (chaos injection, fallback, verifier rejection).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Event kind (e.g. `"chaos"`, `"fallback"`).
    pub kind: &'static str,
    /// Free-form detail (corruption class, error summary).
    pub detail: String,
    /// Timestamp, nanoseconds since the trace epoch.
    pub at_ns: u64,
    /// Id of the OS thread that recorded the event.
    pub tid: u64,
}

/// Everything one [`capture`] recorded.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceData {
    /// Counter totals.
    pub counters: CounterSet,
    /// Closed spans, in close order.
    pub spans: Vec<Span>,
    /// Point events, in record order.
    pub events: Vec<Event>,
    /// Decision-provenance records, in record order (IDs are dense
    /// per-capture sequence numbers; see [`provenance`]).
    pub records: Vec<provenance::Record>,
}

impl TraceData {
    /// Accumulates `other` into `self` (suite-level aggregation).
    /// Provenance IDs are re-numbered so they stay dense and unique in
    /// the merged stream.
    pub fn merge(&mut self, other: &TraceData) {
        self.counters.merge(&other.counters);
        self.spans.extend(other.spans.iter().cloned());
        self.events.extend(other.events.iter().cloned());
        let base = self.records.len() as u32;
        self.records
            .extend(other.records.iter().map(|r| provenance::Record {
                id: base + r.id,
                kind: r.kind.clone(),
            }));
    }

    /// Checks the span set is well-nested: reconstructing the open/close
    /// sequence from `(start_ns, dur_ns, depth)` must behave like
    /// balanced parentheses — every span's recorded depth equals the
    /// number of still-open enclosing spans, and child intervals lie
    /// within their parent. Returns a description of the first
    /// violation.
    ///
    /// # Errors
    /// Returns the first nesting violation.
    pub fn check_well_nested(&self) -> Result<(), String> {
        // Per-thread check: spans from different worker threads overlap
        // freely on the global clock.
        let mut tids: Vec<u64> = self.spans.iter().map(|s| s.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        for tid in tids {
            let mut spans: Vec<&Span> = self.spans.iter().filter(|s| s.tid == tid).collect();
            // Open order: by start time, ties broken outermost first.
            spans.sort_by_key(|s| (s.start_ns, s.depth));
            let mut stack: Vec<&Span> = Vec::new();
            for s in spans {
                while let Some(top) = stack.last() {
                    if s.start_ns >= top.start_ns + top.dur_ns {
                        stack.pop();
                    } else {
                        break;
                    }
                }
                if s.depth as usize != stack.len() {
                    return Err(format!(
                        "span {:?} at depth {} but {} spans open",
                        s.name,
                        s.depth,
                        stack.len()
                    ));
                }
                if let Some(top) = stack.last() {
                    if s.start_ns + s.dur_ns > top.start_ns + top.dur_ns {
                        return Err(format!(
                            "span {:?} ends after its parent {:?}",
                            s.name, top.name
                        ));
                    }
                }
                stack.push(s);
            }
        }
        Ok(())
    }
}

struct Collector {
    data: TraceData,
    open: u32,
    /// Counters-only mode: spans, events, and provenance records are
    /// skipped (no clock reads, no string building); `count` is
    /// unaffected. Installed by [`capture_counters`].
    counters_only: bool,
}

thread_local! {
    static COLLECTOR: RefCell<Option<Collector>> = const { RefCell::new(None) };
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

fn tid() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    thread_local! {
        static TID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

/// True when a collector is installed on this thread. Hot loops guard
/// their bookkeeping on this and flush totals once.
pub fn enabled() -> bool {
    COLLECTOR.with(|c| c.borrow().is_some())
}

/// True when a *full* collector is installed — one that also records
/// provenance. Work that only feeds [`provenance::record`] (witness
/// strings, cause maps) should guard on this, not [`enabled`], so a
/// counters-only capture skips it.
pub fn verbose() -> bool {
    COLLECTOR.with(|c| c.borrow().as_ref().is_some_and(|col| !col.counters_only))
}

/// Adds `n` to a counter; no-op when tracing is disabled.
pub fn count(counter: Counter, n: u64) {
    if n == 0 {
        return;
    }
    COLLECTOR.with(|c| {
        if let Some(col) = c.borrow_mut().as_mut() {
            col.data.counters.add(counter, n);
        }
    });
}

/// Records a point event; no-op when tracing is disabled. `detail` is
/// built lazily so the disabled path allocates nothing.
pub fn event(kind: &'static str, detail: impl FnOnce() -> String) {
    COLLECTOR.with(|c| {
        if let Some(col) = c.borrow_mut().as_mut().filter(|col| !col.counters_only) {
            col.data.events.push(Event {
                kind,
                detail: detail(),
                at_ns: now_ns(),
                tid: tid(),
            });
        }
    });
}

/// Runs `f` inside a named wall-time span. When tracing is disabled
/// this is exactly `f()` — no clock reads.
///
/// The span is closed by a drop guard, so a panic unwinding out of `f`
/// (checked mode catches chaos-induced panics with `catch_unwind`)
/// still balances the open-span stack and records the span — later
/// spans in the same capture keep their true depth.
pub fn span<T>(name: &'static str, f: impl FnOnce() -> T) -> T {
    let opened = COLLECTOR.with(|c| {
        let mut b = c.borrow_mut();
        match b.as_mut() {
            Some(col) if !col.counters_only => {
                let depth = col.open;
                col.open += 1;
                Some((depth, now_ns()))
            }
            _ => None,
        }
    });
    let Some((depth, start_ns)) = opened else {
        return f();
    };
    struct Close {
        name: &'static str,
        depth: u32,
        start_ns: u64,
    }
    impl Drop for Close {
        fn drop(&mut self) {
            let dur_ns = now_ns().saturating_sub(self.start_ns);
            COLLECTOR.with(|c| {
                if let Some(col) = c.borrow_mut().as_mut() {
                    col.open = col.open.saturating_sub(1);
                    col.data.spans.push(Span {
                        name: self.name,
                        depth: self.depth,
                        start_ns: self.start_ns,
                        dur_ns,
                        tid: tid(),
                    });
                }
            });
        }
    }
    let _close = Close {
        name,
        depth,
        start_ns,
    };
    f()
}

/// Installs a fresh collector on this thread, runs `f`, and returns its
/// result together with everything recorded. Nests: an enclosing
/// capture is suspended (it records nothing from inside `f`) and
/// restored afterwards.
///
/// The scope is explicit and unwind-safe: if `f` panics, the collector
/// installed for it is discarded and the enclosing capture (if any) is
/// restored before the panic propagates, so one function's aborted run
/// can never leak partial state into a sibling's capture on the same
/// thread.
pub fn capture<T>(f: impl FnOnce() -> T) -> (T, TraceData) {
    struct Restore {
        prev: Option<Collector>,
        armed: bool,
    }
    impl Drop for Restore {
        fn drop(&mut self) {
            if self.armed {
                let prev = self.prev.take();
                COLLECTOR.with(|c| *c.borrow_mut() = prev);
            }
        }
    }
    let prev = COLLECTOR.with(|c| {
        c.borrow_mut().replace(Collector {
            data: TraceData::default(),
            open: 0,
            counters_only: false,
        })
    });
    let mut guard = Restore { prev, armed: true };
    let out = f();
    let data = COLLECTOR.with(|c| {
        let col = c.borrow_mut().take().expect("collector still installed");
        col.data
    });
    COLLECTOR.with(|c| *c.borrow_mut() = guard.prev.take());
    guard.armed = false;
    (out, data)
}

/// [`capture`] restricted to counters: spans, events, and provenance
/// records are skipped entirely (no clock reads, no record-building
/// closures), so the instrumented run costs little more than an
/// untraced one. Counter totals are identical to a full capture of the
/// same deterministic computation. Nests and unwinds exactly like
/// [`capture`].
pub fn capture_counters<T>(f: impl FnOnce() -> T) -> (T, CounterSet) {
    struct Restore {
        prev: Option<Collector>,
        armed: bool,
    }
    impl Drop for Restore {
        fn drop(&mut self) {
            if self.armed {
                let prev = self.prev.take();
                COLLECTOR.with(|c| *c.borrow_mut() = prev);
            }
        }
    }
    let prev = COLLECTOR.with(|c| {
        c.borrow_mut().replace(Collector {
            data: TraceData::default(),
            open: 0,
            counters_only: true,
        })
    });
    let mut guard = Restore { prev, armed: true };
    let out = f();
    let data = COLLECTOR.with(|c| {
        let col = c.borrow_mut().take().expect("collector still installed");
        col.data
    });
    COLLECTOR.with(|c| *c.borrow_mut() = guard.prev.take());
    guard.armed = false;
    (out, data.counters)
}

/// Escapes a string for inclusion in a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders one `tossa-trace/1` JSON line for a (function × experiment)
/// run.
pub fn jsonl_record(function: &str, experiment: &str, data: &TraceData) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"schema\": \"tossa-trace/1\", \"function\": \"{}\", \"experiment\": \"{}\", \"counters\": {}",
        escape_json(function),
        escape_json(experiment),
        data.counters.to_json()
    );
    out.push_str(", \"spans\": [");
    for (i, s) in data.spans.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(
            out,
            "{{\"name\": \"{}\", \"depth\": {}, \"start_ns\": {}, \"dur_ns\": {}, \"tid\": {}}}",
            escape_json(s.name),
            s.depth,
            s.start_ns,
            s.dur_ns,
            s.tid
        );
    }
    out.push_str("], \"events\": [");
    for (i, e) in data.events.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(
            out,
            "{{\"kind\": \"{}\", \"detail\": \"{}\", \"at_ns\": {}, \"tid\": {}}}",
            escape_json(e.kind),
            escape_json(&e.detail),
            e.at_ns,
            e.tid
        );
    }
    out.push_str("], \"records\": ");
    out.push_str(&provenance::records_json(&data.records));
    out.push('}');
    out
}

/// Renders labelled traces as a Chrome `trace_event` document
/// (`{"traceEvents": [...]}`, complete `"X"` events with microsecond
/// timestamps) loadable in `about:tracing` or Perfetto.
pub fn chrome_trace(traces: &[(String, TraceData)]) -> String {
    let mut out = String::from("{\"traceEvents\": [\n");
    let mut first = true;
    for (label, data) in traces {
        for s in &data.spans {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let _ = write!(
                out,
                "  {{\"name\": \"{}\", \"cat\": \"pass\", \"ph\": \"X\", \
                 \"ts\": {}.{:03}, \"dur\": {}.{:03}, \"pid\": 1, \"tid\": {}, \
                 \"args\": {{\"run\": \"{}\"}}}}",
                escape_json(s.name),
                s.start_ns / 1000,
                s.start_ns % 1000,
                s.dur_ns / 1000,
                s.dur_ns % 1000,
                s.tid,
                escape_json(label)
            );
        }
        for e in &data.events {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let _ = write!(
                out,
                "  {{\"name\": \"{}\", \"cat\": \"event\", \"ph\": \"i\", \
                 \"ts\": {}.{:03}, \"pid\": 1, \"tid\": {}, \"s\": \"t\", \
                 \"args\": {{\"run\": \"{}\", \"detail\": \"{}\"}}}}",
                escape_json(e.kind),
                e.at_ns / 1000,
                e.at_ns % 1000,
                e.tid,
                escape_json(label),
                escape_json(&e.detail)
            );
        }
    }
    out.push_str("\n]}\n");
    out
}

/// Renders an aggregated human summary: non-zero counters plus total
/// wall time per span name.
pub fn summary_table(data: &TraceData) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{:<28} {:>14}", "counter", "total");
    for c in Counter::ALL {
        let v = data.counters.get(c);
        if v != 0 {
            let _ = writeln!(out, "{:<28} {:>14}", c.name(), v);
        }
    }
    let mut by_name: Vec<(&'static str, u64, u64)> = Vec::new();
    for s in &data.spans {
        match by_name.iter_mut().find(|(n, _, _)| *n == s.name) {
            Some((_, ns, calls)) => {
                *ns += s.dur_ns;
                *calls += 1;
            }
            None => by_name.push((s.name, s.dur_ns, 1)),
        }
    }
    if !by_name.is_empty() {
        let _ = writeln!(out, "{:<28} {:>14} {:>8}", "span", "total_us", "calls");
        for (name, ns, calls) in by_name {
            let _ = writeln!(out, "{:<28} {:>14} {:>8}", name, ns / 1000, calls);
        }
    }
    if !data.events.is_empty() {
        let _ = writeln!(out, "events: {}", data.events.len());
    }
    out
}

/// Checks a string is one well-formed JSON value (recursive descent;
/// no object-key uniqueness check). Used by the CI schema tests — the
/// build has no JSON library.
///
/// # Errors
/// Returns a byte offset and description of the first syntax error.
pub fn validate_json(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut p = Parser { b, at: 0 };
    p.ws();
    p.value()?;
    p.ws();
    if p.at != b.len() {
        return Err(format!("trailing data at byte {}", p.at));
    }
    Ok(())
}

struct Parser<'a> {
    b: &'a [u8],
    at: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self.at < self.b.len() && matches!(self.b[self.at], b' ' | b'\t' | b'\n' | b'\r') {
            self.at += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.at).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.at += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", c as char, self.at))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("expected a value at byte {}", self.at)),
        }
    }

    fn literal(&mut self, word: &str) -> Result<(), String> {
        if self.b[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(())
        } else {
            Err(format!("expected {word:?} at byte {}", self.at))
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.expect(b'{')?;
        self.ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(());
        }
        loop {
            self.ws();
            self.string()?;
            self.ws();
            self.expect(b':')?;
            self.ws();
            self.value()?;
            self.ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(());
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.at)),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(());
        }
        loop {
            self.ws();
            self.value()?;
            self.ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(());
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.at)),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        while let Some(c) = self.peek() {
            self.at += 1;
            match c {
                b'"' => return Ok(()),
                b'\\' => {
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.at += 1;
                    match esc {
                        b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't' => {}
                        b'u' => {
                            for _ in 0..4 {
                                let h = self.peek().ok_or("truncated \\u escape")?;
                                if !h.is_ascii_hexdigit() {
                                    return Err(format!("bad \\u escape at byte {}", self.at));
                                }
                                self.at += 1;
                            }
                        }
                        _ => return Err(format!("bad escape at byte {}", self.at)),
                    }
                }
                0x00..=0x1f => {
                    return Err(format!("raw control byte in string at {}", self.at - 1))
                }
                _ => {}
            }
        }
        Err("unterminated string".to_string())
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        let mut digits = 0;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.at += 1;
            digits += 1;
        }
        if digits == 0 {
            return Err(format!("expected digits at byte {}", self.at));
        }
        if self.peek() == Some(b'.') {
            self.at += 1;
            let mut frac = 0;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.at += 1;
                frac += 1;
            }
            if frac == 0 {
                return Err(format!("expected fraction digits at byte {}", self.at));
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.at += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.at += 1;
            }
            let mut exp = 0;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.at += 1;
                exp += 1;
            }
            if exp == 0 {
                return Err(format!("expected exponent digits at byte {}", self.at));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_records_nothing() {
        assert!(!enabled());
        count(Counter::CoalesceMerges, 7);
        event("chaos", || "unseen".into());
        let v = span("outer", || 42);
        assert_eq!(v, 42);
        let ((), data) = capture(|| ());
        assert_eq!(data, TraceData::default());
    }

    #[test]
    fn capture_collects_counts_spans_events() {
        let (v, data) = capture(|| {
            count(Counter::CopiesPhi, 3);
            count(Counter::CopiesPhi, 2);
            event("fallback", || "naive".into());
            span("outer", || {
                span("inner", || count(Counter::CoalesceMerges, 1))
            });
            9
        });
        assert_eq!(v, 9);
        assert_eq!(data.counters.get(Counter::CopiesPhi), 5);
        assert_eq!(data.counters.get(Counter::CoalesceMerges), 1);
        assert_eq!(data.events.len(), 1);
        assert_eq!(data.spans.len(), 2);
        // Close order: inner first.
        assert_eq!(data.spans[0].name, "inner");
        assert_eq!(data.spans[0].depth, 1);
        assert_eq!(data.spans[1].name, "outer");
        assert_eq!(data.spans[1].depth, 0);
        data.check_well_nested().unwrap();
    }

    #[test]
    fn nested_capture_suspends_the_outer_one() {
        let ((), outer) = capture(|| {
            count(Counter::PinsSp, 1);
            let ((), inner) = capture(|| count(Counter::PinsSp, 10));
            assert_eq!(inner.counters.get(Counter::PinsSp), 10);
            count(Counter::PinsSp, 2);
        });
        assert_eq!(outer.counters.get(Counter::PinsSp), 3);
        assert!(!enabled());
    }

    #[test]
    fn exports_are_valid_json() {
        let ((), data) = capture(|| {
            count(Counter::InterfereClass1, 4);
            event("chaos", || "drop-phi-arg \"quoted\"".into());
            span("coalesce", || {});
        });
        let line = jsonl_record("fn\"x\"", "LphiC", &data);
        validate_json(&line).unwrap();
        assert!(line.contains("\"schema\": \"tossa-trace/1\""));
        let doc = chrome_trace(&[("f@LphiC".into(), data.clone())]);
        validate_json(&doc).unwrap();
        assert!(doc.contains("\"ph\": \"X\""));
        assert!(!summary_table(&data).is_empty());
        validate_json(&data.counters.to_json()).unwrap();
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "{\"a\": }",
            "[1,]",
            "\"unterminated",
            "01x",
            "{\"a\": 1} trailing",
            "{'a': 1}",
            "1.",
            "1e",
        ] {
            assert!(validate_json(bad).is_err(), "accepted {bad:?}");
        }
        for good in [
            "{}",
            "[]",
            "null",
            "-1.5e+10",
            "{\"a\": [1, {\"b\": \"c\\n\"}], \"d\": true}",
        ] {
            validate_json(good).unwrap_or_else(|e| panic!("rejected {good:?}: {e}"));
        }
    }

    #[test]
    fn counter_names_are_unique_and_match_all() {
        let mut names: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(names.len(), Counter::COUNT);
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Counter::COUNT, "duplicate counter name");
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(*c as usize, i, "ALL order must match discriminants");
        }
    }

    #[test]
    fn panic_inside_span_keeps_the_stack_balanced() {
        let (res, data) = capture(|| {
            let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                span("outer", || {
                    span("inner", || panic!("chaos"));
                })
            }));
            assert!(caught.is_err());
            // A later span in the same capture must sit at depth 0
            // again, not under the unwound ones.
            span("after", || 7)
        });
        assert_eq!(res, 7);
        assert_eq!(data.spans.len(), 3);
        let after = data.spans.iter().find(|s| s.name == "after").unwrap();
        assert_eq!(after.depth, 0);
        data.check_well_nested().unwrap();
    }

    #[test]
    fn panicking_capture_restores_the_enclosing_scope() {
        // An inner capture that panics must not leak its collector: the
        // outer capture resumes recording and stays well-nested.
        let ((), outer) = capture(|| {
            count(Counter::EdgesSplit, 1);
            let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                capture(|| {
                    count(Counter::EdgesSplit, 100);
                    panic!("chaos mid-capture");
                })
            }));
            assert!(caught.is_err());
            // Still scoped to the outer capture, not the dead inner one.
            assert!(enabled());
            count(Counter::EdgesSplit, 2);
            span("after", || {});
        });
        assert_eq!(outer.counters.get(Counter::EdgesSplit), 3);
        assert_eq!(outer.spans.len(), 1);
        outer.check_well_nested().unwrap();
    }

    #[test]
    fn merge_adds_counters_and_concatenates() {
        let ((), a) = capture(|| count(Counter::EdgesSplit, 2));
        let ((), b) = capture(|| {
            count(Counter::EdgesSplit, 3);
            span("x", || {});
        });
        let mut total = TraceData::default();
        total.merge(&a);
        total.merge(&b);
        assert_eq!(total.counters.get(Counter::EdgesSplit), 5);
        assert_eq!(total.spans.len(), 1);
    }
}
