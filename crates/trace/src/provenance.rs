//! Decision provenance: structured records explaining *why* the
//! pipeline reached each verdict — which constraint pinned a variable,
//! which interference class killed an affinity edge (and the witness
//! pair that proves it), which constraint forced an inserted copy, and
//! why the allocator spilled an interval.
//!
//! Records follow the same thread-local capture discipline as spans and
//! counters: [`record`] is a no-op unless a collector is installed with
//! [`crate::capture`], and the record-building closure is never invoked
//! on the disabled path, so hot loops pay one thread-local read.
//!
//! IDs are per-capture sequence numbers assigned at record time. The
//! pipeline is deterministic and every recording site iterates in a
//! deterministic order, so the ID of a given decision is stable across
//! runs of the same function — which is what lets `explain --diff`
//! align two dumps.

use std::fmt::Write as _;

use crate::escape_json;

/// Which interference rule rejected a coalescing candidate. `Class1`
/// through `Class4` are the paper's §4 classes; the last two are the
/// implementation's extra structural rules.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Class {
    /// Dominance with overlapping live ranges (`variable_kills` Case 1).
    Class1,
    /// φ parallel-copy kill (`variable_kills` Case 2).
    Class2,
    /// φ arguments disagree in a shared predecessor.
    Class3,
    /// Resources of φs defined in the same block.
    Class4,
    /// Both variables defined by the same instruction.
    SameInst,
    /// Two distinct physical resources never merge.
    Phys,
}

impl Class {
    /// Stable snake_case key used in JSON exports and reports.
    pub fn name(self) -> &'static str {
        match self {
            Class::Class1 => "class1",
            Class::Class2 => "class2",
            Class::Class3 => "class3",
            Class::Class4 => "class4",
            Class::SameInst => "same_inst",
            Class::Phys => "phys",
        }
    }
}

/// The verdict on one affinity edge.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// The edge survived pruning; its endpoints were merged onto the
    /// named reference resource.
    Coalesced {
        /// Resource the component was merged onto.
        into: String,
    },
    /// Discarded by the initial interference pruning.
    PrunedInitial {
        /// Interference class that killed the edge.
        class: Class,
        /// The concrete variable pair proving the interference.
        witness: (String, String),
    },
    /// Discarded by a bipartite pruning round: the edge itself need not
    /// interfere, but keeping it would merge the witnessed offender
    /// pair into one resource.
    PrunedBipartite {
        /// Interference class of the offending vertex pair.
        class: Class,
        /// The concrete variable pair proving the interference.
        witness: (String, String),
    },
}

/// One provenance record kind.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Kind {
    /// A variable acquired a resource pin.
    Pin {
        /// The pinned variable.
        var: String,
        /// The resource it was pinned to.
        resource: String,
        /// Which constraint placed the pin: `"sp"`, `"abi:input"`,
        /// `"abi:call"`, `"abi:call-arg"`, `"abi:ret"`,
        /// `"abi:two-operand"`, `"cssa"`, or `"coalesce"`. The
        /// `"abi:call-arg"` and `"abi:ret"` causes are *use-operand*
        /// pins (the value must sit in the resource at that use), not
        /// whole-variable pins.
        cause: String,
    },
    /// The verdict on one affinity edge of one block's graph.
    Edge {
        /// Label of the block whose affinity graph held the edge.
        block: String,
        /// First endpoint (variable or resource name).
        a: String,
        /// Second endpoint.
        b: String,
        /// Affinity multiplicity (≥ 1).
        weight: u32,
        /// What happened to the edge.
        verdict: Verdict,
    },
    /// A copy instruction inserted by reconstruction.
    Copy {
        /// Destination variable of the inserted `mov`.
        dst: String,
        /// Source variable.
        src: String,
        /// What forced it: `"phi-edge:<pred>-><succ>"`,
        /// `"abi:<resource>"`, `"repair:<var>"`, or `"cycle"`.
        cause: String,
    },
    /// A spill decision by the register allocator.
    Spill {
        /// The spilled variable.
        var: String,
        /// Interval start (linear position).
        start: u32,
        /// Interval end.
        end: u32,
        /// Rationale. Under the spill-everywhere policy:
        /// `"evicted-by:<var>@<reg>"` (a further-reaching candidate took
        /// its register) or `"no-register[:hint-failed=<reg>]"`
        /// (self-spill under pressure). Under the cost-driven policy:
        /// `"cost:weight=<w>,depth=<d>"` (cheapest loop-weighted victim
        /// at the pressure point), `"remat:<opcode>"` (def re-issued
        /// before each use instead of reloading), or
        /// `"split-at:<block>"` (one record per region boundary block
        /// that received a split copy).
        cause: String,
    },
}

/// One recorded decision with its stable per-capture ID.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Record {
    /// Sequence number within the capture (0-based, dense).
    pub id: u32,
    /// The decision.
    pub kind: Kind,
}

/// Records one decision; no-op when tracing is disabled or the capture
/// is counters-only. `make` is never invoked on either skip path.
pub fn record(make: impl FnOnce() -> Kind) {
    if !crate::verbose() {
        return;
    }
    let kind = make();
    crate::COLLECTOR.with(|c| {
        if let Some(col) = c.borrow_mut().as_mut() {
            let id = col.data.records.len() as u32;
            col.data.records.push(Record { id, kind });
        }
    });
}

impl Record {
    /// Renders the record as one JSON object (schema used inside
    /// `tossa-explain/1` dumps).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{{\"id\": {}", self.id);
        match &self.kind {
            Kind::Pin {
                var,
                resource,
                cause,
            } => {
                let _ = write!(
                    out,
                    ", \"kind\": \"pin\", \"var\": \"{}\", \"resource\": \"{}\", \"cause\": \"{}\"",
                    escape_json(var),
                    escape_json(resource),
                    escape_json(cause)
                );
            }
            Kind::Edge {
                block,
                a,
                b,
                weight,
                verdict,
            } => {
                let _ = write!(
                    out,
                    ", \"kind\": \"edge\", \"block\": \"{}\", \"a\": \"{}\", \"b\": \"{}\", \"weight\": {}",
                    escape_json(block),
                    escape_json(a),
                    escape_json(b),
                    weight
                );
                match verdict {
                    Verdict::Coalesced { into } => {
                        let _ = write!(
                            out,
                            ", \"verdict\": \"coalesced\", \"into\": \"{}\"",
                            escape_json(into)
                        );
                    }
                    Verdict::PrunedInitial { class, witness } => {
                        let _ = write!(
                            out,
                            ", \"verdict\": \"pruned_initial\", \"class\": \"{}\", \
                             \"witness\": [\"{}\", \"{}\"]",
                            class.name(),
                            escape_json(&witness.0),
                            escape_json(&witness.1)
                        );
                    }
                    Verdict::PrunedBipartite { class, witness } => {
                        let _ = write!(
                            out,
                            ", \"verdict\": \"pruned_bipartite\", \"class\": \"{}\", \
                             \"witness\": [\"{}\", \"{}\"]",
                            class.name(),
                            escape_json(&witness.0),
                            escape_json(&witness.1)
                        );
                    }
                }
            }
            Kind::Copy { dst, src, cause } => {
                let _ = write!(
                    out,
                    ", \"kind\": \"copy\", \"dst\": \"{}\", \"src\": \"{}\", \"cause\": \"{}\"",
                    escape_json(dst),
                    escape_json(src),
                    escape_json(cause)
                );
            }
            Kind::Spill {
                var,
                start,
                end,
                cause,
            } => {
                let _ = write!(
                    out,
                    ", \"kind\": \"spill\", \"var\": \"{}\", \"start\": {}, \"end\": {}, \
                     \"cause\": \"{}\"",
                    escape_json(var),
                    start,
                    end,
                    escape_json(cause)
                );
            }
        }
        out.push('}');
        out
    }
}

/// Renders a record list as a JSON array.
pub fn records_json(records: &[Record]) -> String {
    let mut out = String::from("[");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&r.to_json());
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_path_never_builds_the_record() {
        assert!(!crate::enabled());
        record(|| unreachable!("record closure ran with tracing disabled"));
    }

    #[test]
    fn records_get_dense_stable_ids() {
        let ((), data) = crate::capture(|| {
            record(|| Kind::Pin {
                var: "x".into(),
                resource: "R5".into(),
                cause: "sp".into(),
            });
            record(|| Kind::Copy {
                dst: "a".into(),
                src: "b".into(),
                cause: "cycle".into(),
            });
        });
        assert_eq!(data.records.len(), 2);
        assert_eq!(data.records[0].id, 0);
        assert_eq!(data.records[1].id, 1);
    }

    #[test]
    fn merge_reassigns_ids_densely() {
        let ((), a) = crate::capture(|| {
            record(|| Kind::Pin {
                var: "x".into(),
                resource: "SP".into(),
                cause: "sp".into(),
            });
        });
        let mut total = crate::TraceData::default();
        total.merge(&a);
        total.merge(&a);
        assert_eq!(total.records.len(), 2);
        assert_eq!(total.records[0].id, 0);
        assert_eq!(total.records[1].id, 1);
    }

    #[test]
    fn record_json_is_well_formed() {
        let recs = vec![
            Record {
                id: 0,
                kind: Kind::Edge {
                    block: "b1".into(),
                    a: "x".into(),
                    b: "$R2".into(),
                    weight: 2,
                    verdict: Verdict::PrunedInitial {
                        class: Class::Class2,
                        witness: ("x".into(), "y".into()),
                    },
                },
            },
            Record {
                id: 1,
                kind: Kind::Spill {
                    var: "z\"q".into(),
                    start: 3,
                    end: 17,
                    cause: "no-register".into(),
                },
            },
        ];
        let doc = records_json(&recs);
        crate::validate_json(&doc).unwrap();
        assert!(doc.contains("\"class\": \"class2\""));
        assert!(doc.contains("\"witness\": [\"x\", \"y\"]"));
    }
}
