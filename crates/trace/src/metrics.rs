//! Lock-free service metrics: counters, gauges, and log-linear-bucket
//! histograms with deterministic boundaries.
//!
//! The pipeline counters in [`crate::Counter`] answer "what did this
//! compile do" — they are deterministic, captured thread-locally, and
//! pinned cell-by-cell in the `BENCH_pr*.json` trajectories. A
//! long-running *service* needs a different instrument: "what is this
//! process doing right now, and how is it distributed" — queue depths,
//! latency percentiles, budget-consumption histograms — written from
//! every worker thread at once and read while the writers keep going.
//!
//! This module provides that instrument with the same constraints as
//! the rest of the crate: **no dependencies**, and **no locks on the
//! hot path**. The write path of every instrument is a handful of
//! relaxed atomic RMWs; histograms additionally stripe their buckets
//! across [`SHARDS`] shards keyed by thread so concurrent recorders
//! don't contend on one cache line. The only mutex in the module
//! guards instrument *registration* (startup) and snapshotting (rare),
//! never recording.
//!
//! # Bucket scheme
//!
//! Histograms use HdrHistogram-style **log-linear** buckets: values
//! 0–7 get one bucket each, and every power-of-two octave above that
//! is split into [`SUB_BUCKETS`] = 8 linear sub-buckets. The bucket
//! for a value is a pure function of its bit pattern
//! ([`bucket_index`]), so boundaries are deterministic across runs,
//! machines, and merge orders — two snapshots taken anywhere can be
//! added bucket-wise ([`HistogramSnapshot::merge`] is associative and
//! commutative) and quantile estimates come out identical no matter
//! how the totals were assembled. Relative bucket error is bounded by
//! 1/8 ≈ 12.5%, plenty for latency percentiles. The full `u64` range
//! maps onto [`BUCKET_COUNT`] = 496 buckets.

use std::cell::Cell;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Linear sub-buckets per power-of-two octave.
pub const SUB_BUCKETS: usize = 8;
const SUB_BITS: u32 = 3;

/// Total histogram buckets covering the full `u64` range.
pub const BUCKET_COUNT: usize = 496;

/// Histogram write stripes (power of two). Each recording thread is
/// pinned to one stripe; snapshots sum across all of them.
pub const SHARDS: usize = 8;

/// The bucket holding `v`: identity below [`SUB_BUCKETS`], then
/// [`SUB_BUCKETS`] linear sub-buckets per octave. Monotone in `v`.
pub fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS as u64 {
        return v as usize;
    }
    let bits = 64 - v.leading_zeros();
    let shift = bits - SUB_BITS - 1;
    let mantissa = ((v >> shift) as usize) - SUB_BUCKETS;
    (shift as usize + 1) * SUB_BUCKETS + mantissa
}

/// Half-open value range `[lo, hi)` of bucket `i` (the top bucket
/// saturates at `u64::MAX`). Inverse of [`bucket_index`]:
/// `bucket_bounds(bucket_index(v)).0 <= v < bucket_bounds(bucket_index(v)).1`.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    if i < SUB_BUCKETS {
        return (i as u64, i as u64 + 1);
    }
    let octave = i / SUB_BUCKETS;
    let mantissa = (i % SUB_BUCKETS) as u64;
    let shift = (octave - 1) as u32;
    let lo = (SUB_BUCKETS as u64 + mantissa) << shift;
    let hi = lo.saturating_add(1u64 << shift);
    (lo, hi)
}

/// Inclusive upper bound of bucket `i` — the `le` label in the
/// Prometheus exposition.
pub fn bucket_le(i: usize) -> u64 {
    let (_, hi) = bucket_bounds(i);
    if hi == u64::MAX {
        u64::MAX
    } else {
        hi - 1
    }
}

static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// The stripe this thread writes to: assigned round-robin on first
/// use. `try_with` keeps recording total during TLS teardown (falls
/// back to stripe 0).
fn shard_id() -> usize {
    SHARD
        .try_with(|s| {
            let mut k = s.get();
            if k == usize::MAX {
                k = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) & (SHARDS - 1);
                s.set(k);
            }
            k
        })
        .unwrap_or(0)
}

/// A monotone counter. All operations are relaxed atomics.
#[derive(Debug, Default)]
pub struct MetricCounter {
    v: AtomicU64,
}

impl MetricCounter {
    /// A fresh zero counter.
    pub fn new() -> MetricCounter {
        MetricCounter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// A signed gauge (current level of something: queue depth, busy
/// workers). All operations are relaxed atomics.
#[derive(Debug, Default)]
pub struct Gauge {
    v: AtomicI64,
}

impl Gauge {
    /// A fresh zero gauge.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Adds `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    /// Sets the level.
    pub fn set(&self, n: i64) {
        self.v.store(n, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.v.load(Ordering::Relaxed)
    }
}

struct HistogramShard {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; BUCKET_COUNT],
}

impl HistogramShard {
    fn new() -> HistogramShard {
        HistogramShard {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// A lock-free log-linear histogram over `u64` values. Writers stripe
/// across [`SHARDS`] shards by thread; [`Histogram::snapshot`] sums the
/// stripes into an order-independent [`HistogramSnapshot`].
pub struct Histogram {
    shards: Box<[HistogramShard]>,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// A fresh empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            shards: (0..SHARDS).map(|_| HistogramShard::new()).collect(),
        }
    }

    /// Records one observation. Lock-free: five relaxed RMWs on this
    /// thread's stripe.
    pub fn record(&self, v: u64) {
        let shard = &self.shards[shard_id()];
        shard.count.fetch_add(1, Ordering::Relaxed);
        shard.sum.fetch_add(v, Ordering::Relaxed);
        shard.min.fetch_min(v, Ordering::Relaxed);
        shard.max.fetch_max(v, Ordering::Relaxed);
        shard.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Sums the stripes into a plain snapshot. Safe to call while
    /// writers keep recording: each recorded value lands entirely in
    /// one stripe, so a snapshot taken after a writer quiesces never
    /// misses its increments (it may see a torn in-flight record as a
    /// count/bucket off-by-one, which the next snapshot resolves).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut out = HistogramSnapshot::empty();
        for shard in self.shards.iter() {
            out.count += shard.count.load(Ordering::Relaxed);
            out.sum += shard.sum.load(Ordering::Relaxed);
            let min = shard.min.load(Ordering::Relaxed);
            let max = shard.max.load(Ordering::Relaxed);
            if min != u64::MAX || shard.count.load(Ordering::Relaxed) > 0 {
                out.min = Some(out.min.map_or(min, |m: u64| m.min(min)));
            }
            if shard.count.load(Ordering::Relaxed) > 0 {
                out.max = Some(out.max.map_or(max, |m: u64| m.max(max)));
            }
            for (k, b) in shard.buckets.iter().enumerate() {
                out.buckets[k] += b.load(Ordering::Relaxed);
            }
        }
        if out.count == 0 {
            out.min = None;
            out.max = None;
        }
        out
    }
}

/// A frozen histogram: dense bucket counts plus count/sum/min/max.
/// Merging is bucket-wise addition — associative, commutative, and
/// independent of the order observations were recorded or snapshots
/// combined.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Smallest observed value (`None` when empty).
    pub min: Option<u64>,
    /// Largest observed value (`None` when empty).
    pub max: Option<u64>,
    /// Per-bucket observation counts, dense over [`BUCKET_COUNT`].
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// An empty snapshot.
    pub fn empty() -> HistogramSnapshot {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            min: None,
            max: None,
            buckets: vec![0; BUCKET_COUNT],
        }
    }

    /// Accumulates `other` into `self` bucket-wise. `sum` wraps, to
    /// match the recorder's `fetch_add` semantics (so merge order can
    /// never change the result, even once the total overflows `u64`).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max = match (self.max, other.max) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += *b;
        }
    }

    /// The `q`-quantile (`0.0 < q <= 1.0`) as the inclusive upper
    /// bound of the bucket holding the rank-`ceil(q·count)`
    /// observation, clamped into the observed `[min, max]`. Purely a
    /// function of the bucket counts, so any merge order yields the
    /// same estimate. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (k, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let le = bucket_le(k);
                let lo = self.min.unwrap_or(0);
                let hi = self.max.unwrap_or(u64::MAX);
                return Some(le.clamp(lo, hi));
            }
        }
        self.max
    }

    /// Mean of the observations (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }

    /// The non-empty buckets as `(le, count)` pairs — `le` the
    /// inclusive upper bound, `count` the bucket's own (non-cumulative)
    /// observation count.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(k, &c)| (bucket_le(k), c))
            .collect()
    }

    /// Renders the snapshot as a JSON object fragment:
    /// `{"count": …, "sum": …, "min": …, "max": …, "p50": …, "p90": …,
    /// "p99": …, "buckets": [[le, count], …]}` (nulls when empty,
    /// non-empty buckets only).
    pub fn to_json(&self) -> String {
        let opt = |v: Option<u64>| v.map_or_else(|| "null".to_string(), |n| n.to_string());
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"buckets\": [",
            self.count,
            self.sum,
            opt(self.min),
            opt(self.max),
            opt(self.quantile(0.50)),
            opt(self.quantile(0.90)),
            opt(self.quantile(0.99)),
        );
        for (k, (le, c)) in self.nonzero_buckets().iter().enumerate() {
            if k > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "[{le}, {c}]");
        }
        out.push_str("]}");
        out
    }
}

/// What kind of instrument a registry entry is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

#[derive(Clone)]
enum Instrument {
    Counter(Arc<MetricCounter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Instrument {
    fn kind(&self) -> Kind {
        match self {
            Instrument::Counter(_) => Kind::Counter,
            Instrument::Gauge(_) => Kind::Gauge,
            Instrument::Histogram(_) => Kind::Histogram,
        }
    }
}

struct Entry {
    name: &'static str,
    label: Option<(&'static str, &'static str)>,
    inst: Instrument,
}

fn lock_ignoring_poison<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// A registry of named instruments. Registration (startup) and
/// snapshotting take a mutex; the handles it returns are plain `Arc`s
/// whose write paths never lock. Registering the same
/// `(name, label, kind)` twice returns the existing instrument.
#[derive(Default)]
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

impl Registry {
    /// A fresh empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn find(&self, name: &str, label: Option<(&str, &str)>, kind: Kind) -> Option<Instrument> {
        lock_ignoring_poison(&self.entries)
            .iter()
            .find(|e| e.name == name && e.label == label && e.inst.kind() == kind)
            .map(|e| e.inst.clone())
    }

    fn register(
        &self,
        name: &'static str,
        label: Option<(&'static str, &'static str)>,
        inst: Instrument,
    ) {
        lock_ignoring_poison(&self.entries).push(Entry { name, label, inst });
    }

    /// Registers (or returns the existing) counter `name`.
    pub fn counter(&self, name: &'static str) -> Arc<MetricCounter> {
        if let Some(Instrument::Counter(c)) = self.find(name, None, Kind::Counter) {
            return c;
        }
        let c = Arc::new(MetricCounter::new());
        self.register(name, None, Instrument::Counter(Arc::clone(&c)));
        c
    }

    /// Registers (or returns the existing) gauge `name`.
    pub fn gauge(&self, name: &'static str) -> Arc<Gauge> {
        if let Some(Instrument::Gauge(g)) = self.find(name, None, Kind::Gauge) {
            return g;
        }
        let g = Arc::new(Gauge::new());
        self.register(name, None, Instrument::Gauge(Arc::clone(&g)));
        g
    }

    /// Registers (or returns the existing) unlabeled histogram `name`.
    pub fn histogram(&self, name: &'static str) -> Arc<Histogram> {
        if let Some(Instrument::Histogram(h)) = self.find(name, None, Kind::Histogram) {
            return h;
        }
        let h = Arc::new(Histogram::new());
        self.register(name, None, Instrument::Histogram(Arc::clone(&h)));
        h
    }

    /// Registers (or returns the existing) histogram `name{key="val"}`.
    /// Labeled variants of one name form a Prometheus metric family.
    pub fn histogram_with_label(
        &self,
        name: &'static str,
        key: &'static str,
        val: &'static str,
    ) -> Arc<Histogram> {
        if let Some(Instrument::Histogram(h)) = self.find(name, Some((key, val)), Kind::Histogram) {
            return h;
        }
        let h = Arc::new(Histogram::new());
        self.register(
            name,
            Some((key, val)),
            Instrument::Histogram(Arc::clone(&h)),
        );
        h
    }

    /// Freezes every instrument into a [`RegistrySnapshot`], sorted by
    /// full name for deterministic rendering.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let mut metrics: Vec<MetricSnapshot> = lock_ignoring_poison(&self.entries)
            .iter()
            .map(|e| MetricSnapshot {
                name: e.name.to_string(),
                label: e.label.map(|(k, v)| (k.to_string(), v.to_string())),
                value: match &e.inst {
                    Instrument::Counter(c) => MetricValue::Counter(c.get()),
                    Instrument::Gauge(g) => MetricValue::Gauge(g.get()),
                    Instrument::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                },
            })
            .collect();
        metrics.sort_by_key(MetricSnapshot::full_name);
        RegistrySnapshot { metrics }
    }
}

/// One frozen instrument value.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// A monotone counter total.
    Counter(u64),
    /// A gauge level.
    Gauge(i64),
    /// A histogram snapshot.
    Histogram(HistogramSnapshot),
}

/// One frozen registry entry.
#[derive(Clone, Debug)]
pub struct MetricSnapshot {
    /// Metric (family) name.
    pub name: String,
    /// Optional `(key, value)` label distinguishing family members.
    pub label: Option<(String, String)>,
    /// The frozen value.
    pub value: MetricValue,
}

impl MetricSnapshot {
    /// `name` or `name{key="value"}` — the stable JSON key.
    pub fn full_name(&self) -> String {
        match &self.label {
            None => self.name.clone(),
            Some((k, v)) => format!("{}{{{k}=\"{v}\"}}", self.name),
        }
    }
}

/// A frozen registry: every instrument's value at one instant, sorted
/// by full name. Merge is per-instrument (counters and gauges add,
/// histograms merge bucket-wise) and order-independent.
#[derive(Clone, Debug, Default)]
pub struct RegistrySnapshot {
    /// The frozen instruments, sorted by [`MetricSnapshot::full_name`].
    pub metrics: Vec<MetricSnapshot>,
}

impl RegistrySnapshot {
    /// Accumulates `other` into `self`, matching instruments by full
    /// name; unmatched instruments are appended. The result is
    /// re-sorted, so merge order cannot be observed.
    pub fn merge(&mut self, other: &RegistrySnapshot) {
        for m in &other.metrics {
            let full = m.full_name();
            match self
                .metrics
                .iter_mut()
                .find(|x| x.full_name() == full)
                .map(|x| &mut x.value)
            {
                Some(MetricValue::Counter(a)) => {
                    if let MetricValue::Counter(b) = &m.value {
                        *a += b;
                    }
                }
                Some(MetricValue::Gauge(a)) => {
                    if let MetricValue::Gauge(b) = &m.value {
                        *a += b;
                    }
                }
                Some(MetricValue::Histogram(a)) => {
                    if let MetricValue::Histogram(b) = &m.value {
                        a.merge(b);
                    }
                }
                None => self.metrics.push(m.clone()),
            }
        }
        self.metrics.sort_by_key(MetricSnapshot::full_name);
    }

    /// Renders the snapshot as a JSON object fragment with one group
    /// per instrument kind:
    /// `{"counters": {…}, "gauges": {…}, "histograms": {…}}`.
    pub fn to_json(&self) -> String {
        let mut counters = String::new();
        let mut gauges = String::new();
        let mut histograms = String::new();
        for m in &self.metrics {
            let (buf, rendered) = match &m.value {
                MetricValue::Counter(v) => (&mut counters, v.to_string()),
                MetricValue::Gauge(v) => (&mut gauges, v.to_string()),
                MetricValue::Histogram(h) => (&mut histograms, h.to_json()),
            };
            if !buf.is_empty() {
                buf.push_str(", ");
            }
            let _ = write!(
                buf,
                "\"{}\": {rendered}",
                crate::escape_json(&m.full_name())
            );
        }
        format!("{{\"counters\": {{{counters}}}, \"gauges\": {{{gauges}}}, \"histograms\": {{{histograms}}}}}")
    }

    /// Renders the snapshot in the Prometheus text exposition format,
    /// every metric name prefixed with `namespace_`. Histograms emit
    /// cumulative `_bucket{le=…}` lines over their non-empty buckets
    /// plus `le="+Inf"`, `_sum`, and `_count`.
    pub fn prometheus_text(&self, namespace: &str) -> String {
        let mut out = String::new();
        let mut last_family = String::new();
        for m in &self.metrics {
            let family = format!("{namespace}_{}", m.name);
            let labels = |extra: Option<String>| -> String {
                let mut parts = Vec::new();
                if let Some((k, v)) = &m.label {
                    parts.push(format!("{k}=\"{v}\""));
                }
                if let Some(e) = extra {
                    parts.push(e);
                }
                if parts.is_empty() {
                    String::new()
                } else {
                    format!("{{{}}}", parts.join(","))
                }
            };
            match &m.value {
                MetricValue::Counter(v) => {
                    if family != last_family {
                        let _ = writeln!(out, "# TYPE {family} counter");
                    }
                    let _ = writeln!(out, "{family}{} {v}", labels(None));
                }
                MetricValue::Gauge(v) => {
                    if family != last_family {
                        let _ = writeln!(out, "# TYPE {family} gauge");
                    }
                    let _ = writeln!(out, "{family}{} {v}", labels(None));
                }
                MetricValue::Histogram(h) => {
                    if family != last_family {
                        let _ = writeln!(out, "# TYPE {family} histogram");
                    }
                    let mut cumulative = 0u64;
                    for (le, c) in h.nonzero_buckets() {
                        cumulative += c;
                        let _ = writeln!(
                            out,
                            "{family}_bucket{} {cumulative}",
                            labels(Some(format!("le=\"{le}\"")))
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{family}_bucket{} {}",
                        labels(Some("le=\"+Inf\"".to_string())),
                        h.count
                    );
                    let _ = writeln!(out, "{family}_sum{} {}", labels(None), h.sum);
                    let _ = writeln!(out, "{family}_count{} {}", labels(None), h.count);
                }
            }
            last_family = family;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_bounds_invert_it() {
        let probes: Vec<u64> = (0..100)
            .chain([
                127,
                128,
                129,
                1023,
                1024,
                1 << 20,
                u64::MAX / 2,
                u64::MAX - 1,
                u64::MAX,
            ])
            .collect();
        let mut last = 0usize;
        for &v in &probes {
            let k = bucket_index(v);
            assert!(k >= last, "bucket_index not monotone at {v}");
            last = k;
            let (lo, hi) = bucket_bounds(k);
            assert!(
                lo <= v && (v < hi || hi == u64::MAX),
                "{v} outside [{lo}, {hi})"
            );
        }
        assert_eq!(bucket_index(u64::MAX), BUCKET_COUNT - 1);
    }

    #[test]
    fn record_lands_in_exactly_one_bucket() {
        let h = Histogram::new();
        for v in [0u64, 1, 7, 8, 100, 1_000_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 1_000_116);
        assert_eq!(s.min, Some(0));
        assert_eq!(s.max, Some(1_000_000));
        assert_eq!(s.buckets.iter().sum::<u64>(), s.count);
    }

    #[test]
    fn quantiles_are_deterministic_and_ordered() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        let p50 = s.quantile(0.50).unwrap();
        let p90 = s.quantile(0.90).unwrap();
        let p99 = s.quantile(0.99).unwrap();
        assert!(p50 <= p90 && p90 <= p99);
        // Log-linear error bound: within 12.5% above the true rank value.
        assert!((500..=563).contains(&p50), "p50 = {p50}");
        assert!((900..=1013).contains(&p90), "p90 = {p90}");
        assert_eq!(s.quantile(1.0), Some(1000));
    }

    #[test]
    fn registry_dedups_and_snapshots_sorted() {
        let r = Registry::new();
        let c1 = r.counter("b_total");
        let c2 = r.counter("b_total");
        c1.inc();
        c2.add(2);
        assert_eq!(c1.get(), 3, "same name must alias one counter");
        r.gauge("a_level").set(-4);
        r.histogram_with_label("lat", "k", "x").record(5);
        let s = r.snapshot();
        let names: Vec<String> = s.metrics.iter().map(|m| m.full_name()).collect();
        assert_eq!(names, vec!["a_level", "b_total", "lat{k=\"x\"}"]);
        let json = s.to_json();
        crate::validate_json(&json).expect("registry snapshot JSON is well-formed");
        let prom = s.prometheus_text("t");
        assert!(prom.contains("# TYPE t_b_total counter"));
        assert!(prom.contains("t_lat_bucket{k=\"x\",le=\"+Inf\"} 1"));
        assert!(prom.contains("t_lat_count{k=\"x\"} 1"));
    }
}
