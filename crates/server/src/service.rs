//! The compile service proper: worker pool, panic containment, retry
//! with backoff, poison quarantine, and report emission.
//!
//! # Containment boundary
//!
//! Each job attempt runs inside `catch_unwind`. The closure captures
//! only references the attempt owns (`&BenchFunction`, options by
//! value) — none of it is observable after an unwind, which is what
//! makes the `AssertUnwindSafe` sound: a torn `CheckedOutcome` is
//! simply dropped and the attempt is retried from the immutable
//! request. Trace state is safe across the boundary too: the attempt's
//! `capture_counters` installs its collector behind the PR5 drop
//! guards, so an unwinding attempt restores the thread's trace state on
//! the way out (the soak asserts no collector leaks).
//!
//! # Failure classes
//!
//! * **Deterministic** failures (verification, coalescing, allocation —
//!   anything with a `TossaError` class except `panic`) descend the
//!   degradation ladder *within* the attempt: `run_checked` already
//!   produced the verified naive fallback, and the report records the
//!   transition cause. Retrying them would redraw the same result.
//! * **Transient** failures (a contained panic, a blown wall-clock
//!   deadline, a busted allocation budget) discard the attempt and
//!   retry with exponential backoff; after
//!   [`ServiceConfig::max_attempts`] the job is **quarantined** as
//!   poison. Quarantine is the retry axis, orthogonal to the ladder —
//!   a quarantined report carries an empty ladder record and no code.

use crate::budget::{AllocMeter, Budget};
use crate::chaos::{site_seed, ChaosConfig, Fault, ServiceFault};
use crate::ladder::{Ladder, Rung};
use crate::metrics::{AttemptResult, ServiceMetrics, Stage};
use crate::proto::{parse_frame, FrameError, JobRequest};
use crate::queue::{BoundedQueue, PushOutcome};
use crate::report::{JobOutcome, JobReport};
use crate::watchdog::Watchdog;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};
use tossa_bench::checked::{run_checked, CheckedOptions};
use tossa_bench::runner;
use tossa_bench::suites::BenchFunction;
use tossa_core::coalesce::CoalesceOptions;
use tossa_core::error::{TossaError, VerifyError};
use tossa_core::Experiment;
use tossa_ir::interp::Trap;
use tossa_trace::service::{JobCounter, JobCounterSet, SharedJobCounters};
use tossa_trace::Counter;

/// Service tuning.
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Worker threads (0 = available parallelism).
    pub workers: usize,
    /// Admission queue capacity.
    pub queue_cap: usize,
    /// How long admission waits for queue space before shedding.
    pub admission_grace: Duration,
    /// Per-attempt resource budgets.
    pub budget: Budget,
    /// Attempts before a transiently-failing job is quarantined.
    pub max_attempts: u32,
    /// Base of the exponential retry backoff.
    pub backoff_base: Duration,
    /// Chaos schedule (`None` = faults off).
    pub chaos: Option<ChaosConfig>,
    /// Experiment for frames that name none.
    pub default_experiment: Experiment,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            workers: 0,
            queue_cap: 64,
            admission_grace: Duration::from_millis(50),
            budget: Budget::default(),
            max_attempts: 3,
            backoff_base: Duration::from_millis(1),
            chaos: None,
            default_experiment: Experiment::LphiAbiC,
        }
    }
}

/// One admitted unit of work.
pub struct Job {
    /// The parsed request.
    pub req: JobRequest,
    /// Seed that generated the function (soak mode), for replay.
    pub generator_seed: Option<u64>,
}

/// An accepted job plus its admission timestamp (the epoch the queue-
/// and job-latency histograms measure from). Internal: the queue holds
/// these so `Job` itself stays a plain constructible value.
struct Admitted {
    job: Job,
    submitted_at: Instant,
}

struct Ctx {
    config: ServiceConfig,
    watchdog: Watchdog,
    counters: Arc<SharedJobCounters>,
    metrics: Arc<ServiceMetrics>,
    attempt_keys: AtomicU64,
}

/// The running service. Create with [`CompileService::start`], feed with
/// [`CompileService::submit`] / [`CompileService::submit_frame`], stop
/// with [`CompileService::shutdown`]. Reports stream out of the
/// receiver `start` returned, in completion order.
pub struct CompileService {
    ctx: Arc<Ctx>,
    queue: Arc<BoundedQueue<Admitted>>,
    reports: mpsc::Sender<JobReport>,
    workers: Vec<std::thread::JoinHandle<()>>,
    next_id: AtomicU64,
}

impl CompileService {
    /// Starts the worker pool and the watchdog. The returned receiver
    /// yields one [`JobReport`] per job (including shed and
    /// frame-rejected ones) and disconnects after
    /// [`CompileService::shutdown`].
    pub fn start(config: ServiceConfig) -> (CompileService, mpsc::Receiver<JobReport>) {
        let workers = if config.workers == 0 {
            std::thread::available_parallelism().map_or(1, |p| p.get())
        } else {
            config.workers
        };
        let metrics = Arc::new(ServiceMetrics::new());
        let ctx = Arc::new(Ctx {
            config,
            watchdog: Watchdog::start(Duration::from_millis(5)),
            counters: Arc::new(SharedJobCounters::new()),
            metrics: Arc::clone(&metrics),
            attempt_keys: AtomicU64::new(0),
        });
        let queue = Arc::new(BoundedQueue::<Admitted>::with_metrics(
            config.queue_cap,
            metrics.queue_metrics(),
        ));
        let (tx, rx) = mpsc::channel();
        let handles: Vec<_> = (0..workers)
            .map(|k| {
                let ctx = Arc::clone(&ctx);
                let queue = Arc::clone(&queue);
                let tx = tx.clone();
                std::thread::Builder::new()
                    .name(format!("tossa-worker-{k}"))
                    .spawn(move || {
                        while let Some(adm) = queue.pop() {
                            let m = &ctx.metrics;
                            m.queue_latency_ns
                                .record(adm.submitted_at.elapsed().as_nanos() as u64);
                            m.flight.record(
                                adm.job.req.id,
                                0,
                                "dequeue",
                                adm.job.req.func.name.clone(),
                            );
                            m.workers_busy.add(1);
                            let report = process_job(&ctx, &adm.job);
                            m.workers_busy.add(-1);
                            m.job_latency(report.rung)
                                .record(adm.submitted_at.elapsed().as_nanos() as u64);
                            m.flight.record(
                                report.id,
                                report.attempts,
                                "outcome",
                                format!("{}/{}", report.outcome.name(), report.rung.name()),
                            );
                            if tx.send(report).is_err() {
                                break;
                            }
                        }
                    })
            })
            .filter_map(Result::ok)
            .collect();
        (
            CompileService {
                ctx,
                queue,
                reports: tx,
                workers: handles,
                next_id: AtomicU64::new(1),
            },
            rx,
        )
    }

    /// Snapshot of the service-wide job counters.
    pub fn counters(&self) -> JobCounterSet {
        self.ctx.counters.snapshot()
    }

    /// The live shared counters, for threads that monitor a running
    /// service (the periodic stats emitter) without borrowing it.
    pub fn counters_handle(&self) -> Arc<SharedJobCounters> {
        Arc::clone(&self.ctx.counters)
    }

    /// The service's telemetry: instrument registry + flight recorder.
    /// The handle outlives [`CompileService::shutdown`], so final
    /// percentiles and flight dumps stay readable after the workers
    /// join.
    pub fn metrics(&self) -> Arc<ServiceMetrics> {
        Arc::clone(&self.ctx.metrics)
    }

    /// One `tossa-service-stats/1` line of the service's telemetry at
    /// this instant — the answer to a `stats` control frame.
    pub fn stats_json(&self) -> String {
        self.ctx.metrics.stats_json(&self.ctx.counters.snapshot())
    }

    /// The Prometheus text exposition of the service's telemetry at
    /// this instant.
    pub fn prometheus(&self) -> String {
        self.ctx.metrics.prometheus(&self.ctx.counters.snapshot())
    }

    /// Submits an already-parsed job. A full queue applies backpressure
    /// for the admission grace, then sheds with a structured report.
    pub fn submit(&self, job: Job) -> PushOutcome {
        let m = &self.ctx.metrics;
        m.flight
            .record(job.req.id, 0, "submit", job.req.func.name.clone());
        let shed_report = sketch_report(&job, &self.ctx.config);
        let adm = Admitted {
            job,
            submitted_at: Instant::now(),
        };
        let outcome = self.queue.push(adm, self.ctx.config.admission_grace);
        match outcome {
            PushOutcome::Accepted => {
                self.ctx.counters.add(JobCounter::JobsSubmitted, 1);
            }
            PushOutcome::Shed => {
                self.ctx.counters.add(JobCounter::JobsShed, 1);
                m.flight
                    .record(shed_report.id, 0, "shed", "service.queue_full");
                let _ = self.reports.send(shed_report);
            }
        }
        outcome
    }

    /// Parses one frame line into an admissible request, applying
    /// frame-level chaos and counting the refusal, but emitting **no**
    /// report: callers that route responses per-connection (the TCP
    /// front end) build the reject with
    /// [`CompileService::frame_rejection`] and deliver it themselves.
    /// The error carries the admission id assigned to the line.
    pub fn admit_frame(&self, line: &str) -> Result<JobRequest, (u64, FrameError)> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let corrupted;
        let effective: &str = match self.ctx.config.chaos.and_then(|c| c.draw(id, 0)) {
            Some(Fault::Service(ServiceFault::MalformedFrame)) => {
                self.ctx.counters.add(JobCounter::ServiceFaultsInjected, 1);
                corrupted = corrupt_frame(line);
                &corrupted
            }
            _ => line,
        };
        parse_frame(effective, id).map_err(|e| {
            self.ctx.counters.add(JobCounter::FramesMalformed, 1);
            self.ctx
                .metrics
                .flight
                .record(id, 0, "frame_rejected", e.class_key());
            (id, e)
        })
    }

    /// Builds the structured `FrameRejected` report for a refusal from
    /// [`CompileService::admit_frame`] (or a malformed control frame).
    pub fn frame_rejection(&self, id: u64, e: &FrameError) -> JobReport {
        frame_reject_report(id, e, &self.ctx.config)
    }

    /// Refuses a line that never reached frame parsing (an unknown
    /// control verb): assigns an id, counts it as malformed, and
    /// returns the report for the caller to deliver.
    pub fn refuse_frame(&self, e: &FrameError) -> JobReport {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.ctx.counters.add(JobCounter::FramesMalformed, 1);
        self.ctx
            .metrics
            .flight
            .record(id, 0, "frame_rejected", e.class_key());
        frame_reject_report(id, e, &self.ctx.config)
    }

    /// Injects a report into the service's response stream (used by
    /// front ends for refusals they synthesize themselves).
    pub fn emit_report(&self, report: JobReport) {
        let _ = self.reports.send(report);
    }

    /// Parses and submits one frame line. Malformed frames (including
    /// chaos-corrupted ones) are refused with a `FrameRejected` report
    /// — admission never panics and never silently drops a line.
    pub fn submit_frame(&self, line: &str) -> Result<u64, FrameError> {
        match self.admit_frame(line) {
            Ok(req) => {
                let id = req.id;
                self.submit(Job {
                    req,
                    generator_seed: None,
                });
                Ok(id)
            }
            Err((id, e)) => {
                let _ = self
                    .reports
                    .send(frame_reject_report(id, &e, &self.ctx.config));
                Err(e)
            }
        }
    }

    /// Stops admission, drains the queue, joins the workers, and
    /// returns the final counter totals. The report receiver
    /// disconnects once the last in-flight report is delivered.
    pub fn shutdown(self) -> JobCounterSet {
        self.queue.close();
        for h in self.workers {
            let _ = h.join();
        }
        drop(self.reports);
        self.ctx.counters.snapshot()
    }
}

/// Convenience driver for tests and the soak gate: starts a service,
/// submits every job, shuts down, and returns all reports (sorted by
/// job id) plus the counter totals.
pub fn run_batch(config: ServiceConfig, jobs: Vec<Job>) -> (Vec<JobReport>, JobCounterSet) {
    let (service, rx) = CompileService::start(config);
    let collector = std::thread::spawn(move || {
        let mut reports: Vec<JobReport> = rx.iter().collect();
        reports.sort_by_key(|r| r.id);
        reports
    });
    for job in jobs {
        service.submit(job);
    }
    let counters = service.shutdown();
    let reports = collector.join().unwrap_or_default();
    (reports, counters)
}

/// Deterministically mangles a frame line (the `MalformedFrame` chaos
/// fault): truncating mid-JSON guarantees a parse failure.
fn corrupt_frame(line: &str) -> String {
    let keep = line.len() / 2;
    let mut out: String = line.chars().take(keep.max(1)).collect();
    out.push_str("<<chaos:malformed>>");
    out
}

/// A pre-admission report skeleton, completed as a shed record if the
/// queue refuses the job.
fn sketch_report(job: &Job, config: &ServiceConfig) -> JobReport {
    JobReport {
        id: job.req.id,
        function: job.req.func.name.clone(),
        experiment: format!(
            "{:?}",
            job.req.experiment.unwrap_or(config.default_experiment)
        ),
        outcome: JobOutcome::Shed,
        rung: Rung::Reject,
        ladder: Vec::new(),
        error_class: Some("service.queue_full".into()),
        error: Some("admission queue full past the backpressure grace".into()),
        attempts: 0,
        chaos_seed: config.chaos.map(|c| site_seed(c.seed, job.req.id)),
        chaos_class: None,
        inputs_seed: job.req.inputs_seed,
        generator_seed: job.generator_seed,
        wall_ns: 0,
        alloc_events: 0,
        alloc_bytes: 0,
        panics_contained: 0,
        deadline_blown: false,
        verified: false,
        moves: None,
        code: None,
        counters_json: None,
    }
}

fn frame_reject_report(id: u64, e: &FrameError, config: &ServiceConfig) -> JobReport {
    JobReport {
        id,
        function: String::new(),
        experiment: format!("{:?}", config.default_experiment),
        outcome: JobOutcome::FrameRejected,
        rung: Rung::Reject,
        ladder: Vec::new(),
        error_class: Some(e.class_key().into()),
        error: Some(e.to_string()),
        attempts: 0,
        chaos_seed: config.chaos.map(|c| site_seed(c.seed, id)),
        chaos_class: None,
        inputs_seed: None,
        generator_seed: None,
        wall_ns: 0,
        alloc_events: 0,
        alloc_bytes: 0,
        panics_contained: 0,
        deadline_blown: false,
        verified: false,
        moves: None,
        code: None,
        counters_json: None,
    }
}

/// Is this error the fuel budget tripping (as opposed to a genuine
/// divergence)?
fn is_fuel_exhaustion(e: &TossaError) -> bool {
    matches!(
        e,
        TossaError::Verify {
            error: VerifyError::Trap {
                trap: Trap::OutOfFuel,
                ..
            },
            ..
        }
    )
}

/// Why a transient attempt failed; decides retry vs quarantine cause.
enum Transient {
    Panic(String),
    Deadline,
    AllocBudget(u64),
}

impl Transient {
    fn class(&self) -> &'static str {
        match self {
            Transient::Panic(_) => "panic",
            Transient::Deadline => "budget.deadline",
            Transient::AllocBudget(_) => "budget.alloc_events",
        }
    }

    fn message(&self) -> String {
        match self {
            Transient::Panic(m) => format!("contained worker panic: {m}"),
            Transient::Deadline => "attempt overran its wall-clock deadline".into(),
            Transient::AllocBudget(n) => {
                format!("attempt charged {n} allocation events, over budget")
            }
        }
    }
}

fn process_job(ctx: &Ctx, job: &Job) -> JobReport {
    let config = &ctx.config;
    let exp = job.req.experiment.unwrap_or(config.default_experiment);
    let bf = BenchFunction {
        func: job.req.func.clone(),
        inputs: job.req.inputs.clone(),
    };
    let copts_base = CheckedOptions {
        fuel: config.budget.fuel,
        alloc: true,
        ..CheckedOptions::default()
    };
    let chaos_site_seed = config.chaos.map(|c| site_seed(c.seed, job.req.id));

    let mut panics_contained = 0u32;
    let mut attempt = 1u32;
    loop {
        let fault = config.chaos.and_then(|c| c.draw(job.req.id, attempt));
        if fault.is_some() {
            ctx.counters.add(JobCounter::ServiceFaultsInjected, 1);
        }
        ctx.metrics.flight.record(
            job.req.id,
            attempt,
            "attempt",
            fault.map_or_else(|| "clean".to_string(), |f| f.class()),
        );
        let mut copts = copts_base;
        match fault {
            Some(Fault::Pipeline(c)) => {
                copts.chaos = Some(c);
                copts.chaos_seed = chaos_site_seed.unwrap_or(0);
            }
            Some(Fault::Alloc(c)) => {
                copts.alloc_chaos = Some(c);
                copts.chaos_seed = chaos_site_seed.unwrap_or(0);
            }
            _ => {}
        }

        let meter = AllocMeter::arm();
        let watch = ctx.watchdog.watch(
            ctx.attempt_keys.fetch_add(1, Ordering::Relaxed),
            config.budget.deadline,
        );
        let started = Instant::now();
        // Containment boundary. AssertUnwindSafe is sound here: the
        // closure borrows only `bf`/`copts`/`fault`, and on unwind the
        // attempt's partial state is dropped unobserved — the retry
        // starts over from the immutable request. The trace collector
        // installed by capture_counters restores itself via its drop
        // guard even when the closure unwinds.
        let result = catch_unwind(AssertUnwindSafe(|| {
            match fault {
                Some(Fault::Service(ServiceFault::WorkerPanic)) => {
                    // The chaos fault IS a panic; the soak proves this
                    // line never takes down a worker.
                    #[allow(clippy::panic)]
                    {
                        panic!("chaos: injected worker panic");
                    }
                }
                Some(Fault::Service(ServiceFault::DeadlineBlowout)) => {
                    std::thread::sleep(config.budget.deadline + Duration::from_millis(20));
                }
                _ => {}
            }
            tossa_trace::capture_counters(|| {
                run_checked(&bf, exp, &CoalesceOptions::default(), &copts)
            })
        }));
        let wall_ns = started.elapsed().as_nanos() as u64;
        let alloc_events = meter.events();
        let alloc_bytes = meter.bytes();
        drop(meter);
        let deadline_blown = watch.blown();
        drop(watch);

        // Classify transient failures (attempt discarded, retried).
        let transient = match &result {
            Err(payload) => {
                panics_contained += 1;
                ctx.counters.add(JobCounter::PanicsContained, 1);
                Some(Transient::Panic(panic_text(payload)))
            }
            Ok(_) if deadline_blown => {
                ctx.counters.add(JobCounter::DeadlinesBlown, 1);
                Some(Transient::Deadline)
            }
            Ok(_) => match config.budget.max_alloc_events {
                Some(cap) if alloc_events > cap => {
                    ctx.counters.add(JobCounter::AllocBudgetExceeded, 1);
                    Some(Transient::AllocBudget(alloc_events))
                }
                _ => None,
            },
        };

        // Every attempt — transient or not — lands in exactly one
        // result-keyed latency histogram (so e.g. the `panic` series
        // count equals the PanicsContained counter) plus the compile
        // stage and allocation-consumption histograms.
        let attempt_result = match &transient {
            Some(Transient::Panic(_)) => AttemptResult::Panic,
            Some(Transient::Deadline) => AttemptResult::Deadline,
            Some(Transient::AllocBudget(_)) => AttemptResult::AllocBudget,
            None => AttemptResult::Ok,
        };
        let m = &ctx.metrics;
        m.attempt_latency(attempt_result).record(wall_ns);
        m.stage_latency(Stage::Compile).record(wall_ns);
        m.alloc_events.record(alloc_events);
        m.alloc_bytes.record(alloc_bytes);

        if let Some(t) = transient {
            if attempt >= config.max_attempts {
                ctx.counters.add(JobCounter::JobsQuarantined, 1);
                m.flight
                    .record(job.req.id, attempt, "quarantine", t.class());
                // The poisoned job's own trail goes to the log the
                // moment it quarantines — the post-mortem is in stderr
                // before anyone asks for a dump.
                eprintln!(
                    "tossa-serve: quarantined job {}: {}",
                    job.req.id,
                    m.flight.dump_json(&m.flight.for_job(job.req.id))
                );
                return JobReport {
                    id: job.req.id,
                    function: bf.func.name.clone(),
                    experiment: format!("{exp:?}"),
                    outcome: JobOutcome::Quarantined,
                    rung: Rung::Reject,
                    ladder: Vec::new(),
                    error_class: Some(t.class().into()),
                    error: Some(t.message()),
                    attempts: attempt,
                    chaos_seed: chaos_site_seed,
                    chaos_class: fault.map(|f| f.class()),
                    inputs_seed: job.req.inputs_seed,
                    generator_seed: job.generator_seed,
                    wall_ns,
                    alloc_events,
                    alloc_bytes,
                    panics_contained,
                    deadline_blown,
                    verified: false,
                    moves: None,
                    code: None,
                    counters_json: None,
                };
            }
            ctx.counters.add(JobCounter::JobsRetried, 1);
            m.flight.record(job.req.id, attempt, "retry", t.class());
            std::thread::sleep(backoff(config.backoff_base, attempt));
            attempt += 1;
            continue;
        }

        // Non-transient: the attempt produced a CheckedOutcome; walk
        // the degradation ladder from it.
        let Ok((outcome, counter_set)) = result else {
            unreachable!("transient classification covers the Err arm")
        };
        m.fuel_used.record(counter_set.get(Counter::InterpSteps));
        let mut ladder = Ladder::new();
        let mut error_class = None;
        let mut error_text = None;
        if let Some(e) = &outcome.error {
            if is_fuel_exhaustion(e) {
                ctx.counters.add(JobCounter::FuelExhausted, 1);
            }
            ladder.descend(e.class_key());
            error_class = Some(e.class_key().to_string());
            error_text = Some(e.to_string());
            if let Some(fe) = &outcome.fallback_error {
                // The fallback failed too: off the bottom of the ladder.
                ladder.descend(fe.class_key());
                ctx.counters.add(JobCounter::JobsRejected, 1);
                return JobReport {
                    id: job.req.id,
                    function: bf.func.name.clone(),
                    experiment: format!("{exp:?}"),
                    outcome: JobOutcome::Rejected,
                    rung: Rung::Reject,
                    ladder: ladder.into_steps(),
                    error_class: Some(fe.class_key().to_string()),
                    error: Some(fe.to_string()),
                    attempts: attempt,
                    chaos_seed: chaos_site_seed,
                    chaos_class: fault.map(|f| f.class()),
                    inputs_seed: job.req.inputs_seed,
                    generator_seed: job.generator_seed,
                    wall_ns,
                    alloc_events,
                    alloc_bytes,
                    panics_contained,
                    deadline_blown,
                    verified: false,
                    moves: None,
                    code: None,
                    counters_json: Some(counter_set.to_json()),
                };
            }
        }
        let rung = ladder.current();
        match rung {
            Rung::Checked => ctx.counters.add(JobCounter::JobsCompletedChecked, 1),
            _ => ctx.counters.add(JobCounter::JobsCompletedFallback, 1),
        }
        // Independent post-hoc differential check of the code actually
        // being returned (the pipeline's own guards already verified
        // it; this is the service's output-side seal).
        let verify_started = Instant::now();
        let verified = runner::verify(&bf.func, &outcome.func, &bf.inputs).is_ok();
        m.stage_latency(Stage::Verify)
            .record(verify_started.elapsed().as_nanos() as u64);
        return JobReport {
            id: job.req.id,
            function: bf.func.name.clone(),
            experiment: format!("{exp:?}"),
            outcome: JobOutcome::Completed,
            rung,
            ladder: ladder.into_steps(),
            error_class,
            error: error_text,
            attempts: attempt,
            chaos_seed: chaos_site_seed,
            chaos_class: fault.map(|f| f.class()),
            inputs_seed: job.req.inputs_seed,
            generator_seed: job.generator_seed,
            wall_ns,
            alloc_events,
            alloc_bytes,
            panics_contained,
            deadline_blown,
            verified,
            moves: Some(outcome.moves as u64),
            code: Some(outcome.func.to_string()),
            counters_json: Some(counter_set.to_json()),
        };
    }
}

fn backoff(base: Duration, attempt: u32) -> Duration {
    base.saturating_mul(1u32 << attempt.min(10))
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use crate::proto::default_inputs;
    use tossa_ir::machine::Machine;
    use tossa_ir::parse::parse_function;

    fn job(id: u64, text: &str) -> Job {
        let func = parse_function(text, &Machine::dsp32()).unwrap();
        let inputs = default_inputs(&func, id);
        Job {
            req: JobRequest {
                id,
                func,
                experiment: None,
                inputs,
                inputs_seed: Some(id),
            },
            generator_seed: None,
        }
    }

    const ADD: &str = "func @add {\nentry:\n  %a, %b = input\n  %c = add %a, %b\n  ret %c\n}";

    #[test]
    fn clean_job_completes_checked_with_code_and_counters() {
        let config = ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        };
        let (reports, counters) = run_batch(config, vec![job(1, ADD), job(2, ADD)]);
        assert_eq!(reports.len(), 2);
        for r in &reports {
            assert_eq!(r.outcome, JobOutcome::Completed);
            assert_eq!(r.rung, Rung::Checked);
            assert!(r.ladder.is_empty());
            assert!(r.verified);
            assert!(r.error.is_none());
            let code = r.code.as_deref().unwrap();
            // The artifact round-trips through the parser.
            parse_function(code, &Machine::dsp32()).unwrap();
            let cj = r.counters_json.as_deref().unwrap();
            tossa_trace::validate_json(cj).unwrap();
        }
        assert_eq!(counters.get(JobCounter::JobsSubmitted), 2);
        assert_eq!(counters.get(JobCounter::JobsCompletedChecked), 2);
    }

    #[test]
    fn worker_panic_fault_is_contained_and_retried_to_success() {
        // Rate 100 with WorkerPanic-heavy draws: some attempts panic,
        // retries eventually land (attempt participates in the draw) or
        // the job quarantines — either way no unwind escapes run_batch.
        let config = ServiceConfig {
            workers: 2,
            chaos: Some(ChaosConfig {
                seed: 3,
                rate_pct: 60,
            }),
            ..ServiceConfig::default()
        };
        let jobs: Vec<Job> = (1..=20).map(|k| job(k, ADD)).collect();
        let (reports, counters) = run_batch(config, jobs);
        assert_eq!(reports.len(), 20);
        for r in &reports {
            assert!(
                crate::ladder::steps_are_contiguous(&r.ladder),
                "job {}: ladder skipped a rung",
                r.id
            );
            if r.outcome != JobOutcome::Completed {
                assert!(r.error_class.is_some(), "job {}: unclassified", r.id);
            }
        }
        // At the 60% rate over 20 jobs × attempts something must land.
        assert!(counters.get(JobCounter::ServiceFaultsInjected) > 0);
    }

    #[test]
    fn queue_overflow_sheds_with_structured_reports() {
        // One worker, capacity-1 queue, zero grace: flooding must shed
        // some jobs, and every shed job must still produce a report.
        let config = ServiceConfig {
            workers: 1,
            queue_cap: 1,
            admission_grace: Duration::ZERO,
            ..ServiceConfig::default()
        };
        let n = 30u64;
        let (reports, counters) = run_batch(config, (1..=n).map(|k| job(k, ADD)).collect());
        assert_eq!(reports.len() as u64, n, "every job reports, shed or not");
        let shed = reports
            .iter()
            .filter(|r| r.outcome == JobOutcome::Shed)
            .count() as u64;
        assert_eq!(counters.get(JobCounter::JobsShed), shed);
        assert_eq!(
            counters.get(JobCounter::JobsSubmitted) + shed,
            n,
            "accepted + shed covers the flood"
        );
        for r in reports.iter().filter(|r| r.outcome == JobOutcome::Shed) {
            assert_eq!(r.error_class.as_deref(), Some("service.queue_full"));
        }
    }

    #[test]
    fn malformed_frames_are_refused_structurally() {
        let (service, rx) = CompileService::start(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        });
        assert!(service.submit_frame("this is not a frame").is_err());
        let escaped = tossa_trace::escape_json(ADD);
        service
            .submit_frame(&format!("{{\"func\": \"{escaped}\"}}"))
            .unwrap();
        let counters = service.shutdown();
        let reports: Vec<JobReport> = rx.iter().collect();
        assert_eq!(reports.len(), 2);
        assert_eq!(counters.get(JobCounter::FramesMalformed), 1);
        let rejected = reports
            .iter()
            .find(|r| r.outcome == JobOutcome::FrameRejected)
            .unwrap();
        assert_eq!(rejected.error_class.as_deref(), Some("frame.json"));
        assert!(reports
            .iter()
            .any(|r| r.outcome == JobOutcome::Completed && r.verified));
    }
}
