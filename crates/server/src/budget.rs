//! Per-job resource budgets and the thread-local allocation meter.
//!
//! A job gets three independent budgets:
//!
//! * **fuel** — the interpreter step budget every differential
//!   execution runs under (threaded into
//!   `tossa_bench::checked::CheckedOptions::fuel`); exhaustion surfaces
//!   as a structured `verify.trap` error inside the pipeline, so it
//!   descends the ladder rather than hanging the worker;
//! * **deadline** — a wall-clock bound enforced *observationally* by
//!   the [`watchdog`](crate::watchdog): because fuel already bounds
//!   every loop in the pipeline, a job always terminates, and the
//!   watchdog marks rather than kills (no thread cancellation, no torn
//!   state); a blown deadline is a transient failure — retried, then
//!   quarantined;
//! * **allocation events** — a cap on heap round-trips, metered by
//!   [`ServiceAlloc`], the service twin of the counting
//!   `#[global_allocator]` idiom from `tests/alloc_budget.rs`. Where
//!   the test's counter is a process-global `AtomicU64`, the service
//!   meter is **thread-local and armed per job**, so concurrent workers
//!   never bill each other.
//!
//! The allocator hook must never unwind and must work during TLS
//! teardown, so it charges through `try_with` and the cap is checked by
//! the worker *after* the attempt, not inside the hook.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::time::Duration;

/// Resource budgets for one job attempt.
#[derive(Clone, Copy, Debug)]
pub struct Budget {
    /// Interpreter step budget per differential execution.
    pub fuel: u64,
    /// Wall-clock deadline for one attempt.
    pub deadline: Duration,
    /// Cap on heap allocation events during one attempt; `None` turns
    /// the check off (the meter still reports the count).
    pub max_alloc_events: Option<u64>,
}

impl Default for Budget {
    fn default() -> Budget {
        Budget {
            fuel: 5_000_000,
            deadline: Duration::from_secs(2),
            // ~30k events cover a full VALcc1 sweep (see
            // tests/alloc_budget.rs); one pathological function should
            // stay well under a million.
            max_alloc_events: Some(1_000_000),
        }
    }
}

thread_local! {
    static ARMED: Cell<bool> = const { Cell::new(false) };
    static EVENTS: Cell<u64> = const { Cell::new(0) };
    static BYTES: Cell<u64> = const { Cell::new(0) };
}

/// A counting wrapper around the system allocator. Install it as the
/// process `#[global_allocator]` (the `serve` binary and the soak tests
/// do); the library then meters per-job allocation through
/// [`AllocMeter`]. When it is *not* installed, meters simply read 0 and
/// the cap never fires — the service degrades to unmetered, it does not
/// break.
pub struct ServiceAlloc;

unsafe impl GlobalAlloc for ServiceAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        charge(layout.size() as u64);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if new_size > layout.size() {
            // Only the growth is new demand — a shrinking realloc
            // frees, it doesn't consume.
            charge((new_size - layout.size()) as u64);
        }
        System.realloc(ptr, layout, new_size)
    }
}

/// Charges one allocation event and its requested bytes to the current
/// thread's meter, if armed. `try_with` keeps the hook total: during
/// thread teardown (TLS already destroyed) it silently skips rather
/// than aborting.
fn charge(bytes: u64) {
    let armed = ARMED.try_with(Cell::get).unwrap_or(false);
    if armed {
        let _ = EVENTS.try_with(|e| e.set(e.get().saturating_add(1)));
        let _ = BYTES.try_with(|b| b.set(b.get().saturating_add(bytes)));
    }
}

/// Arms the current thread's allocation meter for the scope of one job
/// attempt; reads the count with [`AllocMeter::events`] and disarms on
/// drop. Meters do not nest — arming while armed would double-bill the
/// outer scope — so construction while armed keeps the outer meter and
/// reports 0.
pub struct AllocMeter {
    owner: bool,
}

impl AllocMeter {
    /// Arms the meter (zeroing the thread's counts).
    pub fn arm() -> AllocMeter {
        let owner = ARMED.try_with(|a| !a.replace(true)).unwrap_or(false);
        if owner {
            let _ = EVENTS.try_with(|e| e.set(0));
            let _ = BYTES.try_with(|b| b.set(0));
        }
        AllocMeter { owner }
    }

    /// Allocation events charged since arming (0 when [`ServiceAlloc`]
    /// is not the process allocator, or for a non-owning nested meter).
    pub fn events(&self) -> u64 {
        if !self.owner {
            return 0;
        }
        EVENTS.try_with(Cell::get).unwrap_or(0)
    }

    /// Bytes requested by the charged events (growth only for
    /// reallocs). Same ownership/installation caveats as
    /// [`AllocMeter::events`].
    pub fn bytes(&self) -> u64 {
        if !self.owner {
            return 0;
        }
        BYTES.try_with(Cell::get).unwrap_or(0)
    }
}

impl Drop for AllocMeter {
    fn drop(&mut self) {
        if self.owner {
            let _ = ARMED.try_with(|a| a.set(false));
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    // ServiceAlloc is not this test binary's global allocator, so the
    // meter must read 0 — the degrade-to-unmetered contract.
    #[test]
    fn meter_without_installed_allocator_reads_zero() {
        let m = AllocMeter::arm();
        let v: Vec<u64> = (0..1000).collect();
        assert_eq!(m.events(), 0);
        drop(m);
        assert!(!v.is_empty());
    }

    #[test]
    fn nested_meters_do_not_double_bill() {
        let outer = AllocMeter::arm();
        {
            let inner = AllocMeter::arm();
            assert_eq!(inner.events(), 0);
        }
        // The inner drop must not have disarmed the outer meter.
        assert!(ARMED.with(Cell::get));
        drop(outer);
        assert!(!ARMED.with(Cell::get));
    }

    #[test]
    fn charge_counts_only_while_armed() {
        // Simulate allocator traffic by calling charge() directly; the
        // real hook path is exercised by the soak binary, which installs
        // ServiceAlloc for the whole process.
        let m = AllocMeter::arm();
        charge(16);
        charge(48);
        assert_eq!(m.events(), 2);
        assert_eq!(m.bytes(), 64);
        drop(m);
        charge(8);
        let m2 = AllocMeter::arm();
        assert_eq!(m2.events(), 0, "arming re-zeroes the count");
        assert_eq!(m2.bytes(), 0, "arming re-zeroes the byte total");
    }
}
