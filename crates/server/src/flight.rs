//! The flight recorder: a bounded ring of recent job lifecycle events.
//!
//! Metrics ([`crate::metrics`]) aggregate; the flight recorder keeps
//! the *sequence*. Every job writes a short event trail as it moves
//! through the service — `submit` → `dequeue` → `attempt` (one per
//! attempt, with the drawn fault class) → `retry`/`quarantine` →
//! `outcome` — timestamped against the recorder's epoch and carrying
//! the same stable class keys the reports use. The ring holds the last
//! [`FlightRecorder::capacity`] events; older ones are dropped (and
//! counted) rather than growing memory on a long-running server.
//!
//! Two dump paths, both `tossa-flight-recorder/1` JSON:
//!
//! * **quarantine** — the service dumps the poisoned job's own slice
//!   to stderr the moment it quarantines, so the post-mortem trail is
//!   in the log before anyone asks;
//! * **soak-gate failure / `--flight-path`** — the `serve` binary
//!   dumps the whole ring to a file for the CI artifact.
//!
//! Recording takes a mutex (the ring is not a hot path — a few events
//! per job, against thousands of allocator-level metric increments);
//! the poison-absorbing lock idiom matches [`crate::queue`].

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Instant;
use tossa_trace::escape_json;

/// Default ring capacity (events, not jobs).
pub const FLIGHT_CAPACITY: usize = 4096;

/// The closed set of lifecycle stages a [`FlightEvent`] can record.
pub const FLIGHT_STAGES: [&str; 8] = [
    "submit",
    "shed",
    "frame_rejected",
    "dequeue",
    "attempt",
    "retry",
    "quarantine",
    "outcome",
];

/// One recorded lifecycle event.
#[derive(Clone, Debug)]
pub struct FlightEvent {
    /// Nanoseconds since the recorder's epoch (service start).
    pub at_ns: u64,
    /// Job id.
    pub job: u64,
    /// Attempt number in flight (0 = outside any attempt).
    pub attempt: u32,
    /// Lifecycle stage, from [`FLIGHT_STAGES`].
    pub stage: &'static str,
    /// Stage detail: a class key, rung name, or outcome key.
    pub detail: String,
}

impl FlightEvent {
    /// Renders the event as one JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"at_ns\": {}, \"job\": {}, \"attempt\": {}, \"stage\": \"{}\", \"detail\": \"{}\"}}",
            self.at_ns,
            self.job,
            self.attempt,
            self.stage,
            escape_json(&self.detail)
        )
    }
}

fn lock_ignoring_poison<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// A bounded ring buffer of [`FlightEvent`]s shared by every service
/// thread.
pub struct FlightRecorder {
    epoch: Instant,
    cap: usize,
    ring: Mutex<VecDeque<FlightEvent>>,
    recorded: AtomicU64,
    dropped: AtomicU64,
}

impl Default for FlightRecorder {
    fn default() -> FlightRecorder {
        FlightRecorder::new(FLIGHT_CAPACITY)
    }
}

impl FlightRecorder {
    /// A fresh recorder holding at most `cap` events (`cap` ≥ 1).
    pub fn new(cap: usize) -> FlightRecorder {
        FlightRecorder {
            epoch: Instant::now(),
            cap: cap.max(1),
            ring: Mutex::new(VecDeque::new()),
            recorded: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Appends one event, evicting the oldest when full.
    pub fn record(&self, job: u64, attempt: u32, stage: &'static str, detail: impl Into<String>) {
        let ev = FlightEvent {
            at_ns: self.epoch.elapsed().as_nanos() as u64,
            job,
            attempt,
            stage,
            detail: detail.into(),
        };
        self.recorded.fetch_add(1, Ordering::Relaxed);
        let mut ring = lock_ignoring_poison(&self.ring);
        if ring.len() >= self.cap {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(ev);
    }

    /// Ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Events recorded over the recorder's lifetime.
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Events evicted from the ring.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Events currently held, oldest first.
    pub fn snapshot(&self) -> Vec<FlightEvent> {
        lock_ignoring_poison(&self.ring).iter().cloned().collect()
    }

    /// The still-buffered slice of one job's trail, oldest first.
    pub fn for_job(&self, job: u64) -> Vec<FlightEvent> {
        lock_ignoring_poison(&self.ring)
            .iter()
            .filter(|e| e.job == job)
            .cloned()
            .collect()
    }

    /// Renders `events` as a one-line `tossa-flight-recorder/1` dump.
    pub fn dump_json(&self, events: &[FlightEvent]) -> String {
        let mut out = String::from("{\"schema\": \"tossa-flight-recorder/1\"");
        let _ = write!(
            out,
            ", \"capacity\": {}, \"recorded\": {}, \"dropped\": {}, \"events\": [",
            self.cap,
            self.recorded(),
            self.dropped()
        );
        for (k, e) in events.iter().enumerate() {
            if k > 0 {
                out.push_str(", ");
            }
            out.push_str(&e.to_json());
        }
        out.push_str("]}");
        out
    }

    /// The whole ring as a `tossa-flight-recorder/1` dump.
    pub fn to_json(&self) -> String {
        self.dump_json(&self.snapshot())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_the_most_recent_events() {
        let fr = FlightRecorder::new(3);
        for k in 1..=5u64 {
            fr.record(k, 0, "submit", "f");
        }
        let events = fr.snapshot();
        assert_eq!(events.len(), 3);
        assert_eq!(events.iter().map(|e| e.job).collect::<Vec<_>>(), [3, 4, 5]);
        assert_eq!(fr.recorded(), 5);
        assert_eq!(fr.dropped(), 2);
    }

    #[test]
    fn job_slice_and_dump_are_well_formed() {
        let fr = FlightRecorder::new(16);
        fr.record(1, 0, "submit", "f");
        fr.record(2, 0, "submit", "g");
        fr.record(1, 1, "attempt", "clean");
        fr.record(1, 1, "outcome", "completed/checked");
        let slice = fr.for_job(1);
        assert_eq!(slice.len(), 3);
        assert!(slice.windows(2).all(|w| w[0].at_ns <= w[1].at_ns));
        let dump = fr.dump_json(&slice);
        tossa_trace::validate_json(&dump).expect("flight dump is well-formed JSON");
        assert!(dump.contains("\"schema\": \"tossa-flight-recorder/1\""));
        assert!(dump.contains("\"stage\": \"outcome\""));
        for e in &slice {
            assert!(FLIGHT_STAGES.contains(&e.stage));
        }
    }
}
