//! `serve` — the tossa compile service front door.
//!
//! Three modes:
//!
//! * **stdin (default)** — read one JSON job frame per line from stdin,
//!   write one JSON job report per line to stdout; exit when stdin
//!   closes and the queue drains.
//! * **`--tcp ADDR`** — listen on `ADDR`; each connection is its own
//!   JSONL session (frames in, reports out), one thread per connection.
//! * **`--soak N`** — drive `N` deterministic fuzz functions through
//!   the service with chaos on, print the [`SoakSummary`], and exit
//!   nonzero if any soak invariant is violated. This is the CI gate.
//!
//! Flags:
//!
//! * `--chaos RATE` — fault injection rate in percent (default 0;
//!   `--soak` defaults it to 35)
//! * `--seed S` — chaos base seed (default 7)
//! * `--workers N` — worker threads (default: available parallelism)
//! * `--deadline-ms MS` — per-attempt wall-clock budget (default 2000)
//! * `--fuel N` — interpreter fuel per differential execution
//! * `--max-allocs N` — per-attempt allocation-event budget (0 = off)
//! * `--report FILE` — also append every report line to `FILE` (JSONL)
//! * `--experiment KEY` — default experiment (default `LphiAbiC`)
//!
//! The binary installs [`ServiceAlloc`] as the global allocator so the
//! per-attempt allocation meter actually counts.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc;
use std::time::Duration;
use tossa_server::proto::experiment_from_key;
use tossa_server::report::{JobReport, SoakSummary};
use tossa_server::service::{run_batch, CompileService, Job, ServiceConfig};
use tossa_server::{Budget, ChaosConfig, JobRequest, ServiceAlloc};

#[global_allocator]
static ALLOC: ServiceAlloc = ServiceAlloc;

struct Args {
    raw: Vec<String>,
}

impl Args {
    fn flag(&self, name: &str) -> bool {
        self.raw.iter().any(|a| a == name)
    }

    fn value(&self, name: &str) -> Option<&str> {
        self.raw
            .iter()
            .position(|a| a == name)
            .and_then(|k| self.raw.get(k + 1))
            .map(String::as_str)
    }

    fn num(&self, name: &str, default: u64) -> Result<u64, String> {
        match self.value(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("{name} wants a number, got {v:?}")),
        }
    }
}

fn config_from(args: &Args) -> Result<ServiceConfig, String> {
    let mut config = ServiceConfig {
        workers: args.num("--workers", 0)? as usize,
        budget: Budget {
            fuel: args.num("--fuel", Budget::default().fuel)?,
            deadline: Duration::from_millis(args.num("--deadline-ms", 2000)?),
            max_alloc_events: match args.num("--max-allocs", 1_000_000)? {
                0 => None,
                n => Some(n),
            },
        },
        ..ServiceConfig::default()
    };
    let default_rate = if args.flag("--soak") { 35 } else { 0 };
    let rate = args.num("--chaos", default_rate)?;
    if rate > 0 {
        config.chaos = Some(ChaosConfig {
            seed: args.num("--seed", 7)?,
            rate_pct: rate.min(100) as u32,
        });
    }
    if let Some(key) = args.value("--experiment") {
        config.default_experiment = experiment_from_key(key)
            .ok_or_else(|| format!("unknown experiment {key:?} (try LphiAbiC)"))?;
    }
    Ok(config)
}

/// Streams reports from `rx` to stdout (and optionally a JSONL file)
/// on a dedicated thread; returns the join handle.
fn spawn_responder(
    rx: mpsc::Receiver<JobReport>,
    report_path: Option<String>,
    echo: bool,
) -> std::thread::JoinHandle<Vec<JobReport>> {
    std::thread::spawn(move || {
        let mut file = report_path.and_then(|p| {
            std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(p)
                .ok()
        });
        let stdout = std::io::stdout();
        let mut reports = Vec::new();
        for r in rx {
            let line = r.to_json();
            if echo {
                let mut out = stdout.lock();
                let _ = writeln!(out, "{line}");
            }
            if let Some(f) = &mut file {
                let _ = writeln!(f, "{line}");
            }
            reports.push(r);
        }
        reports
    })
}

fn run_stdin(config: ServiceConfig, report_path: Option<String>) -> i32 {
    let (service, rx) = CompileService::start(config);
    let responder = spawn_responder(rx, report_path, true);
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        // Frame errors already produced a structured report.
        let _ = service.submit_frame(&line);
    }
    let counters = service.shutdown();
    let _ = responder.join();
    eprintln!("{}", counters.to_json());
    0
}

fn serve_connection(stream: TcpStream, service: &CompileService) {
    let Ok(reader) = stream.try_clone() else {
        return;
    };
    for line in BufReader::new(reader).lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let _ = service.submit_frame(&line);
    }
}

fn run_tcp(config: ServiceConfig, addr: &str, report_path: Option<String>) -> i32 {
    let listener = match TcpListener::bind(addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("serve: cannot bind {addr}: {e}");
            return 2;
        }
    };
    eprintln!("serve: listening on {addr}");
    let (service, rx) = CompileService::start(config);
    let responder = spawn_responder(rx, report_path, true);
    // Accept loop; each connection feeds the shared service. Reports go
    // to the shared responder (stdout / file) rather than back down the
    // submitting socket — connections are submission channels.
    std::thread::scope(|scope| {
        for stream in listener.incoming() {
            match stream {
                Ok(s) => {
                    let service = &service;
                    scope.spawn(move || serve_connection(s, service));
                }
                Err(e) => {
                    eprintln!("serve: accept failed: {e}");
                    break;
                }
            }
        }
    });
    let counters = service.shutdown();
    let _ = responder.join();
    eprintln!("{}", counters.to_json());
    0
}

fn run_soak(config: ServiceConfig, n: usize, seed: u64, report_path: Option<String>) -> i32 {
    use tossa_server::proto::default_inputs;
    // The gate measures the robustness envelope, not admission: size the
    // queue to the population so every function actually runs (the
    // shedding path has its own tests).
    let config = ServiceConfig {
        queue_cap: n.max(config.queue_cap),
        ..config
    };
    eprintln!(
        "serve: soak of {n} functions, chaos {}%",
        config.chaos.map_or(0, |c| c.rate_pct)
    );
    let suite = tossa_bench::checked::fuzz_suite(n, seed);
    let jobs: Vec<Job> = suite
        .functions
        .into_iter()
        .enumerate()
        .map(|(k, bf)| {
            let id = k as u64 + 1;
            let inputs = default_inputs(&bf.func, id);
            Job {
                req: JobRequest {
                    id,
                    func: bf.func,
                    experiment: None,
                    inputs,
                    inputs_seed: Some(id),
                },
                generator_seed: Some(seed.wrapping_add(k as u64)),
            }
        })
        .collect();
    let (reports, counters) = run_batch(config, jobs);
    if let Some(path) = report_path {
        let lines: String = reports.iter().map(|r| r.to_json() + "\n").collect();
        if let Err(e) = std::fs::write(&path, lines) {
            eprintln!("serve: cannot write {path}: {e}");
        }
    }
    let summary = SoakSummary::from_reports(&reports);
    eprint!("{summary}");
    eprintln!("{}", counters.to_json());
    if summary.holds() {
        eprintln!("serve: soak PASSED");
        0
    } else {
        eprintln!("serve: soak FAILED");
        1
    }
}

fn main() {
    // Contained panics are reported structurally (class + message in the
    // JobReport); keep the default hook's backtrace spew off stderr.
    std::panic::set_hook(Box::new(|_| {}));
    let args = Args {
        raw: std::env::args().skip(1).collect(),
    };
    if args.flag("--help") || args.flag("-h") {
        eprintln!(
            "usage: serve [--tcp ADDR | --soak N] [--chaos RATE] [--seed S] [--workers N]\n\
             \x20            [--deadline-ms MS] [--fuel N] [--max-allocs N] [--report FILE]\n\
             \x20            [--experiment KEY]"
        );
        return;
    }
    let code = (|| -> Result<i32, String> {
        let config = config_from(&args)?;
        let report_path = args.value("--report").map(str::to_string);
        if args.flag("--soak") {
            let n = args.num("--soak", 500)? as usize;
            let seed = args.num("--seed", 7)?;
            return Ok(run_soak(config, n.max(1), seed, report_path));
        }
        if let Some(addr) = args.value("--tcp") {
            return Ok(run_tcp(config, addr, report_path));
        }
        Ok(run_stdin(config, report_path))
    })()
    .unwrap_or_else(|e| {
        eprintln!("serve: {e}");
        2
    });
    std::process::exit(code);
}
