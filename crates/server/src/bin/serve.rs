//! `serve` — the tossa compile service front door.
//!
//! Three modes:
//!
//! * **stdin (default)** — read one JSON job frame per line from stdin,
//!   write one JSON job report per line to stdout; exit when stdin
//!   closes and the queue drains.
//! * **`--tcp ADDR`** — listen on `ADDR`; each connection is its own
//!   JSONL session: frames in, and the reports for *that connection's
//!   jobs* back down the same socket (reports for jobs whose connection
//!   has gone away fall back to stdout). A connection whose first line
//!   is `GET /metrics` gets a one-shot HTTP Prometheus exposition
//!   instead, so a scraper can point at the same port.
//! * **`--soak N`** — drive `N` deterministic fuzz functions through
//!   the service with chaos on, print the [`SoakSummary`] (now with
//!   p50/p90/p99 job latency and queue wait), and exit nonzero if any
//!   soak invariant is violated. This is the CI gate.
//!
//! Every mode answers the in-band `{"control": "stats"}` frame with one
//! `tossa-service-stats/1` snapshot line.
//!
//! Flags:
//!
//! * `--chaos RATE` — fault injection rate in percent (default 0;
//!   `--soak` defaults it to 35)
//! * `--seed S` — chaos base seed (default 7)
//! * `--workers N` — worker threads (default: available parallelism)
//! * `--deadline-ms MS` — per-attempt wall-clock budget (default 2000)
//! * `--fuel N` — interpreter fuel per differential execution
//! * `--max-allocs N` — per-attempt allocation-event budget (0 = off)
//! * `--report FILE` — also append every report line to `FILE` (JSONL)
//! * `--experiment KEY` — default experiment (default `LphiAbiC`)
//! * `--metrics-path FILE` — write the final Prometheus exposition to
//!   `FILE` on shutdown
//! * `--stats-path FILE` — append periodic `tossa-service-stats/1`
//!   snapshot lines to `FILE` while running (soak mode), plus one final
//!   snapshot at shutdown in every mode
//! * `--stats-interval-ms MS` — snapshot period (default 1000)
//! * `--flight-path FILE` — write the flight-recorder ring to `FILE` on
//!   shutdown (a failing soak gate dumps it to stderr regardless)
//!
//! The binary installs [`ServiceAlloc`] as the global allocator so the
//! per-attempt allocation meter actually counts.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex, MutexGuard};
use std::time::Duration;
use tossa_server::metrics::ServiceMetrics;
use tossa_server::proto::experiment_from_key;
use tossa_server::report::{JobReport, SoakSummary};
use tossa_server::service::{CompileService, Job, ServiceConfig};
use tossa_server::{parse_control, Budget, ChaosConfig, Control, JobRequest, ServiceAlloc};
use tossa_trace::service::JobCounterSet;

#[global_allocator]
static ALLOC: ServiceAlloc = ServiceAlloc;

struct Args {
    raw: Vec<String>,
}

impl Args {
    fn flag(&self, name: &str) -> bool {
        self.raw.iter().any(|a| a == name)
    }

    fn value(&self, name: &str) -> Option<&str> {
        self.raw
            .iter()
            .position(|a| a == name)
            .and_then(|k| self.raw.get(k + 1))
            .map(String::as_str)
    }

    fn num(&self, name: &str, default: u64) -> Result<u64, String> {
        match self.value(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("{name} wants a number, got {v:?}")),
        }
    }
}

/// Output paths shared by every mode.
#[derive(Clone, Default)]
struct OutPaths {
    report: Option<String>,
    metrics: Option<String>,
    stats: Option<String>,
    flight: Option<String>,
    stats_interval: Duration,
}

impl OutPaths {
    fn from(args: &Args) -> Result<OutPaths, String> {
        Ok(OutPaths {
            report: args.value("--report").map(str::to_string),
            metrics: args.value("--metrics-path").map(str::to_string),
            stats: args.value("--stats-path").map(str::to_string),
            flight: args.value("--flight-path").map(str::to_string),
            stats_interval: Duration::from_millis(args.num("--stats-interval-ms", 1000)?.max(10)),
        })
    }

    /// Shutdown-time dumps common to every mode: the final stats
    /// snapshot, the Prometheus exposition, and the flight ring. Runs
    /// *after* [`CompileService::shutdown`] (the metrics handle
    /// outlives the service), so the dumps cover every job.
    fn final_dumps(&self, metrics: &ServiceMetrics, counters: &JobCounterSet) {
        if let Some(p) = &self.stats {
            append_line(p, &metrics.stats_json(counters));
        }
        if let Some(p) = &self.metrics {
            write_file(p, &metrics.prometheus(counters));
        }
        if let Some(p) = &self.flight {
            write_file(p, &metrics.flight.to_json());
        }
    }
}

fn append_line(path: &str, line: &str) {
    let f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path);
    match f {
        Ok(mut f) => {
            let _ = writeln!(f, "{line}");
        }
        Err(e) => eprintln!("serve: cannot append to {path}: {e}"),
    }
}

fn write_file(path: &str, content: &str) {
    if let Err(e) = std::fs::write(path, content) {
        eprintln!("serve: cannot write {path}: {e}");
    }
}

fn config_from(args: &Args) -> Result<ServiceConfig, String> {
    let mut config = ServiceConfig {
        workers: args.num("--workers", 0)? as usize,
        budget: Budget {
            fuel: args.num("--fuel", Budget::default().fuel)?,
            deadline: Duration::from_millis(args.num("--deadline-ms", 2000)?),
            max_alloc_events: match args.num("--max-allocs", 1_000_000)? {
                0 => None,
                n => Some(n),
            },
        },
        ..ServiceConfig::default()
    };
    let default_rate = if args.flag("--soak") { 35 } else { 0 };
    let rate = args.num("--chaos", default_rate)?;
    if rate > 0 {
        config.chaos = Some(ChaosConfig {
            seed: args.num("--seed", 7)?,
            rate_pct: rate.min(100) as u32,
        });
    }
    if let Some(key) = args.value("--experiment") {
        config.default_experiment = experiment_from_key(key)
            .ok_or_else(|| format!("unknown experiment {key:?} (try LphiAbiC)"))?;
    }
    Ok(config)
}

fn lock_ignoring_poison<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// Job-id → submitting connection. The responder removes an entry as it
/// delivers (each job reports exactly once), so the map stays bounded
/// by in-flight work.
type Routes = Arc<Mutex<HashMap<u64, Arc<Mutex<TcpStream>>>>>;

/// Streams reports from `rx` on a dedicated thread: down the submitting
/// socket when `routes` knows one, else to stdout (when `echo`), and
/// always appended to the report file when given. I/O errors on the
/// report path are *counted* (`service_report_io_errors`) and warned
/// once — a full disk must not silently eat the audit trail.
fn spawn_responder(
    rx: mpsc::Receiver<JobReport>,
    report_path: Option<String>,
    echo: bool,
    routes: Option<Routes>,
    metrics: Arc<ServiceMetrics>,
) -> std::thread::JoinHandle<Vec<JobReport>> {
    std::thread::spawn(move || {
        let mut file = match &report_path {
            Some(p) => std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(p)
                .map_err(|e| eprintln!("serve: cannot open report file {p}: {e}"))
                .ok(),
            None => None,
        };
        let stdout = std::io::stdout();
        let mut warned_file = false;
        let mut warned_socket = false;
        let mut reports = Vec::new();
        for r in rx {
            let line = r.to_json();
            let route = routes
                .as_ref()
                .and_then(|rt| lock_ignoring_poison(rt).remove(&r.id));
            let mut delivered = false;
            if let Some(sock) = route {
                let mut s = lock_ignoring_poison(&sock);
                if let Err(e) = writeln!(s, "{line}") {
                    metrics.report_io_errors.inc();
                    if !warned_socket {
                        warned_socket = true;
                        eprintln!("serve: report delivery to a client socket failed: {e} (falling back to stdout; counting further failures silently)");
                    }
                } else {
                    delivered = true;
                }
            }
            if !delivered && echo {
                let mut out = stdout.lock();
                let _ = writeln!(out, "{line}");
            }
            if let Some(f) = &mut file {
                if let Err(e) = writeln!(f, "{line}") {
                    metrics.report_io_errors.inc();
                    if !warned_file {
                        warned_file = true;
                        eprintln!("serve: report file write failed: {e} (counting further failures silently)");
                    }
                }
            }
            reports.push(r);
        }
        reports
    })
}

fn run_stdin(config: ServiceConfig, paths: &OutPaths) -> i32 {
    let (service, rx) = CompileService::start(config);
    let responder = spawn_responder(rx, paths.report.clone(), true, None, service.metrics());
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        match parse_control(&line) {
            Some(Ok(Control::Stats)) => {
                let mut out = std::io::stdout().lock();
                let _ = writeln!(out, "{}", service.stats_json());
            }
            Some(Err(e)) => {
                let report = service.refuse_frame(&e);
                service.emit_report(report);
            }
            None => {
                // Frame errors already produced a structured report.
                let _ = service.submit_frame(&line);
            }
        }
    }
    let metrics = service.metrics();
    let counters = service.shutdown();
    paths.final_dumps(&metrics, &counters);
    let _ = responder.join();
    eprintln!("{}", counters.to_json());
    0
}

/// One-shot HTTP answer for a scraper that opened a JSONL port.
fn answer_http(sock: &Mutex<TcpStream>, request_line: &str, service: &CompileService) {
    let (status, body) = if request_line.starts_with("GET /metrics") {
        ("200 OK", service.prometheus())
    } else {
        ("404 Not Found", String::from("only /metrics lives here\n"))
    };
    let mut s = lock_ignoring_poison(sock);
    let _ = write!(
        s,
        "HTTP/1.1 {status}\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
}

fn serve_connection(stream: TcpStream, service: &CompileService, routes: &Routes) {
    let Ok(writer) = stream.try_clone() else {
        return;
    };
    let sock = Arc::new(Mutex::new(writer));
    let mut first = true;
    let mut lines = BufReader::new(stream).lines();
    while let Some(line) = lines.next() {
        let Ok(line) = line else { break };
        if first && line.starts_with("GET ") {
            // A scraper, not a JSONL client: drain the request headers
            // (closing with unread bytes would RST the connection and
            // can discard the queued response body), answer, hang up.
            for header in lines.by_ref() {
                if header.map_or(true, |h| h.trim().is_empty()) {
                    break;
                }
            }
            answer_http(&sock, &line, service);
            return;
        }
        first = false;
        if line.trim().is_empty() {
            continue;
        }
        match parse_control(&line) {
            Some(Ok(Control::Stats)) => {
                let mut s = lock_ignoring_poison(&sock);
                let _ = writeln!(s, "{}", service.stats_json());
            }
            Some(Err(e)) => {
                let report = service.refuse_frame(&e);
                let mut s = lock_ignoring_poison(&sock);
                let _ = writeln!(s, "{}", report.to_json());
            }
            None => match service.admit_frame(&line) {
                Ok(req) => {
                    // Route *before* submit: the report (even a shed
                    // one) can race back before we return.
                    lock_ignoring_poison(routes).insert(req.id, Arc::clone(&sock));
                    service.submit(Job {
                        req,
                        generator_seed: None,
                    });
                }
                Err((id, e)) => {
                    let report = service.frame_rejection(id, &e);
                    let mut s = lock_ignoring_poison(&sock);
                    let _ = writeln!(s, "{}", report.to_json());
                }
            },
        }
    }
}

fn run_tcp(config: ServiceConfig, addr: &str, paths: &OutPaths) -> i32 {
    let listener = match TcpListener::bind(addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("serve: cannot bind {addr}: {e}");
            return 2;
        }
    };
    eprintln!("serve: listening on {addr}");
    let (service, rx) = CompileService::start(config);
    let routes: Routes = Arc::new(Mutex::new(HashMap::new()));
    let responder = spawn_responder(
        rx,
        paths.report.clone(),
        true,
        Some(Arc::clone(&routes)),
        service.metrics(),
    );
    // Accept loop; each connection feeds the shared service and gets its
    // own jobs' reports routed back down its socket.
    std::thread::scope(|scope| {
        for stream in listener.incoming() {
            match stream {
                Ok(s) => {
                    let service = &service;
                    let routes = &routes;
                    scope.spawn(move || serve_connection(s, service, routes));
                }
                Err(e) => {
                    eprintln!("serve: accept failed: {e}");
                    break;
                }
            }
        }
    });
    let metrics = service.metrics();
    let counters = service.shutdown();
    paths.final_dumps(&metrics, &counters);
    let _ = responder.join();
    eprintln!("{}", counters.to_json());
    0
}

fn run_soak(config: ServiceConfig, n: usize, seed: u64, paths: &OutPaths) -> i32 {
    use tossa_server::proto::default_inputs;
    // The gate measures the robustness envelope, not admission: size the
    // queue to the population so every function actually runs (the
    // shedding path has its own tests).
    let config = ServiceConfig {
        queue_cap: n.max(config.queue_cap),
        ..config
    };
    eprintln!(
        "serve: soak of {n} functions, chaos {}%",
        config.chaos.map_or(0, |c| c.rate_pct)
    );
    let suite = tossa_bench::checked::fuzz_suite(n, seed);
    let jobs: Vec<Job> = suite
        .functions
        .into_iter()
        .enumerate()
        .map(|(k, bf)| {
            let id = k as u64 + 1;
            let inputs = default_inputs(&bf.func, id);
            Job {
                req: JobRequest {
                    id,
                    func: bf.func,
                    experiment: None,
                    inputs,
                    inputs_seed: Some(id),
                },
                generator_seed: Some(seed.wrapping_add(k as u64)),
            }
        })
        .collect();

    let (service, rx) = CompileService::start(config);
    let metrics = service.metrics();
    let collector = std::thread::spawn(move || {
        let mut reports: Vec<JobReport> = rx.iter().collect();
        reports.sort_by_key(|r| r.id);
        reports
    });
    // Periodic live snapshots while the soak runs: one stats line per
    // interval, the same schema a stats control frame answers with.
    let stop = Arc::new(AtomicBool::new(false));
    let emitter = paths.stats.clone().map(|path| {
        let stop = Arc::clone(&stop);
        let metrics = service.metrics();
        let counters = service.counters_handle();
        let interval = paths.stats_interval;
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                std::thread::sleep(interval);
                append_line(&path, &metrics.stats_json(&counters.snapshot()));
            }
        })
    });
    for job in jobs {
        service.submit(job);
    }
    let counters = service.shutdown();
    stop.store(true, Ordering::Relaxed);
    if let Some(h) = emitter {
        let _ = h.join();
    }
    paths.final_dumps(&metrics, &counters);
    let reports = collector.join().unwrap_or_default();

    if let Some(path) = &paths.report {
        let lines: String = reports.iter().map(|r| r.to_json() + "\n").collect();
        write_file(path, &lines);
    }
    let mut summary = SoakSummary::from_reports(&reports);
    summary.set_queue_wait(&metrics.queue_wait_ns.snapshot());
    eprint!("{summary}");
    eprintln!("{}", counters.to_json());
    if summary.holds() {
        eprintln!("serve: soak PASSED");
        0
    } else {
        // The post-mortem trail goes to stderr with the verdict: CI
        // failure logs carry the flight ring even when nobody passed
        // --flight-path.
        eprintln!("{}", metrics.flight.to_json());
        eprintln!("serve: soak FAILED");
        1
    }
}

fn main() {
    // Contained panics are reported structurally (class + message in the
    // JobReport); keep the default hook's backtrace spew off stderr.
    std::panic::set_hook(Box::new(|_| {}));
    let args = Args {
        raw: std::env::args().skip(1).collect(),
    };
    if args.flag("--help") || args.flag("-h") {
        eprintln!(
            "usage: serve [--tcp ADDR | --soak N] [--chaos RATE] [--seed S] [--workers N]\n\
             \x20            [--deadline-ms MS] [--fuel N] [--max-allocs N] [--report FILE]\n\
             \x20            [--experiment KEY] [--metrics-path FILE] [--stats-path FILE]\n\
             \x20            [--stats-interval-ms MS] [--flight-path FILE]"
        );
        return;
    }
    let code = (|| -> Result<i32, String> {
        let config = config_from(&args)?;
        let paths = OutPaths::from(&args)?;
        if args.flag("--soak") {
            let n = args.num("--soak", 500)? as usize;
            let seed = args.num("--seed", 7)?;
            return Ok(run_soak(config, n.max(1), seed, &paths));
        }
        if let Some(addr) = args.value("--tcp") {
            return Ok(run_tcp(config, addr, &paths));
        }
        Ok(run_stdin(config, &paths))
    })()
    .unwrap_or_else(|e| {
        eprintln!("serve: {e}");
        2
    });
    std::process::exit(code);
}
