//! Wall-clock deadline enforcement: a watchdog thread that *marks*
//! rather than kills.
//!
//! Rust threads cannot be cancelled safely, and the pipeline holds
//! interior state (arena IR, analysis caches) that forced termination
//! would tear. The service therefore leans on the fact that every job
//! attempt provably terminates — interpreter fuel bounds differential
//! execution, and every pass is a finite traversal — and enforces
//! deadlines observationally: the watchdog scans registered jobs on a
//! tick, marks any past its deadline as *blown*, and the worker reads
//! the mark when the attempt finishes. A blown attempt's result is
//! discarded and the job is retried (then quarantined), exactly as if
//! it had been killed, but with no unsafe cancellation.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

struct Entry {
    deadline: Instant,
    blown: Arc<AtomicBool>,
}

struct Shared {
    entries: Mutex<HashMap<u64, Entry>>,
    stop: AtomicBool,
    wake: Condvar,
    // Paired with `wake`; the bool is a dummy — the watchdog sleeps on
    // the condvar so shutdown can interrupt a tick immediately.
    gate: Mutex<bool>,
}

/// The watchdog: one scanning thread for the whole service.
pub struct Watchdog {
    shared: Arc<Shared>,
    thread: Option<std::thread::JoinHandle<()>>,
}

/// Registration of one job attempt; dropping it deregisters. The
/// `blown` flag stays readable after drop, so the worker can read the
/// verdict once the attempt is over.
pub struct WatchGuard {
    shared: Arc<Shared>,
    key: u64,
    blown: Arc<AtomicBool>,
}

impl WatchGuard {
    /// Whether the watchdog marked this attempt as past its deadline.
    pub fn blown(&self) -> bool {
        self.blown.load(Ordering::Relaxed)
    }
}

impl Drop for WatchGuard {
    fn drop(&mut self) {
        let mut entries = self
            .shared
            .entries
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        entries.remove(&self.key);
    }
}

impl Watchdog {
    /// Starts the watchdog with the given scan period.
    pub fn start(tick: Duration) -> Watchdog {
        let shared = Arc::new(Shared {
            entries: Mutex::new(HashMap::new()),
            stop: AtomicBool::new(false),
            wake: Condvar::new(),
            gate: Mutex::new(false),
        });
        let s = Arc::clone(&shared);
        let thread = std::thread::Builder::new()
            .name("tossa-watchdog".into())
            .spawn(move || {
                while !s.stop.load(Ordering::Relaxed) {
                    {
                        let entries = s.entries.lock().unwrap_or_else(|p| p.into_inner());
                        let now = Instant::now();
                        for e in entries.values() {
                            if now >= e.deadline {
                                e.blown.store(true, Ordering::Relaxed);
                            }
                        }
                    }
                    let gate = s.gate.lock().unwrap_or_else(|p| p.into_inner());
                    let _unused = s
                        .wake
                        .wait_timeout(gate, tick)
                        .unwrap_or_else(|p| p.into_inner());
                }
            })
            .ok();
        Watchdog { shared, thread }
    }

    /// Registers attempt `key` (unique per in-flight attempt) with a
    /// deadline `budget` from now.
    pub fn watch(&self, key: u64, budget: Duration) -> WatchGuard {
        let blown = Arc::new(AtomicBool::new(false));
        let mut entries = self
            .shared
            .entries
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        entries.insert(
            key,
            Entry {
                deadline: Instant::now() + budget,
                blown: Arc::clone(&blown),
            },
        );
        WatchGuard {
            shared: Arc::clone(&self.shared),
            key,
            blown,
        }
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        self.shared.wake.notify_all();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    #[test]
    fn overrunning_attempt_is_marked_blown() {
        let wd = Watchdog::start(Duration::from_millis(5));
        let guard = wd.watch(1, Duration::from_millis(20));
        assert!(!guard.blown(), "fresh attempt must not be blown");
        std::thread::sleep(Duration::from_millis(60));
        assert!(guard.blown(), "attempt past its deadline must be marked");
    }

    #[test]
    fn fast_attempt_is_never_marked() {
        let wd = Watchdog::start(Duration::from_millis(5));
        let guard = wd.watch(2, Duration::from_secs(30));
        std::thread::sleep(Duration::from_millis(30));
        assert!(!guard.blown());
        drop(guard);
    }

    #[test]
    fn verdict_survives_deregistration() {
        let wd = Watchdog::start(Duration::from_millis(5));
        let guard = wd.watch(3, Duration::ZERO);
        std::thread::sleep(Duration::from_millis(30));
        let blown_flag = Arc::clone(&guard.blown);
        drop(guard);
        assert!(blown_flag.load(Ordering::Relaxed));
        drop(wd); // shutdown joins the scanner promptly
    }
}
